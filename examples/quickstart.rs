//! Quickstart: encode two monitoring systems and two NICs, then ask the
//! engine the paper's basic question — "does there exist a choice of
//! systems such that the following properties and constraints are met?"
//! (§3.4) — and watch the diagnosis when the answer is no.
//!
//! Run with: `cargo run --example quickstart`

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;

fn build_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    // Listing 2, transliterated: SIMON solves queue-length detection but
    // needs NIC timestamps and collector cores.
    catalog
        .add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("detect_queue_length")
                .requires_cited(
                    "simon-needs-nic-timestamps",
                    Condition::nics_have("NIC_TIMESTAMPS"),
                    "Geng et al., NSDI 2019",
                )
                .consumes(Resource::Cores, AmountExpr::scaled("num_flows", 0.0005))
                .cost(1_500)
                .build(),
        )
        .expect("unique id");
    catalog
        .add_system(
            SystemSpec::builder("PINGMESH", Category::Monitoring)
                .solves("reachability_monitoring")
                .cost(200)
                .build(),
        )
        .expect("unique id");
    catalog
        .add_ordering(OrderingEdge::strict("SIMON", "PINGMESH", Dimension::MonitoringQuality))
        .expect("both endpoints exist");

    catalog
        .add_hardware(
            HardwareSpec::builder("CX6", HardwareKind::Nic)
                .model_name("ConnectX-6 100GbE")
                .feature("NIC_TIMESTAMPS")
                .cost(1_200)
                .build(),
        )
        .expect("unique id");
    catalog
        .add_hardware(
            HardwareSpec::builder("PLAIN_NIC", HardwareKind::Nic)
                .model_name("Basic 25GbE NIC")
                .cost(300)
                .build(),
        )
        .expect("unique id");
    catalog
        .add_hardware(
            HardwareSpec::builder("SRV64", HardwareKind::Server)
                .numeric("cores", 64.0)
                .cost(9_000)
                .build(),
        )
        .expect("unique id");
    catalog
}

fn main() {
    let catalog = build_catalog();

    // An architect's question: my app needs queue-length monitoring.
    let scenario = Scenario::new(catalog.clone())
        .with_workload(
            Workload::builder("inference")
                .needs("detect_queue_length")
                .num_flows(40_000)
                .peak_cores(100)
                .build(),
        )
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("CX6"), HardwareId::new("PLAIN_NIC")],
            server_candidates: vec![HardwareId::new("SRV64")],
            num_servers: 4,
            ..Inventory::default()
        });

    let mut engine = Engine::new(scenario).expect("scenario compiles");
    match engine.check().expect("query runs") {
        Outcome::Feasible(design) => {
            println!("Feasible design found:\n{design}");
            println!(
                "Note: SIMON forces the timestamping NIC — the engine tracked\n\
                 the cross-component dependency automatically.\n"
            );
        }
        Outcome::Infeasible(diagnosis) => println!("{}", render_diagnosis(&diagnosis)),
    }

    // Now make it impossible: forbid the only NIC with timestamps by
    // shrinking the inventory, and watch the diagnosis name the exact
    // rules in conflict.
    let impossible = Scenario::new(catalog)
        .with_workload(Workload::builder("inference").needs("detect_queue_length").build())
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("PLAIN_NIC")],
            num_servers: 4,
            ..Inventory::default()
        });
    let mut engine = Engine::new(impossible).expect("scenario compiles");
    match engine.check().expect("query runs") {
        Outcome::Feasible(design) => println!("unexpectedly feasible:\n{design}"),
        Outcome::Infeasible(diagnosis) => {
            println!("As expected, no design exists without a timestamping NIC:");
            println!("{}", render_diagnosis(&diagnosis));
        }
    }
}
