//! Exploring the design space: Figure 1 comparisons, incomparability, and
//! how conditions flip the partial order.
//!
//! Run with: `cargo run --example design_space`

use netarch::core::ordering::Comparison;
use netarch::core::prelude::*;
use netarch::corpus::{full_catalog, vocab::params};

fn scenario_at(link_speed: f64, apps_modifiable: bool) -> Scenario {
    let mut w = Workload::builder("app").property("dc_flows");
    if apps_modifiable {
        w = w.property("apps_modifiable");
    }
    Scenario::new(full_catalog())
        .with_workload(w.build())
        .with_param(params::LINK_SPEED_GBPS, link_speed)
}

fn show(engine: &Engine, a: &str, b: &str, dim: Dimension) {
    let verdict = engine.compare(&SystemId::new(a), &SystemId::new(b), &dim);
    let symbol = match verdict {
        Comparison::Better => "≻",
        Comparison::Worse => "≺",
        Comparison::Equal => "≈",
        Comparison::Incomparable => "⋈ (unknown)",
    };
    println!("  {a:12} {symbol:12} {b:12}  [{dim}]");
}

fn main() {
    println!("=== Figure 1 at 10 Gbps links ===");
    let engine = Engine::new(scenario_at(10.0, false)).expect("compiles");
    show(&engine, "NETCHANNEL", "LINUX", Dimension::Throughput);
    show(&engine, "SNAP_PONY", "SNAP_TCP", Dimension::Throughput);
    show(&engine, "LINUX", "SHENANGO", Dimension::Isolation);
    show(&engine, "SHENANGO", "DEMIKERNEL", Dimension::Isolation);
    show(&engine, "LINUX", "SNAP_PONY", Dimension::AppCompatibility);

    println!("\n=== The same pairs at 100 Gbps links ===");
    let engine = Engine::new(scenario_at(100.0, false)).expect("compiles");
    show(&engine, "NETCHANNEL", "LINUX", Dimension::Throughput);
    show(&engine, "SNAP_PONY", "SNAP_TCP", Dimension::Throughput);
    show(&engine, "SHENANGO", "DEMIKERNEL", Dimension::Isolation);

    println!(
        "\nNetChannel vs Linux flips from ≈ to ≻ as the link-speed condition\n\
         activates (paper §2.3/§3.1), while Shenango vs Demikernel stays\n\
         incomparable on isolation — the knowledge base honestly reports\n\
         what the literature never measured (§3.1).\n"
    );

    println!("=== Dominance ranks drive optimization ===");
    let scenario = scenario_at(100.0, true);
    let stacks: Vec<SystemId> = scenario
        .catalog
        .systems_in(&Category::NetworkStack)
        .iter()
        .map(|s| s.id.clone())
        .collect();
    let ranks = scenario
        .catalog
        .order()
        .ranks(&stacks, &Dimension::Throughput, &scenario);
    let mut sorted: Vec<(&SystemId, &usize)> = ranks.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("network stacks by throughput dominance rank (100 Gbps):");
    for (id, rank) in sorted {
        println!("  {rank:3}  {id}");
    }
}
