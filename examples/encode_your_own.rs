//! Encoding your own knowledge — the paper's §3.3 expert workflow,
//! end-to-end: add a new congestion control system and a new switch to
//! the shipped corpus via modular deltas, then let the engine reason
//! about them.
//!
//! Follows `docs/ENCODING_GUIDE.md`. Run with:
//! `cargo run --example encode_your_own`

use netarch::core::prelude::*;
use netarch::corpus::{full_catalog, vocab::params, vocab::props};

fn main() {
    let mut catalog = full_catalog();
    println!(
        "shipped corpus: {} systems, {} hardware models",
        catalog.num_systems(),
        catalog.num_hardware()
    );

    // 1. The expert encodes a (fictional) in-network-assisted CCA.
    let poseidon = SystemSpec::builder("POSEIDON", Category::CongestionControl)
        .name("Poseidon (example encoding)")
        .solves("bandwidth_allocation")
        .requires_cited(
            "poseidon-needs-int-switches",
            Condition::switches_have("INT"),
            "the expert's own deployment notes",
        )
        .requires(
            "poseidon-dc-only",
            Condition::workload(props::DC_FLOWS),
        )
        .consumes(Resource::QosClasses, AmountExpr::constant(2))
        .cost(1_200)
        .notes("Example system for the encoding guide.")
        .build();

    // 2. …and a new switch generation that carries INT cheaply.
    let switch = HardwareSpec::builder("EXAMPLE_SW_800G", HardwareKind::Switch)
        .model_name("Example 64x800G INT switch")
        .numeric("ports", 64.0)
        .numeric("port_bandwidth_gbps", 800.0)
        .numeric("memory_mb", 128.0)
        .numeric("qos_classes", 16.0)
        .feature("ECN")
        .feature("PFC")
        .feature("INT")
        .feature("MIRRORING")
        .cost(38_000)
        .build();

    // 3. Ship both atomically, with preference edges, in one delta (§6).
    catalog
        .apply(CatalogDelta {
            upsert_systems: vec![poseidon],
            upsert_hardware: vec![switch],
            add_orderings: vec![
                OrderingEdge::strict("POSEIDON", "HPCC", Dimension::TailLatency)
                    .cited("the expert's A/B test"),
            ],
            ..CatalogDelta::default()
        })
        .expect("delta applies cleanly");
    assert!(catalog.validate().is_empty());
    println!("after the delta: {} systems\n", catalog.num_systems());

    // 4. Ask the engine to use the new knowledge.
    let scenario = Scenario::new(catalog)
        .with_workload(
            Workload::builder("training")
                .property(props::DC_FLOWS)
                .needs("bandwidth_allocation")
                .peak_cores(600)
                .num_flows(30_000)
                .build(),
        )
        .with_param(params::LINK_SPEED_GBPS, 800.0)
        .with_inventory(Inventory {
            switch_candidates: vec![
                HardwareId::new("TRIDENT4_T32"),
                HardwareId::new("EXAMPLE_SW_800G"),
            ],
            nic_candidates: vec![HardwareId::new("MLX_CX7_400")],
            server_candidates: vec![HardwareId::new("EPYC_GENOA_96C")],
            num_servers: 16,
            num_switches: 4,
        })
        .with_objective(Objective::MaximizeDimension(Dimension::TailLatency))
        .with_objective(Objective::MinimizeCost);

    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");
    let cc = result.design.selection(&Category::CongestionControl).unwrap();
    let switch = result.design.hardware_for(HardwareKind::Switch).unwrap();
    println!("optimizer chose: CC = {cc} on switch {switch}");
    println!("{}", result.design);

    // 5. And ask whether a follow-up measurement is worth running (§3.1).
    let advice = engine
        .advise_measurement(
            &SystemId::new("POSEIDON"),
            &SystemId::new("BFC"),
            &Dimension::TailLatency,
        )
        .expect("runs");
    println!("measure POSEIDON vs BFC on tail latency? {}", advice.reason);
}
