//! The §2.2 PFC-deadlock vignette as a reasoning query.
//!
//! Microsoft's RDMA deployment deadlocked because Ethernet flooding broke
//! the routing invariant PFC relied on (Guo et al., SIGCOMM 2016; paper
//! §2.2). The paper's point (§3.4): the expert rule "PFC cannot be used
//! with any flooding algorithms" is trivially checkable with predicate
//! logic. This example shows the engine (a) catching the bad combination
//! with a named diagnosis and (b) synthesizing the fix (an ARP proxy).
//!
//! Run with: `cargo run --example pfc_deadlock`

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch::corpus::{full_catalog, vocab::params};

fn rdma_scenario() -> Scenario {
    Scenario::new(full_catalog())
        .with_workload(
            Workload::builder("storage_backend")
                .name("RDMA storage backend")
                .property("dc_flows")
                .peak_cores(800)
                .num_flows(10_000)
                .needs("transport")
                .needs("address_resolution")
                .build(),
        )
        .with_param(params::LINK_SPEED_GBPS, 100.0)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("MLX_CX6_100")],
            switch_candidates: vec![HardwareId::new("SPECTRUM2_SN3700")],
            server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
            num_servers: 32,
            num_switches: 4,
        })
        .with_role(Category::Transport, RoleRule::Required)
        .with_role(Category::Custom("l2-address-resolution".into()), RoleRule::Required)
        .with_pin(Pin::Require(SystemId::new("ROCEV2")))
}

fn main() {
    println!("=== The Microsoft incident, as a scenario (§2.2) ===\n");
    println!(
        "RoCEv2 is pinned (the team committed to RDMA), and the incumbent\n\
         L2 design uses classic ARP flooding.\n"
    );
    let incident = rdma_scenario().with_pin(Pin::Require(SystemId::new("ARP_FLOODING")));
    let mut engine = Engine::new(incident).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => println!("UNEXPECTED: engine allowed it\n{design}"),
        Outcome::Infeasible(diagnosis) => {
            println!("The engine refuses the combination and names the expert rule:");
            println!("{}", render_diagnosis(&diagnosis));
        }
    }

    println!("=== Remove the flooding pin: the engine synthesizes the fix ===\n");
    let mut engine = Engine::new(rdma_scenario()).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => {
            println!("{design}");
            let l2 = design
                .selection(&Category::Custom("l2-address-resolution".into()))
                .map(|s| s.as_str().to_string());
            println!(
                "Address resolution chosen: {} — flooding-free, so PFC's\n\
                 cyclic-buffer-dependency hazard never arises.",
                l2.as_deref().unwrap_or("none")
            );
        }
        Outcome::Infeasible(diagnosis) => println!("{}", render_diagnosis(&diagnosis)),
    }
}
