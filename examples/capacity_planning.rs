//! Capacity planning and disambiguation — the repo's §6-inspired
//! extensions, driven through the public API.
//!
//! Run with: `cargo run --example capacity_planning`

use netarch::core::prelude::*;
use netarch::corpus::case_study;

fn main() {
    println!("=== How many servers does the §2.3 case study need? ===\n");
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let plan = engine.plan_capacity(512).expect("runs").expect("feasible");
    println!(
        "provisioned: {} servers;   actually needed: {}\n",
        scenario.inventory.num_servers, plan.servers_needed
    );
    println!("{}", plan.design);

    println!("=== What if the inference service doubles? ===\n");
    let doubled = case_study::scenario().with_workload(
        Workload::builder("inference_app_2")
            .property("dc_flows")
            .property("short_flows")
            .peak_cores(2_800)
            .num_flows(50_000)
            .needs("load_balancing")
            .build(),
    );
    let mut engine = Engine::new(doubled).expect("compiles");
    let plan2 = engine.plan_capacity(512).expect("runs").expect("feasible");
    println!(
        "servers: {} → {} (+{})\n",
        plan.servers_needed,
        plan2.servers_needed,
        plan2.servers_needed - plan.servers_needed
    );

    println!("=== Which questions would pin the design down? (§6) ===\n");
    let mut ambiguous = case_study::scenario();
    ambiguous.objectives.clear();
    let ambiguous = ambiguous
        .with_role(Category::Transport, RoleRule::Forbidden)
        .with_role(Category::Firewall, RoleRule::Forbidden)
        .with_role(Category::Custom("l2-address-resolution".into()), RoleRule::Forbidden)
        .with_role(Category::Custom("memory-pooling".into()), RoleRule::Forbidden)
        .with_pin(Pin::Require(SystemId::new("SWIFT")))
        .with_pin(Pin::Require(SystemId::new("OVS")));
    let mut engine = Engine::new(ambiguous).expect("compiles");
    let plan = engine.disambiguate(256).expect("runs");
    print!("{}", render_plan(&plan));
}
