//! The three §5.1 what-if queries, verbatim from the paper:
//!
//! 1. "I want to support more applications, but I can't change my servers
//!    since that requires time and human effort."
//! 2. "I have already deployed Sonata, and I don't want to change it
//!    unless there are huge performance benefits or cost savings."
//! 3. "Given my current workloads, is it worthwhile to deploy CXL memory
//!    pooling?"
//!
//! Run with: `cargo run --example whatif_queries`

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch::corpus::case_study;

fn main() {
    query_1_more_apps_same_servers();
    query_2_keep_sonata();
    query_3_cxl_pooling();
}

/// Query 1: freeze the server SKU chosen for today's workload, then add
/// the WAN batch workload and ask whether the deployment still works.
fn query_1_more_apps_same_servers() {
    println!("=== Query 1: more applications, servers frozen ===\n");
    // Today's optimized design fixes the server choice.
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let today = engine.optimize().expect("runs").expect("feasible");
    let server = today
        .design
        .hardware_for(HardwareKind::Server)
        .expect("server chosen")
        .clone();
    println!("Today's servers: {server} (frozen from here on).\n");

    // Tomorrow: same servers, one more workload.
    let mut tomorrow = case_study::scenario().with_workload(case_study::batch_workload());
    tomorrow.inventory.server_candidates = vec![server.clone()];
    let mut engine = Engine::new(tomorrow).expect("compiles");
    match engine.optimize().expect("runs") {
        Ok(result) => {
            println!(
                "Feasible: the frozen {server} fleet absorbs the batch workload.\n{}",
                result.design
            );
            println!(
                "Note the congestion-control change: the WAN batch workload\n\
                 activates Annulus' applicability rule (§4.1) and the scavenger\n\
                 caveat for delay-based CCAs (§2.2).\n"
            );
        }
        Err(diagnosis) => {
            println!("Infeasible with frozen servers — the engine explains:\n");
            println!("{}", render_diagnosis(&diagnosis));
        }
    }
}

/// Query 2: pin Sonata and compare the objective penalties and cost
/// against the unconstrained optimum — "unless there are huge performance
/// benefits or cost savings", the architect keeps it.
fn query_2_keep_sonata() {
    println!("=== Query 2: keep Sonata unless the win is huge ===\n");
    let mut baseline_engine = Engine::new(case_study::scenario()).expect("compiles");
    let unconstrained = baseline_engine.optimize().expect("runs").expect("feasible");

    let pinned = case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA")));
    let mut pinned_engine = Engine::new(pinned).expect("compiles");
    match pinned_engine.optimize().expect("runs") {
        Ok(with_sonata) => {
            println!(
                "cost with Sonata pinned:   ${}",
                with_sonata.design.total_cost_usd
            );
            println!(
                "cost if free to change:    ${}",
                unconstrained.design.total_cost_usd
            );
            let delta = with_sonata
                .design
                .total_cost_usd
                .saturating_sub(unconstrained.design.total_cost_usd);
            let relative = delta as f64 / with_sonata.design.total_cost_usd.max(1) as f64;
            println!("savings from switching:    ${delta} ({:.1}%)", relative * 100.0);
            if relative < 0.10 {
                println!("→ Verdict: keep Sonata; the savings are not 'huge'.\n");
            } else {
                println!("→ Verdict: consider switching; the savings are substantial.\n");
            }
            let monitoring = with_sonata
                .design
                .selection(&Category::Monitoring)
                .map(|s| s.as_str().to_string());
            println!(
                "(monitoring under the pin: {}; switch choice: {:?})\n",
                monitoring.as_deref().unwrap_or("none"),
                with_sonata.design.hardware_for(HardwareKind::Switch)
            );
        }
        Err(diagnosis) => {
            println!("Sonata cannot be kept at all:\n{}", render_diagnosis(&diagnosis));
        }
    }
}

/// Query 3: CXL memory pooling is worthwhile only if a design exists that
/// carries it without breaking the budget or the platform constraints.
fn query_3_cxl_pooling() {
    println!("=== Query 3: is CXL memory pooling worthwhile? ===\n");
    // Ask for pooling on top of the case study.
    let scenario = case_study::scenario()
        .with_role(Category::Custom("memory-pooling".into()), RoleRule::Required)
        .with_pin(Pin::Require(SystemId::new("CXL_POOL")));
    let mut engine = Engine::new(scenario).expect("compiles");
    match engine.optimize().expect("runs") {
        Ok(result) => {
            println!("Feasible. The engine routes the platform dependency:");
            println!(
                "  server: {:?} (CXL pooling requires a CXL-capable platform)",
                result.design.hardware_for(HardwareKind::Server)
            );
            let mut baseline_engine = Engine::new(case_study::scenario()).expect("compiles");
            let baseline = baseline_engine.optimize().expect("runs").expect("feasible");
            let premium = result
                .design
                .total_cost_usd
                .saturating_sub(baseline.design.total_cost_usd);
            println!(
                "  cost premium over the no-pooling optimum: ${premium}\n\
                 → Worthwhile if the DRAM stranding it recovers exceeds that.\n"
            );
        }
        Err(diagnosis) => {
            println!(
                "Not deployable with the current inventory:\n{}",
                render_diagnosis(&diagnosis)
            );
        }
    }
}
