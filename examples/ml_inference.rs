//! The paper's §2.3 case study end-to-end: the ML inference application.
//!
//! Walks the paper's narrative: the "simplest choices" design (OVS +
//! Linux/Cubic + ECMP, no monitoring) fails the architect's low-latency
//! goal; the engine explains why, then synthesizes a compliant design
//! under Listing 3's objective stack `Optimize(latency > Hardware cost >
//! monitoring)` and surfaces the ripple effects (§2.3: packet spraying →
//! NIC reorder buffers; SmartNIC sharing; Simon → NIC timestamps).
//!
//! Run with: `cargo run --example ml_inference`

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch::corpus::case_study;

fn main() {
    println!("=== Step 1: the naive whiteboard design (paper §2.3) ===\n");
    let naive = case_study::naive_scenario();
    let mut engine = Engine::new(naive).expect("compiles");
    match engine.check().expect("query runs") {
        Outcome::Feasible(design) => {
            println!("The naive design is self-consistent as plumbing:\n{design}");
            println!(
                "…but it violates the workload's quality floor? No — the\n\
                 engine caught that during compilation. Let's look closer.\n"
            );
        }
        Outcome::Infeasible(diagnosis) => {
            println!(
                "The engine rejects the naive design and names the conflict\n\
                 (ECMP cannot meet the load-balancing bound of Listing 3):\n"
            );
            println!("{}", render_diagnosis(&diagnosis));
        }
    }

    println!("=== Step 2: let the engine design it (Listing 3 objectives) ===\n");
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario).expect("compiles");
    match engine.optimize().expect("query runs") {
        Ok(result) => {
            println!("Optimized design:\n{}", result.design);
            println!("Objective report (lexicographic, most important first):");
            for level in &result.levels {
                println!("  {:40} penalty = {}", level.objective, level.penalty);
            }
            println!();
            explain_ripples(&result.design);
        }
        Err(diagnosis) => println!("{}", render_diagnosis(&diagnosis)),
    }

    println!("\n=== Step 3: equivalence classes of compliant designs (§6) ===\n");
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let designs = engine.enumerate_designs(5, false).expect("enumeration runs");
    println!(
        "First {} equivalence classes (projected on system choices):\n",
        designs.len()
    );
    for (i, d) in designs.iter().enumerate() {
        let systems: Vec<String> = d.systems().iter().map(|s| s.to_string()).collect();
        println!("  class {}: {}", i + 1, systems.join(", "));
    }
}

/// Narrates the §2.3 ripple effects visible in the chosen design.
fn explain_ripples(design: &Design) {
    println!("Ripple effects the engine resolved automatically:");
    if design.includes(&SystemId::new("PACKET_SPRAY")) {
        if let Some(nic) = design.hardware_for(HardwareKind::Nic) {
            println!(
                "  • packet spraying selected → NIC {nic} provides the reorder\n\
                 \u{20}   buffers it requires (§2.3)"
            );
        }
    }
    if design.includes(&SystemId::new("SIMON")) {
        println!(
            "  • SIMON selected → the NIC must provide hardware timestamps and\n\
             \u{20}   SmartNIC capacity is shared with other offloads (§2.3)"
        );
    }
    for (cat, systems) in &design.selections {
        if matches!(cat, Category::CongestionControl) {
            println!("  • congestion control: {}", systems[0]);
        }
    }
    if let Some(usage) = design.resources.get(&Resource::Cores) {
        println!(
            "  • cores: {} used of {} available (workload peak + system demands)",
            usage.used,
            usage.capacity.map_or("∞".to_string(), |c| c.to_string())
        );
    }
}
