//! End-to-end tests of the `netarch` CLI binary: scenario JSON round-trip
//! through a temp file, every subcommand, and error handling.

use std::process::Command;

fn netarch(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_netarch"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

fn demo_scenario_path() -> std::path::PathBuf {
    let (ok, stdout, stderr) = netarch(&["demo"]);
    assert!(ok, "{stderr}");
    let path = std::env::temp_dir().join(format!("netarch-cli-test-{}.json", std::process::id()));
    std::fs::write(&path, stdout).expect("write temp scenario");
    path
}

#[test]
fn demo_emits_parseable_scenario_json() {
    let (ok, stdout, _) = netarch(&["demo"]);
    assert!(ok);
    let scenario: netarch::core::scenario::Scenario =
        netarch_rt::json::from_str(&stdout).expect("valid scenario JSON");
    assert_eq!(scenario.workloads.len(), 1);
    assert!(scenario.catalog.num_systems() > 50);
}

#[test]
fn check_reports_feasible_with_a_design() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.starts_with("FEASIBLE"));
    assert!(stdout.contains("load-balancer:"));
}

#[test]
fn capacity_reports_fleet_size() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["capacity", path.to_str().unwrap(), "512"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("SERVERS NEEDED: 44"), "{stdout}");
}

#[test]
fn compare_answers_listing_2_orderings() {
    let path = demo_scenario_path();
    let p = path.to_str().unwrap().to_string();
    let (ok, stdout, _) = netarch(&["compare", &p, "SIMON", "PINGMESH", "monitoring-quality"]);
    assert!(ok);
    assert!(stdout.contains("Better"), "{stdout}");
    let (ok, stdout, _) = netarch(&["compare", &p, "SIMON", "PINGMESH", "deployment-ease"]);
    assert!(ok);
    assert!(stdout.contains("Worse"), "{stdout}");
    let (ok, stdout, _) = netarch(&["compare", &p, "SHENANGO", "DEMIKERNEL", "isolation"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("Incomparable"), "{stdout}");
}

#[test]
fn enumerate_lists_classes() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["enumerate", path.to_str().unwrap(), "3"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("3 equivalence classes"), "{stdout}");
    assert!(stdout.contains("class 1:"));
}

#[test]
fn export_catalog_roundtrips() {
    let (ok, stdout, _) = netarch(&["export-catalog"]);
    assert!(ok);
    let catalog: netarch::core::catalog::Catalog =
        netarch_rt::json::from_str(&stdout).expect("valid catalog JSON");
    assert!(catalog.num_systems() > 50);
    assert!(catalog.num_hardware() >= 180);
}

#[test]
fn bad_usage_fails_with_help() {
    let (ok, _, stderr) = netarch(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    let (ok, _, stderr) = netarch(&[]);
    assert!(!ok);
    assert!(stderr.contains("no command given"), "{stderr}");

    let (ok, _, stderr) = netarch(&["check", "/nonexistent/path.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn json_flag_emits_machine_readable_designs() {
    let path = demo_scenario_path();
    let p = path.to_str().unwrap().to_string();
    let (ok, stdout, stderr) = netarch(&["check", &p, "--json"]);
    assert!(ok, "{stderr}");
    let design: netarch::core::solution::Design =
        netarch_rt::json::from_str(&stdout).expect("valid design JSON");
    assert!(!design.selections.is_empty());

    let (ok, stdout, _) = netarch(&["capacity", &p, "512", "--json"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    let value: netarch_rt::Json = netarch_rt::json::from_str(&stdout).expect("valid JSON");
    assert_eq!(value["servers_needed"].as_u64(), Some(44));
    assert!(value["design"]["hardware"]["Server"].is_string());
}
