//! End-to-end tests of the `netarch` CLI binary: scenario JSON round-trip
//! through a temp file, every subcommand, and error handling.

use std::process::Command;

fn netarch(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_netarch"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

fn demo_scenario_path() -> std::path::PathBuf {
    let (ok, stdout, stderr) = netarch(&["demo"]);
    assert!(ok, "{stderr}");
    let path = std::env::temp_dir().join(format!("netarch-cli-test-{}.json", std::process::id()));
    std::fs::write(&path, stdout).expect("write temp scenario");
    path
}

#[test]
fn demo_emits_parseable_scenario_json() {
    let (ok, stdout, _) = netarch(&["demo"]);
    assert!(ok);
    let scenario: netarch::core::scenario::Scenario =
        netarch_rt::json::from_str(&stdout).expect("valid scenario JSON");
    assert_eq!(scenario.workloads.len(), 1);
    assert!(scenario.catalog.num_systems() > 50);
}

#[test]
fn check_reports_feasible_with_a_design() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.starts_with("FEASIBLE"));
    assert!(stdout.contains("load-balancer:"));
}

#[test]
fn capacity_reports_fleet_size() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["capacity", path.to_str().unwrap(), "512"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("SERVERS NEEDED: 44"), "{stdout}");
}

#[test]
fn compare_answers_listing_2_orderings() {
    let path = demo_scenario_path();
    let p = path.to_str().unwrap().to_string();
    let (ok, stdout, _) = netarch(&["compare", &p, "SIMON", "PINGMESH", "monitoring-quality"]);
    assert!(ok);
    assert!(stdout.contains("Better"), "{stdout}");
    let (ok, stdout, _) = netarch(&["compare", &p, "SIMON", "PINGMESH", "deployment-ease"]);
    assert!(ok);
    assert!(stdout.contains("Worse"), "{stdout}");
    let (ok, stdout, _) = netarch(&["compare", &p, "SHENANGO", "DEMIKERNEL", "isolation"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("Incomparable"), "{stdout}");
}

#[test]
fn enumerate_lists_classes() {
    let path = demo_scenario_path();
    let (ok, stdout, _) = netarch(&["enumerate", path.to_str().unwrap(), "3"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert!(stdout.contains("3 equivalence classes"), "{stdout}");
    assert!(stdout.contains("class 1:"));
}

#[test]
fn export_catalog_roundtrips() {
    let (ok, stdout, _) = netarch(&["export-catalog"]);
    assert!(ok);
    let catalog: netarch::core::catalog::Catalog =
        netarch_rt::json::from_str(&stdout).expect("valid catalog JSON");
    assert!(catalog.num_systems() > 50);
    assert!(catalog.num_hardware() >= 180);
}

#[test]
fn bad_usage_fails_with_help() {
    let (ok, _, stderr) = netarch(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");

    let (ok, _, stderr) = netarch(&[]);
    assert!(!ok);
    assert!(stderr.contains("no command given"), "{stderr}");

    let (ok, _, stderr) = netarch(&["check", "/nonexistent/path.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

// ---------------------------------------------------------------------------
// .narch frontend: format detection, load/validate/fmt, parity with JSON
// ---------------------------------------------------------------------------

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn corpus_narch_paths() -> Vec<String> {
    let mut paths = Vec::new();
    for dir in ["corpus/systems", "corpus/hardware"] {
        for entry in std::fs::read_dir(repo_path(dir)).expect("corpus dir exists") {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "narch") {
                paths.push(path.to_str().unwrap().to_string());
            }
        }
    }
    paths.push(repo_path("corpus/orderings.narch"));
    paths.push(repo_path("corpus/case_study.narch"));
    paths
}

#[test]
fn check_accepts_narch_scenario_files() {
    let (ok, stdout, stderr) = netarch(&["check", &repo_path("examples/minimal.narch")]);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("FEASIBLE"), "{stdout}");
    assert!(stdout.contains("SIMON"), "{stdout}");
}

/// The tentpole acceptance criterion: a `.narch` scenario and its JSON
/// equivalent produce byte-identical answers.
#[test]
fn narch_and_json_scenarios_answer_identically() {
    let json_path = demo_scenario_path();
    let (ok, narch_text, stderr) = netarch(&["demo", "--narch"]);
    assert!(ok, "{stderr}");
    let narch_path =
        std::env::temp_dir().join(format!("netarch-cli-test-{}.narch", std::process::id()));
    std::fs::write(&narch_path, narch_text).unwrap();

    let from_json = netarch(&["check", json_path.to_str().unwrap()]);
    let from_narch = netarch(&["check", narch_path.to_str().unwrap()]);
    assert!(from_json.0 && from_narch.0);
    assert_eq!(from_json.1, from_narch.1, "check answers diverge across formats");

    let from_json = netarch(&["optimize", json_path.to_str().unwrap()]);
    let from_narch = netarch(&["optimize", narch_path.to_str().unwrap()]);
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&narch_path).ok();
    assert!(from_json.0 && from_narch.0);
    assert_eq!(from_json.1, from_narch.1, "optimize answers diverge across formats");
}

#[test]
fn format_detection_sniffs_content_without_extension() {
    // A JSON scenario under a neutral extension still loads.
    let (_, json_text, _) = netarch(&["demo"]);
    let path = std::env::temp_dir().join(format!("netarch-sniff-{}.tmp", std::process::id()));
    std::fs::write(&path, json_text).unwrap();
    let (ok, stdout, stderr) = netarch(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("FEASIBLE"));

    // Malformed JSON gets the format hint.
    let path = std::env::temp_dir().join(format!("netarch-sniff2-{}.json", std::process::id()));
    std::fs::write(&path, "{ not json").unwrap();
    let (ok, _, stderr) = netarch(&["check", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("cannot parse"), "{stderr}");
}

#[test]
fn load_merges_the_split_corpus_and_summarizes() {
    let paths = corpus_narch_paths();
    let args: Vec<&str> =
        std::iter::once("load").chain(paths.iter().map(String::as_str)).collect();
    let (ok, stdout, stderr) = netarch(&args);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("hardware models"), "{stdout}");
    assert!(stdout.contains("queries: check, optimize"), "{stdout}");
}

#[test]
fn validate_passes_corpus_and_catches_dangling_references() {
    let paths = corpus_narch_paths();
    let args: Vec<&str> =
        std::iter::once("validate").chain(paths.iter().map(String::as_str)).collect();
    let (ok, stdout, stderr) = netarch(&args);
    assert!(ok, "{stderr}");
    assert!(stdout.starts_with("OK"), "{stdout}");

    let path = std::env::temp_dir().join(format!("netarch-dangling-{}.narch", std::process::id()));
    std::fs::write(
        &path,
        "system \"A\" { category = transport  conflicts = [GHOST] }",
    )
    .unwrap();
    let (ok, _, stderr) = netarch(&["validate", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains("dangling"), "{stderr}");
}

#[test]
fn fmt_is_canonical_and_idempotent() {
    let (ok, once, stderr) = netarch(&["fmt", &repo_path("examples/minimal.narch")]);
    assert!(ok, "{stderr}");
    let path = std::env::temp_dir().join(format!("netarch-fmt-{}.narch", std::process::id()));
    std::fs::write(&path, &once).unwrap();
    let (ok, twice, _) = netarch(&["fmt", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    assert_eq!(once, twice, "fmt is not idempotent");

    // fmt refuses JSON input.
    let json_path = demo_scenario_path();
    let (ok, _, stderr) = netarch(&["fmt", json_path.to_str().unwrap()]);
    std::fs::remove_file(&json_path).ok();
    assert!(!ok);
    assert!(stderr.contains("formats DSL text only"), "{stderr}");
}

/// Golden spanned-error test: a syntax error reports `file:line:col` and
/// the offending detail, and exits nonzero.
#[test]
fn narch_errors_carry_file_line_and_column() {
    let path = std::env::temp_dir().join(format!("netarch-err-{}.narch", std::process::id()));
    // Column 14 on line 2: `category` misspelled.
    std::fs::write(
        &path,
        "system \"X\" {\n  categorie = monitoring\n}\n",
    )
    .unwrap();
    let (ok, _, stderr) = netarch(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    let expected = format!("{}:2:3: unknown attribute `categorie`", path.display());
    assert!(stderr.contains(&expected), "missing spanned diagnostic; got:\n{stderr}");

    // Lexer-level error, different position.
    std::fs::write(&path, "system \"X\" {\n  cost_usd = @\n}\n").unwrap();
    let (ok, _, stderr) = netarch(&["fmt", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(!ok);
    assert!(stderr.contains(":2:14"), "missing lexer span; got:\n{stderr}");
}

#[test]
fn export_narch_regenerates_committed_corpus_byte_identically() {
    let dir = std::env::temp_dir().join(format!("netarch-export-{}", std::process::id()));
    let (ok, _, stderr) = netarch(&["export-narch", dir.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    for rel in [
        "systems/stacks.narch",
        "hardware/nics.narch",
        "orderings.narch",
        "case_study.narch",
    ] {
        let generated = std::fs::read_to_string(dir.join(rel)).unwrap();
        let committed = std::fs::read_to_string(repo_path(&format!("corpus/{rel}"))).unwrap();
        assert_eq!(generated, committed, "committed corpus/{rel} is stale — regenerate");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_flag_emits_machine_readable_designs() {
    let path = demo_scenario_path();
    let p = path.to_str().unwrap().to_string();
    let (ok, stdout, stderr) = netarch(&["check", &p, "--json"]);
    assert!(ok, "{stderr}");
    let value: netarch_rt::Json = netarch_rt::json::from_str(&stdout).expect("valid JSON");
    use netarch_rt::json::FromJson;
    let design = netarch::core::solution::Design::from_json(&value["design"])
        .expect("valid design JSON");
    assert!(!design.selections.is_empty());
    // Solver/session counters ride along with every design verdict.
    assert!(value["stats"]["session_solves"].as_u64().unwrap_or(0) >= 1);
    assert!(value["stats"]["eliminated_vars"].as_u64().is_some());

    let (ok, stdout, _) = netarch(&["capacity", &p, "512", "--json"]);
    std::fs::remove_file(&path).ok();
    assert!(ok);
    let value: netarch_rt::Json = netarch_rt::json::from_str(&stdout).expect("valid JSON");
    assert_eq!(value["servers_needed"].as_u64(), Some(44));
    assert!(value["design"]["hardware"]["Server"].is_string());
    assert!(value["stats"]["session_solves"].as_u64().unwrap_or(0) >= 1);
}

// ---------------------------------------------------------------------------
// sweep: deterministic variant streams from the examples/sweep.narch spec
// ---------------------------------------------------------------------------

#[test]
fn sweep_smoke_manifest_is_deterministic() {
    let spec = repo_path("examples/sweep.narch");
    let (ok, first, stderr) = netarch(&["sweep", &spec, "--smoke"]);
    assert!(ok, "{stderr}");
    assert!(first.contains("variants=30"), "{first}");
    assert!(first.contains("admissible=30"), "{first}");
    assert!(first.contains("digest="), "{first}");
    let (ok, second, _) = netarch(&["sweep", &spec, "--smoke"]);
    assert!(ok);
    assert_eq!(first, second, "sweep manifest must be reproducible");
}

#[test]
fn sweep_export_writes_checkable_variants() {
    let spec = repo_path("examples/sweep.narch");
    let dir = std::env::temp_dir().join(format!("netarch-sweep-{}", std::process::id()));
    let (ok, stdout, stderr) = netarch(&["sweep", &spec, "--export", dir.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote 30 variant file(s)"), "{stdout}");
    // Every exported variant is a self-contained scenario the engine loads;
    // the stream mixes feasible and infeasible combinations by design.
    let mut verdicts = std::collections::BTreeSet::new();
    for index in 0..30 {
        let path = dir.join(format!("monitoring_matrix-{index:03}.narch"));
        let (ok, stdout, stderr) = netarch(&["check", path.to_str().unwrap()]);
        assert!(ok, "variant {index}: {stderr}");
        verdicts.insert(stdout.split_whitespace().next().unwrap_or("").to_string());
    }
    std::fs::remove_dir_all(&dir).ok();
    assert!(verdicts.contains("FEASIBLE"), "{verdicts:?}");
    assert!(verdicts.contains("INFEASIBLE"), "{verdicts:?}");
}

#[test]
fn sweep_json_lists_the_stream() {
    let spec = repo_path("examples/sweep.narch");
    let (ok, stdout, stderr) = netarch(&["sweep", &spec, "--json"]);
    assert!(ok, "{stderr}");
    let value: netarch_rt::Json = netarch_rt::json::from_str(&stdout).expect("valid JSON");
    assert_eq!(value["sweep"].as_str(), Some("monitoring_matrix"));
    assert_eq!(value["admissible"].as_u64(), Some(30));
    assert_eq!(value["variants"].as_array().map(<[_]>::len), Some(30));
    assert!(value["digest"].as_str().is_some_and(|d| d.len() == 32));
}

#[test]
fn sweep_rejects_missing_blocks_and_unknown_names() {
    let (ok, _, stderr) = netarch(&["sweep", &repo_path("examples/minimal.narch")]);
    assert!(!ok);
    assert!(stderr.contains("no sweep block"), "{stderr}");

    let spec = repo_path("examples/sweep.narch");
    let (ok, _, stderr) = netarch(&["sweep", &spec, "--name", "ghost"]);
    assert!(!ok);
    assert!(stderr.contains("no sweep named"), "{stderr}");
    assert!(stderr.contains("monitoring_matrix"), "{stderr}");
}
