//! Bench-trajectory regression gate.
//!
//! The committed `BENCH_*.json` files carry the performance numbers of
//! the last full experiment runs; this gate compares a *candidate* run
//! (CI re-running the benches into a scratch directory) against them and
//! fails when a time metric regresses by more than a configurable
//! factor.
//!
//! Two kinds of check, because not every candidate is comparable:
//!
//! * **Timed metrics** — `incremental/session_ms` and `parse/load_ms`.
//!   CI reruns these workloads at full fidelity (identical query streams
//!   and corpus), so candidate-vs-committed wall time is meaningful.
//!   The candidate must stay within `factor ×` the committed value
//!   (default 2×, override with `NETARCH_BENCH_REGRESSION_FACTOR`).
//! * **Self-bounded metrics** — `portfolio/median_speedup`,
//!   `inprocess/median_speedup`, `serve/warm_over_cold`, and
//!   `parallel_queries/loops_over_bound`. CI runs these in `--smoke`
//!   shape, whose
//!   absolute numbers are not comparable to the committed full runs;
//!   instead the gate holds the candidate to the bound it recorded for
//!   itself and to zero verdict disagreements, so a silently edited or
//!   truncated candidate cannot pass.
//!
//! Without `NETARCH_BENCH_CANDIDATE` the gate only shape-checks the
//! committed metrics. To refresh the committed numbers after an
//! intentional perf change (`--update` path): rerun the full bins at the
//! repo root — `cargo run --release -p netarch-bench --bin exp_<area>`
//! rewrites `BENCH_<area>.json` in place — and commit the diff.

use netarch::rt::Json;
use std::path::Path;

fn load_from(dir: &Path, area: &str) -> Json {
    let path = dir.join(format!("BENCH_{area}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
    netarch::rt::json::from_str::<Json>(&text)
        .unwrap_or_else(|e| panic!("{} must parse as JSON: {e}", path.display()))
}

fn committed(area: &str) -> Json {
    load_from(Path::new(env!("CARGO_MANIFEST_DIR")), area)
}

fn metric(json: &Json, area: &str, key: &str) -> f64 {
    json.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("BENCH_{area}.json must carry a numeric '{key}'"))
}

fn regression_factor() -> f64 {
    let factor = std::env::var("NETARCH_BENCH_REGRESSION_FACTOR")
        .ok()
        .map(|v| v.parse::<f64>().unwrap_or_else(|_| panic!("bad factor: {v}")))
        .unwrap_or(2.0);
    assert!(factor >= 1.0, "a regression factor below 1.0 rejects identical runs");
    factor
}

/// `(area, key)` pairs where CI reruns the identical full workload, so
/// candidate wall time may be compared to the committed wall time.
const TIMED_METRICS: [(&str, &str); 2] =
    [("incremental", "session_ms"), ("parse", "load_ms")];

#[test]
fn committed_trajectory_metrics_are_sane() {
    for (area, key) in TIMED_METRICS {
        let value = metric(&committed(area), area, key);
        assert!(value > 0.0, "committed {area}/{key} = {value}");
    }
    let portfolio = committed("portfolio");
    assert!(
        metric(&portfolio, "portfolio", "median_speedup")
            >= metric(&portfolio, "portfolio", "bound"),
        "committed portfolio run is below its own bound"
    );
    let inprocess = committed("inprocess");
    assert!(
        metric(&inprocess, "inprocess", "median_speedup")
            >= metric(&inprocess, "inprocess", "bound"),
        "committed inprocessing run is below its own bound"
    );
    assert_eq!(
        inprocess.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "committed inprocessing run recorded verdict disagreements"
    );
    for key in ["subsumed", "eliminated_vars"] {
        assert!(
            inprocess.get(key).and_then(Json::as_u64).unwrap_or(0) > 0,
            "committed inprocessing run did not exercise '{key}'"
        );
    }
    let serve = committed("serve");
    assert!(
        metric(&serve, "serve", "warm_over_cold") >= metric(&serve, "serve", "bound"),
        "committed serving run is below its own warm-over-cold bound"
    );
    assert_eq!(
        serve.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "committed serving run recorded oracle disagreements"
    );
    let parallel = committed("parallel_queries");
    assert_eq!(
        parallel.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "committed parallel-queries run disagreed with the sequential oracle"
    );
    assert!(
        parallel.get("loops_over_bound").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "committed parallel-queries run has fewer than 2 of 3 loops at its \
         speedup bound"
    );
    assert_eq!(
        parallel.get("smoke").and_then(Json::as_bool),
        Some(false),
        "committed parallel-queries numbers must come from a full run"
    );
    let sweep = committed("sweep");
    assert_eq!(
        sweep.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "committed sweep run recorded a differential disagreement"
    );
    assert!(
        sweep.get("admissible").and_then(Json::as_u64).unwrap_or(0) >= 500,
        "committed sweep run enumerated fewer than 500 admissible variants"
    );
    assert_eq!(
        sweep.get("threads_identical").and_then(Json::as_bool),
        Some(true),
        "committed sweep stream was not identical across NETARCH_THREADS settings"
    );
    assert_eq!(
        sweep.get("smoke").and_then(Json::as_bool),
        Some(false),
        "committed sweep numbers must come from a full run"
    );
}

#[test]
fn candidate_run_does_not_regress() {
    let Ok(dir) = std::env::var("NETARCH_BENCH_CANDIDATE") else {
        // Not a gated run (plain `cargo test`): nothing to compare.
        eprintln!("NETARCH_BENCH_CANDIDATE unset; skipping regression comparison");
        return;
    };
    let dir = Path::new(&dir);
    let factor = regression_factor();

    for (area, key) in TIMED_METRICS {
        let old = metric(&committed(area), area, key);
        let new = metric(&load_from(dir, area), area, key);
        assert!(
            new <= old * factor,
            "{area}/{key} regressed: {new:.2} vs committed {old:.2} \
             (allowed ≤ {factor}×). If intentional, rerun the full bench at \
             the repo root to update BENCH_{area}.json."
        );
    }

    let portfolio = load_from(dir, "portfolio");
    assert_eq!(
        portfolio.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "candidate portfolio run disagreed with the sequential oracle"
    );
    assert!(
        metric(&portfolio, "portfolio", "median_speedup")
            >= metric(&portfolio, "portfolio", "bound"),
        "candidate portfolio speedup fell below its own bound"
    );

    let inprocess = load_from(dir, "inprocess");
    assert_eq!(
        inprocess.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "candidate inprocessing run disagreed between configurations"
    );
    assert!(
        metric(&inprocess, "inprocess", "median_speedup")
            >= metric(&inprocess, "inprocess", "bound"),
        "candidate inprocessing speedup fell below its own bound"
    );

    let serve = load_from(dir, "serve");
    assert_eq!(
        serve.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "candidate serving run disagreed with the fresh-engine oracle"
    );
    assert_eq!(
        serve.get("errors").and_then(Json::as_u64),
        Some(0),
        "candidate serving run answered requests with errors"
    );
    assert!(
        metric(&serve, "serve", "warm_over_cold") >= metric(&serve, "serve", "bound"),
        "candidate warm-over-cold fell below its own bound"
    );

    // Smoke-shaped candidate: speedups on toy shapes are not comparable to
    // the committed full run, but correctness is unconditional — any
    // parallel-vs-sequential disagreement fails the gate.
    let parallel = load_from(dir, "parallel_queries");
    assert_eq!(
        parallel.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "candidate parallel-queries run disagreed with the sequential oracle"
    );

    // Sweep candidate runs in --smoke shape (24 variants), so the ≥500
    // floor applies only to the committed full run; determinism and
    // agreement are unconditional.
    let sweep = load_from(dir, "sweep");
    assert_eq!(
        sweep.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "candidate sweep run disagreed with the fresh-engine oracle"
    );
    assert_eq!(
        sweep.get("threads_identical").and_then(Json::as_bool),
        Some(true),
        "candidate sweep stream differed across NETARCH_THREADS settings"
    );
}
