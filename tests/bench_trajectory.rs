//! The committed BENCH_*.json files are the repo's perf trajectory: each
//! experiment bin rewrites its own file on a full run, and commits carry
//! the numbers forward. These tests keep the files parseable and honest —
//! a hand-edited or truncated file fails here, not at analysis time.

use netarch::rt::Json;

fn load(area: &str) -> Json {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(format!("BENCH_{area}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed: {e}", path.display()));
    netarch::rt::json::from_str::<Json>(&text)
        .unwrap_or_else(|e| panic!("{} must parse as JSON: {e}", path.display()))
}

#[test]
fn every_trajectory_file_names_its_experiment() {
    for area in ["scaling", "incremental", "portfolio", "parse", "serve"] {
        let v = load(area);
        assert_eq!(
            v.get("experiment").and_then(Json::as_str),
            Some(area),
            "BENCH_{area}.json must carry experiment = {area:?}"
        );
    }
}

#[test]
fn portfolio_trajectory_comes_from_a_full_run() {
    let v = load("portfolio");
    assert_eq!(
        v.get("smoke").and_then(Json::as_bool),
        Some(false),
        "only full (non --smoke) portfolio runs may update the trajectory"
    );
}

#[test]
fn serve_trajectory_comes_from_a_clean_full_run() {
    let v = load("serve");
    assert_eq!(
        v.get("smoke").and_then(Json::as_bool),
        Some(false),
        "only full (non --smoke) serving runs may update the trajectory"
    );
    assert_eq!(
        v.get("disagreements").and_then(Json::as_u64),
        Some(0),
        "the committed serving run must agree with the fresh-engine oracle"
    );
}

#[test]
fn parse_trajectory_reflects_corpus_scale() {
    let v = load("parse");
    let systems = v
        .get("systems")
        .and_then(Json::as_f64)
        .expect("systems must be a number");
    assert!(systems > 50.0, "systems = {systems}");
}
