//! Integration tests for the extension experiments (E13–E15):
//! downstream extraction impact, disambiguation, catalog deltas, and
//! capacity planning over the full corpus.

use netarch::core::baseline::validate_design;
use netarch::core::prelude::*;
use netarch::corpus::case_study;
use netarch::extract::downstream::degrade_systems;
use netarch::extract::Prompt;

#[test]
fn capacity_plan_is_minimal_and_valid_on_the_case_study() {
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let plan = engine.plan_capacity(512).expect("runs").expect("feasible");
    assert!(plan.servers_needed >= 44, "2813 cores / 64 per server ≥ 44");
    assert!(plan.servers_needed <= scenario.inventory.num_servers);

    // Valid at the planned size.
    let mut sized = scenario.clone();
    sized.inventory.num_servers = plan.servers_needed;
    assert_eq!(validate_design(&sized, &plan.design), vec![]);

    // Infeasible one below.
    let mut smaller = scenario;
    smaller.inventory.num_servers = plan.servers_needed - 1;
    let mut engine = Engine::new(smaller).expect("compiles");
    assert!(engine.check().expect("runs").diagnosis().is_some());
}

#[test]
fn capacity_plan_matches_fixed_size_feasibility_boundary() {
    // Cross-check the variable-count encoding against the fixed-count
    // encoding at several sizes around the optimum.
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let plan = engine.plan_capacity(512).expect("runs").expect("feasible");
    for delta in [-2i64, -1, 0, 1, 5] {
        let size = plan.servers_needed as i64 + delta;
        if size <= 0 {
            continue;
        }
        let mut fixed = scenario.clone();
        fixed.inventory.num_servers = size as u64;
        let mut engine = Engine::new(fixed).expect("compiles");
        let feasible = engine.check().expect("runs").design().is_some();
        assert_eq!(
            feasible,
            delta >= 0,
            "fixed-size feasibility at {size} disagrees with the plan ({})",
            plan.servers_needed
        );
    }
}

#[test]
fn disambiguation_plan_questions_actually_disambiguate() {
    // Follow the plan's first question with every option and confirm the
    // class count shrinks each time.
    let base = || {
        let mut s = case_study::scenario();
        s.objectives.clear();
        s.with_role(Category::Transport, RoleRule::Forbidden)
            .with_role(Category::Firewall, RoleRule::Forbidden)
            .with_role(Category::Custom("l2-address-resolution".into()), RoleRule::Forbidden)
            .with_role(Category::Custom("memory-pooling".into()), RoleRule::Forbidden)
            .with_pin(Pin::Require(SystemId::new("SWIFT")))
            .with_pin(Pin::Require(SystemId::new("OVS")))
    };
    let mut engine = Engine::new(base()).expect("compiles");
    let plan = engine.disambiguate(256).expect("runs");
    assert!(!plan.truncated, "demo space must enumerate fully");
    assert!(plan.classes > 1);
    let first = &plan.questions[0];
    let mut total_after: usize = 0;
    for option in first.options.iter().flatten() {
        let narrowed = base().with_pin(Pin::Require(option.clone()));
        let mut engine = Engine::new(narrowed).expect("compiles");
        let sub = engine.disambiguate(256).expect("runs");
        assert!(
            sub.classes < plan.classes,
            "answering {option} did not shrink the space"
        );
        assert!(
            sub.classes <= first.worst_case_remaining,
            "worst-case bound violated for {option}: {} > {}",
            sub.classes,
            first.worst_case_remaining
        );
        total_after += sub.classes;
    }
    // Partitioning: the per-answer classes sum back to the whole.
    assert_eq!(total_after, plan.classes);
}

#[test]
fn catalog_delta_updates_flow_through_the_engine() {
    // Tighten LINUX with an impossible requirement via a delta; the naive
    // pinned design must now fail on that rule too.
    let mut scenario = case_study::naive_scenario();
    let mut linux = scenario.catalog.system(&SystemId::new("LINUX")).unwrap().clone();
    linux.requires.push(netarch::core::component::Requirement::new(
        "linux-suddenly-needs-int",
        Condition::switches_have("INT"),
    ));
    scenario.catalog.apply(CatalogDelta::update_system(linux)).unwrap();
    // Remove the ECMP pin so the only conflicts left involve LINUX's new
    // rule (the inventory has no INT switch except Tofino).
    scenario.pins.retain(|p| !matches!(p, Pin::Require(id) if id.as_str() == "ECMP"));
    let mut engine = Engine::new(scenario).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => {
            // Feasible is fine too — but then the switch must have INT.
            let sw = design.hardware_for(HardwareKind::Switch).unwrap();
            assert_eq!(sw.as_str(), "TOFINO_T32");
        }
        Outcome::Infeasible(diagnosis) => {
            let labels: Vec<&str> =
                diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
            assert!(
                labels.iter().any(|l| l.contains("linux-suddenly-needs-int")),
                "{labels:?}"
            );
        }
    }
}

#[test]
fn degraded_catalogs_keep_referential_integrity() {
    for seed in 0..5 {
        let lossy = degrade_systems(&netarch::corpus::all_systems(), Prompt::Naive, seed);
        let mut catalog = Catalog::new();
        let ids: std::collections::BTreeSet<SystemId> =
            lossy.iter().map(|s| s.id.clone()).collect();
        for mut spec in lossy {
            spec.conflicts.retain(|c| ids.contains(c));
            catalog.add_system(spec).unwrap();
        }
        assert!(catalog.validate().is_empty(), "seed {seed}");
    }
}

#[test]
fn downstream_unsafe_designs_cite_rules_the_extraction_dropped() {
    // Find one unsafe round and verify every ground-truth violation names
    // a rule absent from the lossy catalog (or a resource consequence).
    let truth = case_study::scenario();
    let mut found_unsafe = false;
    for seed in 0..20 {
        let lossy_systems =
            degrade_systems(&netarch::corpus::all_systems(), Prompt::Naive, seed);
        let ids: std::collections::BTreeSet<SystemId> =
            lossy_systems.iter().map(|s| s.id.clone()).collect();
        let mut catalog = Catalog::new();
        let mut lossy_rule_labels = std::collections::BTreeSet::new();
        for mut spec in lossy_systems {
            spec.conflicts.retain(|c| ids.contains(c));
            for r in &spec.requires {
                lossy_rule_labels.insert(format!("req:{}:{}", spec.id, r.label));
            }
            catalog.add_system(spec).unwrap();
        }
        for h in truth.catalog.hardware_specs() {
            catalog.add_hardware(h.clone()).unwrap();
        }
        for e in truth.catalog.order().edges() {
            catalog.add_ordering(e.clone()).unwrap();
        }
        let mut scenario = case_study::scenario();
        scenario.catalog = catalog;
        let mut engine = Engine::new(scenario).expect("compiles");
        if let Outcome::Feasible(design) = engine.check().expect("runs") {
            let violations = validate_design(&truth, &design);
            if violations.is_empty() {
                continue;
            }
            found_unsafe = true;
            for v in &violations {
                if v.label.starts_with("req:") {
                    assert!(
                        !lossy_rule_labels.contains(&v.label),
                        "violated rule {} was present in the lossy catalog — \
                         the engine should have enforced it",
                        v.label
                    );
                }
            }
            break;
        }
    }
    assert!(found_unsafe, "no unsafe round found in 20 seeds");
}
