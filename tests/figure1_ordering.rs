//! Integration test for experiment E1: the Figure 1 partial ordering over
//! network stacks, edge-for-edge, including the paper's deliberate
//! absences and the conditional flips.

use netarch::core::ordering::Comparison;
use netarch::core::prelude::*;
use netarch::corpus::{full_catalog, vocab::params};

fn ctx(link_speed: f64) -> Scenario {
    Scenario::new(full_catalog())
        .with_workload(Workload::builder("app").property("dc_flows").build())
        .with_param(params::LINK_SPEED_GBPS, link_speed)
}

fn cmp(s: &Scenario, a: &str, b: &str, dim: Dimension) -> Comparison {
    s.catalog
        .order()
        .compare(&SystemId::new(a), &SystemId::new(b), &dim, s)
}

#[test]
fn throughput_edges_flip_at_40gbps() {
    let slow = ctx(10.0);
    let fast = ctx(100.0);
    // "Linux is usually sufficiently performant at low link rates" (§3.1).
    assert_eq!(cmp(&slow, "NETCHANNEL", "LINUX", Dimension::Throughput), Comparison::Equal);
    assert_eq!(cmp(&fast, "NETCHANNEL", "LINUX", Dimension::Throughput), Comparison::Better);
    // Exactly at the threshold: ≥ 40 counts as fast.
    let edge = ctx(40.0);
    assert_eq!(cmp(&edge, "NETCHANNEL", "LINUX", Dimension::Throughput), Comparison::Better);
}

#[test]
fn pony_beats_tcp_engine_unconditionally_on_throughput() {
    for speed in [10.0, 40.0, 100.0] {
        let s = ctx(speed);
        assert_eq!(
            cmp(&s, "SNAP_PONY", "SNAP_TCP", Dimension::Throughput),
            Comparison::Better,
            "at {speed} Gbps"
        );
    }
}

#[test]
fn isolation_edges_match_the_paper() {
    let s = ctx(100.0);
    // §2.3: "Shenango offers low latencies but less process isolation".
    assert_eq!(cmp(&s, "LINUX", "SHENANGO", Dimension::Isolation), Comparison::Better);
    assert_eq!(cmp(&s, "SHENANGO", "LINUX", Dimension::Isolation), Comparison::Worse);
    // §3.1: "there is no arrow between Shenango and Demikernel comparing
    // their isolation properties because we couldn't find a comparison".
    assert_eq!(
        cmp(&s, "SHENANGO", "DEMIKERNEL", Dimension::Isolation),
        Comparison::Incomparable
    );
    assert_eq!(
        cmp(&s, "DEMIKERNEL", "SHENANGO", Dimension::Isolation),
        Comparison::Incomparable
    );
}

#[test]
fn app_modification_prefers_unmodified_stacks() {
    let s = ctx(100.0);
    assert_eq!(
        cmp(&s, "LINUX", "SNAP_PONY", Dimension::AppCompatibility),
        Comparison::Better
    );
    assert_eq!(
        cmp(&s, "SNAP_TCP", "SNAP_PONY", Dimension::AppCompatibility),
        Comparison::Better
    );
    assert_eq!(
        cmp(&s, "LINUX", "SNAP_TCP", Dimension::AppCompatibility),
        Comparison::Equal
    );
}

#[test]
fn transitive_chains_resolve_through_equalities() {
    let fast = ctx(100.0);
    // SNAP_PONY ≻ SNAP_TCP ≻ LINUX (fast links) ⇒ SNAP_PONY ≻ LINUX.
    assert_eq!(cmp(&fast, "SNAP_PONY", "LINUX", Dimension::Throughput), Comparison::Better);
    // At slow links SNAP_TCP ≻ LINUX edge is inactive, but the equal edge
    // NETCHANNEL ≈ LINUX lets strictness travel: SNAP_* vs NETCHANNEL?
    let slow = ctx(10.0);
    assert_eq!(
        cmp(&slow, "SNAP_PONY", "NETCHANNEL", Dimension::Throughput),
        Comparison::Incomparable,
        "no path at slow speed"
    );
}

#[test]
fn listing2_monitoring_ordering_is_bidirectionally_honest() {
    let s = ctx(100.0);
    assert_eq!(
        cmp(&s, "SIMON", "PINGMESH", Dimension::MonitoringQuality),
        Comparison::Better
    );
    assert_eq!(
        cmp(&s, "SIMON", "PINGMESH", Dimension::DeploymentEase),
        Comparison::Worse
    );
    // And on a dimension nobody compared them: incomparable.
    assert_eq!(
        cmp(&s, "SIMON", "PINGMESH", Dimension::Throughput),
        Comparison::Incomparable
    );
}

#[test]
fn every_stack_pair_comparison_is_antisymmetric() {
    let s = ctx(100.0);
    let stacks: Vec<SystemId> = s
        .catalog
        .systems_in(&Category::NetworkStack)
        .iter()
        .map(|x| x.id.clone())
        .collect();
    for dim in [Dimension::Throughput, Dimension::Isolation, Dimension::AppCompatibility] {
        for a in &stacks {
            for b in &stacks {
                if a == b {
                    continue;
                }
                let ab = s.catalog.order().compare(a, b, &dim, &s);
                let ba = s.catalog.order().compare(b, a, &dim, &s);
                let expected = match ab {
                    Comparison::Better => Comparison::Worse,
                    Comparison::Worse => Comparison::Better,
                    Comparison::Equal => Comparison::Equal,
                    Comparison::Incomparable => Comparison::Incomparable,
                };
                assert_eq!(ba, expected, "{a} vs {b} on {dim}");
            }
        }
    }
}
