//! Integration tests spanning corpus + core: the §2.3 case study and the
//! §5.1 queries, asserted end-to-end. These are the machine-checked
//! versions of experiments E4/E5 (see EXPERIMENTS.md).

use netarch::core::baseline::validate_design;
use netarch::core::prelude::*;
use netarch::corpus::case_study;

#[test]
fn naive_design_is_rejected_with_the_ecmp_bound_in_the_diagnosis() {
    let mut engine = Engine::new(case_study::naive_scenario()).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("naive design must be infeasible");
    let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
    assert!(
        labels.contains(&"pin:require:ECMP"),
        "diagnosis must implicate the ECMP pin: {labels:?}"
    );
    assert!(
        labels
            .iter()
            .any(|l| l.starts_with("bound:inference_app:load-balancing-quality")),
        "diagnosis must implicate the Listing 3 bound: {labels:?}"
    );
}

#[test]
fn optimized_case_study_design_validates_and_meets_the_narrative() {
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");
    let design = &result.design;

    // Independent semantic validation (no SAT involved).
    assert_eq!(validate_design(&case_study::scenario(), design), vec![]);

    // All five §2.3 roles filled.
    for cat in [
        Category::VirtualSwitch,
        Category::NetworkStack,
        Category::CongestionControl,
        Category::LoadBalancer,
        Category::Monitoring,
    ] {
        assert!(design.selection(&cat).is_some(), "role {cat} unfilled");
    }

    // The Listing 3 bound: the LB is at least as good as packet spraying.
    let lb = design.selection(&Category::LoadBalancer).unwrap();
    let scenario = case_study::scenario();
    if lb.as_str() != "PACKET_SPRAY" {
        use netarch::core::ordering::Comparison;
        let cmp = scenario.catalog.order().compare(
            lb,
            &SystemId::new("PACKET_SPRAY"),
            &Dimension::LoadBalancingQuality,
            &scenario,
        );
        assert!(
            matches!(cmp, Comparison::Better | Comparison::Equal),
            "{lb} vs PACKET_SPRAY: {cmp:?}"
        );
    }

    // §2.3 ripple: if spraying was chosen, the NIC has reorder buffers.
    if design.includes(&SystemId::new("PACKET_SPRAY")) {
        let nic = design.hardware_for(HardwareKind::Nic).expect("nic chosen");
        let spec = scenario.catalog.hardware(nic).unwrap();
        assert!(
            spec.has_feature(&Feature::new("REORDER_BUFFER")),
            "spraying without reorder buffers on {nic}"
        );
    }

    // Lexicographic objectives: top level (latency) fully satisfied.
    assert_eq!(result.levels[0].penalty, 0, "latency level should be clean");

    // Resource accounting holds.
    let cores = design.resources.get(&Resource::Cores).expect("cores tracked");
    assert!(cores.used >= 2_800, "workload peak must be counted");
    assert!(cores.used <= cores.capacity.unwrap());
}

#[test]
fn query1_frozen_servers_still_feasible_and_scavenger_caveat_binds() {
    // Freeze the server model from today's optimum, add the batch load.
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let today = engine.optimize().expect("runs").expect("feasible");
    let server = today.design.hardware_for(HardwareKind::Server).unwrap().clone();

    let mut tomorrow = case_study::scenario().with_workload(case_study::batch_workload());
    tomorrow.inventory.server_candidates = vec![server];
    let mut engine = Engine::new(tomorrow.clone()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");

    // The batch workload carries buffer-filling traffic, so a delay-based
    // CCA (Swift/Timely/Vegas) is only allowed with deep-buffer switches.
    let cc = result.design.selection(&Category::CongestionControl).unwrap();
    if ["SWIFT", "TIMELY", "VEGAS"].contains(&cc.as_str()) {
        let switch = result.design.hardware_for(HardwareKind::Switch).unwrap();
        let spec = tomorrow.catalog.hardware(switch).unwrap();
        assert!(
            spec.has_feature(&Feature::new("DEEP_BUFFERS")),
            "delay-based {cc} deployed without deep buffers against buffer-filling traffic"
        );
    }
    assert_eq!(validate_design(&tomorrow, &result.design), vec![]);
}

#[test]
fn query2_pinning_sonata_costs_more_but_stays_feasible() {
    let mut free_engine = Engine::new(case_study::scenario()).expect("compiles");
    let free = free_engine.optimize().expect("runs").expect("feasible");

    let pinned_scenario = case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA")));
    let mut pinned_engine = Engine::new(pinned_scenario.clone()).expect("compiles");
    let pinned = pinned_engine.optimize().expect("runs").expect("feasible");

    assert!(pinned.design.includes(&SystemId::new("SONATA")));
    // Sonata needs a P4 switch: the engine must route hardware accordingly.
    let switch = pinned.design.hardware_for(HardwareKind::Switch).unwrap();
    let spec = pinned_scenario.catalog.hardware(switch).unwrap();
    assert!(spec.has_feature(&Feature::new("P4")));
    // Pinning can never make the optimum cheaper.
    assert!(pinned.design.total_cost_usd >= free.design.total_cost_usd);
    assert_eq!(validate_design(&pinned_scenario, &pinned.design), vec![]);
}

#[test]
fn query3_cxl_forces_a_cxl_capable_server() {
    let scenario = case_study::scenario()
        .with_role(Category::Custom("memory-pooling".into()), RoleRule::Required)
        .with_pin(Pin::Require(SystemId::new("CXL_POOL")));
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");
    let server = result.design.hardware_for(HardwareKind::Server).unwrap();
    let spec = scenario.catalog.hardware(server).unwrap();
    assert!(
        spec.has_feature(&Feature::new("CXL")),
        "CXL pooling on non-CXL server {server}"
    );
}

#[test]
fn engine_designs_always_pass_independent_validation() {
    // Several scenario variants; every feasible engine answer must
    // survive the semantic validator (SAT encoding ↔ semantics agreement).
    let variants: Vec<Scenario> = vec![
        case_study::scenario(),
        case_study::scenario().with_workload(case_study::batch_workload()),
        case_study::scenario().with_pin(Pin::Require(SystemId::new("SIMON"))),
        case_study::scenario().with_pin(Pin::Forbid(SystemId::new("PACKET_SPRAY"))),
        case_study::scenario().with_budget(2_500_000),
    ];
    for (i, scenario) in variants.into_iter().enumerate() {
        let mut engine = Engine::new(scenario.clone()).expect("compiles");
        if let Outcome::Feasible(design) = engine.check().expect("runs") {
            let violations = validate_design(&scenario, &design);
            assert!(violations.is_empty(), "variant {i}: {violations:?}");
        }
        if let Ok(result) = engine.optimize().expect("runs") {
            let violations = validate_design(&scenario, &result.design);
            assert!(violations.is_empty(), "variant {i} optimized: {violations:?}");
        }
    }
}

#[test]
fn forbidding_the_best_lb_switches_to_a_fabric_scheme() {
    let scenario = case_study::scenario().with_pin(Pin::Forbid(SystemId::new("PACKET_SPRAY")));
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");
    let lb = result.design.selection(&Category::LoadBalancer).unwrap();
    // Must still beat PACKET_SPRAY per the bound: CONGA/HULA/DRILL.
    assert!(
        ["CONGA", "HULA", "DRILL"].contains(&lb.as_str()),
        "unexpected LB {lb}"
    );
    assert_eq!(validate_design(&scenario, &result.design), vec![]);
}
