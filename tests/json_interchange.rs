//! The JSON interchange format: a scenario serialized and re-loaded must
//! produce the same reasoning results (the property the paper's
//! community-curated knowledge base depends on).

use netarch::core::prelude::*;
use netarch::corpus::case_study;

fn roundtrip(scenario: &Scenario) -> Scenario {
    let json = netarch_rt::json::to_string(scenario);
    netarch_rt::json::from_str(&json).expect("deserializes")
}

#[test]
fn scenario_roundtrip_preserves_structure() {
    let original = case_study::scenario();
    let back = roundtrip(&original);
    assert_eq!(back.catalog.num_systems(), original.catalog.num_systems());
    assert_eq!(back.catalog.num_hardware(), original.catalog.num_hardware());
    assert_eq!(back.catalog.order().edges().len(), original.catalog.order().edges().len());
    assert_eq!(back.workloads.len(), original.workloads.len());
    assert_eq!(back.objectives, original.objectives);
    assert_eq!(back.inventory, original.inventory);
    assert_eq!(back.catalog.spec_size(), original.catalog.spec_size());
}

#[test]
fn scenario_roundtrip_preserves_reasoning_results() {
    let original = case_study::scenario();
    let back = roundtrip(&original);

    let mut e1 = Engine::new(original).expect("compiles");
    let mut e2 = Engine::new(back).expect("compiles");
    let r1 = e1.optimize().expect("runs").expect("feasible");
    let r2 = e2.optimize().expect("runs").expect("feasible");
    assert_eq!(r1.design.selections, r2.design.selections);
    assert_eq!(r1.design.hardware, r2.design.hardware);
    assert_eq!(r1.design.total_cost_usd, r2.design.total_cost_usd);
    let p1: Vec<u64> = r1.levels.iter().map(|l| l.penalty).collect();
    let p2: Vec<u64> = r2.levels.iter().map(|l| l.penalty).collect();
    assert_eq!(p1, p2);
}

#[test]
fn infeasible_scenarios_roundtrip_their_diagnoses() {
    let original = case_study::naive_scenario();
    let back = roundtrip(&original);
    let mut e1 = Engine::new(original).expect("compiles");
    let mut e2 = Engine::new(back).expect("compiles");
    let d1 = e1.check().expect("runs");
    let d2 = e2.check().expect("runs");
    let labels = |o: &Outcome| -> Vec<String> {
        o.diagnosis()
            .expect("infeasible")
            .conflicts
            .iter()
            .map(|c| c.label.clone())
            .collect()
    };
    assert_eq!(labels(&d1), labels(&d2));
}

#[test]
fn conditions_with_every_variant_roundtrip() {
    let condition = Condition::all([
        Condition::any([
            Condition::system("A"),
            Condition::CategoryFilled(Category::Monitoring),
            Condition::ProvidedFeature(Feature::new("F")),
        ]),
        Condition::not(Condition::workload("p")),
        Condition::param("x", CmpOp::Le, 3.5),
        Condition::nics_have("N"),
        Condition::switches_have("S"),
        Condition::ServerFeature(Feature::new("V")),
        Condition::True,
        Condition::False,
    ]);
    let json = netarch_rt::json::to_string(&condition);
    let back: Condition = netarch_rt::json::from_str(&json).unwrap();
    assert_eq!(back, condition);
}

#[test]
fn design_json_is_stable_for_tool_consumers() {
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("feasible");
    let json = netarch_rt::json::to_value(design);
    // The shape external tools rely on (CLI --json consumers).
    assert!(json["selections"].is_object());
    assert!(json["hardware"].is_object());
    assert!(json["total_cost_usd"].is_u64());
    assert!(json["resources"].is_object());
    let back: Design = netarch_rt::json::FromJson::from_json(&json).unwrap();
    assert_eq!(&back, design);
}
