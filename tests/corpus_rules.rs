//! Engine-level tests for the corpus's marquee rules-of-thumb — each one
//! traceable to a paper statement (§2.2, §2.3, §3.1, §4.1). Every test
//! builds a small scenario over the full corpus and checks that the rule
//! actually steers or blocks the design.

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch::corpus::{full_catalog, vocab::params, vocab::props};

fn base() -> Scenario {
    Scenario::new(full_catalog())
        .with_param(params::LINK_SPEED_GBPS, 100.0)
        .with_inventory(Inventory {
            server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
            nic_candidates: vec![
                HardwareId::new("INTEL_X710"),
                HardwareId::new("MLX_CX6_100"),
                HardwareId::new("BLUEFIELD2"),
            ],
            switch_candidates: vec![
                HardwareId::new("TRIDENT3_T32"),   // ECN/PFC, no INT/QCN/P4
                HardwareId::new("SPECTRUM2_SN3700"), // + QCN
                HardwareId::new("TOFINO_T32"),     // P4/INT, 12 stages
            ],
            num_servers: 32,
            num_switches: 4,
        })
}

fn labels_of(diagnosis: &Diagnosis) -> Vec<&str> {
    diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect()
}

#[test]
fn hpcc_routes_hardware_to_int_switches() {
    // §3.1: "HPCC needs INT-enabled switches".
    let scenario = base()
        .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
        .with_pin(Pin::Require(SystemId::new("HPCC")));
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let design = engine.check().expect("runs");
    let design = design.design().expect("feasible with the Tofino candidate");
    let switch = design.hardware_for(HardwareKind::Switch).unwrap();
    let spec = scenario.catalog.hardware(switch).unwrap();
    assert!(spec.has_feature(&Feature::new("INT")), "HPCC on {switch}");
}

#[test]
fn annulus_needs_both_qcn_and_wan_competition() {
    // §2.3 + §4.1: QCN switches AND competing WAN traffic.
    let no_wan = base()
        .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
        .with_pin(Pin::Require(SystemId::new("ANNULUS")));
    let mut engine = Engine::new(no_wan).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("no WAN traffic → Annulus pointless");
    assert!(
        labels_of(diagnosis)
            .iter()
            .any(|l| l.contains("annulus-only-with-competing-wan-traffic")),
        "{diagnosis:?}"
    );

    let with_wan = base()
        .with_workload(
            Workload::builder("app")
                .property(props::DC_FLOWS)
                .property(props::WAN_TRAFFIC)
                .build(),
        )
        .with_pin(Pin::Require(SystemId::new("ANNULUS")));
    let mut engine = Engine::new(with_wan.clone()).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("feasible with WAN traffic");
    let switch = design.hardware_for(HardwareKind::Switch).unwrap();
    assert!(with_wan
        .catalog
        .hardware(switch)
        .unwrap()
        .has_feature(&Feature::new("QCN")));
}

#[test]
fn p4_stages_are_a_contended_resource() {
    // §2.2 resource contention: Sonata (4 stages) + BFC (3) + HULA (2)
    // fit the 12-stage Tofino with room to spare…
    let p4_trio = || {
        Scenario::new(full_catalog())
            .with_param(params::LINK_SPEED_GBPS, 100.0)
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("EPYC_GENOA_96C")],
                nic_candidates: vec![HardwareId::new("BLUEFIELD2")],
                switch_candidates: vec![HardwareId::new("TOFINO_T32")],
                num_servers: 32,
                num_switches: 4,
            })
            .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
            .with_pin(Pin::Require(SystemId::new("SONATA")))
            .with_pin(Pin::Require(SystemId::new("BFC")))
            .with_pin(Pin::Require(SystemId::new("HULA")))
    };
    let mut engine = Engine::new(p4_trio()).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("9 stages fit 12");
    let usage = &design.resources[&Resource::P4Stages];
    assert_eq!(usage.used, 9);
    assert_eq!(usage.capacity, Some(12));

    // …but a fatter Sonata query set (8 stages via a modular catalog
    // update) blows the pipeline budget: 8+3+2 = 13 > 12.
    let mut scenario = p4_trio();
    let mut fat_sonata = scenario.catalog.system(&SystemId::new("SONATA")).unwrap().clone();
    for d in &mut fat_sonata.resources {
        if d.resource == Resource::P4Stages {
            d.amount = AmountExpr::constant(8);
        }
    }
    scenario.catalog.apply(CatalogDelta::update_system(fat_sonata)).unwrap();
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("13 stages cannot fit 12");
    assert!(
        labels_of(diagnosis)
            .iter()
            .any(|l| l.starts_with("resource:p4-stages:")),
        "{diagnosis:?}"
    );
}

#[test]
fn monitoring_is_one_role_sonata_and_marple_conflict() {
    let scenario = base()
        .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
        .with_pin(Pin::Require(SystemId::new("SONATA")))
        .with_pin(Pin::Require(SystemId::new("MARPLE")));
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("two monitors, one role");
    assert!(labels_of(diagnosis).contains(&"role:monitoring"), "{diagnosis:?}");
}

#[test]
fn dcqcn_rides_on_rocev2() {
    let scenario = base()
        .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
        .with_pin(Pin::Require(SystemId::new("DCQCN")));
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("feasible");
    assert!(
        design.includes(&SystemId::new("ROCEV2")),
        "DCQCN selected without its RoCEv2 substrate:\n{design}"
    );
}

#[test]
fn edge_firewall_needs_an_edge_load_balancer() {
    let lonely = base()
        .with_workload(Workload::builder("app").build())
        .with_pin(Pin::Require(SystemId::new("EDGE_FW")));
    let mut engine = Engine::new(lonely).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("engine should co-deploy a provider");
    // §1: the edge firewall's EDGE_PROVISIONED requirement pulls in an
    // L4 load balancer that provides it.
    assert!(
        design.includes(&SystemId::new("MAGLEV")) || design.includes(&SystemId::new("KATRAN")),
        "{design}"
    );
}

#[test]
fn katran_requires_xdp_nics() {
    let mut scenario = base()
        .with_workload(Workload::builder("app").build())
        .with_pin(Pin::Require(SystemId::new("KATRAN")));
    // Only a NIC without XDP on offer.
    scenario.inventory.nic_candidates = vec![HardwareId::new("INTEL_82599")];
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("no XDP NIC");
    assert!(
        labels_of(diagnosis).iter().any(|l| l.contains("katran-needs-xdp-nic")),
        "{diagnosis:?}"
    );
}

#[test]
fn sriov_blocks_live_migration_workloads() {
    let scenario = base()
        .with_workload(
            Workload::builder("vms").property(props::LIVE_MIGRATION).build(),
        )
        .with_pin(Pin::Require(SystemId::new("SRIOV_PASSTHROUGH")));
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("passthrough vs migration");
    assert!(
        labels_of(diagnosis).iter().any(|l| l.contains("sriov-blocks-live-migration")),
        "{diagnosis:?}"
    );
}

#[test]
fn research_prototypes_blocked_by_production_deadline() {
    // §3.1's deadline example, as a hard rule.
    for prototype in ["SHENANGO", "DEMIKERNEL", "ZYGOS", "HOMA_CC", "HULA"] {
        let scenario = base()
            .with_workload(
                Workload::builder("app")
                    .property(props::PRODUCTION_ONLY)
                    .property(props::APPS_MODIFIABLE)
                    .build(),
            )
            .with_pin(Pin::Require(SystemId::new(prototype)));
        let mut engine = Engine::new(scenario).expect("compiles");
        let outcome = engine.check().expect("runs");
        assert!(
            outcome.diagnosis().is_some(),
            "{prototype} must be undeployable under a production-only constraint"
        );
    }
}

#[test]
fn accelnet_needs_fpga_smartnic_and_provides_tunnel_offload() {
    let mut scenario = base()
        .with_workload(Workload::builder("app").build())
        .with_pin(Pin::Require(SystemId::new("ACCELNET")));
    scenario.inventory.nic_candidates =
        vec![HardwareId::new("BLUEFIELD2"), HardwareId::new("ALVEO_U45")];
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("FPGA candidate available");
    let nic = design.hardware_for(HardwareKind::Nic).unwrap();
    assert!(
        scenario
            .catalog
            .hardware(nic)
            .unwrap()
            .has_feature(&Feature::new("SMARTNIC_FPGA")),
        "AccelNet on {nic} (a CPU SmartNIC is not enough)"
    );
}

#[test]
fn qos_classes_sum_across_selected_systems() {
    // Swift (1 class) + Homa transport (4 classes) ≤ 8 available: fine.
    // The accounting must show up in the design's resource table.
    let scenario = base()
        .with_workload(Workload::builder("app").property(props::DC_FLOWS).build())
        .with_pin(Pin::Require(SystemId::new("SWIFT")))
        .with_pin(Pin::Require(SystemId::new("HOMA_TRANSPORT")));
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let design = outcome.design().expect("feasible");
    let qos = &design.resources[&Resource::QosClasses];
    assert_eq!(qos.used, 5);
    assert_eq!(qos.capacity, Some(8));
}

#[test]
fn infeasible_scenarios_render_readable_reports() {
    // Smoke the full explanation path on a real conflict.
    let scenario = base()
        .with_workload(
            Workload::builder("vms").property(props::LIVE_MIGRATION).build(),
        )
        .with_pin(Pin::Require(SystemId::new("SRIOV_PASSTHROUGH")));
    let mut engine = Engine::new(scenario).expect("compiles");
    let outcome = engine.check().expect("runs");
    let text = render_diagnosis(outcome.diagnosis().unwrap());
    assert!(text.contains("rules conflict"));
    assert!(text.contains("Suggested relaxations"));
    assert!(text.contains("pin:require:SRIOV_PASSTHROUGH"));
}
