//! Integration tests for experiment E8: the SAT engine against the
//! baselines, including a randomized agreement check against exhaustive
//! search (ground truth) on small scenarios.

use netarch::core::baseline::{
    validate_design, ExhaustiveSearch, GreedyArchitect, Reasoner, SimulatedLlm,
};
use netarch::core::prelude::*;
use netarch::corpus::case_study;
use netarch_rt::Rng;

/// Builds a random small scenario over a random sub-catalog.
fn random_scenario(rng: &mut Rng) -> Scenario {
    let full = netarch::corpus::full_catalog();
    let mut catalog = Catalog::new();
    // Sample a handful of systems per category (keeping referential
    // integrity by including conflict/condition targets when sampled).
    let mut chosen: Vec<SystemSpec> = Vec::new();
    for cat in Category::builtin() {
        let members = full.systems_in(&cat);
        for m in members {
            if rng.gen_bool(0.4) {
                chosen.push((*m).clone());
            }
        }
    }
    let chosen_ids: std::collections::BTreeSet<SystemId> =
        chosen.iter().map(|s| s.id.clone()).collect();
    for mut spec in chosen {
        // Prune dangling conflicts to keep the sampled catalog valid;
        // conditions referencing unsampled systems are fine (they compile
        // to False/True), but validate() rejects them, so prune those
        // requirements too.
        spec.conflicts.retain(|c| chosen_ids.contains(c));
        spec.requires.retain(|r| {
            r.condition
                .referenced_systems()
                .iter()
                .all(|s| chosen_ids.contains(s))
        });
        catalog.add_system(spec).unwrap();
    }
    // A few hardware candidates.
    let mut nics = Vec::new();
    let mut switches = Vec::new();
    let mut servers = Vec::new();
    for h in full.hardware_specs() {
        let include = rng.gen_bool(0.12);
        if !include {
            continue;
        }
        catalog.add_hardware(h.clone()).unwrap();
        match h.kind {
            HardwareKind::Nic if nics.len() < 3 => nics.push(h.id.clone()),
            HardwareKind::Switch if switches.len() < 3 => switches.push(h.id.clone()),
            HardwareKind::Server if servers.len() < 2 => servers.push(h.id.clone()),
            _ => {}
        }
    }
    let mut scenario = Scenario::new(catalog)
        .with_param("link_speed_gbps", if rng.gen_bool(0.5) { 10.0 } else { 100.0 })
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: servers,
            num_servers: rng.gen_range(4..32),
            num_switches: rng.gen_range(1..4),
        });
    // A workload needing 1-2 capabilities that sampled systems provide.
    let mut w = Workload::builder("app")
        .peak_cores(rng.gen_range(0..200))
        .num_flows(rng.gen_range(100..20_000));
    if rng.gen_bool(0.5) {
        w = w.property("dc_flows");
    }
    let caps = ["load_balancing", "firewalling", "virtualization", "host_networking"];
    for cap in caps {
        if rng.gen_bool(0.4) {
            w = w.needs(cap);
        }
    }
    scenario = scenario.with_workload(w.build());
    scenario
}

#[test]
fn engine_agrees_with_exhaustive_search_on_random_scenarios() {
    // Seed chosen so the generator yields a healthy feasible/infeasible
    // mix with enough rounds inside the exhaustive budget.
    let mut rng = Rng::seed_from_u64(4);
    let mut feasible = 0;
    let mut infeasible = 0;
    let mut skipped = 0;
    for round in 0..25 {
        let scenario = random_scenario(&mut rng);
        // Skip rounds whose combination space exceeds the exhaustive
        // budget — ExhaustiveSearch::propose cannot distinguish "gave up"
        // from "no valid combo", so only in-budget rounds are oracles.
        let mut combos: u64 = 1;
        for cat in Category::builtin() {
            combos = combos.saturating_mul(1 + scenario.catalog.systems_in(&cat).len() as u64);
        }
        for axis in [
            &scenario.inventory.server_candidates,
            &scenario.inventory.nic_candidates,
            &scenario.inventory.switch_candidates,
        ] {
            if !axis.is_empty() {
                combos = combos.saturating_mul(axis.len() as u64);
            }
        }
        if combos > 300_000 {
            skipped += 1;
            continue;
        }
        let mut exhaustive = ExhaustiveSearch { max_combinations: 300_000 };
        let ground_truth = exhaustive
            .propose(&scenario)
            .map(|d| validate_design(&scenario, &d).is_empty())
            .unwrap_or(false);
        // Exhaustive returning None within budget means "no valid combo".
        let mut engine = match Engine::new(scenario.clone()) {
            Ok(e) => e,
            Err(err) => panic!("round {round}: compile error {err}"),
        };
        match engine.check().expect("runs") {
            Outcome::Feasible(design) => {
                feasible += 1;
                assert!(
                    validate_design(&scenario, &design).is_empty(),
                    "round {round}: engine design invalid: {design}"
                );
                // Exhaustive must also find something (unless it gave up,
                // in which case ground_truth is false but bounded).
                assert!(
                    ground_truth,
                    "round {round}: engine SAT but exhaustive found nothing"
                );
            }
            Outcome::Infeasible(_) => {
                infeasible += 1;
                assert!(
                    !ground_truth,
                    "round {round}: engine UNSAT but exhaustive found a valid design"
                );
            }
        }
    }
    // The generator should produce a healthy mix.
    assert!(feasible >= 3, "too few feasible rounds: {feasible} (infeasible {infeasible}, skipped {skipped})");
    assert_eq!(infeasible + feasible + skipped, 25);
    assert!(skipped < 20, "almost every round skipped ({skipped})");
}

#[test]
fn greedy_fails_on_the_case_study_resource_coupling() {
    // On the full case study, the greedy architect picks role-by-role;
    // the engine's answer always validates, greedy's may not — and when
    // greedy does produce a valid design, it must not beat the engine's
    // lexicographic optimum (sanity of the optimizer).
    let scenario = case_study::scenario();
    let mut greedy = GreedyArchitect::new();
    let greedy_design = greedy.propose(&scenario);
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let engine_result = engine.optimize().expect("runs").expect("feasible");
    assert!(validate_design(&scenario, &engine_result.design).is_empty());

    if let Some(d) = greedy_design {
        let violations = validate_design(&scenario, &d);
        if violations.is_empty() {
            // Valid greedy design can't be cheaper AND better: compare cost
            // only when both meet all hard constraints (engine optimized
            // latency first, so compare on the latency level indirectly by
            // checking the engine met it perfectly).
            assert!(engine_result.levels[0].penalty == 0);
        } else {
            // The expected outcome: greedy trips over a cross-cutting rule.
            assert!(!violations.is_empty());
        }
    }
}

#[test]
fn llm_baseline_proposes_invalid_designs_on_nuanced_scenarios() {
    // §5.2: the LLM "failed to return correct results when faced with
    // nuances". Over seeds, the simulated LLM must produce at least one
    // invalid design on the case study, while the engine never does.
    let scenario = case_study::scenario();
    let mut llm_failures = 0;
    for seed in 0..10 {
        let mut llm = SimulatedLlm::new(seed);
        if let Some(d) = llm.propose(&scenario) {
            if !validate_design(&scenario, &d).is_empty() {
                llm_failures += 1;
            }
        }
    }
    assert!(
        llm_failures > 0,
        "the simulated LLM should trip on the case study's nuances"
    );
}

#[test]
fn llm_aggregate_queries_are_correct() {
    // §5.2: "it accurately determined straightforward requirements such
    // as the minimum number of cores needed".
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let result = engine.optimize().expect("runs").expect("feasible");
    let llm = SimulatedLlm::new(0);
    let llm_answer = llm.min_cores_needed(&scenario, &result.design);
    let engine_answer = result.design.resources[&Resource::Cores].used;
    assert_eq!(llm_answer, engine_answer);
}
