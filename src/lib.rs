//! Facade crate re-exporting the netarch workspace.
pub use netarch_core as core;
pub use netarch_corpus as corpus;
pub use netarch_dsl as dsl;
pub use netarch_extract as extract;
pub use netarch_logic as logic;
pub use netarch_rt as rt;
pub use netarch_sat as sat;
pub use netarch_serve as serve;
pub use netarch_sweep as sweep;
