//! `netarch` — command-line interface to the reasoning engine.
//!
//! Scenarios come in two interchange formats, detected by extension and
//! content: the declarative `.narch` text DSL (the paper's Listings 1–3
//! surface syntax; see `docs/ENCODING_GUIDE.md`) and self-contained JSON
//! documents. Every query command accepts either; `.narch` scenarios may
//! be split across several files (catalog in one, workloads and the
//! `scenario` block in another).
//!
//! ```text
//! netarch demo > scenario.json            # the paper's §2.3 case study (JSON)
//! netarch demo --narch > scenario.narch   # the same case study as .narch text
//! netarch load corpus/*.narch             # parse + lower, print a summary
//! netarch validate scenario.narch         # referential integrity report
//! netarch fmt scenario.narch              # canonical formatting to stdout
//! netarch check scenario.narch            # feasibility + design or diagnosis
//! netarch optimize scenario.json          # lexicographic Optimize(...)
//! netarch capacity scenario.narch 512     # minimal fleet size
//! netarch enumerate scenario.json 8       # design equivalence classes
//! netarch questions scenario.narch        # §6 disambiguation plan
//! netarch compare scenario.json SIMON PINGMESH monitoring-quality
//! netarch export-catalog                  # full knowledge corpus as JSON
//! netarch export-narch corpus             # regenerate the .narch corpus files
//! ```

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch::dsl;
use netarch_rt::jobj;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args.iter().map(String::as_str).collect::<Vec<_>>()) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  netarch demo [--narch]                  print the §2.3 case-study scenario (JSON, or .narch text)
  netarch export-catalog                  print the full knowledge corpus as JSON
  netarch export-narch <dir>              write the corpus as .narch files under <dir>
  netarch load <file>...                  parse + lower scenario files, print a summary
  netarch validate <file>...              check referential integrity, report problems
  netarch fmt <file.narch>                reprint a .narch file in canonical form
  netarch check <file>...                 find a compliant design or a minimal conflict
  netarch optimize <file>...              lexicographic optimization over the objectives
  netarch capacity <file>... <max>        minimal server fleet up to <max>
  netarch enumerate <file>... <limit>     design equivalence classes
  netarch questions <file>...             disambiguation question plan
  netarch compare <file> <A> <B> <dim>    rule-of-thumb comparison
  netarch sweep <file>... [opts]          enumerate a `sweep` block's admissible
                                          scenario variants as a seeded stream
    opts: --name <sweep>       pick a sweep when the document defines several
          --export <dir>       write each variant as a canonical .narch file
          --oracle             run every query on each variant through a warm
                               session and compare against fresh-engine
                               oracles across query orderings
          --smoke              print only the stable variants/digest manifest
                               line (what CI diffs against its golden copy)
  netarch serve-replay <file>... [opts]   replay a seeded request tape through
                                          the sharded multi-tenant service
    opts: --spec <spec.json>   replay spec (seed/requests/mix weights)
          --requests <n>       tape length           (default 64)
          --seed <n>           tape PRNG seed        (default 0)
          --shards <n>         worker shards         (default 2)
          --sessions <n>       warm sessions/shard   (default 4)
          --no-cache           compile every request (baseline mode)
          --oracle             differentially check each answer against
                               a fresh single-use engine

scenario files are .narch text (the declarative DSL) or JSON; the format
is detected from the extension, falling back to a content sniff (JSON
documents start with `{`). A .narch scenario may span several files —
every file is merged before the query runs.

append --json to check/optimize/capacity for machine-readable output";

/// Dispatches a command line; pure function for testability.
pub fn run(args: &[&str]) -> Result<String, String> {
    // A trailing `--json` switches design-producing commands to JSON.
    let (args, json) = match args.split_last() {
        Some((&"--json", rest)) => (rest, true),
        _ => (args, false),
    };
    match args {
        ["demo"] => {
            let scenario = netarch::corpus::case_study::scenario();
            Ok(netarch_rt::json::to_string_pretty(&scenario))
        }
        ["demo", "--narch"] => {
            Ok(dsl::print_scenario(&netarch::corpus::case_study::scenario()))
        }
        ["export-catalog"] => Ok(netarch::corpus::catalog_json()),
        ["export-narch", dir] => export_narch(dir),
        ["load", paths @ ..] if !paths.is_empty() => {
            let doc = load_doc(paths)?;
            Ok(summarize(&doc))
        }
        ["validate", paths @ ..] if !paths.is_empty() => {
            let doc = load_doc(paths)?;
            let errors = doc.catalog.validate();
            if errors.is_empty() {
                Ok(format!("OK\n{}", summarize(&doc)))
            } else {
                let mut out = String::from("catalog has dangling references:\n");
                for e in &errors {
                    out.push_str(&format!("  {e}\n"));
                }
                Err(out)
            }
        }
        ["fmt", path] => {
            let text = read_file(path)?;
            if detect_format(path, &text) != Format::Narch {
                return Err(format!(
                    "{path} is not a .narch file; `fmt` formats DSL text only"
                ));
            }
            let doc = lower_narch(&[(path, text)])?;
            Ok(dsl::print_doc(&doc))
        }
        ["check", paths @ ..] if !paths.is_empty() => {
            let mut engine = load_engine(paths)?;
            match engine.check().map_err(|e| e.to_string())? {
                Outcome::Feasible(design) if json => {
                    Ok(netarch_rt::json::to_string_pretty(&jobj! {
                        "design": design,
                        "stats": engine.stats(),
                    }))
                }
                Outcome::Feasible(design) => Ok(format!("FEASIBLE\n{design}")),
                Outcome::Infeasible(diagnosis) => {
                    Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis)))
                }
            }
        }
        ["optimize", paths @ ..] if !paths.is_empty() => {
            let mut engine = load_engine(paths)?;
            match engine.optimize().map_err(|e| e.to_string())? {
                Ok(result) if json => {
                    Ok(netarch_rt::json::to_string_pretty(&jobj! {
                        "design": result.design,
                        "stats": engine.stats(),
                    }))
                }
                Ok(result) => {
                    let mut out = format!("OPTIMAL\n{}", result.design);
                    for level in &result.levels {
                        out.push_str(&format!(
                            "level {:40} penalty {}\n",
                            level.objective, level.penalty
                        ));
                    }
                    Ok(out)
                }
                Err(diagnosis) => Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis))),
            }
        }
        ["capacity", paths @ .., max] if !paths.is_empty() => {
            let max: u64 = max.parse().map_err(|_| format!("bad fleet bound {max:?}"))?;
            let mut engine = load_engine(paths)?;
            match engine.plan_capacity(max).map_err(|e| e.to_string())? {
                Ok(plan) if json => Ok(netarch_rt::json::to_string_pretty(&jobj! {
                    "servers_needed": plan.servers_needed,
                    "design": plan.design,
                    "stats": engine.stats(),
                })),
                Ok(plan) => Ok(format!(
                    "SERVERS NEEDED: {}\n{}",
                    plan.servers_needed, plan.design
                )),
                Err(diagnosis) => Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis))),
            }
        }
        ["enumerate", paths @ .., limit] if !paths.is_empty() => {
            let limit: usize = limit.parse().map_err(|_| format!("bad limit {limit:?}"))?;
            let mut engine = load_engine(paths)?;
            let designs = engine
                .enumerate_designs(limit, false)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} equivalence classes\n", designs.len());
            for (i, d) in designs.iter().enumerate() {
                let systems: Vec<String> =
                    d.systems().iter().map(|s| s.to_string()).collect();
                out.push_str(&format!("class {}: {}\n", i + 1, systems.join(", ")));
            }
            Ok(out)
        }
        ["questions", paths @ ..] if !paths.is_empty() => {
            let mut engine = load_engine(paths)?;
            let plan = engine.disambiguate(256).map_err(|e| e.to_string())?;
            Ok(netarch::core::disambiguate::render_plan(&plan))
        }
        ["serve-replay", rest @ ..] if !rest.is_empty() => serve_replay(rest, json),
        ["sweep", rest @ ..] if !rest.is_empty() => sweep_cmd(rest, json),
        ["compare", path, a, b, dim] => {
            let engine = load_engine(&[path])?;
            let dimension = parse_dimension(dim)?;
            let verdict = engine.compare(
                &SystemId::new(*a),
                &SystemId::new(*b),
                &dimension,
            );
            Ok(format!("{a} vs {b} on {dimension}: {verdict:?}"))
        }
        [] => Err("no command given".to_string()),
        other => Err(format!("unrecognized command {:?}", other.join(" "))),
    }
}

// ---------------------------------------------------------------------------
// sweep: enumerate a sweep block's variant stream, with optional fan-out
// ---------------------------------------------------------------------------

/// Enumerates a `sweep` block into its deterministic variant stream and
/// optionally fans it out: `--export` writes each variant as a canonical
/// `.narch` corpus entry, `--oracle` runs the differential harness, and
/// `--smoke` prints only the manifest line CI goldens.
fn sweep_cmd(args: &[&str], json: bool) -> Result<String, String> {
    use netarch::sweep as sw;

    let mut paths: Vec<&str> = Vec::new();
    let mut name: Option<&str> = None;
    let mut export: Option<&str> = None;
    let mut smoke = false;
    let mut oracle = false;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--name" => name = Some(it.next().ok_or("--name needs a sweep name")?),
            "--export" => export = Some(it.next().ok_or("--export needs a directory")?),
            "--smoke" => smoke = true,
            "--oracle" => oracle = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown sweep flag {flag:?}"))
            }
            path => paths.push(path),
        }
    }
    if paths.is_empty() {
        return Err("sweep needs at least one scenario file".to_string());
    }

    let doc = load_doc(&paths)?;
    let scenario = doc.require_scenario().map_err(|e| e.to_string())?.clone();
    let spec = match (name, doc.sweeps.as_slice()) {
        (_, []) => return Err("the given files define no sweep block".to_string()),
        (Some(n), sweeps) => sweeps.iter().find(|s| s.name == n).ok_or_else(|| {
            let known: Vec<&str> = sweeps.iter().map(|s| s.name.as_str()).collect();
            format!("no sweep named {n:?}; the document defines: {}", known.join(", "))
        })?,
        (None, [only]) => only,
        (None, sweeps) => {
            let known: Vec<&str> = sweeps.iter().map(|s| s.name.as_str()).collect();
            return Err(format!(
                "the document defines {} sweeps ({}); pick one with --name",
                sweeps.len(),
                known.join(", ")
            ));
        }
    };

    let stream = sw::enumerate_sweep(spec, &scenario.catalog).map_err(|e| e.to_string())?;
    let manifest = format!(
        "sweep {}: variants={} admissible={} seed={} digest={}",
        spec.name,
        stream.variants.len(),
        stream.admissible,
        spec.seed,
        stream.digest_hex(),
    );

    let mut exported = 0usize;
    if let Some(dir) = export {
        let root = std::path::Path::new(dir);
        std::fs::create_dir_all(root)
            .map_err(|e| format!("cannot create {}: {e}", root.display()))?;
        let width = stream.variants.len().to_string().len().max(3);
        for variant in &stream.variants {
            let label = sw::variant_label(spec, &variant.picks);
            let concrete = sw::variant_scenario(spec, &scenario, &variant.picks);
            let body = dsl::print_scenario(&concrete);
            let header = format!(
                "# Generated by `netarch sweep --export` from sweep {:?}.\n\
                 # Variant {} of {}: {label}\n\n",
                spec.name,
                variant.index,
                stream.variants.len(),
            );
            let path = root.join(format!("{}-{:0width$}.narch", spec.name, variant.index));
            std::fs::write(&path, format!("{header}{body}"))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            exported += 1;
        }
    }

    let mut report = None;
    if oracle {
        let opts = sw::DiffOptions::default();
        let r = sw::run_differential(spec, &scenario, &stream, &opts).map_err(|e| e.to_string())?;
        if let Some(d) = &r.disagreement {
            return Err(format!("differential disagreement: {d}"));
        }
        report = Some(r);
    }

    if smoke {
        return Ok(manifest);
    }
    if json {
        let variants: Vec<netarch_rt::Json> = stream
            .variants
            .iter()
            .map(|v| {
                jobj! {
                    "index": v.index as u64,
                    "label": sw::variant_label(spec, &v.picks),
                }
            })
            .collect();
        let mut out = jobj! {
            "sweep": spec.name.clone(),
            "seed": spec.seed,
            "admissible": stream.admissible,
            "truncated": stream.truncated,
            "digest": stream.digest_hex(),
            "variants": variants,
        };
        if let (Some(r), netarch_rt::Json::Obj(fields)) = (&report, &mut out) {
            fields.push((
                "oracle".to_string(),
                jobj! {
                    "sessions": r.sessions,
                    "queries": r.queries,
                    "orderings": r.orderings,
                    "disagreements": 0u64,
                },
            ));
        }
        return Ok(netarch_rt::json::to_string_pretty(&out));
    }

    let mut out = format!("{manifest}\n");
    if stream.truncated {
        out.push_str(&format!(
            "(limit {} truncated the {}-variant admissible universe)\n",
            spec.limit, stream.admissible
        ));
    }
    for variant in &stream.variants {
        out.push_str(&format!(
            "  [{}] {}\n",
            variant.index,
            sw::variant_label(spec, &variant.picks)
        ));
    }
    if exported > 0 {
        out.push_str(&format!(
            "wrote {exported} variant file(s) under {}\n",
            export.unwrap_or(".")
        ));
    }
    if let Some(r) = &report {
        out.push_str(&format!(
            "oracle: {} orderings / {} queries across {} warm sessions — all agreed\n",
            r.orderings, r.queries, r.sessions
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// serve-replay: deterministic load replay through the sharded service
// ---------------------------------------------------------------------------

/// Parses the serve-replay argument list (scenario paths interleaved
/// with flags), builds the tape, runs the service, and reports.
fn serve_replay(args: &[&str], json: bool) -> Result<String, String> {
    use netarch::serve::{self, ReplaySpec, Service, ServiceConfig};

    let mut paths: Vec<&str> = Vec::new();
    let mut spec = ReplaySpec::default();
    let mut spec_overrides: Vec<(&str, u64)> = Vec::new();
    let mut shards = 2usize;
    let mut sessions = 4usize;
    let mut cache = true;
    let mut oracle = false;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        let mut value = |flag: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{flag} needs a non-negative integer"))
        };
        match arg {
            "--spec" => {
                let path = it.next().ok_or("--spec needs a file")?;
                let text = read_file(path)?;
                let parsed = netarch_rt::json::from_str(&text)
                    .map_err(|e| format!("cannot parse {path}: {e}"))?;
                spec = ReplaySpec::from_json(&parsed)?;
            }
            "--requests" => spec_overrides.push(("requests", value("--requests")?)),
            "--seed" => spec_overrides.push(("seed", value("--seed")?)),
            "--shards" => shards = value("--shards")?.max(1) as usize,
            "--sessions" => sessions = value("--sessions")?.max(1) as usize,
            "--no-cache" => cache = false,
            "--oracle" => oracle = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown serve-replay flag {flag:?}"))
            }
            path => paths.push(path),
        }
    }
    // CLI overrides win over the spec file regardless of argument order.
    for (key, value) in spec_overrides {
        match key {
            "requests" => spec.requests = value as usize,
            "seed" => spec.seed = value,
            _ => unreachable!(),
        }
    }
    if paths.is_empty() {
        return Err("serve-replay needs at least one scenario file".to_string());
    }

    let doc = load_doc(&paths)?;
    let scenario = doc.require_scenario().map_err(|e| e.to_string())?.clone();
    let tape = serve::generate_tape(&spec, &[scenario]);
    let config = ServiceConfig {
        shards,
        sessions_per_shard: sessions,
        cache,
        backend: netarch::logic::backend_from_env(),
    };
    let started = std::time::Instant::now();
    let (responses, stats) = Service::run(config, tape.clone());
    let elapsed_micros = started.elapsed().as_micros() as u64;

    let mut disagreements = 0usize;
    if oracle {
        for (request, response) in tape.iter().zip(&responses) {
            let expected = match Engine::new(request.scenario.clone()) {
                Ok(mut engine) => serve::request::run_query(&mut engine, &request.query),
                Err(e) => Err(e.to_string()),
            };
            if expected != response.answer {
                disagreements += 1;
            }
        }
    }

    let summary = serve::report::summary(&responses, &stats, elapsed_micros);
    if oracle && disagreements > 0 {
        return Err(format!(
            "{disagreements} response(s) disagreed with the fresh-engine oracle"
        ));
    }
    if json {
        return Ok(netarch_rt::json::to_string_pretty(&summary));
    }
    let count = |key: &str| summary.get(key).and_then(netarch_rt::Json::as_u64).unwrap_or(0);
    let mut out = format!(
        "replayed {} requests ({} cold / {} repeat / {} variant) on {} shard(s)\n",
        count("requests"),
        count("cold"),
        count("repeat"),
        count("variant"),
        count("shards"),
    );
    out.push_str(&format!(
        "cache: {} hits, {} misses, {} evictions, {} sessions retained\n",
        count("cache_hits"),
        count("cache_misses"),
        count("evictions"),
        count("sessions_retained"),
    ));
    let p = |path: [&str; 2]| {
        summary
            .get(path[0])
            .and_then(|l| l.get(path[1]))
            .and_then(netarch_rt::Json::as_u64)
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "latency µs: p50 {} / p95 {} / p99 {} (warm p50 {}, cold p50 {})\n",
        p(["latency", "p50_us"]),
        p(["latency", "p95_us"]),
        p(["latency", "p99_us"]),
        p(["warm_latency", "p50_us"]),
        p(["cold_latency", "p50_us"]),
    ));
    if count("errors") > 0 {
        out.push_str(&format!("{} request(s) answered with errors\n", count("errors")));
    }
    if oracle {
        out.push_str("oracle: every response matched a fresh single-use engine\n");
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Scenario loading: .narch or JSON, detected per file
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Debug)]
enum Format {
    Json,
    Narch,
}

/// Extension wins; otherwise sniff the first non-whitespace byte (JSON
/// scenario documents are objects, so they open with `{`).
fn detect_format(path: &str, text: &str) -> Format {
    if path.ends_with(".narch") {
        return Format::Narch;
    }
    if path.ends_with(".json") {
        return Format::Json;
    }
    match text.trim_start().as_bytes().first() {
        Some(b'{') => Format::Json,
        _ => Format::Narch,
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn lower_narch(sources: &[(&str, String)]) -> Result<dsl::ScenarioDoc, String> {
    let mut loader = dsl::Loader::new();
    for (path, text) in sources {
        loader.add_source(path, text).map_err(|e| e.to_string())?;
    }
    loader.finish().map_err(|e| e.to_string())
}

/// Loads one scenario document from one JSON file or any number of
/// `.narch` files.
fn load_doc(paths: &[&str]) -> Result<dsl::ScenarioDoc, String> {
    let mut narch: Vec<(&str, String)> = Vec::new();
    let mut json: Vec<(&str, String)> = Vec::new();
    for path in paths {
        let text = read_file(path)?;
        match detect_format(path, &text) {
            Format::Narch => narch.push((path, text)),
            Format::Json => json.push((path, text)),
        }
    }
    match (narch.is_empty(), json.len()) {
        (false, 0) => lower_narch(&narch),
        (true, 1) => {
            let (path, text) = &json[0];
            let scenario: Scenario = netarch_rt::json::from_str(text).map_err(|e| {
                format!(
                    "cannot parse {path} as a JSON scenario: {e}\n\
                     (if this is DSL text, name it *.narch so the format is unambiguous)"
                )
            })?;
            Ok(dsl::ScenarioDoc {
                catalog: scenario.catalog.clone(),
                workloads: scenario.workloads.clone(),
                scenario: Some(scenario),
                queries: Vec::new(),
                sweeps: Vec::new(),
            })
        }
        (true, 0) => Err("no scenario files given".to_string()),
        (true, _) => Err("more than one JSON scenario given; pass exactly one".to_string()),
        (false, _) => {
            Err("cannot mix JSON and .narch scenario files in one invocation".to_string())
        }
    }
}

fn load_engine(paths: &[&str]) -> Result<Engine, String> {
    let doc = load_doc(paths)?;
    let scenario = doc.require_scenario().map_err(|e| e.to_string())?.clone();
    Engine::new(scenario).map_err(|e| e.to_string())
}

fn summarize(doc: &dsl::ScenarioDoc) -> String {
    let mut out = format!(
        "{} systems, {} hardware models, {} ordering edges, {} workloads",
        doc.catalog.num_systems(),
        doc.catalog.num_hardware(),
        doc.catalog.order().edges().len(),
        doc.workloads.len(),
    );
    match &doc.scenario {
        Some(s) => out.push_str(&format!(
            "\nscenario: {} params, {} roles, {} objectives, {} pins",
            s.params.len(),
            s.roles.len(),
            s.objectives.len(),
            s.pins.len(),
        )),
        None => out.push_str("\nno scenario block (catalog-only document)"),
    }
    if !doc.queries.is_empty() {
        let kinds: Vec<&str> = doc.queries.iter().map(|q| q.kind()).collect();
        out.push_str(&format!("\nqueries: {}", kinds.join(", ")));
    }
    out
}

// ---------------------------------------------------------------------------
// Corpus export: the generator for the committed corpus/*.narch files
// ---------------------------------------------------------------------------

/// Writes the Rust-built corpus as canonical `.narch` files under `dir`.
/// The committed `corpus/` tree is this command's output; CI regenerates
/// it and diffs to keep text and builders in lockstep.
fn export_narch(dir: &str) -> Result<String, String> {
    use netarch::corpus as c;
    let files: Vec<(&str, String)> = vec![
        ("systems/stacks.narch", dsl::print_systems(&c::stacks::systems())),
        ("systems/congestion.narch", dsl::print_systems(&c::congestion::systems())),
        ("systems/monitoring.narch", dsl::print_systems(&c::monitoring::systems())),
        ("systems/firewalls.narch", dsl::print_systems(&c::firewalls::systems())),
        ("systems/vswitches.narch", dsl::print_systems(&c::vswitches::systems())),
        ("systems/load_balancers.narch", dsl::print_systems(&c::load_balancers::systems())),
        ("systems/transports.narch", dsl::print_systems(&c::transports::systems())),
        ("systems/misc.narch", dsl::print_systems(&c::misc::systems())),
        ("hardware/switches.narch", dsl::print_hardware(&c::hardware::switches::specs())),
        ("hardware/nics.narch", dsl::print_hardware(&c::hardware::nics::specs())),
        ("hardware/servers.narch", dsl::print_hardware(&c::hardware::servers::specs())),
        ("orderings.narch", dsl::print_orderings(&c::orderings::edges())),
        ("case_study.narch", {
            let mut text = dsl::print_scenario_inputs(&c::case_study::scenario());
            text.push('\n');
            text.push_str(&dsl::print_queries(&[
                dsl::QuerySpec::Check,
                dsl::QuerySpec::Optimize,
            ]));
            text
        }),
    ];
    let root = std::path::Path::new(dir);
    let mut report = String::new();
    for (rel, body) in &files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let header = "# Generated by `netarch export-narch` from the netarch-corpus crate.\n\
             # Edit the Rust encodings and regenerate; CI diffs this file.\n\n";
        std::fs::write(&path, format!("{header}{body}"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        report.push_str(&format!("wrote {}\n", path.display()));
    }
    Ok(report)
}

fn parse_dimension(text: &str) -> Result<Dimension, String> {
    Ok(match text {
        "throughput" => Dimension::Throughput,
        "isolation" => Dimension::Isolation,
        "app-compatibility" => Dimension::AppCompatibility,
        "latency" => Dimension::Latency,
        "tail-latency" => Dimension::TailLatency,
        "monitoring-quality" => Dimension::MonitoringQuality,
        "deployment-ease" => Dimension::DeploymentEase,
        "load-balancing-quality" => Dimension::LoadBalancingQuality,
        "cpu-efficiency" => Dimension::CpuEfficiency,
        other => Dimension::Custom(other.to_string()),
    })
}
