//! `netarch` — command-line interface to the reasoning engine.
//!
//! Scenarios are self-contained JSON documents (catalog + workloads +
//! inventory + objectives + pins), the machine-readable interchange
//! format the paper's Listing 1 sketches.
//!
//! ```text
//! netarch demo > scenario.json          # the paper's §2.3 case study
//! netarch check scenario.json           # feasibility + design or diagnosis
//! netarch optimize scenario.json        # lexicographic Optimize(...)
//! netarch capacity scenario.json 512    # minimal fleet size
//! netarch enumerate scenario.json 8     # design equivalence classes
//! netarch questions scenario.json       # §6 disambiguation plan
//! netarch compare scenario.json SIMON PINGMESH monitoring-quality
//! netarch export-catalog                # full knowledge corpus as JSON
//! ```

use netarch::core::explain::render_diagnosis;
use netarch::core::prelude::*;
use netarch_rt::jobj;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args.iter().map(String::as_str).collect::<Vec<_>>()) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  netarch demo                                  print the §2.3 case-study scenario as JSON
  netarch export-catalog                        print the full knowledge corpus as JSON
  netarch check <scenario.json>                 find a compliant design or a minimal conflict
  netarch optimize <scenario.json>              lexicographic optimization over the objectives
  netarch capacity <scenario.json> <max>        minimal server fleet up to <max>
  netarch enumerate <scenario.json> <limit>     design equivalence classes
  netarch questions <scenario.json>             disambiguation question plan
  netarch compare <scenario.json> <A> <B> <dim> rule-of-thumb comparison\n\nappend --json to check/optimize/capacity for machine-readable output";

/// Dispatches a command line; pure function for testability.
pub fn run(args: &[&str]) -> Result<String, String> {
    // A trailing `--json` switches design-producing commands to JSON.
    let (args, json) = match args.split_last() {
        Some((&"--json", rest)) => (rest, true),
        _ => (args, false),
    };
    match args {
        ["demo"] => {
            let scenario = netarch::corpus::case_study::scenario();
            Ok(netarch_rt::json::to_string_pretty(&scenario))
        }
        ["export-catalog"] => Ok(netarch::corpus::catalog_json()),
        ["check", path] => {
            let mut engine = load_engine(path)?;
            match engine.check().map_err(|e| e.to_string())? {
                Outcome::Feasible(design) if json => {
                    Ok(netarch_rt::json::to_string_pretty(&design))
                }
                Outcome::Feasible(design) => Ok(format!("FEASIBLE\n{design}")),
                Outcome::Infeasible(diagnosis) => {
                    Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis)))
                }
            }
        }
        ["optimize", path] => {
            let mut engine = load_engine(path)?;
            match engine.optimize().map_err(|e| e.to_string())? {
                Ok(result) if json => {
                    Ok(netarch_rt::json::to_string_pretty(&result.design))
                }
                Ok(result) => {
                    let mut out = format!("OPTIMAL\n{}", result.design);
                    for level in &result.levels {
                        out.push_str(&format!(
                            "level {:40} penalty {}\n",
                            level.objective, level.penalty
                        ));
                    }
                    Ok(out)
                }
                Err(diagnosis) => Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis))),
            }
        }
        ["capacity", path, max] => {
            let max: u64 = max.parse().map_err(|_| format!("bad fleet bound {max:?}"))?;
            let mut engine = load_engine(path)?;
            match engine.plan_capacity(max).map_err(|e| e.to_string())? {
                Ok(plan) if json => Ok(netarch_rt::json::to_string_pretty(&jobj! {
                    "servers_needed": plan.servers_needed,
                    "design": plan.design,
                })),
                Ok(plan) => Ok(format!(
                    "SERVERS NEEDED: {}\n{}",
                    plan.servers_needed, plan.design
                )),
                Err(diagnosis) => Ok(format!("INFEASIBLE\n{}", render_diagnosis(&diagnosis))),
            }
        }
        ["enumerate", path, limit] => {
            let limit: usize = limit.parse().map_err(|_| format!("bad limit {limit:?}"))?;
            let mut engine = load_engine(path)?;
            let designs = engine
                .enumerate_designs(limit, false)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} equivalence classes\n", designs.len());
            for (i, d) in designs.iter().enumerate() {
                let systems: Vec<String> =
                    d.systems().iter().map(|s| s.to_string()).collect();
                out.push_str(&format!("class {}: {}\n", i + 1, systems.join(", ")));
            }
            Ok(out)
        }
        ["questions", path] => {
            let mut engine = load_engine(path)?;
            let plan = engine.disambiguate(256).map_err(|e| e.to_string())?;
            Ok(netarch::core::disambiguate::render_plan(&plan))
        }
        ["compare", path, a, b, dim] => {
            let engine = load_engine(path)?;
            let dimension = parse_dimension(dim)?;
            let verdict = engine.compare(
                &SystemId::new(*a),
                &SystemId::new(*b),
                &dimension,
            );
            Ok(format!("{a} vs {b} on {dimension}: {verdict:?}"))
        }
        [] => Err("no command given".to_string()),
        other => Err(format!("unrecognized command {:?}", other.join(" "))),
    }
}

fn load_engine(path: &str) -> Result<Engine, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario: Scenario = netarch_rt::json::from_str(&text)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    Engine::new(scenario).map_err(|e| e.to_string())
}

fn parse_dimension(text: &str) -> Result<Dimension, String> {
    Ok(match text {
        "throughput" => Dimension::Throughput,
        "isolation" => Dimension::Isolation,
        "app-compatibility" => Dimension::AppCompatibility,
        "latency" => Dimension::Latency,
        "tail-latency" => Dimension::TailLatency,
        "monitoring-quality" => Dimension::MonitoringQuality,
        "deployment-ease" => Dimension::DeploymentEase,
        "load-balancing-quality" => Dimension::LoadBalancingQuality,
        "cpu-efficiency" => Dimension::CpuEfficiency,
        other => Dimension::Custom(other.to_string()),
    })
}
