#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace offline.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step"
fi

echo "== proof-check =="
# Solve a seeded UNSAT corpus (500+ instances) with DRAT logging on and
# replay every proof through the independent checker; any rejection fails.
cargo run --release --offline -q -p netarch-bench --bin exp_proof_check

echo "== ci: all green =="
