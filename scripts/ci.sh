#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace offline.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
elif [ "${CI:-0}" = "1" ]; then
    # On CI a missing linter is a broken toolchain, not an optional step:
    # silently skipping here once let warnings land unreviewed.
    echo "error: CI=1 but cargo clippy is not installed" >&2
    exit 1
else
    echo "WARNING: clippy not installed; lint step SKIPPED (set CI=1 to make this fatal)" >&2
fi

echo "== proof-check =="
# Solve a seeded UNSAT corpus (500+ instances) with DRAT logging on and
# replay every proof through the independent checker; any rejection fails.
cargo run --release --offline -q -p netarch-bench --bin exp_proof_check

echo "== incremental-session smoke =="
# The 50-query differential workload: session answers must match
# recompile-per-query answers, with zero recompiles and a ≥3× speedup.
cargo run --release --offline -q -p netarch-bench --bin exp_incremental

echo "== ci: all green =="
