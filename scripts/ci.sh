#!/usr/bin/env bash
# Tier-1 gate: build, test, and lint the whole workspace offline.
# Everything here must pass before a change lands.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
elif [ "${CI:-0}" = "1" ]; then
    # On CI a missing linter is a broken toolchain, not an optional step:
    # silently skipping here once let warnings land unreviewed.
    echo "error: CI=1 but cargo clippy is not installed" >&2
    exit 1
else
    echo "WARNING: clippy not installed; lint step SKIPPED (set CI=1 to make this fatal)" >&2
fi

echo "== narch conformance =="
# The committed .narch corpus must stay in lockstep with the Rust
# builders: regenerate from the corpus crate and require a byte-identical
# tree. A drift here means someone edited one side without the other.
narch_tmp="$(mktemp -d)"
trap 'rm -rf "$narch_tmp"' EXIT
cargo run --release --offline -q --bin netarch -- export-narch "$narch_tmp" >/dev/null
diff -r corpus "$narch_tmp"

echo "== DSL frontend throughput =="
# Parse + lower the full text corpus; asserts the lowered catalog matches
# the Rust-built one and that a full load stays under a second.
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_parse

echo "== bench trajectory files =="
# The committed BENCH_*.json perf summaries must parse and name their
# experiment (full checks live in tests/bench_trajectory.rs, run above).
for f in BENCH_scaling.json BENCH_incremental.json BENCH_portfolio.json BENCH_parse.json BENCH_serve.json BENCH_inprocess.json BENCH_parallel_queries.json BENCH_sweep.json; do
    [ -s "$f" ] || { echo "error: missing trajectory file $f" >&2; exit 1; }
done

echo "== proof-check =="
# Solve a seeded UNSAT corpus (500+ instances) with DRAT logging on and
# replay every proof through the independent checker; any rejection fails.
cargo run --release --offline -q -p netarch-bench --bin exp_proof_check

echo "== incremental-session smoke =="
# The 50-query differential workload: session answers must match
# recompile-per-query answers, with zero recompiles and a ≥3× speedup.
# (Trajectory output goes to the temp dir: CI must not dirty the tree.)
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_incremental

echo "== portfolio suite (2 threads) =="
# The portfolio test files again, but with the engine's env-var path
# exercised too: NETARCH_THREADS=2 routes every decisive one-shot engine
# probe through a 2-worker portfolio. Verdicts must not change.
NETARCH_THREADS=2 cargo test -q --offline -p netarch-sat \
    --test portfolio_differential --test portfolio_determinism \
    --test portfolio_cancellation --test portfolio_proofs
NETARCH_THREADS=2 cargo test -q --offline -p netarch-core --test portfolio_engine

echo "== portfolio smoke =="
# Reduced corpus: zero verdict disagreements and a ≥1.0× median speedup
# for 4 diversified workers vs 1 (the full bound of ≥1.5× is asserted by
# the un-flagged run, which CI skips for time).
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_portfolio -- --smoke

echo "== inprocessing suite (certified) =="
# Restart-boundary inprocessing: the solver-level differential sweep, plus
# the session-engine suite with every solve proof-checked end-to-end
# (NETARCH_VERIFY_PROOFS=1) and again under a 2-worker portfolio backend.
# Frozen-variable regressions here mean the freeze contract broke.
cargo test -q --offline -p netarch-sat --test inprocess_properties
NETARCH_VERIFY_PROOFS=1 cargo test -q --offline -p netarch-core --test interleaved_queries
NETARCH_VERIFY_PROOFS=1 NETARCH_THREADS=2 cargo test -q --offline -p netarch-core \
    --test interleaved_queries

echo "== inprocessing smoke =="
# Reduced session corpus: zero per-query verdict disagreements between
# the default config and inprocessing-off, median speedup ≥1.0× (the full
# bound of ≥1.3× is asserted by the un-flagged run, which CI skips for
# time).
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_inprocess -- --smoke

echo "== parallel query loops (2 threads) =="
# The three parallelized query loops — racing MaxSAT descent, cube-and-
# conquer enumeration, speculative capacity search — re-run their
# differential sweeps with the engine env-var path live: answers must
# match the sequential oracle and deterministic runs must repeat
# bit-identically.
NETARCH_THREADS=2 cargo test -q --offline -p netarch-sat \
    --test parallel_probes --test cube_enumeration
NETARCH_THREADS=2 cargo test -q --offline -p netarch-logic --test parallel_descent
NETARCH_THREADS=2 cargo test -q --offline -p netarch-core --test parallel_queries

echo "== parallel query smoke =="
# Toy shapes through all three loops with the full parallel-vs-sequential
# oracle; persists BENCH_parallel_queries.json to the temp dir for the
# regression gate below. Smoke gates correctness only — the ≥1.3× speedup
# claim on 2 of 3 loops lives in the committed full run.
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_parallel_queries -- --smoke

echo "== serving suite (2 threads) =="
# The sharded service under the portfolio backend: every shard count ×
# cache mode must match fresh single-use engines, and seeded runs must
# reproduce bit-identically modulo timing.
NETARCH_THREADS=2 cargo test -q --offline -p netarch-serve \
    --test service_differential --test service_determinism

echo "== serving smoke =="
# Reduced pool + tape through the sharded service with the full
# differential oracle; persists BENCH_serve.json to the temp dir for the
# regression gate below (the committed file only tracks full runs).
# Smoke gates correctness only — warm-over-cold wall time is reported
# but not asserted, because 1-core CI containers make sub-ms medians
# scheduler noise; the ≥3× claim lives in the committed full run.
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_serve -- --smoke

echo "== sweep smoke (seeded, golden manifest) =="
# The combinatorial sweep pipeline end to end on the committed example:
# enumerate the fixed spec and require the exact variant count and
# stream digest. Any drift in grammar lowering, CNF encoding, projected
# enumeration, the canonical ordering, or the seeded shuffle shows up
# here as a digest mismatch.
sweep_golden="sweep monitoring_matrix: variants=30 admissible=30 seed=7 digest=646007cbf294adb3dd5e9bde202f842b"
sweep_got="$(cargo run --release --offline -q --bin netarch -- sweep examples/sweep.narch --smoke)"
if [ "$sweep_got" != "$sweep_golden" ]; then
    echo "error: sweep manifest drifted" >&2
    echo "  expected: $sweep_golden" >&2
    echo "  got:      $sweep_got" >&2
    exit 1
fi
# The same stream must be reproduced bit-identically under different
# thread counts: the manifest digest covers every variant in order.
sweep_mt="$(NETARCH_THREADS=2 cargo run --release --offline -q --bin netarch -- sweep examples/sweep.narch --smoke)"
if [ "$sweep_mt" != "$sweep_golden" ]; then
    echo "error: sweep manifest depends on NETARCH_THREADS" >&2
    exit 1
fi

echo "== sweep differential smoke =="
# Reduced sweep universe through the full fan-out: thread-count
# invariance of the stream plus the warm-session-vs-fresh-oracle
# differential over every query kind and ordering; persists
# BENCH_sweep.json to the temp dir for the regression gate below.
NETARCH_BENCH_DIR="$narch_tmp" \
    cargo run --release --offline -q -p netarch-bench --bin exp_sweep -- --smoke

echo "== bench regression gate =="
# Compare the candidate trajectory written above against the committed
# BENCH_*.json files: full-fidelity timings within the allowed factor,
# smoke runs held to their own bounds and zero disagreements.
NETARCH_BENCH_CANDIDATE="$narch_tmp" \
    cargo test -q --offline --test bench_regression

echo "== seeded-RNG policy =="
# Solver, portfolio, and their tests must not read wall clock or ambient
# entropy: determinism of the deterministic mode (and of every test) rests
# on all randomness flowing from explicit seeds.
if grep -nE 'thread_rng|from_entropy|rand::random|SystemTime::now|Instant::now' \
    crates/sat/src/solver.rs crates/sat/src/simplify.rs crates/sat/src/portfolio.rs \
    crates/sat/src/probes.rs crates/sat/src/enumerate.rs \
    crates/sat/tests/portfolio_*.rs crates/sat/tests/inprocess_properties.rs \
    crates/sat/tests/parallel_probes.rs crates/sat/tests/cube_enumeration.rs \
    crates/logic/tests/parallel_descent.rs crates/core/tests/parallel_queries.rs; then
    echo "error: wall-clock or ambient-entropy source in solver/portfolio code" >&2
    exit 1
fi

echo "== ci: all green =="
