//! End-to-end sweep pipeline: `.narch` text → lowered `SweepSpec` →
//! enumerated variant stream → differential run of the session engine
//! against fresh-engine oracles, across query orderings.
//!
//! The scenario is small but adversarial on purpose: optional systems,
//! conflicting systems, a feature-gated requirement, and NIC alternatives
//! with and without that feature — so the stream mixes feasible and
//! infeasible variants and the diagnosis-replay path runs too.

use netarch_core::prelude::*;
use netarch_sweep::{enumerate_sweep, run_differential, variant_scenario, DiffOptions};

const DOC: &str = r#"
system "SIMON" {
  category = monitoring
  solves   = [detect_queue_length]
  requires "needs-nic-timestamps" { condition = nics.have(NIC_TIMESTAMPS) }
  cost_usd = 300
}

system "SONATA" {
  category = monitoring
  solves   = [detect_queue_length]
  conflicts = [SIMON]
  cost_usd = 900
}

system "LB" {
  category = load_balancer
  solves   = [load_balancing]
  cost_usd = 200
}

hardware "NIC_TS" {
  kind     = nic
  features = [NIC_TIMESTAMPS]
  cost_usd = 600
}

hardware "NIC_PLAIN" {
  kind     = nic
  cost_usd = 100
}

workload "app" {
  needs = [detect_queue_length]
}

scenario {
  roles { monitoring = required }
  objectives = [minimize_cost]
  inventory {
    nics        = [NIC_TS, NIC_PLAIN]
    num_servers = 2
  }
}

sweep "mesh" {
  seed = 11
  choose "mon" { systems = [SIMON, SONATA] optional = true }
  choose "lb"  { systems = [LB] optional = true }
  choose "nic" { nics = [NIC_TS, NIC_PLAIN] }
  choose "fleet" { num_servers = [1, 2, 4] }
  forbid = [all(picked(mon, none), picked(lb, none))]
}
"#;

fn load() -> (netarch_sweep::SweepSpec, Scenario) {
    let doc = netarch_dsl::load_str(DOC).expect("document lowers");
    let scenario = doc.require_scenario().expect("has scenario").clone();
    let spec = doc.sweeps.into_iter().next().expect("has a sweep");
    (spec, scenario)
}

#[test]
fn stream_is_deterministic_and_matches_the_hand_count() {
    let (spec, scenario) = load();
    let stream = enumerate_sweep(&spec, &scenario.catalog).expect("enumerates");
    // (SIMON|SONATA|none) × (LB|none) × 2 nics × 3 fleet = 36, minus the
    // forbidden mon=none ∧ lb=none slice (2 × 3 = 6).
    assert_eq!(stream.admissible, 30);
    assert!(!stream.truncated);
    assert_eq!(stream.variants.len(), 30);
    let again = enumerate_sweep(&spec, &scenario.catalog).expect("enumerates");
    assert_eq!(stream, again, "identical inputs must reproduce the stream");
}

#[test]
fn every_variant_agrees_with_fresh_engines_across_orderings() {
    let (spec, scenario) = load();
    let stream = enumerate_sweep(&spec, &scenario.catalog).expect("enumerates");
    let opts = DiffOptions::default();
    let report = run_differential(&spec, &scenario, &stream, &opts).expect("engines compile");
    assert_eq!(report.disagreement, None, "{:?}", report.disagreement);
    assert_eq!(report.variants, 30);
    // 3-op tapes walk all 3! orderings.
    assert_eq!(report.orderings, 30 * 6);
    assert_eq!(report.queries, 30 * 6 * 3);
}

#[test]
fn variants_cover_both_feasible_and_infeasible_scenarios() {
    let (spec, scenario) = load();
    let stream = enumerate_sweep(&spec, &scenario.catalog).expect("enumerates");
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for variant in &stream.variants {
        let s = variant_scenario(&spec, &scenario, &variant.picks);
        let mut engine = Engine::new(s).expect("compiles");
        match engine.check().expect("runs") {
            Outcome::Feasible(_) => feasible += 1,
            Outcome::Infeasible(_) => infeasible += 1,
        }
    }
    // mon=SIMON × nic=NIC_PLAIN variants violate the timestamp rule;
    // mon=none variants violate the required monitoring role.
    assert!(feasible > 0, "sweep universe has no feasible variant");
    assert!(infeasible > 0, "sweep universe has no infeasible variant");
}

#[test]
fn sweep_survives_a_narch_round_trip() {
    let (spec, _) = load();
    let text = netarch_dsl::print_sweeps([&spec]);
    let doc = netarch_dsl::load_str(&format!(
        "system \"X\" {{ category = monitoring }}\nscenario {{ }}\n{text}"
    ));
    // The reprinted sweep references systems the stub document lacks —
    // lowering is syntactic, so it still round-trips structurally.
    let doc = doc.expect("printed sweep re-lowers");
    assert_eq!(doc.sweeps.len(), 1);
    assert_eq!(doc.sweeps[0], spec);
}
