//! Sweep compilation and enumeration: `SweepSpec` → CNF → every
//! admissible pick-vector → `Scenario` stream.
//!
//! The compilation is deliberately tiny — one atom per (group,
//! alternative), `exactly(1, …)` per group, the `require` constraints
//! asserted positively and the `forbid` constraints negated — because the
//! point is to reuse the engine's own logic layer as the generator. All
//! name resolution against the catalog happens here (lowering is purely
//! syntactic), so a sweep over a system or NIC the catalog never defines
//! is an error, not an empty stream.

use netarch_core::prelude::*;
use netarch_dsl::{AltRef, ChoiceKind, SweepConstraint, SweepSpec};
use netarch_logic::enumerate::enumerate_models;
use netarch_logic::{Atom, Encoder, Formula};
use netarch_rt::Rng;
use std::fmt;

/// Hard cap on the unconstrained universe (product of group arities).
/// Exhaustive enumeration is what makes the stream thread-independent, so
/// the universe must stay walkable; a sweep past this bound is a spec
/// bug, not a workload.
pub const MAX_UNIVERSE: u64 = 1 << 16;

/// Why a sweep cannot be compiled or enumerated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// The unconstrained universe exceeds [`MAX_UNIVERSE`].
    UniverseTooLarge {
        /// Product of group arities.
        bound: u64,
    },
    /// Two choice groups share a name.
    DuplicateGroup {
        /// The repeated group name.
        group: String,
    },
    /// One group lists the same alternative twice.
    DuplicateAlternative {
        /// The group.
        group: String,
        /// The repeated alternative label.
        alternative: String,
    },
    /// A `systems` group names a system the catalog does not define.
    UnknownSystem {
        /// The group.
        group: String,
        /// The unresolved id.
        id: SystemId,
    },
    /// A hardware group names a model the catalog does not define.
    UnknownHardware {
        /// The group.
        group: String,
        /// The unresolved id.
        id: HardwareId,
    },
    /// A hardware group names a model of the wrong kind (e.g. a switch in
    /// a `nics` group).
    WrongHardwareKind {
        /// The group.
        group: String,
        /// The offending id.
        id: HardwareId,
        /// The kind the group sweeps.
        expected: HardwareKind,
        /// The catalog's kind for the id.
        actual: HardwareKind,
    },
    /// A constraint references a group the sweep never defines.
    UnknownGroup {
        /// The unresolved group name.
        group: String,
    },
    /// A constraint references an alternative its group never lists.
    UnknownAlternative {
        /// The group.
        group: String,
        /// The unresolved alternative label.
        alternative: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::UniverseTooLarge { bound } => write!(
                f,
                "sweep universe has {bound} combinations (max {MAX_UNIVERSE}); \
                 shrink a choice group or split the sweep"
            ),
            SweepError::DuplicateGroup { group } => {
                write!(f, "duplicate choice group `{group}`")
            }
            SweepError::DuplicateAlternative { group, alternative } => {
                write!(f, "group `{group}` lists alternative `{alternative}` twice")
            }
            SweepError::UnknownSystem { group, id } => {
                write!(f, "group `{group}` sweeps unknown system `{id}`")
            }
            SweepError::UnknownHardware { group, id } => {
                write!(f, "group `{group}` sweeps unknown hardware `{id}`")
            }
            SweepError::WrongHardwareKind { group, id, expected, actual } => write!(
                f,
                "group `{group}` sweeps `{id}` as a {expected:?} but the catalog \
                 defines it as a {actual:?}"
            ),
            SweepError::UnknownGroup { group } => {
                write!(f, "constraint references unknown choice group `{group}`")
            }
            SweepError::UnknownAlternative { group, alternative } => {
                write!(f, "group `{group}` has no alternative `{alternative}`")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// One enumerated variant: a pick index per choice group, in group order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Variant {
    /// Position in the final (shuffled, truncated) stream.
    pub index: usize,
    /// Chosen alternative per group.
    pub picks: Vec<usize>,
}

/// The deterministic variant stream of one sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepStream {
    /// The sweep's name.
    pub name: String,
    /// The shuffle seed.
    pub seed: u64,
    /// Total admissible combinations *before* the limit truncated.
    pub admissible: u64,
    /// Whether `limit` dropped admissible variants from the stream.
    pub truncated: bool,
    /// The stream, in emission order.
    pub variants: Vec<Variant>,
    /// FNV-1a 128-bit digest of the full stream (names, picks, and
    /// alternative labels). Equal digests ⇒ bit-identical streams.
    pub digest: u128,
}

impl SweepStream {
    /// The digest as a fixed-width hex string (manifest form).
    pub fn digest_hex(&self) -> String {
        format!("{:032x}", self.digest)
    }
}

fn validate(spec: &SweepSpec, catalog: &Catalog) -> Result<(), SweepError> {
    for (i, group) in spec.groups.iter().enumerate() {
        if spec.groups[..i].iter().any(|g| g.name == group.name) {
            return Err(SweepError::DuplicateGroup { group: group.name.clone() });
        }
        let labels = group.alternative_labels();
        for (j, label) in labels.iter().enumerate() {
            if labels[..j].contains(label) {
                return Err(SweepError::DuplicateAlternative {
                    group: group.name.clone(),
                    alternative: label.clone(),
                });
            }
        }
        match &group.kind {
            ChoiceKind::Systems { candidates, .. } => {
                for id in candidates {
                    if catalog.system(id).is_none() {
                        return Err(SweepError::UnknownSystem {
                            group: group.name.clone(),
                            id: id.clone(),
                        });
                    }
                }
            }
            ChoiceKind::Nics(ids) => check_hardware(catalog, group, ids, HardwareKind::Nic)?,
            ChoiceKind::Servers(ids) => {
                check_hardware(catalog, group, ids, HardwareKind::Server)?
            }
            ChoiceKind::Switches(ids) => {
                check_hardware(catalog, group, ids, HardwareKind::Switch)?
            }
            ChoiceKind::NumServers(_) | ChoiceKind::Param { .. } => {}
        }
    }
    for constraint in spec.require.iter().chain(&spec.forbid) {
        resolve_constraint(spec, constraint)?;
    }
    Ok(())
}

fn check_hardware(
    catalog: &Catalog,
    group: &netarch_dsl::ChoiceGroup,
    ids: &[HardwareId],
    expected: HardwareKind,
) -> Result<(), SweepError> {
    for id in ids {
        let Some(spec) = catalog.hardware(id) else {
            return Err(SweepError::UnknownHardware {
                group: group.name.clone(),
                id: id.clone(),
            });
        };
        if spec.kind != expected {
            return Err(SweepError::WrongHardwareKind {
                group: group.name.clone(),
                id: id.clone(),
                expected,
                actual: spec.kind,
            });
        }
    }
    Ok(())
}

fn alt_text(alt: &AltRef) -> String {
    match alt {
        AltRef::Name(n) => n.clone(),
        AltRef::Number(v) => format!("{v}"),
    }
}

/// Resolves a constraint's references; `Ok` carries nothing, the work is
/// the error reporting.
fn resolve_constraint(spec: &SweepSpec, constraint: &SweepConstraint) -> Result<(), SweepError> {
    match constraint {
        SweepConstraint::Picked { group, alternative } => {
            let g = spec
                .groups
                .iter()
                .find(|g| g.name == *group)
                .ok_or_else(|| SweepError::UnknownGroup { group: group.clone() })?;
            g.resolve(alternative).ok_or_else(|| SweepError::UnknownAlternative {
                group: group.clone(),
                alternative: alt_text(alternative),
            })?;
            Ok(())
        }
        SweepConstraint::Not(inner) => resolve_constraint(spec, inner),
        SweepConstraint::All(parts) | SweepConstraint::Any(parts) => {
            parts.iter().try_for_each(|c| resolve_constraint(spec, c))
        }
    }
}

fn constraint_formula(
    spec: &SweepSpec,
    offsets: &[u32],
    constraint: &SweepConstraint,
) -> Formula {
    match constraint {
        SweepConstraint::Picked { group, alternative } => {
            // Resolution already validated; unwraps are unreachable.
            let gi = spec
                .groups
                .iter()
                .position(|g| g.name == *group)
                .expect("validated group reference");
            let ai = spec.groups[gi]
                .resolve(alternative)
                .expect("validated alternative reference");
            Formula::atom(Atom(offsets[gi] + ai as u32))
        }
        SweepConstraint::Not(inner) => Formula::not(constraint_formula(spec, offsets, inner)),
        SweepConstraint::All(parts) => {
            Formula::and(parts.iter().map(|c| constraint_formula(spec, offsets, c)))
        }
        SweepConstraint::Any(parts) => {
            Formula::or(parts.iter().map(|c| constraint_formula(spec, offsets, c)))
        }
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

fn fnv(mut state: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn stream_digest(spec: &SweepSpec, admissible: u64, variants: &[Variant]) -> u128 {
    let mut state = fnv(FNV_OFFSET, spec.name.as_bytes());
    state = fnv(state, &spec.seed.to_le_bytes());
    state = fnv(state, &admissible.to_le_bytes());
    let labels: Vec<Vec<String>> =
        spec.groups.iter().map(|g| g.alternative_labels()).collect();
    for variant in variants {
        state = fnv(state, &[0xFF]);
        for (gi, &pick) in variant.picks.iter().enumerate() {
            state = fnv(state, &(pick as u64).to_le_bytes());
            state = fnv(state, spec.groups[gi].name.as_bytes());
            state = fnv(state, &[0]);
            state = fnv(state, labels[gi][pick].as_bytes());
            state = fnv(state, &[0]);
        }
    }
    state
}

/// Compiles the sweep and enumerates its variant stream.
///
/// Determinism contract (see crate docs): the admissible set is
/// enumerated exhaustively on a private sequential solver, sorted
/// canonically, shuffled with `spec.seed`, and truncated to `spec.limit`
/// — so equal `(spec, catalog)` inputs yield equal streams everywhere.
pub fn enumerate_sweep(spec: &SweepSpec, catalog: &Catalog) -> Result<SweepStream, SweepError> {
    validate(spec, catalog)?;
    let bound = spec.universe_bound();
    if bound > MAX_UNIVERSE {
        return Err(SweepError::UniverseTooLarge { bound });
    }

    let mut offsets: Vec<u32> = Vec::with_capacity(spec.groups.len());
    let mut next = 0u32;
    for group in &spec.groups {
        offsets.push(next);
        next += group.arity() as u32;
    }

    let mut encoder = Encoder::new();
    for (gi, group) in spec.groups.iter().enumerate() {
        let alternatives =
            (0..group.arity()).map(|ai| Formula::atom(Atom(offsets[gi] + ai as u32)));
        encoder.assert(&Formula::exactly(1, alternatives));
    }
    for constraint in &spec.require {
        encoder.assert(&constraint_formula(spec, &offsets, constraint));
    }
    for constraint in &spec.forbid {
        encoder.assert(&Formula::not(constraint_formula(spec, &offsets, constraint)));
    }

    let atoms: Vec<Atom> = (0..next).map(Atom).collect();
    // `bound + 1` would only be reached if blocking-clause enumeration
    // produced more models than the universe holds; the +1 turns that
    // impossibility into a visible `truncated` flag instead of a silence.
    let models = enumerate_models(encoder, &atoms, &[], bound as usize + 1);
    debug_assert!(!models.truncated, "enumeration exceeded the universe bound");

    let mut picks: Vec<Vec<usize>> = models
        .models
        .iter()
        .map(|model| {
            spec.groups
                .iter()
                .zip(&offsets)
                .map(|(group, &offset)| {
                    let chosen: Vec<usize> = (0..group.arity())
                        .filter(|&ai| {
                            model[(offset + ai as u32) as usize].1
                        })
                        .collect();
                    match chosen.as_slice() {
                        [one] => *one,
                        other => unreachable!(
                            "exactly-one constraint yielded {} picks in group `{}`",
                            other.len(),
                            group.name
                        ),
                    }
                })
                .collect()
        })
        .collect();

    // Canonical order first (the enumerator's discovery order is
    // deterministic too, but tying the stream to solver heuristics would
    // make every solver improvement a silent stream change), then the
    // seeded shuffle so `limit` samples the universe instead of slicing
    // its lexicographic prefix.
    picks.sort();
    let admissible = picks.len() as u64;
    let mut rng = Rng::seed_from_u64(spec.seed);
    rng.shuffle(&mut picks);
    let truncated = admissible > spec.limit;
    picks.truncate(spec.limit as usize);

    let variants: Vec<Variant> = picks
        .into_iter()
        .enumerate()
        .map(|(index, picks)| Variant { index, picks })
        .collect();
    let digest = stream_digest(spec, admissible, &variants);
    Ok(SweepStream {
        name: spec.name.clone(),
        seed: spec.seed,
        admissible,
        truncated,
        variants,
        digest,
    })
}

/// The scenario edits one pick-vector stands for, in group order.
pub fn variant_edits(spec: &SweepSpec, picks: &[usize]) -> Vec<ScenarioEdit> {
    let mut edits = Vec::new();
    for (group, &pick) in spec.groups.iter().zip(picks) {
        match &group.kind {
            ChoiceKind::Systems { candidates, .. } => {
                // Picking a system pins it in and all rivals out, so the
                // group's choice is decisive; the implicit `none`
                // alternative (pick == candidates.len()) pins every
                // candidate out.
                for (i, id) in candidates.iter().enumerate() {
                    edits.push(if i == pick {
                        ScenarioEdit::RequireSystem(id.clone())
                    } else {
                        ScenarioEdit::ForbidSystem(id.clone())
                    });
                }
            }
            ChoiceKind::Nics(ids) => {
                edits.push(ScenarioEdit::NicCandidates(vec![ids[pick].clone()]));
            }
            ChoiceKind::Servers(ids) => {
                edits.push(ScenarioEdit::ServerCandidates(vec![ids[pick].clone()]));
            }
            ChoiceKind::Switches(ids) => {
                edits.push(ScenarioEdit::SwitchCandidates(vec![ids[pick].clone()]));
            }
            ChoiceKind::NumServers(counts) => {
                edits.push(ScenarioEdit::NumServers(counts[pick]));
            }
            ChoiceKind::Param { name, values } => {
                edits.push(ScenarioEdit::SetParam(name.clone(), values[pick]));
            }
        }
    }
    edits
}

/// Materializes one variant over the base scenario.
pub fn variant_scenario(spec: &SweepSpec, base: &Scenario, picks: &[usize]) -> Scenario {
    base.with_edits(&variant_edits(spec, picks))
}

/// Human-readable `group=alternative` summary of one variant.
pub fn variant_label(spec: &SweepSpec, picks: &[usize]) -> String {
    spec.groups
        .iter()
        .zip(picks)
        .map(|(group, &pick)| format!("{}={}", group.name, group.alternative_labels()[pick]))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_dsl::ChoiceGroup;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        for id in ["A", "B", "C"] {
            catalog
                .add_system(SystemSpec::builder(id, Category::Monitoring).build())
                .unwrap();
        }
        catalog
            .add_hardware(HardwareSpec::builder("NIC1", HardwareKind::Nic).build())
            .unwrap();
        catalog
            .add_hardware(HardwareSpec::builder("NIC2", HardwareKind::Nic).build())
            .unwrap();
        catalog
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            name: "s".into(),
            seed: 0,
            limit: 256,
            groups: vec![
                ChoiceGroup {
                    name: "mon".into(),
                    kind: ChoiceKind::Systems {
                        candidates: vec![SystemId::new("A"), SystemId::new("B")],
                        optional: true,
                    },
                },
                ChoiceGroup {
                    name: "nic".into(),
                    kind: ChoiceKind::Nics(vec![
                        HardwareId::new("NIC1"),
                        HardwareId::new("NIC2"),
                    ]),
                },
            ],
            require: vec![],
            forbid: vec![],
        }
    }

    #[test]
    fn unconstrained_sweep_enumerates_the_product() {
        let stream = enumerate_sweep(&spec(), &catalog()).unwrap();
        assert_eq!(stream.admissible, 6); // (A | B | none) × (NIC1 | NIC2)
        assert!(!stream.truncated);
        let mut sorted: Vec<Vec<usize>> =
            stream.variants.iter().map(|v| v.picks.clone()).collect();
        sorted.sort();
        let expected: Vec<Vec<usize>> =
            (0..3).flat_map(|a| (0..2).map(move |b| vec![a, b])).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn forbid_prunes_and_require_pins() {
        let mut s = spec();
        s.require = vec![SweepConstraint::Picked {
            group: "nic".into(),
            alternative: AltRef::Name("NIC1".into()),
        }];
        s.forbid = vec![SweepConstraint::Picked {
            group: "mon".into(),
            alternative: AltRef::Name("none".into()),
        }];
        let stream = enumerate_sweep(&s, &catalog()).unwrap();
        assert_eq!(stream.admissible, 2); // mon ∈ {A, B}, nic = NIC1
        for v in &stream.variants {
            assert_eq!(v.picks[1], 0, "nic pinned to NIC1");
            assert!(v.picks[0] < 2, "none forbidden");
        }
    }

    #[test]
    fn same_seed_same_stream_different_seed_reorders() {
        let base = enumerate_sweep(&spec(), &catalog()).unwrap();
        let again = enumerate_sweep(&spec(), &catalog()).unwrap();
        assert_eq!(base, again);
        let mut reseeded = spec();
        reseeded.seed = 1;
        let other = enumerate_sweep(&reseeded, &catalog()).unwrap();
        assert_ne!(base.digest, other.digest, "seed participates in the digest");
        let mut a: Vec<_> = base.variants.iter().map(|v| v.picks.clone()).collect();
        let mut b: Vec<_> = other.variants.iter().map(|v| v.picks.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "the admissible *set* is seed-independent");
    }

    #[test]
    fn limit_truncates_after_the_shuffle() {
        let mut s = spec();
        s.limit = 4;
        let stream = enumerate_sweep(&s, &catalog()).unwrap();
        assert_eq!(stream.admissible, 6);
        assert!(stream.truncated);
        assert_eq!(stream.variants.len(), 4);
    }

    #[test]
    fn unknown_references_are_errors() {
        let mut s = spec();
        s.groups.push(ChoiceGroup {
            name: "ghost".into(),
            kind: ChoiceKind::Systems {
                candidates: vec![SystemId::new("NOPE")],
                optional: false,
            },
        });
        assert!(matches!(
            enumerate_sweep(&s, &catalog()),
            Err(SweepError::UnknownSystem { .. })
        ));

        let mut s = spec();
        s.require = vec![SweepConstraint::Picked {
            group: "mon".into(),
            alternative: AltRef::Name("Z".into()),
        }];
        assert!(matches!(
            enumerate_sweep(&s, &catalog()),
            Err(SweepError::UnknownAlternative { .. })
        ));
    }

    #[test]
    fn universe_guard_rejects_oversized_sweeps() {
        let mut s = spec();
        for i in 0..20 {
            s.groups.push(ChoiceGroup {
                name: format!("g{i}"),
                kind: ChoiceKind::NumServers((1..=8).collect()),
            });
        }
        assert!(matches!(
            enumerate_sweep(&s, &catalog()),
            Err(SweepError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn variant_edits_pin_systems_decisively() {
        let s = spec();
        let edits = variant_edits(&s, &[0, 1]);
        assert_eq!(
            edits,
            vec![
                ScenarioEdit::RequireSystem(SystemId::new("A")),
                ScenarioEdit::ForbidSystem(SystemId::new("B")),
                ScenarioEdit::NicCandidates(vec![HardwareId::new("NIC2")]),
            ]
        );
        // The `none` alternative forbids every candidate.
        let edits = variant_edits(&s, &[2, 0]);
        assert_eq!(
            edits,
            vec![
                ScenarioEdit::ForbidSystem(SystemId::new("A")),
                ScenarioEdit::ForbidSystem(SystemId::new("B")),
                ScenarioEdit::NicCandidates(vec![HardwareId::new("NIC1")]),
            ]
        );
        assert_eq!(variant_label(&s, &[2, 0]), "mon=none nic=NIC1");
    }
}
