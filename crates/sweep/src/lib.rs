//! # netarch-sweep
//!
//! The engine enumerating its own test universe. A `sweep` block (lowered
//! by `netarch-dsl` into a [`SweepSpec`]) is a small constraint program
//! over *choice atoms*: each `choose` group contributes exactly one
//! alternative, and `require` / `forbid` prune combinations. This crate
//! compiles that program onto the same logic layer the reasoning engine
//! itself runs on — one Boolean atom per (group, alternative), an
//! exactly-one cardinality constraint per group — and walks every
//! admissible assignment through projected model enumeration.
//!
//! The result is a **deterministic, seeded stream of `Scenario` values**:
//!
//! 1. enumerate the admissible pick-vectors *exhaustively* (the universe
//!    is bounded, so the model set — not just its cardinality — is
//!    independent of solver timing, thread count, and enumeration order),
//! 2. sort them canonically (lexicographic pick indices),
//! 3. shuffle with the sweep's seed through the repo's own xoshiro PRNG,
//! 4. truncate to the sweep's `limit`.
//!
//! Identical inputs therefore produce a bit-identical variant stream on
//! any machine and any `NETARCH_THREADS` setting; the stream digest in
//! [`SweepStream::digest`] makes that contract checkable in CI.
//!
//! Each variant fans out three ways downstream: a differential test case
//! ([`diff`] runs every query kind on a warm session vs a fresh-engine
//! oracle, including budget-bounded traversal of *query orderings*), a
//! bench instance (`exp_sweep`), and an exportable `.narch` corpus entry
//! (`netarch sweep --export`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod diff;

pub use compile::{
    enumerate_sweep, variant_edits, variant_label, variant_scenario, SweepError, SweepStream,
    Variant, MAX_UNIVERSE,
};
pub use diff::{run_differential, variant_tape, DiffOptions, DiffReport, QueryOp};
pub use netarch_dsl::{AltRef, ChoiceGroup, ChoiceKind, SweepConstraint, SweepSpec};
