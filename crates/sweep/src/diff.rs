//! Differential runner: every enumerated variant exercises the warm
//! session engine against a fresh-engine oracle, over every query kind
//! and over multiple *orderings* of the same query tape.
//!
//! The oracle answers are order-free by construction (one throwaway
//! engine per query), so any admissible ordering of the warm session's
//! tape must reproduce them. Traversing the orderings is what catches
//! state leaks between gated queries — a blocking clause that outlives
//! its gate, a memo keyed too coarsely — that a single fixed interleaving
//! would mask. Orderings are walked lexicographically and budget-bounded;
//! with the default 3-op tape the 6-permutation walk is exhaustive. Any
//! disagreement fails fast: the report carries the first divergence and
//! the run stops.

use crate::compile::{variant_label, variant_scenario, SweepStream};
use netarch_core::baseline::validate_design;
use netarch_core::prelude::*;
use netarch_dsl::SweepSpec;

/// One step of a variant's query tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// Feasibility (`check`).
    Check,
    /// Lexicographic optimization (`optimize`).
    Optimize,
    /// Equivalence classes up to the limit (`enumerate_designs`).
    Enumerate(usize),
    /// Rule-subset satisfiability over a mask into the label pool.
    Subset(u32),
    /// Question planning over up to the limit classes (`disambiguate`).
    Disambiguate(usize),
    /// Minimal fleet size up to the bound (`plan_capacity`).
    Capacity(u64),
}

/// Budget knobs for one differential run.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Ops per variant tape. The tape rotates through all six query
    /// kinds across consecutive variants, so every kind is covered on
    /// any window of six variants.
    pub tape_len: usize,
    /// Max orderings traversed per variant (identity ordering first).
    /// `tape_len! ≤ ordering_budget` makes the traversal exhaustive.
    pub ordering_budget: usize,
    /// Limit for `Enumerate` ops.
    pub enumerate_limit: usize,
    /// Limit for `Disambiguate` ops.
    pub disambiguate_limit: usize,
    /// Fleet bound for `Capacity` ops.
    pub capacity_max: u64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            tape_len: 3,
            ordering_budget: 6,
            enumerate_limit: 4,
            disambiguate_limit: 4,
            capacity_max: 8,
        }
    }
}

/// Outcome of a differential run.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Variants exercised.
    pub variants: usize,
    /// Warm sessions compiled (one per traversed ordering).
    pub sessions: u64,
    /// Session queries executed.
    pub queries: u64,
    /// Orderings traversed across all variants.
    pub orderings: u64,
    /// First divergence between a session and the oracle, if any
    /// (fail-fast: the run stops on it).
    pub disagreement: Option<String>,
}

/// The deterministic query tape of one variant: `tape_len` ops starting
/// at kind `index % 6`, parameters varied by the index.
pub fn variant_tape(index: usize, opts: &DiffOptions) -> Vec<QueryOp> {
    (0..opts.tape_len)
        .map(|k| match (index + k) % 6 {
            0 => QueryOp::Check,
            1 => QueryOp::Optimize,
            2 => QueryOp::Enumerate(2 + (index + k) % opts.enumerate_limit.max(1)),
            3 => QueryOp::Subset(index as u32 ^ 0b1011),
            4 => QueryOp::Disambiguate(opts.disambiguate_limit.max(1)),
            _ => QueryOp::Capacity(2 + (index as u64 % opts.capacity_max.max(1))),
        })
        .collect()
}

/// Candidate rule labels for subset queries: compiled rule labels the
/// scenario *may* produce. Absent labels filter to nothing inside
/// `check_rule_subset`, identically on both engines, so the pool can
/// over-approximate freely.
fn label_pool(scenario: &Scenario) -> Vec<String> {
    let mut pool: Vec<String> =
        scenario.roles.keys().map(|c| format!("role:{c}")).collect();
    for w in &scenario.workloads {
        for cap in &w.needs {
            pool.push(format!("workload:{}:needs:{}", w.id, cap));
        }
    }
    for pin in &scenario.pins {
        pool.push(match pin {
            Pin::Require(id) => format!("pin:require:{id}"),
            Pin::Forbid(id) => format!("pin:forbid:{id}"),
        });
    }
    for spec in scenario.catalog.systems() {
        for req in &spec.requires {
            pool.push(format!("req:{}:{}", spec.id, req.label));
        }
    }
    pool
}

/// A semantic answer fingerprint: everything two engines must agree on,
/// nothing they legitimately may not (designs and diagnoses are
/// witnesses, so they are validated, not compared).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Answer {
    Feasible(bool),
    Penalties(Option<Vec<u64>>),
    Classes {
        count: usize,
        /// Sorted system-set fingerprints; `None` when truncated (the
        /// enumerated subsets may then legitimately differ).
        sets: Option<Vec<Vec<String>>>,
    },
    SubsetSat(bool),
    Plan {
        classes: usize,
        truncated: bool,
        residual: usize,
        questions: usize,
    },
    Servers(Option<u64>),
}

fn class_sets(designs: &[Design]) -> Vec<Vec<String>> {
    let mut sets: Vec<Vec<String>> = designs
        .iter()
        .map(|d| d.systems().iter().map(|s| s.to_string()).collect())
        .collect();
    sets.sort();
    sets
}

/// Runs one op on an engine, returning the semantic answer. Designs are
/// validated against the scenario by the SAT-free checker on the way out;
/// an infeasible `check`'s diagnosis is replayed as an UNSAT rule subset
/// on a fresh engine when `replay_diagnosis` is set (once per variant —
/// it compiles an extra engine).
fn run_op(
    engine: &mut Engine,
    scenario: &Scenario,
    pool: &[String],
    op: QueryOp,
    replay_diagnosis: bool,
) -> Result<Answer, String> {
    let fail = |e: CompileError| format!("engine error on {op:?}: {e}");
    match op {
        QueryOp::Check => {
            let outcome = engine.check().map_err(fail)?;
            if let Some(design) = outcome.design() {
                let violations = validate_design(scenario, design);
                if !violations.is_empty() {
                    return Err(format!("check produced an invalid design: {violations:?}"));
                }
            }
            if let Some(diagnosis) = outcome.diagnosis() {
                let labels: Vec<&str> =
                    diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
                if labels.is_empty() {
                    return Err("infeasible check returned an empty diagnosis".into());
                }
                if replay_diagnosis {
                    let mut fresh = Engine::new(scenario.clone()).map_err(fail)?;
                    if fresh.check_rule_subset(&labels).map_err(fail)? {
                        return Err(format!(
                            "diagnosis {labels:?} is satisfiable on a fresh engine"
                        ));
                    }
                }
            }
            Ok(Answer::Feasible(outcome.design().is_some()))
        }
        QueryOp::Optimize => {
            let outcome = engine.optimize().map_err(fail)?;
            Ok(Answer::Penalties(match outcome {
                Ok(optimized) => {
                    let violations = validate_design(scenario, &optimized.design);
                    if !violations.is_empty() {
                        return Err(format!(
                            "optimize produced an invalid design: {violations:?}"
                        ));
                    }
                    Some(optimized.levels.iter().map(|l| l.penalty).collect())
                }
                Err(_) => None,
            }))
        }
        QueryOp::Enumerate(limit) => {
            let designs = engine.enumerate_designs(limit, false).map_err(fail)?;
            for d in &designs {
                let violations = validate_design(scenario, d);
                if !violations.is_empty() {
                    return Err(format!(
                        "enumerate produced an invalid design: {violations:?}"
                    ));
                }
            }
            Ok(Answer::Classes {
                count: designs.len(),
                sets: (designs.len() < limit).then(|| class_sets(&designs)),
            })
        }
        QueryOp::Subset(mask) => {
            let labels: Vec<&str> = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> (i % 32)) & 1 == 1)
                .map(|(_, l)| l.as_str())
                .collect();
            Ok(Answer::SubsetSat(engine.check_rule_subset(&labels).map_err(fail)?))
        }
        QueryOp::Disambiguate(limit) => {
            let plan = engine.disambiguate(limit).map_err(fail)?;
            Ok(Answer::Plan {
                classes: plan.classes,
                truncated: plan.truncated,
                residual: plan.residual_classes,
                questions: plan.questions.len(),
            })
        }
        QueryOp::Capacity(max) => {
            let outcome = engine.plan_capacity(max).map_err(fail)?;
            Ok(Answer::Servers(match outcome {
                Ok(plan) => Some(plan.servers_needed),
                Err(_) => None,
            }))
        }
    }
}

/// Advances `perm` to the next lexicographic permutation; false once the
/// last one has been visited.
fn next_permutation(perm: &mut [usize]) -> bool {
    if perm.len() < 2 {
        return false;
    }
    let Some(i) = (0..perm.len() - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..perm.len()).rev().find(|&j| perm[j] > perm[i]).expect("successor exists");
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

/// Runs the whole stream differentially. Fails fast: the first
/// session-vs-oracle divergence (or invalid witness) is recorded in
/// [`DiffReport::disagreement`] and the run stops there.
///
/// Engine *construction* failures are surfaced as `Err` — a sweep whose
/// variants do not compile is a sweep bug, not a differential finding.
pub fn run_differential(
    spec: &SweepSpec,
    base: &Scenario,
    stream: &SweepStream,
    opts: &DiffOptions,
) -> Result<DiffReport, CompileError> {
    let mut report = DiffReport::default();
    for variant in &stream.variants {
        let scenario = variant_scenario(spec, base, &variant.picks);
        let pool = label_pool(&scenario);
        let tape = variant_tape(variant.index, opts);
        report.variants += 1;

        // Oracle: one throwaway engine per op, so the answers cannot
        // depend on any ordering.
        let mut oracle: Vec<Answer> = Vec::with_capacity(tape.len());
        for (k, &op) in tape.iter().enumerate() {
            let mut fresh = Engine::new(scenario.clone())?;
            match run_op(&mut fresh, &scenario, &pool, op, k == 0) {
                Ok(answer) => oracle.push(answer),
                Err(why) => {
                    report.disagreement = Some(format!(
                        "variant {} [{}] oracle {op:?}: {why}",
                        variant.index,
                        variant_label(spec, &variant.picks),
                    ));
                    return Ok(report);
                }
            }
        }

        let mut perm: Vec<usize> = (0..tape.len()).collect();
        let mut traversed = 0usize;
        loop {
            traversed += 1;
            report.orderings += 1;
            report.sessions += 1;
            let mut session = Engine::new(scenario.clone())?;
            for &slot in &perm {
                let op = tape[slot];
                report.queries += 1;
                let answer = match run_op(&mut session, &scenario, &pool, op, false) {
                    Ok(answer) => answer,
                    Err(why) => {
                        report.disagreement = Some(format!(
                            "variant {} [{}] ordering {perm:?} {op:?}: {why}",
                            variant.index,
                            variant_label(spec, &variant.picks),
                        ));
                        return Ok(report);
                    }
                };
                if answer != oracle[slot] {
                    report.disagreement = Some(format!(
                        "variant {} [{}] ordering {perm:?} {op:?}: session answered \
                         {answer:?}, oracle {:?}",
                        variant.index,
                        variant_label(spec, &variant.picks),
                        oracle[slot],
                    ));
                    return Ok(report);
                }
            }
            let stats = session.stats();
            if stats.recompiles != 0 {
                report.disagreement = Some(format!(
                    "variant {} ordering {perm:?}: session recompiled mid-tape",
                    variant.index
                ));
                return Ok(report);
            }
            if traversed >= opts.ordering_budget || !next_permutation(&mut perm) {
                break;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutations_walk_lexicographically() {
        let mut perm = vec![0, 1, 2];
        let mut seen = vec![perm.clone()];
        while next_permutation(&mut perm) {
            seen.push(perm.clone());
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 1, 2],
                vec![0, 2, 1],
                vec![1, 0, 2],
                vec![1, 2, 0],
                vec![2, 0, 1],
                vec![2, 1, 0],
            ]
        );
    }

    #[test]
    fn tapes_cover_every_query_kind_across_six_variants() {
        let opts = DiffOptions::default();
        let mut kinds = std::collections::BTreeSet::new();
        for index in 0..6 {
            for op in variant_tape(index, &opts) {
                kinds.insert(match op {
                    QueryOp::Check => 0,
                    QueryOp::Optimize => 1,
                    QueryOp::Enumerate(_) => 2,
                    QueryOp::Subset(_) => 3,
                    QueryOp::Disambiguate(_) => 4,
                    QueryOp::Capacity(_) => 5,
                });
            }
        }
        assert_eq!(kinds.len(), 6);
    }
}
