//! Propositional formula AST.
//!
//! Formulas are built over abstract [`Atom`]s (dense integer identifiers;
//! the architecture layer maps them to named facts like "system Snap is
//! selected" or "NICs have timestamps"). Besides the usual connectives the
//! AST has first-class cardinality operators, because "choose exactly one
//! system per role" and "at most k systems may share this resource" are the
//! bread-and-butter constraints of architecture reasoning.

use std::fmt;

/// An abstract propositional atom, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom(pub u32);

impl Atom {
    /// The dense index of this atom.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A propositional formula over [`Atom`]s.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A positive atom occurrence.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction. Empty conjunction is true.
    And(Vec<Formula>),
    /// N-ary disjunction. Empty disjunction is false.
    Or(Vec<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// Exclusive or.
    Xor(Box<Formula>, Box<Formula>),
    /// At most `k` of the operands are true.
    AtMost(u32, Vec<Formula>),
    /// At least `k` of the operands are true.
    AtLeast(u32, Vec<Formula>),
    /// Exactly `k` of the operands are true.
    Exactly(u32, Vec<Formula>),
}

impl Formula {
    /// A positive literal over `atom`.
    pub fn atom(atom: Atom) -> Formula {
        Formula::Atom(atom)
    }

    /// Negation, folding double negation and constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction, flattening nested `And`s and folding constants.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction, flattening nested `Or`s and folding constants.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Material implication `antecedent → consequent`.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Formula {
        match (&antecedent, &consequent) {
            (Formula::True, _) => consequent,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (_, Formula::False) => Formula::not(antecedent),
            _ => Formula::Implies(Box::new(antecedent), Box::new(consequent)),
        }
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::True, _) => b,
            (_, Formula::True) => a,
            (Formula::False, _) => Formula::not(b),
            (_, Formula::False) => Formula::not(a),
            _ => Formula::Iff(Box::new(a), Box::new(b)),
        }
    }

    /// Exclusive or `a ⊕ b`.
    pub fn xor(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::False, _) => b,
            (_, Formula::False) => a,
            (Formula::True, _) => Formula::not(b),
            (_, Formula::True) => Formula::not(a),
            _ => Formula::Xor(Box::new(a), Box::new(b)),
        }
    }

    /// At most `k` of `parts` hold.
    pub fn at_most(k: u32, parts: impl IntoIterator<Item = Formula>) -> Formula {
        let parts: Vec<Formula> = parts.into_iter().collect();
        if k as usize >= parts.len() {
            return Formula::True;
        }
        Formula::AtMost(k, parts)
    }

    /// At least `k` of `parts` hold.
    pub fn at_least(k: u32, parts: impl IntoIterator<Item = Formula>) -> Formula {
        let parts: Vec<Formula> = parts.into_iter().collect();
        if k == 0 {
            return Formula::True;
        }
        if k as usize > parts.len() {
            return Formula::False;
        }
        Formula::AtLeast(k, parts)
    }

    /// Exactly `k` of `parts` hold.
    pub fn exactly(k: u32, parts: impl IntoIterator<Item = Formula>) -> Formula {
        let parts: Vec<Formula> = parts.into_iter().collect();
        if k as usize > parts.len() {
            return Formula::False;
        }
        Formula::Exactly(k, parts)
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: &dyn Fn(Atom) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => assignment(*a),
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
            Formula::Implies(a, b) => !a.eval(assignment) || b.eval(assignment),
            Formula::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
            Formula::Xor(a, b) => a.eval(assignment) != b.eval(assignment),
            Formula::AtMost(k, fs) => count_true(fs, assignment) <= *k as usize,
            Formula::AtLeast(k, fs) => count_true(fs, assignment) >= *k as usize,
            Formula::Exactly(k, fs) => count_true(fs, assignment) == *k as usize,
        }
    }

    /// Collects every atom appearing in the formula (deduplicated, sorted).
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => out.push(*a),
            Formula::Not(f) => f.collect_atoms(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Formula::AtMost(_, fs) | Formula::AtLeast(_, fs) | Formula::Exactly(_, fs) => {
                for f in fs {
                    f.collect_atoms(out);
                }
            }
        }
    }

    /// Number of AST nodes; used by scaling experiments to measure
    /// specification growth (paper §3.1's linearity claim).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
                1 + a.size() + b.size()
            }
            Formula::AtMost(_, fs) | Formula::AtLeast(_, fs) | Formula::Exactly(_, fs) => {
                1 + fs.iter().map(Formula::size).sum::<usize>()
            }
        }
    }
}

fn count_true(fs: &[Formula], assignment: &dyn Fn(Atom) -> bool) -> usize {
    fs.iter().filter(|f| f.eval(assignment)).count()
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom(a) => write!(f, "a{}", a.0),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(fs) => write_nary(f, "∧", fs),
            Formula::Or(fs) => write_nary(f, "∨", fs),
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Iff(a, b) => write!(f, "({a} ↔ {b})"),
            Formula::Xor(a, b) => write!(f, "({a} ⊕ {b})"),
            Formula::AtMost(k, fs) => write_card(f, "≤", *k, fs),
            Formula::AtLeast(k, fs) => write_card(f, "≥", *k, fs),
            Formula::Exactly(k, fs) => write_card(f, "=", *k, fs),
        }
    }
}

fn write_nary(f: &mut fmt::Formatter<'_>, op: &str, fs: &[Formula]) -> fmt::Result {
    write!(f, "(")?;
    for (i, part) in fs.iter().enumerate() {
        if i > 0 {
            write!(f, " {op} ")?;
        }
        write!(f, "{part}")?;
    }
    write!(f, ")")
}

fn write_card(f: &mut fmt::Formatter<'_>, op: &str, k: u32, fs: &[Formula]) -> fmt::Result {
    write!(f, "(Σ[")?;
    for (i, part) in fs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{part}")?;
    }
    write!(f, "] {op} {k})")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Formula::not(Formula::True), Formula::False);
        assert_eq!(Formula::not(Formula::not(a(0))), a(0));
        assert_eq!(Formula::and([Formula::True, a(0)]), a(0));
        assert_eq!(Formula::and([Formula::False, a(0)]), Formula::False);
        assert_eq!(Formula::or([Formula::False, a(1)]), a(1));
        assert_eq!(Formula::or([Formula::True, a(1)]), Formula::True);
        assert_eq!(Formula::implies(Formula::False, a(0)), Formula::True);
        assert_eq!(Formula::implies(a(0), Formula::False), Formula::not(a(0)));
        assert_eq!(Formula::iff(Formula::True, a(2)), a(2));
        assert_eq!(Formula::xor(Formula::False, a(2)), a(2));
    }

    #[test]
    fn and_or_flatten() {
        let f = Formula::and([Formula::and([a(0), a(1)]), a(2)]);
        assert!(matches!(&f, Formula::And(v) if v.len() == 3));
        let g = Formula::or([a(0), Formula::or([a(1), a(2)])]);
        assert!(matches!(&g, Formula::Or(v) if v.len() == 3));
    }

    #[test]
    fn cardinality_bounds_fold() {
        assert_eq!(Formula::at_most(3, [a(0), a(1)]), Formula::True);
        assert_eq!(Formula::at_least(0, [a(0)]), Formula::True);
        assert_eq!(Formula::at_least(3, [a(0), a(1)]), Formula::False);
        assert_eq!(Formula::exactly(5, [a(0)]), Formula::False);
    }

    #[test]
    fn eval_matches_semantics() {
        let f = Formula::and([
            Formula::or([a(0), a(1)]),
            Formula::implies(a(0), a(2)),
            Formula::exactly(1, [a(1), a(2)]),
        ]);
        // a0=T, a1=F, a2=T: or ✓, implies ✓, exactly-1 of {F,T} ✓
        assert!(f.eval(&|x| x != Atom(1)));
        // a0=T, a1=T, a2=T: exactly-1 of {T,T} fails
        assert!(!f.eval(&|_| true));
    }

    #[test]
    fn eval_cardinalities() {
        let xs = [a(0), a(1), a(2)];
        assert!(Formula::AtMost(1, xs.to_vec()).eval(&|x| x == Atom(0)));
        assert!(!Formula::AtMost(1, xs.to_vec()).eval(&|_| true));
        assert!(Formula::AtLeast(2, xs.to_vec()).eval(&|x| x != Atom(1)));
        assert!(Formula::Exactly(3, xs.to_vec()).eval(&|_| true));
        assert!(Formula::Exactly(0, xs.to_vec()).eval(&|_| false));
    }

    #[test]
    fn atoms_are_collected_and_deduped() {
        let f = Formula::and([a(3), Formula::or([a(1), a(3)]), Formula::not(a(2))]);
        assert_eq!(f.atoms(), vec![Atom(1), Atom(2), Atom(3)]);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(a(0).size(), 1);
        assert_eq!(Formula::and([a(0), a(1)]).size(), 3);
        assert_eq!(Formula::implies(a(0), Formula::not(a(1))).size(), 4);
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::implies(a(0), Formula::and([a(1), Formula::not(a(2))]));
        assert_eq!(f.to_string(), "(a0 → (a1 ∧ ¬a2))");
    }
}
