//! The formula encoder: Tseitin transformation onto the CDCL solver.
//!
//! [`Encoder`] owns a [`Solver`], maps [`Atom`]s to solver variables, and
//! turns arbitrary [`Formula`]s into CNF. Assertions can be *grouped* under
//! selector literals (`selector → formula`), which is how the diagnosis
//! layer attributes conflicts back to named architecture rules.

use crate::ast::{Atom, Formula};
use crate::backend::{PortfolioOptions, SolveBackend, Speculation};
use crate::cardinality::{self, CardEncoding};
use crate::sink::ClauseSink;
use netarch_sat::{
    enumerate_projected_cubes, CubeEnumeration, Lit, Portfolio, ProbePool, ProbePoolConfig,
    SolveResult, Solver, Stats, Var,
};
use std::sync::Arc;

/// Encoder configuration.
#[derive(Clone, Debug, Default)]
pub struct EncodeConfig {
    /// Cardinality encoding for top-level (asserted) bounds.
    pub card_encoding: CardEncoding,
    /// Verified-solving mode: record DRAT proofs, mirror every asserted
    /// clause, and validate each verdict with the independent checker —
    /// panicking on any discrepancy. Intended for tests (see
    /// `NETARCH_VERIFY_PROOFS` / [`crate::verify::proofs_requested`]); it
    /// is a correctness tripwire, not a production mode.
    ///
    /// Clauses injected directly through [`Encoder::solver_mut`] bypass the
    /// mirror and are not supported while this mode is on.
    pub verify_proofs: bool,
    /// Backend for [`Encoder::solve_with_backend`]: sequential session
    /// solving (default) or a parallel portfolio for expensive one-shot
    /// verdicts. Like verify mode, the portfolio backend mirrors every
    /// asserted clause (the workers need the CNF), so clauses injected
    /// through [`Encoder::solver_mut`] are unsupported while it is on.
    pub backend: SolveBackend,
    /// Configuration for the underlying session solver (inprocessing
    /// cadence, chronological backtracking, restart policy, …). Also the
    /// base configuration inherited by every portfolio worker when the
    /// portfolio backend is selected.
    pub solver: netarch_sat::SolverConfig,
}

/// Encodes [`Formula`]s into a CDCL solver via the Tseitin transformation.
pub struct Encoder {
    solver: Solver,
    atom_vars: Vec<Option<Var>>,
    true_lit: Option<Lit>,
    config: EncodeConfig,
    aux_vars: usize,
    asserted_clauses: usize,
    /// Active clause gate (see [`Encoder::gated_scope`]): while set, every
    /// asserted clause is weakened with the gate's negation.
    clause_gate: Option<Lit>,
    /// Mirror of every asserted clause, kept in verify mode (the CNF the
    /// independent proof checker validates verdicts against) and in
    /// portfolio mode (the CNF handed to the portfolio workers).
    cnf_mirror: Vec<Vec<Lit>>,
    /// Model adopted from a winning portfolio worker; read by
    /// [`Encoder::atom_value`]/[`Encoder::model_lit_value`] in preference to
    /// the session solver's model, and cleared by every sequential solve.
    model_override: Option<Vec<Option<bool>>>,
    /// Number of solves routed to the portfolio backend.
    portfolio_solves: u64,
    /// Accumulated counters from throwaway parallel-query workers (probe
    /// pools, cube enumerators), folded in via
    /// [`Encoder::absorb_parallel`] so session totals never lose work done
    /// off the session solver.
    worker_stats: Stats,
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new()
    }
}

impl Encoder {
    /// Creates an encoder with default configuration.
    pub fn new() -> Encoder {
        Encoder::with_config(EncodeConfig::default())
    }

    /// Creates an encoder with explicit configuration.
    pub fn with_config(config: EncodeConfig) -> Encoder {
        let mut solver = Solver::with_config(config.solver.clone());
        if config.verify_proofs {
            solver.record_proof();
        }
        Encoder {
            solver,
            atom_vars: Vec::new(),
            true_lit: None,
            config,
            aux_vars: 0,
            asserted_clauses: 0,
            clause_gate: None,
            cnf_mirror: Vec::new(),
            model_override: None,
            portfolio_solves: 0,
            worker_stats: Stats::default(),
        }
    }

    /// True when asserted clauses must be mirrored (verify mode needs the
    /// CNF for the checker; portfolio mode hands it to the workers).
    fn mirror_enabled(&self) -> bool {
        self.config.verify_proofs || self.config.backend.is_portfolio()
    }

    /// Access to the underlying solver (model reads, enumeration).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Snapshot of the session solver's counters — the learned-clause and
    /// conflict totals a serving layer reports per cached session.
    pub fn solver_stats(&self) -> netarch_sat::Stats {
        *self.solver.stats()
    }

    /// Forces one inprocessing round (subsumption, vivification, bounded
    /// variable elimination) on the session solver. Every variable the
    /// encoder allocates for atoms, selectors, or cardinality structure is
    /// frozen, so elimination only ever touches single-assertion Tseitin
    /// auxiliaries and later assertions/assumptions stay valid. Returns
    /// `false` when the instance is proved unsatisfiable at the root.
    pub fn inprocess(&mut self) -> bool {
        self.solver.inprocess()
    }

    /// Number of auxiliary (Tseitin/cardinality) variables created.
    pub fn aux_var_count(&self) -> usize {
        self.aux_vars
    }

    /// Number of clauses asserted through this encoder.
    pub fn clause_count(&self) -> usize {
        self.asserted_clauses
    }

    /// Allocates a solver variable that future clauses or assumptions may
    /// reference, and freezes it so solver inprocessing (bounded variable
    /// elimination) can never remove it — the freeze contract between the
    /// incremental session layer and the solver (see `Solver::freeze_var`).
    /// Atom variables, the global true literal, group selectors, and
    /// cardinality/integer structure variables all go through here; only
    /// single-assertion Tseitin definitions stay eliminable.
    fn alloc_frozen_var(&mut self) -> Var {
        let v = self.solver.new_var();
        self.solver.freeze_var(v);
        v
    }

    /// The solver variable backing `atom`, allocated on first use.
    pub fn atom_var(&mut self, atom: Atom) -> Var {
        let idx = atom.index();
        if idx >= self.atom_vars.len() {
            self.atom_vars.resize(idx + 1, None);
        }
        match self.atom_vars[idx] {
            Some(v) => v,
            None => {
                let v = self.alloc_frozen_var();
                self.atom_vars[idx] = Some(v);
                v
            }
        }
    }

    /// Positive literal for `atom`.
    pub fn atom_lit(&mut self, atom: Atom) -> Lit {
        self.atom_var(atom).positive()
    }

    /// A literal constrained to be true (allocated once).
    pub fn true_lit(&mut self) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = self.alloc_frozen_var().positive();
                // The defining unit is global truth: it must hold even when
                // allocated inside a gated scope, so it bypasses the gate.
                self.add_clause_raw(&[l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    fn add_clause_counted(&mut self, lits: &[Lit]) {
        if let Some(gate) = self.clause_gate {
            if !lits.contains(&!gate) {
                let mut gated = Vec::with_capacity(lits.len() + 1);
                gated.push(!gate);
                gated.extend_from_slice(lits);
                return self.add_clause_raw(&gated);
            }
        }
        self.add_clause_raw(lits);
    }

    fn add_clause_raw(&mut self, lits: &[Lit]) {
        self.asserted_clauses += 1;
        if self.mirror_enabled() {
            self.cnf_mirror.push(lits.to_vec());
        }
        let _ = self.solver.add_clause(lits.iter().copied());
    }

    /// Asserts `formula` as a hard constraint.
    pub fn assert(&mut self, formula: &Formula) {
        match formula {
            Formula::True => {}
            Formula::False => self.add_clause_counted(&[]),
            Formula::And(parts) => {
                for p in parts {
                    self.assert(p);
                }
            }
            Formula::Atom(a) => {
                let l = self.atom_lit(*a);
                self.add_clause_counted(&[l]);
            }
            Formula::Not(inner) if matches!(**inner, Formula::Atom(_)) => {
                if let Formula::Atom(a) = **inner {
                    let l = self.atom_lit(a);
                    self.add_clause_counted(&[!l]);
                }
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                self.add_clause_counted(&lits);
            }
            Formula::Implies(a, b) => {
                let la = self.lit_for(a);
                let lb = self.lit_for(b);
                self.add_clause_counted(&[!la, lb]);
            }
            Formula::AtMost(k, parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                let enc = self.config.card_encoding;
                cardinality::assert_at_most(self, &lits, *k, enc);
            }
            Formula::AtLeast(k, parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                let enc = self.config.card_encoding;
                cardinality::assert_at_least(self, &lits, *k, enc);
            }
            Formula::Exactly(k, parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                let enc = self.config.card_encoding;
                cardinality::assert_exactly(self, &lits, *k, enc);
            }
            other => {
                let l = self.lit_for(other);
                self.add_clause_counted(&[l]);
            }
        }
    }

    /// Asserts `selector → formula`: the formula is active only in solving
    /// contexts where `selector` is assumed (or asserted) true.
    pub fn assert_under(&mut self, selector: Lit, formula: &Formula) {
        match formula {
            Formula::True => {}
            Formula::False => self.add_clause_counted(&[!selector]),
            Formula::And(parts) => {
                for p in parts {
                    self.assert_under(selector, p);
                }
            }
            Formula::Or(parts) => {
                let mut lits: Vec<Lit> = vec![!selector];
                for p in parts {
                    lits.push(self.lit_for(p));
                }
                self.add_clause_counted(&lits);
            }
            Formula::Implies(a, b) => {
                let la = self.lit_for(a);
                let lb = self.lit_for(b);
                self.add_clause_counted(&[!selector, !la, lb]);
            }
            other => {
                let l = self.lit_for(other);
                self.add_clause_counted(&[!selector, l]);
            }
        }
    }

    /// Runs `f` with every asserted clause weakened by `!gate`, so the
    /// whole block of constraints is dormant unless `gate` is assumed (or
    /// asserted) true. Dormant clauses never drive propagation — the
    /// watched `!gate` literal stays unfalsified — which is what lets a
    /// persistent session carry e.g. an objective totalizer without taxing
    /// queries that do not use it.
    ///
    /// Tseitin definitions created *inside* the scope are gated too: any
    /// literal first defined here is only constrained while `gate` holds,
    /// so it must not be referenced by ungated clauses added later.
    /// (Definitions that already existed are reused untouched, and
    /// [`Encoder::true_lit`] always allocates ungated.)
    pub fn gated_scope<R>(&mut self, gate: Lit, f: impl FnOnce(&mut Encoder) -> R) -> R {
        let previous = self.clause_gate.replace(gate);
        let result = f(self);
        self.clause_gate = previous;
        result
    }

    /// Allocates a fresh selector literal for assertion grouping.
    pub fn new_selector(&mut self) -> Lit {
        self.aux_vars += 1;
        // Selectors become assumptions and retirement units later, so they
        // must survive inprocessing even before their first solve.
        self.alloc_frozen_var().positive()
    }

    /// Permanently retires a selector/activation literal by asserting its
    /// negation. Every clause gated on it is satisfied forever and becomes
    /// solver garbage (reclaim with [`Encoder::collect_garbage`]). Routed
    /// through the counted path so the verify-mode CNF mirror and the
    /// clause count stay consistent with the solver.
    pub fn retire(&mut self, selector: Lit) {
        self.asserted_clauses += 1;
        if self.mirror_enabled() {
            self.cnf_mirror.push(vec![!selector]);
        }
        let _ = self.solver.retire(selector);
    }

    /// Runs the solver's level-0 simplification (see
    /// [`netarch_sat::Solver::simplify`]), reclaiming clauses dissolved by
    /// retired activation literals. The CNF mirror is untouched: removed
    /// clauses are root-satisfied, so any later model still satisfies them
    /// and UNSAT proofs log the deletions themselves. Returns `false` when
    /// the instance is known unsatisfiable.
    pub fn collect_garbage(&mut self) -> bool {
        self.solver.simplify()
    }

    /// Returns a literal equivalent to `formula` (full Tseitin, both
    /// polarities usable).
    pub fn lit_for(&mut self, formula: &Formula) -> Lit {
        match formula {
            Formula::True => self.true_lit(),
            Formula::False => !self.true_lit(),
            Formula::Atom(a) => self.atom_lit(*a),
            Formula::Not(inner) => !self.lit_for(inner),
            Formula::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                self.define_and(&lits)
            }
            Formula::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| !self.lit_for(p)).collect();
                !self.define_and(&lits)
            }
            Formula::Implies(a, b) => {
                let la = self.lit_for(a);
                let lb = self.lit_for(b);
                !self.define_and(&[la, !lb])
            }
            Formula::Iff(a, b) => {
                let la = self.lit_for(a);
                let lb = self.lit_for(b);
                self.define_iff(la, lb)
            }
            Formula::Xor(a, b) => {
                let la = self.lit_for(a);
                let lb = self.lit_for(b);
                !self.define_iff(la, lb)
            }
            Formula::AtMost(k, parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                if *k as usize >= lits.len() {
                    return self.true_lit();
                }
                let outputs = cardinality::totalizer_outputs(self, &lits);
                !outputs[*k as usize]
            }
            Formula::AtLeast(k, parts) => {
                if *k == 0 {
                    return self.true_lit();
                }
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                if *k as usize > lits.len() {
                    return !self.true_lit();
                }
                let outputs = cardinality::totalizer_outputs(self, &lits);
                outputs[*k as usize - 1]
            }
            Formula::Exactly(k, parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p)).collect();
                if *k as usize > lits.len() {
                    return !self.true_lit();
                }
                let outputs = cardinality::totalizer_outputs(self, &lits);
                let ge_k = if *k == 0 {
                    self.true_lit()
                } else {
                    outputs[*k as usize - 1]
                };
                let le_k = if *k as usize >= lits.len() {
                    self.true_lit()
                } else {
                    !outputs[*k as usize]
                };
                self.define_and(&[ge_k, le_k])
            }
        }
    }

    /// Tseitin definition `p ⇔ (l₁ ∧ … ∧ lₙ)`.
    fn define_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                self.aux_vars += 1;
                let p = self.solver.new_var().positive();
                for &l in lits {
                    self.add_clause_counted(&[!p, l]);
                }
                let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                clause.push(p);
                self.add_clause_counted(&clause);
                p
            }
        }
    }

    /// Tseitin definition `p ⇔ (a ↔ b)`.
    fn define_iff(&mut self, a: Lit, b: Lit) -> Lit {
        self.aux_vars += 1;
        let p = self.solver.new_var().positive();
        self.add_clause_counted(&[!p, !a, b]);
        self.add_clause_counted(&[!p, a, !b]);
        self.add_clause_counted(&[p, a, b]);
        self.add_clause_counted(&[p, !a, !b]);
        p
    }

    /// Solves the asserted constraints.
    pub fn solve(&mut self) -> SolveResult {
        self.model_override = None;
        let result = self.solver.solve();
        self.verify_outcome(result, &[]);
        result
    }

    /// Solves under assumption literals (e.g. group selectors).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.model_override = None;
        let result = self.solver.solve_with(assumptions);
        self.verify_outcome(result, assumptions);
        result
    }

    /// Solves through the configured [`SolveBackend`]: sequentially on the
    /// session solver, or by racing a diversified portfolio over the
    /// mirrored CNF. A portfolio SAT verdict installs the winner's model as
    /// an override, so [`Encoder::atom_value`] and
    /// [`Encoder::model_lit_value`] read it transparently; any subsequent
    /// sequential solve clears the override.
    ///
    /// Portfolio verdicts do not update the session solver's unsat core —
    /// callers that need cores or MUS extraction must use
    /// [`Encoder::solve_with`].
    pub fn solve_with_backend(&mut self, assumptions: &[Lit]) -> SolveResult {
        match &self.config.backend {
            SolveBackend::Sequential => self.solve_with(assumptions),
            SolveBackend::Portfolio(opts) => {
                let opts = opts.clone();
                self.solve_portfolio(&opts, assumptions)
            }
        }
    }

    /// Number of solves routed to the portfolio backend so far.
    pub fn portfolio_solve_count(&self) -> u64 {
        self.portfolio_solves
    }

    /// Number of worker seats available to the parallel query loops
    /// (racing MaxSAT descent, cube-and-conquer enumeration, speculative
    /// capacity search), or 1 when those loops must run sequentially: the
    /// backend is sequential, `parallel_queries` is switched off, or
    /// verified solving is on (the loops' throwaway workers do not feed the
    /// per-solve DRAT check pipeline, so proof mode keeps every solve on
    /// individually certified paths).
    pub fn parallel_seats(&self) -> usize {
        match &self.config.backend {
            SolveBackend::Portfolio(opts)
                if opts.parallel_queries
                    && opts.num_threads >= 2
                    && !self.config.verify_proofs =>
            {
                opts.num_threads
            }
            _ => 1,
        }
    }

    /// The backend's speculation policy — [`Speculation::Never`] when the
    /// backend is sequential (there are no worker seats to speculate on).
    pub fn speculation(&self) -> Speculation {
        match &self.config.backend {
            SolveBackend::Portfolio(opts) => opts.speculation,
            SolveBackend::Sequential => Speculation::Never,
        }
    }

    /// Spawns a [`ProbePool`] over the mirrored CNF for a parallel query
    /// loop, or `None` when [`Encoder::parallel_seats`] says the loop must
    /// stay sequential. `assumable` must cover every literal any round may
    /// assume: the seats freeze those variables at startup so their
    /// restart-boundary inprocessing never eliminates a variable a later
    /// round assumes. The caller owns the pool's lifecycle: dispatch
    /// rounds, then hand `finish()`'s stats back through
    /// [`Encoder::absorb_parallel`].
    pub fn probe_pool(&self, assumable: &[Lit]) -> Option<ProbePool> {
        let seats = self.parallel_seats();
        if seats < 2 {
            return None;
        }
        let SolveBackend::Portfolio(opts) = &self.config.backend else {
            return None;
        };
        let mut frozen: Vec<Var> = assumable.iter().map(|l| l.var()).collect();
        frozen.sort_unstable();
        frozen.dedup();
        Some(ProbePool::new(ProbePoolConfig {
            seats,
            num_vars: self.solver.num_vars(),
            clauses: Arc::new(self.cnf_mirror.clone()),
            base: self.config.solver.clone(),
            frozen,
            deterministic: opts.deterministic,
            seed: opts.seed,
            conflict_budget: None,
        }))
    }

    /// Cube-and-conquer projected enumeration over the mirrored CNF, or
    /// `None` when the loop must stay sequential. Splits on
    /// `log2(seats)` projection variables (each cube enumerated on its own
    /// worker) and merges models in cube-index order — a deterministic rule,
    /// so the merged order is reproducible in every mode. Worker counters
    /// are folded into the session totals before returning.
    pub fn enumerate_cubes_backend(
        &mut self,
        projection: &[Var],
        assumptions: &[Lit],
        limit: usize,
    ) -> Option<CubeEnumeration> {
        let seats = self.parallel_seats();
        if seats < 2 || projection.is_empty() {
            return None;
        }
        let bits = (usize::BITS - 1 - seats.leading_zeros()) as usize;
        let bits = bits.min(projection.len());
        let out = enumerate_projected_cubes(
            self.solver.num_vars(),
            &self.cnf_mirror,
            &self.config.solver,
            projection,
            assumptions,
            limit,
            bits,
        );
        self.absorb_parallel(&out.stats, 1);
        Some(out)
    }

    /// Value of `atom` in a raw worker model vector (as returned by probe
    /// pools and cube enumeration), without touching the session model.
    pub fn atom_value_in(&self, atom: Atom, model: &[Option<bool>]) -> Option<bool> {
        let v = (*self.atom_vars.get(atom.index())?)?;
        netarch_sat::lit_value_in(model, v.positive())
    }

    /// Installs a worker model as the session's model override — exactly
    /// what a winning one-shot portfolio dispatch does — so
    /// [`Encoder::atom_value`] and [`Encoder::model_lit_value`] read it
    /// until the next sequential solve clears it. The parallel query loops
    /// use this to restore a witness they already hold instead of paying a
    /// fresh solve to rediscover it.
    pub(crate) fn install_model_override(&mut self, model: Vec<Option<bool>>) {
        self.model_override = Some(model);
    }

    /// Folds worker-solver counters from a finished parallel query loop
    /// into the session totals, and counts `rounds` parallel dispatches
    /// toward [`Encoder::portfolio_solve_count`].
    pub fn absorb_parallel(&mut self, workers: &[Stats], rounds: u64) {
        for w in workers {
            self.worker_stats.absorb(w);
        }
        self.portfolio_solves += rounds;
    }

    /// Accumulated counters from parallel-query workers (see
    /// [`Encoder::absorb_parallel`]); add these to
    /// [`Encoder::solver_stats`] for a complete effort total.
    pub fn parallel_worker_stats(&self) -> Stats {
        self.worker_stats
    }

    fn solve_portfolio(&mut self, opts: &PortfolioOptions, assumptions: &[Lit]) -> SolveResult {
        self.model_override = None;
        self.portfolio_solves += 1;
        let portfolio = Portfolio::new(
            opts.to_portfolio_config(self.config.verify_proofs, self.config.solver.clone()),
        );
        let out = portfolio.solve(self.solver.num_vars(), &self.cnf_mirror, assumptions);
        if self.config.verify_proofs {
            if let Err(e) = crate::verify::check_portfolio_outcome(
                self.solver.num_vars(),
                &self.cnf_mirror,
                assumptions,
                &out,
            ) {
                panic!(
                    "NETARCH_VERIFY_PROOFS: portfolio verdict failed independent \
                     verification: {e}"
                );
            }
        }
        if out.result == SolveResult::Sat {
            self.model_override = out.model;
        }
        out.result
    }

    /// In verify mode, every verdict must survive the independent checker:
    /// SAT models are evaluated against the mirrored CNF and UNSAT verdicts
    /// replay their DRAT proof. A failure here means the solver stack lied,
    /// so it panics rather than returning the unreliable verdict.
    fn verify_outcome(&self, result: SolveResult, assumptions: &[Lit]) {
        if !self.config.verify_proofs {
            return;
        }
        if let Err(e) = crate::verify::check_outcome(
            &self.solver,
            self.solver.num_vars(),
            &self.cnf_mirror,
            assumptions,
            result,
        ) {
            panic!("NETARCH_VERIFY_PROOFS: solver verdict failed independent verification: {e}");
        }
    }

    /// Value of `atom` in the latest model; `None` when the atom never
    /// reached the solver or is unassigned. Reads the portfolio winner's
    /// model when one is installed (see [`Encoder::solve_with_backend`]).
    pub fn atom_value(&self, atom: Atom) -> Option<bool> {
        let v = (*self.atom_vars.get(atom.index())?)?;
        self.model_lit_value(v.positive())
    }

    /// Value of a literal in the latest model, honoring a portfolio model
    /// override when present. Use this instead of going through
    /// [`Encoder::solver`] for reads that must see portfolio results.
    pub fn model_lit_value(&self, lit: Lit) -> Option<bool> {
        match &self.model_override {
            Some(m) => m
                .get(lit.var().index())
                .copied()
                .flatten()
                .map(|b| if lit.is_positive() { b } else { !b }),
            None => self.solver.model_lit_value(lit),
        }
    }

    /// Evaluates `formula` under the latest model (unmapped atoms count as
    /// false, matching projected-model semantics).
    pub fn eval_under_model(&self, formula: &Formula) -> bool {
        formula.eval(&|a| self.atom_value(a).unwrap_or(false))
    }

    /// The solver variables backing the given atoms (for projection).
    pub fn projection_vars(&mut self, atoms: &[Atom]) -> Vec<Var> {
        atoms.iter().map(|&a| self.atom_var(a)).collect()
    }
}

impl ClauseSink for Encoder {
    fn fresh_var(&mut self) -> Var {
        self.aux_vars += 1;
        // Cardinality/integer structure variables are constrained again by
        // later incremental assertions (e.g. `OrderInt::assert_le` after
        // construction), so they are frozen like atoms and selectors.
        self.alloc_frozen_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_counted(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    #[test]
    fn assert_and_solve_simple() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1)]));
        e.assert(&Formula::not(a(0)));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(0)), Some(false));
        assert_eq!(e.atom_value(Atom(1)), Some(true));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut e = Encoder::new();
        e.assert(&a(0));
        e.assert(&Formula::not(a(0)));
        assert_eq!(e.solve(), SolveResult::Unsat);
    }

    #[test]
    fn iff_and_xor() {
        let mut e = Encoder::new();
        e.assert(&Formula::iff(a(0), a(1)));
        e.assert(&Formula::xor(a(1), a(2)));
        e.assert(&a(0));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(1)), Some(true));
        assert_eq!(e.atom_value(Atom(2)), Some(false));
    }

    #[test]
    fn nested_formula_through_lit_for() {
        // ((a0 ∧ a1) ∨ ¬a2) must hold, a2 true, a0 false → UNSAT? No:
        // a0=F makes (a0∧a1)=F and ¬a2=F → formula false → UNSAT.
        let mut e = Encoder::new();
        e.assert(&Formula::or([Formula::and([a(0), a(1)]), Formula::not(a(2))]));
        e.assert(&a(2));
        e.assert(&Formula::not(a(0)));
        assert_eq!(e.solve(), SolveResult::Unsat);
    }

    #[test]
    fn selector_groups_toggle_constraints() {
        let mut e = Encoder::new();
        let s1 = e.new_selector();
        let s2 = e.new_selector();
        e.assert_under(s1, &a(0));
        e.assert_under(s2, &Formula::not(a(0)));
        assert_eq!(e.solve_with(&[s1]), SolveResult::Sat);
        assert_eq!(e.solve_with(&[s2]), SolveResult::Sat);
        assert_eq!(e.solve_with(&[s1, s2]), SolveResult::Unsat);
        let core = e.solver().unsat_core().to_vec();
        assert!(core.contains(&s1) && core.contains(&s2));
    }

    #[test]
    fn asserted_cardinalities() {
        let mut e = Encoder::new();
        let xs = [a(0), a(1), a(2), a(3)];
        e.assert(&Formula::exactly(2, xs.clone()));
        e.assert(&a(0));
        e.assert(&a(1));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(2)), Some(false));
        assert_eq!(e.atom_value(Atom(3)), Some(false));
    }

    #[test]
    fn negated_cardinality_via_lit_for() {
        // ¬(at most 1 of {a0,a1,a2}) ⇒ at least 2 are true.
        let mut e = Encoder::new();
        e.assert(&Formula::not(Formula::at_most(1, [a(0), a(1), a(2)])));
        e.assert(&Formula::not(a(0)));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(1)), Some(true));
        assert_eq!(e.atom_value(Atom(2)), Some(true));
    }

    #[test]
    fn exactly_under_negation() {
        // ¬(exactly 1 of {a0,a1}) with a0 forced true ⇒ a1 must be true.
        let mut e = Encoder::new();
        e.assert(&Formula::not(Formula::exactly(1, [a(0), a(1)])));
        e.assert(&a(0));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(1)), Some(true));
    }

    #[test]
    fn eval_under_model_matches_assertions() {
        let mut e = Encoder::new();
        let f = Formula::and([Formula::or([a(0), a(1)]), Formula::not(a(2))]);
        e.assert(&f);
        assert_eq!(e.solve(), SolveResult::Sat);
        assert!(e.eval_under_model(&f));
    }

    #[test]
    fn assert_under_distributes_over_and() {
        // selector → (a0 ∧ a1): both conjuncts independently guarded.
        let mut e = Encoder::new();
        let s = e.new_selector();
        e.assert_under(s, &Formula::and([a(0), a(1)]));
        assert_eq!(e.solve_with(&[s]), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(0)), Some(true));
        assert_eq!(e.atom_value(Atom(1)), Some(true));
        // Without the selector both atoms are free.
        e.assert(&Formula::not(a(0)));
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.solve_with(&[s]), SolveResult::Unsat);
    }

    #[test]
    fn assert_under_or_and_implies() {
        let mut e = Encoder::new();
        let s = e.new_selector();
        e.assert_under(s, &Formula::or([a(0), a(1)]));
        e.assert_under(s, &Formula::implies(a(0), a(2)));
        e.assert(&Formula::not(a(1)));
        e.assert(&Formula::not(a(2)));
        // Under s: a0∨a1, ¬a1 ⇒ a0; a0→a2, ¬a2 ⇒ contradiction.
        assert_eq!(e.solve_with(&[s]), SolveResult::Unsat);
        assert_eq!(e.solve(), SolveResult::Sat);
    }

    #[test]
    fn assert_under_cardinality_falls_through_to_reification() {
        let mut e = Encoder::new();
        let s = e.new_selector();
        e.assert_under(s, &Formula::at_most(1, [a(0), a(1), a(2)]));
        e.assert(&a(0));
        e.assert(&a(1));
        assert_eq!(e.solve(), SolveResult::Sat, "inactive group tolerates 2 atoms");
        assert_eq!(e.solve_with(&[s]), SolveResult::Unsat, "active group enforces AMO");
    }

    #[test]
    fn assert_under_false_kills_only_the_group() {
        let mut e = Encoder::new();
        let s = e.new_selector();
        e.assert_under(s, &Formula::False);
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.solve_with(&[s]), SolveResult::Unsat);
    }

    #[test]
    fn encoder_tracks_metrics() {
        let mut e = Encoder::new();
        e.assert(&Formula::iff(a(0), Formula::and([a(1), a(2)])));
        assert!(e.clause_count() > 0);
        assert!(e.aux_var_count() > 0);
    }

    #[test]
    fn gated_scope_constraints_are_dormant_until_assumed() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1)]));
        let gate = e.new_selector();
        e.gated_scope(gate, |e| e.assert(&Formula::not(a(0))));
        // Without the gate the scope's constraint is dormant.
        let a0 = e.atom_lit(Atom(0));
        assert_eq!(e.solve_with(&[a0]), SolveResult::Sat);
        // Assuming the gate switches it on.
        assert_eq!(e.solve_with(&[gate, a0]), SolveResult::Unsat);
        assert_eq!(e.solve_with(&[gate]), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(1)), Some(true));
        // The scope ended: later assertions are hard again.
        e.assert(&Formula::not(a(1)));
        let a1 = e.atom_lit(Atom(1));
        assert_eq!(e.solve_with(&[a1]), SolveResult::Unsat);
        assert_eq!(e.solve(), SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(0)), Some(true));
    }

    #[test]
    fn gated_scopes_nest_and_restore() {
        let mut e = Encoder::new();
        let outer = e.new_selector();
        let inner = e.new_selector();
        e.gated_scope(outer, |e| {
            e.assert(&Formula::not(a(0)));
            e.gated_scope(inner, |e| e.assert(&Formula::not(a(1))));
            e.assert(&Formula::not(a(2)));
        });
        let lits: Vec<Lit> = (0..3).map(|i| e.atom_lit(Atom(i))).collect();
        // Inner gate controls only a1; outer controls a0 and a2.
        assert_eq!(e.solve_with(&[inner, lits[0], lits[2]]), SolveResult::Sat);
        assert_eq!(e.solve_with(&[inner, lits[1]]), SolveResult::Unsat);
        assert_eq!(e.solve_with(&[outer, lits[1]]), SolveResult::Sat);
        assert_eq!(e.solve_with(&[outer, lits[0]]), SolveResult::Unsat);
    }

    #[test]
    fn true_lit_allocated_inside_a_gated_scope_stays_global() {
        let mut e = Encoder::new();
        let gate = e.new_selector();
        let t = e.gated_scope(gate, |e| e.true_lit());
        // The defining unit bypassed the gate: ¬t is contradictory even
        // though the gate is never assumed.
        assert_eq!(e.solve_with(&[!t]), SolveResult::Unsat);
    }
}
