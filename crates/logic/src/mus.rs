//! Minimal unsatisfiable subset (MUS) extraction over named groups.
//!
//! Architecture diagnosis (paper §6, "Explainability") needs more than
//! "your requirements are unsatisfiable": it must name a *minimal* set of
//! conflicting rules. Each rule is asserted under a selector literal;
//! solving with all selectors assumed yields an unsat core, which a
//! deletion-based loop then shrinks to a minimal subset: removing any
//! single member makes the remainder satisfiable.

use crate::ast::Formula;
use crate::encoder::Encoder;
use netarch_sat::{Lit, SolveResult};

/// Identifier of a tracked assertion group.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroupId(pub usize);

/// A set of named, individually-toggleable assertion groups over an
/// [`Encoder`].
#[derive(Default)]
pub struct GroupedAssertions {
    selectors: Vec<Lit>,
    labels: Vec<String>,
}

impl GroupedAssertions {
    /// Creates an empty group set.
    pub fn new() -> GroupedAssertions {
        GroupedAssertions::default()
    }

    /// Asserts `formula` as a new group named `label`.
    pub fn add_group(
        &mut self,
        encoder: &mut Encoder,
        label: impl Into<String>,
        formula: &Formula,
    ) -> GroupId {
        let selector = encoder.new_selector();
        encoder.assert_under(selector, formula);
        self.selectors.push(selector);
        self.labels.push(label.into());
        GroupId(self.selectors.len() - 1)
    }

    /// Registers an externally-created selector literal as a group.
    ///
    /// For constraints whose clauses were emitted by a specialized encoder
    /// (e.g. guarded pseudo-Boolean bounds) rather than through
    /// [`GroupedAssertions::add_group`]. The caller guarantees every clause
    /// of the constraint carries `¬selector`.
    pub fn adopt_selector(&mut self, selector: Lit, label: impl Into<String>) -> GroupId {
        self.selectors.push(selector);
        self.labels.push(label.into());
        GroupId(self.selectors.len() - 1)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.selectors.len()
    }

    /// True when no groups exist.
    pub fn is_empty(&self) -> bool {
        self.selectors.is_empty()
    }

    /// The label of a group.
    pub fn label(&self, id: GroupId) -> &str {
        &self.labels[id.0]
    }

    /// The selector literal of a group (for custom assumption sets).
    pub fn selector(&self, id: GroupId) -> Lit {
        self.selectors[id.0]
    }

    /// All group ids.
    pub fn ids(&self) -> Vec<GroupId> {
        (0..self.selectors.len()).map(GroupId).collect()
    }

    /// Solves with the given groups active.
    pub fn solve_with_groups(&self, encoder: &mut Encoder, groups: &[GroupId]) -> SolveResult {
        let assumptions: Vec<Lit> = groups.iter().map(|&g| self.selectors[g.0]).collect();
        encoder.solve_with(&assumptions)
    }

    /// Maps an unsat core (selector literals) back to group ids.
    fn core_groups(&self, core: &[Lit]) -> Vec<GroupId> {
        self.selectors
            .iter()
            .enumerate()
            .filter(|(_, s)| core.contains(s))
            .map(|(i, _)| GroupId(i))
            .collect()
    }

    /// Finds a minimal unsatisfiable subset of `candidates`.
    ///
    /// Returns `None` when the candidates are jointly satisfiable. The
    /// returned set is minimal: dropping any one member yields SAT.
    pub fn find_mus(&self, encoder: &mut Encoder, candidates: &[GroupId]) -> Option<Vec<GroupId>> {
        match self.solve_with_groups(encoder, candidates) {
            SolveResult::Sat | SolveResult::Unknown => return None,
            SolveResult::Unsat => {}
        }
        // Seed from the solver's core, then shrink by deletion.
        let core = encoder.solver().unsat_core().to_vec();
        let mut working: Vec<GroupId> = self
            .core_groups(&core)
            .into_iter()
            .filter(|g| candidates.contains(g))
            .collect();
        if working.is_empty() {
            // The hard (ungrouped) constraints are unsatisfiable alone.
            return Some(Vec::new());
        }
        let mut i = 0;
        while i < working.len() {
            let mut trial = working.clone();
            let removed = trial.remove(i);
            match self.solve_with_groups(encoder, &trial) {
                SolveResult::Unsat => {
                    // `removed` is unnecessary; also re-shrink to the new core.
                    let core = encoder.solver().unsat_core().to_vec();
                    let refined: Vec<GroupId> = self
                        .core_groups(&core)
                        .into_iter()
                        .filter(|g| trial.contains(g))
                        .collect();
                    working = if refined.is_empty() { trial } else { refined };
                    i = 0; // membership shifted; restart scan
                    let _ = removed;
                }
                SolveResult::Sat | SolveResult::Unknown => {
                    i += 1; // `removed` is necessary: keep it
                }
            }
        }
        working.sort_unstable();
        Some(working)
    }

    /// Renders a MUS as its labels (diagnosis output).
    pub fn describe(&self, mus: &[GroupId]) -> Vec<String> {
        mus.iter().map(|&g| self.labels[g.0].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    #[test]
    fn satisfiable_groups_have_no_mus() {
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        let g1 = g.add_group(&mut e, "r1", &a(0));
        let g2 = g.add_group(&mut e, "r2", &a(1));
        assert_eq!(g.find_mus(&mut e, &[g1, g2]), None);
    }

    #[test]
    fn two_way_conflict_is_found_exactly() {
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        let g1 = g.add_group(&mut e, "x", &a(0));
        let g2 = g.add_group(&mut e, "not-x", &Formula::not(a(0)));
        let g3 = g.add_group(&mut e, "innocent", &a(1));
        let mus = g.find_mus(&mut e, &[g1, g2, g3]).unwrap();
        assert_eq!(mus, vec![g1, g2]);
        assert_eq!(g.describe(&mus), vec!["x", "not-x"]);
    }

    #[test]
    fn mus_is_minimal_on_chain_conflict() {
        // a0, a0→a1, a1→a2, ¬a2 : all four needed.
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        let ids = vec![
            g.add_group(&mut e, "base", &a(0)),
            g.add_group(&mut e, "step1", &Formula::implies(a(0), a(1))),
            g.add_group(&mut e, "step2", &Formula::implies(a(1), a(2))),
            g.add_group(&mut e, "cap", &Formula::not(a(2))),
            g.add_group(&mut e, "noise", &a(3)),
        ];
        let mus = g.find_mus(&mut e, &ids).unwrap();
        assert_eq!(mus, vec![ids[0], ids[1], ids[2], ids[3]]);
        // Verify minimality directly: dropping any member is SAT.
        for drop in &mus {
            let rest: Vec<GroupId> = mus.iter().copied().filter(|x| x != drop).collect();
            assert_eq!(g.solve_with_groups(&mut e, &rest), SolveResult::Sat);
        }
    }

    #[test]
    fn overlapping_conflicts_return_one_minimal_set() {
        // Two independent conflicts: {x, ¬x} and {y, ¬y}. A MUS is one of
        // them, not their union.
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        let ids = vec![
            g.add_group(&mut e, "x", &a(0)),
            g.add_group(&mut e, "nx", &Formula::not(a(0))),
            g.add_group(&mut e, "y", &a(1)),
            g.add_group(&mut e, "ny", &Formula::not(a(1))),
        ];
        let mus = g.find_mus(&mut e, &ids).unwrap();
        assert_eq!(mus.len(), 2);
        let labels = g.describe(&mus);
        assert!(
            labels == vec!["x", "nx"] || labels == vec!["y", "ny"],
            "unexpected MUS {labels:?}"
        );
    }

    #[test]
    fn hard_constraint_conflict_yields_empty_mus() {
        let mut e = Encoder::new();
        e.assert(&a(0));
        e.assert(&Formula::not(a(0)));
        let mut g = GroupedAssertions::new();
        let g1 = g.add_group(&mut e, "anything", &a(1));
        assert_eq!(g.find_mus(&mut e, &[g1]), Some(Vec::new()));
    }

    #[test]
    fn subset_of_candidates_respected() {
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        let g1 = g.add_group(&mut e, "x", &a(0));
        let _g2 = g.add_group(&mut e, "nx", &Formula::not(a(0)));
        // Only g1 active: satisfiable.
        assert_eq!(g.find_mus(&mut e, &[g1]), None);
    }
}
