//! Bounded integers via the order encoding.
//!
//! An [`OrderInt`] over domain `[lo, hi]` is represented by literals
//! `q_k ⇔ (x ≥ k)` for `k` in `lo+1 ..= hi`, chained by consistency
//! clauses `q_{k+1} → q_k`. Thresholds are single literals, which makes
//! two patterns cheap:
//!
//! * conditional lower bounds — "if the demand reaches `s`, then the
//!   server count must be at least `⌈s/c⌉`" is one binary clause per
//!   generalized-totalizer output;
//! * minimization — `x - lo` equals the number of true `q_k`, so
//!   minimizing `x` is uniform-weight MaxSAT over `¬q_k`.
//!
//! The architecture engine uses this for capacity planning ("what is the
//! smallest server fleet that fits these workloads and systems?").

use crate::sink::ClauseSink;
use netarch_sat::Lit;

/// A bounded integer in the order encoding.
#[derive(Clone, Debug)]
pub struct OrderInt {
    lo: u64,
    hi: u64,
    /// `thresholds[i] ⇔ (x ≥ lo + 1 + i)`.
    thresholds: Vec<Lit>,
}

impl OrderInt {
    /// Allocates a fresh integer variable with domain `[lo, hi]`,
    /// emitting the order-consistency chain.
    ///
    /// # Panics
    /// When `lo > hi`.
    pub fn new(sink: &mut impl ClauseSink, lo: u64, hi: u64) -> OrderInt {
        assert!(lo <= hi, "empty integer domain [{lo}, {hi}]");
        let thresholds: Vec<Lit> = (lo..hi).map(|_| sink.fresh_lit()).collect();
        // q_{k+1} → q_k
        for pair in thresholds.windows(2) {
            sink.add_clause(&[!pair[1], pair[0]]);
        }
        OrderInt { lo, hi, thresholds }
    }

    /// Lower domain bound.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper domain bound.
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// The threshold literals, ascending (`x ≥ lo+1`, `x ≥ lo+2`, …).
    pub fn thresholds(&self) -> &[Lit] {
        &self.thresholds
    }

    /// A literal equivalent to `x ≥ k`. Returns `None` when the bound is
    /// trivially true (`k ≤ lo`, caller needs no constraint) — trivially
    /// false bounds (`k > hi`) also return `None` via `Err`-free design:
    /// use [`OrderInt::ge_const`] to distinguish.
    pub fn ge_lit(&self, k: u64) -> Option<Lit> {
        if k <= self.lo || k > self.hi {
            None
        } else {
            Some(self.thresholds[(k - self.lo - 1) as usize])
        }
    }

    /// Three-way classification of the bound `x ≥ k`.
    pub fn ge_const(&self, k: u64) -> Bound {
        if k <= self.lo {
            Bound::AlwaysTrue
        } else if k > self.hi {
            Bound::AlwaysFalse
        } else {
            Bound::Lit(self.thresholds[(k - self.lo - 1) as usize])
        }
    }

    /// Asserts `x ≥ k`.
    pub fn assert_ge(&self, sink: &mut impl ClauseSink, k: u64) {
        match self.ge_const(k) {
            Bound::AlwaysTrue => {}
            Bound::AlwaysFalse => sink.add_clause(&[]),
            Bound::Lit(l) => sink.add_clause(&[l]),
        }
    }

    /// Asserts `x ≤ k`.
    pub fn assert_le(&self, sink: &mut impl ClauseSink, k: u64) {
        match self.ge_const(k + 1) {
            Bound::AlwaysTrue => sink.add_clause(&[]), // x ≥ k+1 always: contradiction
            Bound::AlwaysFalse => {}
            Bound::Lit(l) => sink.add_clause(&[!l]),
        }
    }

    /// Asserts `x = k`.
    pub fn assert_eq(&self, sink: &mut impl ClauseSink, k: u64) {
        self.assert_ge(sink, k);
        self.assert_le(sink, k);
    }

    /// Asserts `guard → (x ≥ k)`.
    pub fn assert_ge_under(&self, sink: &mut impl ClauseSink, guard: Lit, k: u64) {
        match self.ge_const(k) {
            Bound::AlwaysTrue => {}
            Bound::AlwaysFalse => sink.add_clause(&[!guard]),
            Bound::Lit(l) => sink.add_clause(&[!guard, l]),
        }
    }

    /// Reads the value from a satisfying model.
    pub fn value(&self, model: &dyn Fn(Lit) -> Option<bool>) -> u64 {
        let above = self
            .thresholds
            .iter()
            .take_while(|&&l| model(l) == Some(true))
            .count() as u64;
        self.lo + above
    }

    /// Soft constraints whose uniform-weight minimization minimizes `x`:
    /// one `¬q_k` wish per threshold.
    pub fn minimization_wishes(&self) -> Vec<Lit> {
        self.thresholds.iter().map(|&l| !l).collect()
    }
}

/// Classification of a threshold query against the domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// Holds in every assignment.
    AlwaysTrue,
    /// Holds in no assignment.
    AlwaysFalse,
    /// Equivalent to the literal.
    Lit(Lit),
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_sat::{SolveResult, Solver};

    fn model_fn(s: &Solver) -> impl Fn(Lit) -> Option<bool> + '_ {
        |l| s.model_lit_value(l)
    }

    #[test]
    fn domain_and_thresholds() {
        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 3, 7);
        assert_eq!(x.lo(), 3);
        assert_eq!(x.hi(), 7);
        assert_eq!(x.thresholds().len(), 4);
        assert_eq!(x.ge_const(3), Bound::AlwaysTrue);
        assert_eq!(x.ge_const(8), Bound::AlwaysFalse);
        assert!(matches!(x.ge_const(5), Bound::Lit(_)));
    }

    #[test]
    fn eq_pins_the_value() {
        for k in 3..=7u64 {
            let mut s = Solver::new();
            let x = OrderInt::new(&mut s, 3, 7);
            x.assert_eq(&mut s, k);
            assert_eq!(s.solve(), SolveResult::Sat);
            assert_eq!(x.value(&model_fn(&s)), k);
        }
    }

    #[test]
    fn contradictory_bounds_are_unsat() {
        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 0, 10);
        x.assert_ge(&mut s, 7);
        x.assert_le(&mut s, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn out_of_domain_bounds() {
        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 2, 5);
        x.assert_ge(&mut s, 6); // impossible
        assert_eq!(s.solve(), SolveResult::Unsat);

        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 2, 5);
        x.assert_le(&mut s, 1); // impossible (x ≥ 2 by domain)
        assert_eq!(s.solve(), SolveResult::Unsat);

        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 2, 5);
        x.assert_le(&mut s, 9); // trivial
        x.assert_ge(&mut s, 1); // trivial
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_lower_bound() {
        let mut s = Solver::new();
        let guard = s.new_var().positive();
        let x = OrderInt::new(&mut s, 0, 8);
        x.assert_ge_under(&mut s, guard, 5);
        // Guard off: x can be 0.
        x.assert_le(&mut s, 0);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_lit_value(guard), Some(false));
        // Force the guard: now UNSAT (x ≤ 0 but must be ≥ 5).
        s.add_clause([guard]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn minimization_wishes_drive_value_down() {
        use crate::encoder::Encoder;
        use crate::maxsat::{minimize, MaxSatAlgorithm, Soft};
        use crate::{Atom, Formula};
        // x ∈ [0, 12], constraint x ≥ 9 when a0 (forced true).
        let mut e = Encoder::new();
        e.assert(&Formula::Atom(Atom(0)));
        let guard = e.atom_lit(Atom(0));
        let x = OrderInt::new(&mut e, 0, 12);
        x.assert_ge_under(&mut e, guard, 9);
        // Wish every threshold false; optimum violates exactly 9 wishes.
        let softs: Vec<Soft> = x
            .minimization_wishes()
            .into_iter()
            .enumerate()
            .map(|(i, _)| {
                // Express the wish at the Formula level through a private
                // atom equated to the threshold literal.
                let atom = Atom(1000 + i as u32);
                let a = e.atom_lit(atom);
                let q = x.thresholds()[i];
                netarch_logic_test_glue(&mut e, a, q);
                Soft::new(1, Formula::not(Formula::Atom(atom)))
            })
            .collect();
        match minimize(&mut e, &softs, MaxSatAlgorithm::LinearGte) {
            crate::maxsat::MaxSatOutcome::Optimal { cost, .. } => assert_eq!(cost, 9),
            other => panic!("{other:?}"),
        }
        assert_eq!(x.value(&|l| e.solver().model_lit_value(l)), 9);
    }

    /// Equates an atom literal with an arbitrary solver literal.
    fn netarch_logic_test_glue(sink: &mut impl ClauseSink, a: Lit, b: Lit) {
        sink.add_clause(&[!a, b]);
        sink.add_clause(&[a, !b]);
    }

    #[test]
    fn value_reads_partial_chains_correctly() {
        let mut s = Solver::new();
        let x = OrderInt::new(&mut s, 0, 3);
        x.assert_ge(&mut s, 2);
        x.assert_le(&mut s, 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(x.value(&model_fn(&s)), 2);
    }

    #[test]
    #[should_panic(expected = "empty integer domain")]
    fn empty_domain_panics() {
        let mut s = Solver::new();
        let _ = OrderInt::new(&mut s, 5, 4);
    }
}
