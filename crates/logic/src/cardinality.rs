//! Cardinality constraint encodings.
//!
//! Three encodings with different size/propagation tradeoffs:
//!
//! * **Pairwise** — for at-most-one over few literals: O(n²) binary clauses,
//!   no auxiliary variables, perfect propagation.
//! * **Sequential counter** (Sinz 2005) — assert-only at-most-k with
//!   O(n·k) clauses and auxiliaries.
//! * **Totalizer** (Bailleux & Boutaouy 2003) — a balanced merge tree whose
//!   outputs `o_j ⇔ (at least j inputs true)` hold in *both* directions,
//!   enabling reified cardinality and assumption-based bound tightening
//!   (used by the MaxSAT engine and the preference optimizer).
//!
//! The paper's engine leans on these for "exactly one system per role" and
//! resource-exclusivity rules (§2.2 "Resource contention").

use crate::sink::ClauseSink;
use netarch_sat::Lit;

/// Which cardinality encoding to emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CardEncoding {
    /// Choose automatically from `n` and `k`.
    #[default]
    Auto,
    /// Pairwise (only valid for `k == 1`).
    Pairwise,
    /// Sinz sequential counter.
    SequentialCounter,
    /// Bailleux-Boutaouy totalizer.
    Totalizer,
}

/// Asserts that at most `k` of `lits` are true.
pub fn assert_at_most(sink: &mut impl ClauseSink, lits: &[Lit], k: u32, enc: CardEncoding) {
    let n = lits.len();
    if k as usize >= n {
        return; // trivially satisfied
    }
    if k == 0 {
        for &l in lits {
            sink.add_clause(&[!l]);
        }
        return;
    }
    match enc {
        CardEncoding::Pairwise => {
            assert_eq!(k, 1, "pairwise encoding only supports k = 1");
            pairwise_amo(sink, lits);
        }
        CardEncoding::SequentialCounter => sequential_at_most(sink, lits, k),
        CardEncoding::Totalizer => {
            let outputs = totalizer_outputs(sink, lits);
            // outputs[j] ⇔ at least j+1 true; forbid reaching k+1.
            sink.add_clause(&[!outputs[k as usize]]);
        }
        CardEncoding::Auto => {
            if k == 1 && n <= 8 {
                pairwise_amo(sink, lits);
            } else {
                sequential_at_most(sink, lits, k);
            }
        }
    }
}

/// Asserts that at least `k` of `lits` are true.
pub fn assert_at_least(sink: &mut impl ClauseSink, lits: &[Lit], k: u32, enc: CardEncoding) {
    let n = lits.len() as u32;
    if k == 0 {
        return;
    }
    assert!(k <= n, "at-least-{k} over {n} literals is unsatisfiable; assert False instead");
    if k == 1 {
        sink.add_clause(lits);
        return;
    }
    // ≥k of x  ⇔  ≤ n-k of ¬x
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    let enc = if enc == CardEncoding::Pairwise {
        CardEncoding::Auto // pairwise cannot express the complement bound
    } else {
        enc
    };
    assert_at_most(sink, &negated, n - k, enc);
}

/// Asserts that exactly `k` of `lits` are true.
pub fn assert_exactly(sink: &mut impl ClauseSink, lits: &[Lit], k: u32, enc: CardEncoding) {
    assert_at_most(sink, lits, k, enc);
    assert_at_least(sink, lits, k, enc);
}

/// Pairwise at-most-one: one binary clause per literal pair.
fn pairwise_amo(sink: &mut impl ClauseSink, lits: &[Lit]) {
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            sink.add_clause(&[!lits[i], !lits[j]]);
        }
    }
}

/// Sinz sequential counter: registers `s[i][j]` = "at least j+1 true among
/// the first i+1 literals". Assert-only (sums may be over-approximated).
fn sequential_at_most(sink: &mut impl ClauseSink, lits: &[Lit], k: u32) {
    let n = lits.len();
    let k = k as usize;
    debug_assert!(k >= 1 && k < n);
    // s[i][j] for i in 0..n-1, j in 0..k
    let mut prev: Vec<Lit> = Vec::with_capacity(k);
    for (i, &x) in lits.iter().enumerate() {
        if i == n - 1 {
            // Final literal: forbid x when the counter already reached k.
            if let Some(&top) = prev.get(k - 1) {
                sink.add_clause(&[!x, !top]);
            }
            break;
        }
        let row: Vec<Lit> = (0..k).map(|_| sink.fresh_lit()).collect();
        // x_i → s_i,1
        sink.add_clause(&[!x, row[0]]);
        if i > 0 {
            for j in 0..k {
                // s_{i-1},j → s_i,j
                sink.add_clause(&[!prev[j], row[j]]);
                // x_i ∧ s_{i-1},j → s_i,j+1
                if j + 1 < k {
                    sink.add_clause(&[!x, !prev[j], row[j + 1]]);
                }
            }
            // x_i ∧ s_{i-1},k → ⊥
            sink.add_clause(&[!x, !prev[k - 1]]);
        }
        prev = row;
    }
}

/// Builds a both-direction totalizer over `lits`.
///
/// Returns outputs `o_0..o_{n-1}` where `o_j` is true **iff** at least
/// `j + 1` of the inputs are true. Both implications are encoded, so the
/// outputs may be used under any polarity (reification, assumptions).
pub fn totalizer_outputs(sink: &mut impl ClauseSink, lits: &[Lit]) -> Vec<Lit> {
    match lits.len() {
        0 => Vec::new(),
        1 => vec![lits[0]],
        _ => {
            let mid = lits.len() / 2;
            let left = totalizer_outputs(sink, &lits[..mid]);
            let right = totalizer_outputs(sink, &lits[mid..]);
            merge_totalizer(sink, &left, &right)
        }
    }
}

/// Merges two sorted unary counters into one (the totalizer "adder").
fn merge_totalizer(sink: &mut impl ClauseSink, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (r, s) = (a.len(), b.len());
    let out: Vec<Lit> = (0..r + s).map(|_| sink.fresh_lit()).collect();
    // Direction 1: a_i ∧ b_j → c_{i+j} (1-based; index 0 = constant true).
    for i in 0..=r {
        for j in 0..=s {
            if i + j == 0 {
                continue;
            }
            let mut clause = Vec::with_capacity(3);
            if i > 0 {
                clause.push(!a[i - 1]);
            }
            if j > 0 {
                clause.push(!b[j - 1]);
            }
            clause.push(out[i + j - 1]);
            sink.add_clause(&clause);
        }
    }
    // Direction 2: ¬a_{i+1} ∧ ¬b_{j+1} → ¬c_{i+j+1}
    // (out-of-range a_{r+1}, b_{s+1} are constant false).
    for i in 0..=r {
        for j in 0..=s {
            if i + j >= r + s {
                continue;
            }
            let mut clause = Vec::with_capacity(3);
            if i < r {
                clause.push(a[i]);
            }
            if j < s {
                clause.push(b[j]);
            }
            clause.push(!out[i + j]);
            sink.add_clause(&clause);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use netarch_sat::{SolveResult, Solver, Var};

    /// Builds `n` input vars in a fresh solver.
    fn inputs(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    /// Counts models of the constraint over `n` inputs, projected on inputs.
    fn count_projected(build: impl Fn(&mut Solver, &[Lit]), n: usize) -> usize {
        let mut s = Solver::new();
        let xs = inputs(&mut s, n);
        build(&mut s, &xs);
        let vars: Vec<Var> = xs.iter().map(|l| l.var()).collect();
        let (count, truncated) =
            netarch_sat::enumerate::count_models(&mut s, &vars, 1 << n);
        assert!(!truncated);
        count
    }

    fn binomial_sum_le(n: usize, k: usize) -> usize {
        (0..=k).map(|i| binomial(n, i)).sum()
    }

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut result = 1usize;
        for i in 0..k {
            result = result * (n - i) / (i + 1);
        }
        result
    }

    #[test]
    fn at_most_counts_models_all_encodings() {
        for n in 2..=6usize {
            for k in 1..n as u32 {
                for enc in [
                    CardEncoding::SequentialCounter,
                    CardEncoding::Totalizer,
                    CardEncoding::Auto,
                ] {
                    let count =
                        count_projected(|s, xs| assert_at_most(s, xs, k, enc), n);
                    assert_eq!(
                        count,
                        binomial_sum_le(n, k as usize),
                        "AMK n={n} k={k} enc={enc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pairwise_amo_counts_models() {
        for n in 2..=6usize {
            let count = count_projected(|s, xs| assert_at_most(s, xs, 1, CardEncoding::Pairwise), n);
            assert_eq!(count, n + 1);
        }
    }

    #[test]
    fn at_least_counts_models() {
        for n in 2..=6usize {
            for k in 1..=n as u32 {
                let count = count_projected(
                    |s, xs| assert_at_least(s, xs, k, CardEncoding::Auto),
                    n,
                );
                let expected: usize =
                    (k as usize..=n).map(|i| binomial(n, i)).sum();
                assert_eq!(count, expected, "ALK n={n} k={k}");
            }
        }
    }

    #[test]
    fn exactly_counts_models() {
        for n in 2..=6usize {
            for k in 0..=n as u32 {
                let count = count_projected(
                    |s, xs| assert_exactly(s, xs, k, CardEncoding::Auto),
                    n,
                );
                assert_eq!(count, binomial(n, k as usize), "EXK n={n} k={k}");
            }
        }
    }

    #[test]
    fn totalizer_outputs_reflect_input_count_both_directions() {
        // Force specific inputs true/false and check every output's value.
        for n in 1..=5usize {
            for bits in 0u32..(1 << n) {
                let mut s = Solver::new();
                let xs = inputs(&mut s, n);
                let outs = totalizer_outputs(&mut s, &xs);
                for (i, &x) in xs.iter().enumerate() {
                    if (bits >> i) & 1 == 1 {
                        s.add_clause([x]);
                    } else {
                        s.add_clause([!x]);
                    }
                }
                assert_eq!(s.solve(), SolveResult::Sat);
                let true_count = bits.count_ones() as usize;
                for (j, &o) in outs.iter().enumerate() {
                    let expected = true_count > j;
                    assert_eq!(
                        s.model_lit_value(o),
                        Some(expected),
                        "n={n} bits={bits:b} output {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut s = Solver::new();
        let xs = inputs(&mut s, 3);
        assert_at_most(&mut s, &xs, 0, CardEncoding::Auto);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &xs {
            assert_eq!(s.model_lit_value(x), Some(false));
        }
    }

    #[test]
    fn trivial_bounds_emit_nothing() {
        let mut sink = CollectSink::default();
        let xs: Vec<Lit> = (0..3).map(|_| sink.fresh_lit()).collect();
        assert_at_most(&mut sink, &xs, 3, CardEncoding::Auto);
        assert_at_least(&mut sink, &xs, 0, CardEncoding::Auto);
        assert!(sink.clauses.is_empty());
    }

    #[test]
    fn sequential_counter_size_is_linear_in_n_times_k() {
        let mut sink = CollectSink::default();
        let xs: Vec<Lit> = (0..40).map(|_| sink.fresh_lit()).collect();
        assert_at_most(&mut sink, &xs, 3, CardEncoding::SequentialCounter);
        // O(n*k) clauses: generous bound to catch superlinear regressions.
        assert!(sink.clauses.len() < 40 * 3 * 4, "got {}", sink.clauses.len());
    }
}
