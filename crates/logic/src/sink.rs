//! The clause sink abstraction.
//!
//! Encodings (Tseitin, cardinality, pseudo-Boolean) are written against
//! [`ClauseSink`] rather than a concrete solver so they can be unit-tested
//! against a plain clause collector and reused by the MUS extractor, which
//! routes clauses through selector literals.

use netarch_sat::{Lit, SolveResult, Solver, Var};

/// A consumer of CNF clauses that can also mint fresh variables.
pub trait ClauseSink {
    /// Allocates a fresh variable unconstrained so far.
    fn fresh_var(&mut self) -> Var;

    /// Adds a clause (a disjunction of literals).
    fn add_clause(&mut self, lits: &[Lit]);

    /// Convenience: allocates a fresh positive literal.
    fn fresh_lit(&mut self) -> Lit {
        self.fresh_var().positive()
    }
}

impl ClauseSink for Solver {
    fn fresh_var(&mut self) -> Var {
        self.new_var()
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        // Solver::add_clause reports falsity through its return value and
        // `is_consistent`; sinks don't need the result.
        let _ = Solver::add_clause(self, lits.iter().copied());
    }
}

/// A sink that records clauses for inspection (testing / size metrics).
#[derive(Default)]
pub struct CollectSink {
    /// Number of variables minted (dense from 0).
    pub num_vars: usize,
    /// Clauses received, in order.
    pub clauses: Vec<Vec<Lit>>,
}

impl CollectSink {
    /// Creates a collector pre-sized with `num_vars` existing variables.
    pub fn with_vars(num_vars: usize) -> CollectSink {
        CollectSink { num_vars, clauses: Vec::new() }
    }

    /// Total literal count across collected clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Replays the collected clauses into a solver and solves.
    pub fn solve(&self) -> SolveResult {
        let mut s = Solver::new();
        s.ensure_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s.solve()
    }
}

impl ClauseSink for CollectSink {
    fn fresh_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_counts_vars_and_clauses() {
        let mut sink = CollectSink::default();
        let a = sink.fresh_lit();
        let b = sink.fresh_lit();
        sink.add_clause(&[a, b]);
        sink.add_clause(&[!a]);
        assert_eq!(sink.num_vars, 2);
        assert_eq!(sink.clauses.len(), 2);
        assert_eq!(sink.num_literals(), 3);
        assert_eq!(sink.solve(), SolveResult::Sat);
    }

    #[test]
    fn solver_implements_sink() {
        let mut s = Solver::new();
        let v = ClauseSink::fresh_var(&mut s);
        ClauseSink::add_clause(&mut s, &[v.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v), Some(true));
    }
}
