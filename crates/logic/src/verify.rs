//! Solve-then-check: SAT solving with independently verified answers.
//!
//! [`verified_solve`] is the paranoid entry point into the solver stack:
//! every SAT answer is re-validated against the clause list (the model must
//! satisfy every clause), and every UNSAT answer must come with a DRAT
//! proof that the independent checker in `netarch_sat::checker` accepts —
//! propagation code the solver itself does not share, so a solver bug
//! cannot self-certify. Checker failures surface as a distinct
//! [`VerifyError`] instead of a wrong verdict.
//!
//! The [`Encoder`](crate::Encoder) exposes the same discipline as an opt-in
//! mode (`EncodeConfig::verify_proofs`), which `netarch-core` switches on
//! under the `NETARCH_VERIFY_PROOFS` environment variable (see
//! [`proofs_requested`]).

use netarch_sat::{
    check_refutation, check_refutation_under_assumptions, CheckError, Lit, PortfolioResult,
    SolveResult, Solver,
};

/// Why a verified solve refused to vouch for the solver's answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The solver answered SAT but its model falsifies a clause.
    ModelViolation {
        /// The clause the model does not satisfy.
        clause: Vec<Lit>,
    },
    /// The solver answered UNSAT but its DRAT proof does not check out.
    ProofRejected(CheckError),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::ModelViolation { clause } => {
                write!(f, "SAT model falsifies clause {clause:?}")
            }
            VerifyError::ProofRejected(e) => write!(f, "UNSAT proof rejected: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A solve outcome the independent checker has vouched for.
pub struct Verified {
    /// The (now certified) solver verdict.
    pub result: SolveResult,
    /// The solver after the run: read the model after SAT, the unsat core
    /// after UNSAT.
    pub solver: Solver,
}

/// Solves `clauses` under `assumptions` with proof logging on, then
/// independently validates the answer.
///
/// - SAT: the model is checked against every clause.
/// - UNSAT with no assumptions: the recorded DRAT refutation is replayed
///   through `netarch_sat::check_refutation`.
/// - UNSAT under assumptions: the proof is replayed and the reported core's
///   clause (`¬a₁ ∨ … ∨ ¬aₖ`) must be entailed
///   (`check_refutation_under_assumptions`).
/// - Unknown (budget exhaustion) makes no claim, so nothing is checked.
pub fn verified_solve(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
) -> Result<Verified, VerifyError> {
    let mut solver = Solver::new();
    solver.record_proof();
    solver.ensure_vars(num_vars);
    for clause in clauses {
        solver.add_clause(clause.iter().copied());
    }
    let result = solver.solve_with(assumptions);
    check_outcome(&solver, num_vars.max(solver.num_vars()), clauses, assumptions, result)?;
    Ok(Verified { result, solver })
}

/// Validates an already-produced outcome of a recording solver against the
/// clause list it was (externally) built from. Shared by [`verified_solve`]
/// and the encoder's verify mode.
pub fn check_outcome(
    solver: &Solver,
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    result: SolveResult,
) -> Result<(), VerifyError> {
    match result {
        SolveResult::Sat => {
            for clause in clauses {
                let satisfied =
                    clause.iter().any(|&l| solver.model_lit_value(l) == Some(true));
                if !satisfied {
                    return Err(VerifyError::ModelViolation { clause: clause.clone() });
                }
            }
            Ok(())
        }
        SolveResult::Unsat => {
            let proof = solver
                .recorded_proof()
                .expect("verified solving requires Solver::record_proof");
            let checked = if assumptions.is_empty() {
                check_refutation(num_vars, clauses, proof)
            } else {
                check_refutation_under_assumptions(num_vars, clauses, proof, solver.unsat_core())
            };
            checked.map_err(VerifyError::ProofRejected)
        }
        SolveResult::Unknown => Ok(()),
    }
}

/// Validates a portfolio verdict against the clause list the workers were
/// given. SAT verdicts must carry a model satisfying every clause; UNSAT
/// verdicts must carry a DRAT proof the independent checker accepts (the
/// portfolio disables clause sharing under proof mode precisely so the
/// winner's proof is self-contained). Unknown makes no claim.
pub fn check_portfolio_outcome(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    assumptions: &[Lit],
    outcome: &PortfolioResult,
) -> Result<(), VerifyError> {
    match outcome.result {
        SolveResult::Sat => {
            let model = outcome.model.as_deref().unwrap_or(&[]);
            let lit_true = |l: &Lit| {
                model
                    .get(l.var().index())
                    .copied()
                    .flatten()
                    .map(|b| b == l.is_positive())
                    == Some(true)
            };
            for clause in clauses {
                if !clause.iter().any(lit_true) {
                    return Err(VerifyError::ModelViolation { clause: clause.clone() });
                }
            }
            Ok(())
        }
        SolveResult::Unsat => {
            let proof = outcome
                .proof
                .as_ref()
                .expect("portfolio proof mode must attach a proof to UNSAT verdicts");
            let checked = if assumptions.is_empty() {
                check_refutation(num_vars, clauses, proof)
            } else {
                check_refutation_under_assumptions(num_vars, clauses, proof, &outcome.core)
            };
            checked.map_err(VerifyError::ProofRejected)
        }
        SolveResult::Unknown => Ok(()),
    }
}

/// True when the `NETARCH_VERIFY_PROOFS` environment variable requests
/// verified solving (set to anything nonempty other than `0`).
pub fn proofs_requested() -> bool {
    verify_flag_enabled(std::env::var("NETARCH_VERIFY_PROOFS").ok().as_deref())
}

/// Interprets a raw `NETARCH_VERIFY_PROOFS` value. Split out so tests can
/// exercise the parse rules without mutating process-global environment
/// state (which races with parallel test threads).
fn verify_flag_enabled(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_sat::Var;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    #[test]
    fn sat_outcome_is_verified() {
        let clauses = vec![vec![lit(1), lit(2)], vec![lit(-1)]];
        let v = verified_solve(2, &clauses, &[]).unwrap();
        assert_eq!(v.result, SolveResult::Sat);
        assert_eq!(v.solver.model_value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn unsat_outcome_is_verified() {
        let clauses =
            vec![vec![lit(1), lit(2)], vec![lit(-1), lit(2)], vec![lit(1), lit(-2)], vec![
                lit(-1),
                lit(-2),
            ]];
        let v = verified_solve(2, &clauses, &[]).unwrap();
        assert_eq!(v.result, SolveResult::Unsat);
    }

    #[test]
    fn assumption_unsat_outcome_is_verified() {
        let clauses = vec![vec![lit(-1), lit(3)], vec![lit(-2), lit(-3)]];
        let v = verified_solve(3, &clauses, &[lit(1), lit(2)]).unwrap();
        assert_eq!(v.result, SolveResult::Unsat);
        assert!(!v.solver.unsat_core().is_empty());
    }

    #[test]
    fn empty_clause_outcome_is_verified() {
        let clauses = vec![vec![]];
        let v = verified_solve(1, &clauses, &[]).unwrap();
        assert_eq!(v.result, SolveResult::Unsat);
    }

    #[test]
    fn check_outcome_rejects_mismatched_clause_list() {
        // Solve one formula, validate against another: the checker must
        // refuse to certify the verdict.
        let unsat = vec![vec![lit(1)], vec![lit(-1)]];
        let sat = vec![vec![lit(1), lit(2)]];
        let mut solver = Solver::new();
        solver.record_proof();
        solver.ensure_vars(2);
        for c in &unsat {
            solver.add_clause(c.iter().copied());
        }
        let result = solver.solve();
        assert_eq!(result, SolveResult::Unsat);
        assert!(matches!(
            check_outcome(&solver, 2, &sat, &[], result),
            Err(VerifyError::ProofRejected(_))
        ));
    }

    #[test]
    fn env_gate_parses_conventional_values() {
        // Exercised through the pure helper: mutating the real variable
        // with set_var/remove_var races with parallel test threads.
        assert!(!verify_flag_enabled(None));
        assert!(!verify_flag_enabled(Some("")));
        assert!(!verify_flag_enabled(Some("0")));
        assert!(verify_flag_enabled(Some("1")));
        assert!(verify_flag_enabled(Some("true")));
        assert!(verify_flag_enabled(Some("yes")));
    }
}
