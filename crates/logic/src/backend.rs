//! Solve-backend selection: sequential session solver vs parallel portfolio.
//!
//! The incremental session solver is the default — it carries learned
//! clauses, heuristic state, and activation-literal bookkeeping across
//! queries, which a freshly-spawned portfolio cannot. The portfolio backend
//! is worth its setup cost only on expensive *one-shot* verdicts (optimize
//! descent probes, capacity binary-search probes), where the engine routes
//! through [`Encoder::solve_with_backend`](crate::Encoder::solve_with_backend)
//! while everything core/MUS-bearing stays sequential.
//!
//! The `NETARCH_THREADS` environment variable selects the backend globally:
//! unset, empty, `0`, or `1` mean sequential; `N ≥ 2` means an N-worker
//! portfolio (see [`threads_requested`]).

use netarch_sat::{PortfolioConfig, SolverConfig};

/// Which solver executes a query's decisive solve calls.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum SolveBackend {
    /// The encoder's own incremental session solver.
    #[default]
    Sequential,
    /// A diversified parallel portfolio (fresh workers per solve).
    Portfolio(PortfolioOptions),
}

impl SolveBackend {
    /// True for the portfolio variant.
    pub fn is_portfolio(&self) -> bool {
        matches!(self, SolveBackend::Portfolio(_))
    }

    /// A portfolio backend with `num_threads` workers and default options.
    pub fn portfolio(num_threads: usize) -> SolveBackend {
        SolveBackend::Portfolio(PortfolioOptions {
            num_threads,
            ..PortfolioOptions::default()
        })
    }
}

/// When a speculative query loop (today: the capacity binary search's
/// probe-pool pass) may engage. The pool pays a real setup cost — the
/// session CNF is cloned into every worker seat — so engaging it
/// unconditionally *loses* wall time whenever the machine cannot run the
/// seats concurrently or the search interval is too narrow to amortize
/// the clones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Speculation {
    /// Engage only when the cost heuristic says the pool pays for itself:
    /// a wide open interval *and* enough physical parallelism to actually
    /// run the seats concurrently.
    #[default]
    Auto,
    /// Always engage — for tests and A/B measurement of the pass itself.
    Always,
    /// Never engage; the sequential midpoint loop does all the work.
    Never,
}

/// Portfolio tuning exposed at the logic layer.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioOptions {
    /// Worker count (≥ 1; 1 degenerates to a sequential-equivalent worker).
    pub num_threads: usize,
    /// Export filter: learnt clauses with LBD above this stay private.
    pub lbd_threshold: u32,
    /// Deterministic arbitration (no cancellation, no sharing) for
    /// reproducible runs; see `netarch_sat::portfolio`.
    pub deterministic: bool,
    /// Diversification seed threaded into every worker's RNG.
    pub seed: u64,
    /// Gates the parallel *query loops* (racing MaxSAT descent,
    /// cube-and-conquer enumeration, speculative capacity search)
    /// independently of one-shot probe routing. On by default; turn off to
    /// fall back to sequential loops while keeping portfolio probes.
    pub parallel_queries: bool,
    /// Engagement policy for speculative probe-pool passes.
    pub speculation: Speculation,
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            num_threads: 4,
            lbd_threshold: 4,
            deterministic: false,
            seed: 0,
            parallel_queries: true,
            speculation: Speculation::default(),
        }
    }
}

impl PortfolioOptions {
    /// Lowers these options into a `netarch_sat` portfolio configuration.
    /// `verify_proofs` disables sharing inside the portfolio and makes every
    /// worker log a DRAT proof. `base` is the solver configuration every
    /// worker inherits before diversification — this is how inprocessing
    /// and chronological-backtracking settings reach portfolio workers.
    pub fn to_portfolio_config(&self, verify_proofs: bool, base: SolverConfig) -> PortfolioConfig {
        PortfolioConfig {
            num_threads: self.num_threads,
            base,
            lbd_threshold: self.lbd_threshold,
            deterministic: self.deterministic,
            verify_proofs,
            seed: self.seed,
            conflict_budget: None,
        }
    }
}

/// Thread count requested via the `NETARCH_THREADS` environment variable,
/// or `None` when unset/invalid (which callers treat as sequential).
pub fn threads_requested() -> Option<usize> {
    parse_threads(std::env::var("NETARCH_THREADS").ok().as_deref())
}

/// The backend selected by the environment: a portfolio when
/// `NETARCH_THREADS` requests two or more workers, sequential otherwise.
/// Three further knobs refine a portfolio backend: `NETARCH_PARALLEL_QUERIES`
/// (`0`/`off` keeps the query loops sequential while one-shot probes still
/// use the portfolio), `NETARCH_DETERMINISTIC` (`1`/`on` selects
/// deterministic arbitration — bit-identical runs, no cancellation), and
/// `NETARCH_SPECULATE` (`1`/`on` forces speculative probe-pool passes on,
/// `0`/`off` forces them off; unset leaves the [`Speculation::Auto`]
/// cost heuristic in charge).
pub fn backend_from_env() -> SolveBackend {
    match threads_requested() {
        Some(n) if n >= 2 => {
            let mut opts = PortfolioOptions {
                num_threads: n,
                ..PortfolioOptions::default()
            };
            if let Some(on) = parse_switch(std::env::var("NETARCH_PARALLEL_QUERIES").ok().as_deref())
            {
                opts.parallel_queries = on;
            }
            if let Some(on) = parse_switch(std::env::var("NETARCH_DETERMINISTIC").ok().as_deref()) {
                opts.deterministic = on;
            }
            if let Some(on) = parse_switch(std::env::var("NETARCH_SPECULATE").ok().as_deref()) {
                opts.speculation = if on { Speculation::Always } else { Speculation::Never };
            }
            SolveBackend::Portfolio(opts)
        }
        _ => SolveBackend::Sequential,
    }
}

/// The session solver configuration selected by the environment: the
/// default configuration, with inprocessing switched off when
/// `NETARCH_INPROCESS` requests it (see [`parse_switch`]). Inprocessing
/// is on by default; the knob exists for A/B comparisons and for bisecting
/// suspected inprocessing bugs without a rebuild.
pub fn solver_config_from_env() -> SolverConfig {
    let mut config = SolverConfig::default();
    if let Some(enabled) = parse_switch(std::env::var("NETARCH_INPROCESS").ok().as_deref()) {
        config.inprocessing_enabled = enabled;
    }
    config
}

/// Interprets a boolean environment switch (`NETARCH_INPROCESS`,
/// `NETARCH_PARALLEL_QUERIES`, `NETARCH_DETERMINISTIC`): `0`/`off`/`false`/
/// `no` disable, `1`/`on`/`true`/`yes` enable, anything else (including
/// unset) leaves the default. Split out as a pure helper (like
/// [`parse_threads`]) so tests avoid process-global environment mutation.
fn parse_switch(value: Option<&str>) -> Option<bool> {
    match value?.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" => Some(false),
        "1" | "on" | "true" | "yes" => Some(true),
        _ => None,
    }
}

/// Interprets a raw `NETARCH_THREADS` value. Split out (like the
/// `NETARCH_VERIFY_PROOFS` parser) so tests can exercise the rules without
/// mutating process-global environment state, which races with parallel
/// test threads.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    let v = value?.trim();
    if v.is_empty() {
        return None;
    }
    match v.parse::<usize>() {
        Ok(0) => None,
        Ok(n) => Some(n.min(64)),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_parse_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        // Absurd requests are clamped, not honored.
        assert_eq!(parse_threads(Some("100000")), Some(64));
    }

    #[test]
    fn switch_parse_rules() {
        assert_eq!(parse_switch(None), None);
        assert_eq!(parse_switch(Some("")), None);
        assert_eq!(parse_switch(Some("0")), Some(false));
        assert_eq!(parse_switch(Some("off")), Some(false));
        assert_eq!(parse_switch(Some(" FALSE ")), Some(false));
        assert_eq!(parse_switch(Some("no")), Some(false));
        assert_eq!(parse_switch(Some("1")), Some(true));
        assert_eq!(parse_switch(Some("on")), Some(true));
        assert_eq!(parse_switch(Some("yes")), Some(true));
        assert_eq!(parse_switch(Some("maybe")), None);
    }

    #[test]
    fn default_options_enable_parallel_queries() {
        let opts = PortfolioOptions::default();
        assert!(opts.parallel_queries);
        assert!(!opts.deterministic);
    }

    #[test]
    fn backend_construction() {
        assert!(!SolveBackend::Sequential.is_portfolio());
        let b = SolveBackend::portfolio(2);
        assert!(b.is_portfolio());
        if let SolveBackend::Portfolio(opts) = &b {
            assert_eq!(opts.num_threads, 2);
            let cfg = opts.to_portfolio_config(true, SolverConfig::default());
            assert_eq!(cfg.num_threads, 2);
            assert!(cfg.verify_proofs);
        }
    }
}
