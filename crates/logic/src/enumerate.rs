//! Formula-level model enumeration.
//!
//! Enumerates satisfying assignments of the asserted constraints projected
//! onto a chosen set of atoms. The architecture engine uses this to list
//! *equivalence classes* of designs: two solver models that agree on all
//! decision atoms are the same design (paper §6).
//!
//! Two flavors:
//!
//! * [`enumerate_models`] adds permanent blocking clauses, so it takes the
//!   encoder by value and consumes it (one-shot use).
//! * [`enumerate_models_under`] gates every blocking clause behind an
//!   activation literal, so an incremental session can enumerate, retire
//!   the gate, and keep using the same solver.

use crate::ast::Atom;
use crate::encoder::Encoder;
use crate::sink::ClauseSink;
use netarch_sat::enumerate::enumerate_projected;
use netarch_sat::{Lit, SolveResult};

/// One projected model: each atom with its value.
pub type AtomModel = Vec<(Atom, bool)>;

/// Result of enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelList {
    /// Projected models in discovery order.
    pub models: Vec<AtomModel>,
    /// True when the limit stopped enumeration early.
    pub truncated: bool,
}

/// Enumerates up to `limit` models projected onto `atoms`, consuming the
/// encoder.
pub fn enumerate_models(
    mut encoder: Encoder,
    atoms: &[Atom],
    assumptions: &[Lit],
    limit: usize,
) -> ModelList {
    let vars = encoder.projection_vars(atoms);
    let result = enumerate_projected(encoder.solver_mut(), &vars, assumptions, limit);
    let models = result
        .models
        .into_iter()
        .map(|m| {
            m.into_iter()
                .zip(atoms.iter())
                .map(|((_, value), &atom)| (atom, value))
                .collect()
        })
        .collect();
    ModelList { models, truncated: result.truncated }
}

/// Enumerates up to `limit` models projected onto `atoms` under the base
/// assumption set, without consuming the encoder: every blocking clause is
/// gated behind `gate` (and only binds while `gate` is assumed), so the
/// caller retires the gate afterwards and the session solver is back to
/// the base theory. `truncated` is true when the limit stopped enumeration
/// while further projected models exist.
pub fn enumerate_models_under(
    encoder: &mut Encoder,
    atoms: &[Atom],
    base: &[Lit],
    gate: Lit,
    limit: usize,
) -> ModelList {
    let mut assumptions: Vec<Lit> = Vec::with_capacity(base.len() + 1);
    assumptions.extend_from_slice(base);
    assumptions.push(gate);
    let atom_lits: Vec<Lit> = atoms.iter().map(|&a| encoder.atom_lit(a)).collect();
    let mut models: Vec<AtomModel> = Vec::new();
    while models.len() < limit {
        match encoder.solve_with(&assumptions) {
            SolveResult::Sat => {
                let model: AtomModel = atoms
                    .iter()
                    .map(|&a| (a, encoder.atom_value(a).unwrap_or(false)))
                    .collect();
                // Gated blocking clause: flip at least one projected value.
                let mut blocking: Vec<Lit> = Vec::with_capacity(atom_lits.len() + 1);
                blocking.push(!gate);
                blocking.extend(
                    model
                        .iter()
                        .zip(&atom_lits)
                        .map(|(&(_, value), &l)| if value { !l } else { l }),
                );
                models.push(model);
                ClauseSink::add_clause(encoder, &blocking);
            }
            SolveResult::Unsat => return ModelList { models, truncated: false },
            SolveResult::Unknown => return ModelList { models, truncated: true },
        }
    }
    let truncated =
        limit > 0 && encoder.solve_with(&assumptions) == SolveResult::Sat;
    ModelList { models, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    #[test]
    fn enumerates_projected_models() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1)]));
        e.assert(&Formula::iff(a(2), a(0))); // a2 determined by a0
        let result = enumerate_models(e, &[Atom(0), Atom(1)], &[], 16);
        assert!(!result.truncated);
        assert_eq!(result.models.len(), 3);
        for m in &result.models {
            assert!(m.iter().any(|&(_, v)| v), "at least one of a0,a1 true");
        }
    }

    #[test]
    fn unsat_enumerates_nothing() {
        let mut e = Encoder::new();
        e.assert(&a(0));
        e.assert(&Formula::not(a(0)));
        let result = enumerate_models(e, &[Atom(0)], &[], 4);
        assert!(result.models.is_empty());
    }

    #[test]
    fn gated_enumeration_leaves_the_session_reusable() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1)]));
        e.assert(&Formula::iff(a(2), a(0)));
        let g1 = e.new_selector();
        let r1 = enumerate_models_under(&mut e, &[Atom(0), Atom(1)], &[], g1, 16);
        assert!(!r1.truncated);
        assert_eq!(r1.models.len(), 3);
        e.retire(g1);
        // Blocking clauses from the first pass no longer bind: a second
        // gated enumeration over the same session finds the same space.
        let g2 = e.new_selector();
        let r2 = enumerate_models_under(&mut e, &[Atom(0), Atom(1)], &[], g2, 16);
        assert_eq!(r2.models.len(), 3);
        let sort = |mut ms: Vec<AtomModel>| {
            ms.sort();
            ms
        };
        assert_eq!(sort(r1.models), sort(r2.models));
    }

    #[test]
    fn gated_enumeration_respects_base_and_reports_truncation() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1), a(2)]));
        let sel = e.new_selector();
        e.assert_under(sel, &Formula::not(a(0)));
        let gate = e.new_selector();
        let r = enumerate_models_under(
            &mut e,
            &[Atom(0), Atom(1), Atom(2)],
            &[sel],
            gate,
            2,
        );
        assert_eq!(r.models.len(), 2);
        assert!(r.truncated, "3 models exist with a0 false; limit 2 truncates");
        assert!(r.models.iter().all(|m| m[0] == (Atom(0), false)));
    }

    #[test]
    fn limit_truncates() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1), a(2)]));
        let result = enumerate_models(e, &[Atom(0), Atom(1), Atom(2)], &[], 2);
        assert_eq!(result.models.len(), 2);
        assert!(result.truncated);
    }
}
