//! Formula-level model enumeration.
//!
//! Enumerates satisfying assignments of the asserted constraints projected
//! onto a chosen set of atoms. Because the blocking clauses poison the
//! encoder's solver, enumeration takes the encoder by value and consumes it.
//! The architecture engine uses this to list *equivalence classes* of
//! designs: two solver models that agree on all decision atoms are the same
//! design (paper §6).

use crate::ast::Atom;
use crate::encoder::Encoder;
use netarch_sat::enumerate::enumerate_projected;
use netarch_sat::Lit;

/// One projected model: each atom with its value.
pub type AtomModel = Vec<(Atom, bool)>;

/// Result of enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelList {
    /// Projected models in discovery order.
    pub models: Vec<AtomModel>,
    /// True when the limit stopped enumeration early.
    pub truncated: bool,
}

/// Enumerates up to `limit` models projected onto `atoms`, consuming the
/// encoder.
pub fn enumerate_models(
    mut encoder: Encoder,
    atoms: &[Atom],
    assumptions: &[Lit],
    limit: usize,
) -> ModelList {
    let vars = encoder.projection_vars(atoms);
    let result = enumerate_projected(encoder.solver_mut(), &vars, assumptions, limit);
    let models = result
        .models
        .into_iter()
        .map(|m| {
            m.into_iter()
                .zip(atoms.iter())
                .map(|((_, value), &atom)| (atom, value))
                .collect()
        })
        .collect();
    ModelList { models, truncated: result.truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    #[test]
    fn enumerates_projected_models() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1)]));
        e.assert(&Formula::iff(a(2), a(0))); // a2 determined by a0
        let result = enumerate_models(e, &[Atom(0), Atom(1)], &[], 16);
        assert!(!result.truncated);
        assert_eq!(result.models.len(), 3);
        for m in &result.models {
            assert!(m.iter().any(|&(_, v)| v), "at least one of a0,a1 true");
        }
    }

    #[test]
    fn unsat_enumerates_nothing() {
        let mut e = Encoder::new();
        e.assert(&a(0));
        e.assert(&Formula::not(a(0)));
        let result = enumerate_models(e, &[Atom(0)], &[], 4);
        assert!(result.models.is_empty());
    }

    #[test]
    fn limit_truncates() {
        let mut e = Encoder::new();
        e.assert(&Formula::or([a(0), a(1), a(2)]));
        let result = enumerate_models(e, &[Atom(0), Atom(1), Atom(2)], &[], 2);
        assert_eq!(result.models.len(), 2);
        assert!(result.truncated);
    }
}
