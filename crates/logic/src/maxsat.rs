//! Weighted and lexicographic MaxSAT.
//!
//! Two algorithms over the same [`Encoder`]:
//!
//! * **Linear GTE descent** — build a generalized totalizer over the
//!   violation literals, then walk the achievable costs downward using
//!   assumptions until UNSAT; the last SAT model is optimal. Works for
//!   arbitrary weights.
//! * **Fu-Malik** — core-guided: repeatedly extract unsat cores over the
//!   soft constraints' assumption literals, relax each core with fresh
//!   blocking variables plus an exactly-one constraint. Implemented for
//!   uniform weights (the classic algorithm); the dispatcher falls back to
//!   linear descent otherwise.
//!
//! Lexicographic optimization (`Optimize(latency > Hardware cost >
//! monitoring)` in the paper's Listing 3) minimizes objective levels in
//! order, hardening each optimum before descending to the next level.

use crate::ast::Formula;
use crate::cardinality::{self, CardEncoding};
use crate::encoder::Encoder;
use crate::pb::{gte_outputs, PbTerm};
use crate::sink::ClauseSink;
use netarch_sat::{Lit, ProbePool, SolveResult};

/// A soft constraint: violating `formula` costs `weight`.
#[derive(Clone, Debug)]
pub struct Soft {
    /// Cost of violating this constraint.
    pub weight: u64,
    /// The constraint itself.
    pub formula: Formula,
}

impl Soft {
    /// Creates a soft constraint.
    pub fn new(weight: u64, formula: Formula) -> Soft {
        Soft { weight, formula }
    }
}

/// Optimization algorithm selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MaxSatAlgorithm {
    /// Linear SAT→UNSAT descent over a generalized totalizer.
    #[default]
    LinearGte,
    /// Core-guided Fu-Malik (uniform weights; falls back to linear
    /// descent for non-uniform weights).
    FuMalik,
}

/// Result of a MaxSAT call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaxSatOutcome {
    /// Optimum found; the encoder's solver holds an optimal model.
    Optimal {
        /// Total weight of violated soft constraints.
        cost: u64,
        /// Indices (into the soft slice) of the violated constraints.
        violated: Vec<usize>,
    },
    /// The hard constraints alone are unsatisfiable.
    HardUnsat,
    /// The soft weights sum past `u64::MAX`; proceeding would silently
    /// corrupt every cost bound, so the optimization is refused.
    WeightOverflow,
}

/// Sum of the soft weights, or `None` when it overflows `u64`.
fn checked_total(soft: &[Soft]) -> Option<u64> {
    soft.iter().try_fold(0u64, |acc, s| acc.checked_add(s.weight))
}

/// Minimizes the total weight of violated soft constraints, leaving the
/// optimal model loaded in the encoder's solver and the optimum enforced
/// as a hard bound (so later optimization levels preserve it).
pub fn minimize(
    encoder: &mut Encoder,
    soft: &[Soft],
    algorithm: MaxSatAlgorithm,
) -> MaxSatOutcome {
    if checked_total(soft).is_none() {
        return MaxSatOutcome::WeightOverflow;
    }
    let uniform = soft
        .windows(2)
        .all(|w| w[0].weight == w[1].weight);
    match algorithm {
        MaxSatAlgorithm::FuMalik if uniform && !soft.is_empty() => fu_malik(encoder, soft),
        _ => linear_gte(encoder, soft),
    }
}

/// A soft-constraint objective compiled once for reuse across queries.
///
/// The violation literals and the generalized-totalizer outputs are encoded
/// a single time; every subsequent [`minimize_under`] call performs only
/// assumption-based descent plus activation-gated hardening, so repeated
/// optimization of the same objective adds no permanent clauses and reuses
/// everything the solver has learned.
pub struct CompiledSofts {
    softs: Vec<Soft>,
    /// Totalizer outputs `(sum, lit)`: `lit` is forced true whenever the
    /// violated weight reaches `sum`.
    outputs: Vec<(u64, Lit)>,
    /// Long-lived activation literal gating the whole totalizer. Assumed
    /// by every solve that needs the objective circuitry; left unassumed
    /// otherwise, so the totalizer clauses are dormant and cost nothing
    /// on queries that never mention the objective.
    activation: Lit,
}

impl CompiledSofts {
    /// The soft constraints this objective minimizes.
    pub fn softs(&self) -> &[Soft] {
        &self.softs
    }

    /// The activation literal that switches this objective's totalizer on.
    /// Assume it in any solve that must respect clauses referencing the
    /// totalizer outputs (e.g. a later lexicographic level solving under a
    /// hardened bound from this one).
    pub fn activation(&self) -> Lit {
        self.activation
    }
}

/// Soft weights summed past `u64::MAX` — see [`MaxSatOutcome::WeightOverflow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightOverflow;

impl std::fmt::Display for WeightOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "soft-constraint weights overflow u64 when summed")
    }
}

/// Encodes the violation totalizer for `softs` once, for repeated
/// [`minimize_under`] calls. Fails when the weights overflow `u64`.
pub fn compile_softs(
    encoder: &mut Encoder,
    softs: Vec<Soft>,
) -> Result<CompiledSofts, WeightOverflow> {
    let total = checked_total(&softs).ok_or(WeightOverflow)?;
    // The whole totalizer is gated behind one long-lived activation
    // literal, so a persistent session only pays for the objective
    // circuitry in solves that assume it.
    let activation = encoder.new_selector();
    let outputs = encoder.gated_scope(activation, |e| {
        // Violation literal per soft constraint: v_i ⇔ ¬formula_i.
        let terms: Vec<PbTerm> = softs
            .iter()
            .map(|s| {
                let l = e.lit_for(&s.formula);
                PbTerm::new(s.weight, !l)
            })
            .collect();
        gte_outputs(e, &terms, total).outputs
    });
    Ok(CompiledSofts { softs, outputs, activation })
}

/// Minimizes a compiled objective inside an incremental session.
///
/// All solves run under `base ∪ {gate, activation}`, and the optimum is
/// hardened with `gate`-gated clauses only — so when the caller retires
/// `gate` the bound dissolves, the totalizer goes dormant again, and the
/// session solver is back to exactly the base theory, with its learned
/// clauses and heuristic state intact. On return the solver holds a model
/// that is optimal under `base`.
///
/// A `gate`-gated hardened bound references this objective's totalizer
/// outputs, so a caller that keeps solving under `gate` after this call
/// (e.g. the next lexicographic level) must also keep assuming
/// [`CompiledSofts::activation`] or the bound is vacuous.
pub fn minimize_under(
    encoder: &mut Encoder,
    compiled: &CompiledSofts,
    base: &[Lit],
    gate: Lit,
) -> MaxSatOutcome {
    let mut context: Vec<Lit> = Vec::with_capacity(base.len() + 2);
    context.extend_from_slice(base);
    context.push(gate);
    context.push(compiled.activation);
    // When the backend grants parallel seats, the entire search —
    // feasibility, bound probes, witness restoration — runs on one
    // persistent probe pool, so every worker builds the CNF exactly once.
    // The sequential path below defines the semantics; the pooled path must
    // return exactly its answers.
    if encoder.parallel_seats() >= 2 {
        // Every probe assumes a subset of the context plus negated
        // totalizer outputs; declare them all so no seat eliminates one.
        let mut assumable = context.clone();
        assumable.extend(compiled.outputs.iter().map(|&(_, l)| l));
        if let Some(pool) = encoder.probe_pool(&assumable) {
            return minimize_under_pooled(encoder, compiled, &context, gate, pool);
        }
    }
    minimize_under_sequential(encoder, compiled, &context, gate)
}

/// Assumptions forcing this objective's violated weight to at most
/// `target`: the solve context plus the negation of every totalizer output
/// whose threshold exceeds the target.
fn bound_assumptions(compiled: &CompiledSofts, context: &[Lit], target: u64) -> Vec<Lit> {
    let mut assumptions = context.to_vec();
    assumptions.extend(
        compiled
            .outputs
            .iter()
            .filter(|&&(s, _)| s > target)
            .map(|&(_, l)| !l),
    );
    assumptions
}

fn minimize_under_sequential(
    encoder: &mut Encoder,
    compiled: &CompiledSofts,
    context: &[Lit],
    gate: Lit,
) -> MaxSatOutcome {
    // Decisive one-shot probes route through the configured backend (the
    // portfolio pays off exactly here); core/MUS-bearing paths elsewhere
    // stay on the sequential session solver.
    if encoder.solve_with_backend(context) != SolveResult::Sat {
        return MaxSatOutcome::HardUnsat;
    }
    if compiled.softs.is_empty() {
        return MaxSatOutcome::Optimal { cost: 0, violated: Vec::new() };
    }
    let mut best_cost = model_cost(encoder, &compiled.softs);
    let mut best_violated = violated_indices(encoder, &compiled.softs);

    // Binary-search descent over the achievable cost values (the GTE's
    // output sums plus zero). Invariant: `best_cost` is achievable, and
    // every candidate below index `lo` is proven unachievable.
    let mut candidates: Vec<u64> = Vec::with_capacity(compiled.outputs.len() + 1);
    candidates.push(0);
    candidates.extend(compiled.outputs.iter().map(|&(s, _)| s));
    let mut lo = 0usize;
    while best_cost > 0 {
        let hi = candidates.partition_point(|&c| c < best_cost);
        if lo >= hi {
            break; // nothing achievable below best_cost
        }
        let mid = (lo + hi) / 2;
        let target = candidates[mid];
        match encoder.solve_with_backend(&bound_assumptions(compiled, context, target)) {
            SolveResult::Sat => {
                let cost = model_cost(encoder, &compiled.softs);
                debug_assert!(cost <= target, "model violates assumed bound");
                best_cost = cost.min(target);
                best_violated = violated_indices(encoder, &compiled.softs);
            }
            SolveResult::Unsat | SolveResult::Unknown => {
                lo = mid + 1;
            }
        }
    }

    // Harden the optimum behind the gate and restore an optimal model.
    for &(s, l) in &compiled.outputs {
        if s > best_cost {
            ClauseSink::add_clause(encoder, &[!gate, !l]);
        }
    }
    let restored = encoder.solve_with_backend(context);
    debug_assert_eq!(restored, SolveResult::Sat);
    MaxSatOutcome::Optimal { cost: best_cost, violated: best_violated }
}

/// The racing descent. Feasibility, every bound probe, and the final
/// witness all come from one persistent [`ProbePool`], so each seat builds
/// the CNF once and keeps its learnt clauses warm across rounds — routing
/// each probe through a one-shot portfolio dispatch would instead rebuild
/// the mirror on every cold worker three times over (feasibility, descent,
/// restore), and on formulas with a large objective totalizer that rebuild
/// tax dominates the solving itself.
///
/// Each round probes a window of candidate bounds — the midpoint (the
/// sequential probe), the quarter-point, and the most aggressive open
/// candidate — with idle seats joining the window's probes round-robin, so
/// a short window still races diversified solvers on every seat. Every
/// probe sits at or below the midpoint on purpose: in racing mode only the
/// fastest seat may come back decisive, and a window reaching above the
/// midpoint (e.g. a `best - 1` probe) would let an easy barely-below-best
/// SAT answer win round after round while contributing almost no progress.
/// Capping at the midpoint guarantees any surviving SAT verdict bisects
/// the open range and any surviving UNSAT verdict advances `lo`, so a race
/// can only speed convergence up, never degrade it below the sequential
/// bisection rate.
///
/// SAT at a bound tightens `best_cost` (exactness comes from the model,
/// exactly as in the sequential loop); UNSAT at a bound raises `lo` past
/// it. Both facts are monotone, so folding them in fixed seat order keeps
/// the final state independent of which seat answered first — deterministic
/// mode is bit-identical run to run. The optimal witness is the best model
/// a worker already produced, installed as the session's model override
/// (exactly a one-shot portfolio win) rather than re-discovered with a
/// final solve.
fn minimize_under_pooled(
    encoder: &mut Encoder,
    compiled: &CompiledSofts,
    context: &[Lit],
    gate: Lit,
    mut pool: ProbePool,
) -> MaxSatOutcome {
    let seats = pool.seats();
    let mut rounds = 1u64;
    // Feasibility: broadcast the same unbounded probe to every seat.
    let feasible = pool.solve_round(&vec![context.to_vec(); seats]);
    let Some(sat) = feasible.iter().find(|o| o.result == SolveResult::Sat) else {
        let unsat = feasible.iter().any(|o| o.result == SolveResult::Unsat);
        encoder.absorb_parallel(&pool.finish(), rounds);
        if unsat {
            return MaxSatOutcome::HardUnsat;
        }
        // Every seat inconclusive — impossible without a conflict budget,
        // but never guess: rerun the whole search sequentially.
        return minimize_under_sequential(encoder, compiled, context, gate);
    };
    let mut best_model = sat.model.clone().expect("SAT probes carry a model");
    if compiled.softs.is_empty() {
        encoder.absorb_parallel(&pool.finish(), rounds);
        encoder.install_model_override(best_model);
        return MaxSatOutcome::Optimal { cost: 0, violated: Vec::new() };
    }
    let mut best_cost = model_cost_in(encoder, &compiled.softs, &best_model);
    let mut best_violated = violated_indices_in(encoder, &compiled.softs, &best_model);

    let mut candidates: Vec<u64> = Vec::with_capacity(compiled.outputs.len() + 1);
    candidates.push(0);
    candidates.extend(compiled.outputs.iter().map(|&(s, _)| s));
    let mut lo = 0usize;
    let mut pooled_ok = true;
    while pooled_ok && best_cost > 0 {
        let hi = candidates.partition_point(|&c| c < best_cost);
        if lo >= hi {
            break; // nothing achievable below best_cost
        }
        let mid = (lo + hi) / 2;
        let mut window = vec![mid, lo + (hi - lo) / 4, lo];
        window.sort_unstable();
        window.dedup();
        window.truncate(seats);
        let targets: Vec<usize> = (0..seats).map(|i| window[i % window.len()]).collect();
        let probes: Vec<Vec<Lit>> = targets
            .iter()
            .map(|&idx| bound_assumptions(compiled, context, candidates[idx]))
            .collect();
        let outcomes = pool.solve_round(&probes);
        rounds += 1;
        let mut progressed = false;
        for (&idx, outcome) in targets.iter().zip(&outcomes) {
            match outcome.result {
                SolveResult::Sat => {
                    let model = outcome.model.as_deref().expect("SAT probes carry a model");
                    let cost = model_cost_in(encoder, &compiled.softs, model);
                    debug_assert!(cost <= candidates[idx], "model violates assumed bound");
                    if cost < best_cost {
                        best_cost = cost;
                        best_violated = violated_indices_in(encoder, &compiled.softs, model);
                        best_model = model.to_vec();
                        progressed = true;
                    }
                }
                SolveResult::Unsat => {
                    if idx + 1 > lo {
                        lo = idx + 1;
                        progressed = true;
                    }
                }
                SolveResult::Unknown => {}
            }
        }
        // A wholly inconclusive round cannot happen without a conflict
        // budget; if it somehow does, stop racing rather than spin.
        pooled_ok = progressed;
    }
    encoder.absorb_parallel(&pool.finish(), rounds);
    if !pooled_ok {
        // Safety net: discharge the remaining proof obligation on the
        // session solver so the returned bound is still a proven optimum.
        while best_cost > 0 {
            let hi = candidates.partition_point(|&c| c < best_cost);
            if lo >= hi {
                break;
            }
            let mid = (lo + hi) / 2;
            let target = candidates[mid];
            match encoder.solve_with(&bound_assumptions(compiled, context, target)) {
                SolveResult::Sat => {
                    let cost = model_cost(encoder, &compiled.softs);
                    best_cost = cost.min(target);
                    best_violated = violated_indices(encoder, &compiled.softs);
                }
                SolveResult::Unsat | SolveResult::Unknown => {
                    lo = mid + 1;
                }
            }
        }
    }
    for &(s, l) in &compiled.outputs {
        if s > best_cost {
            ClauseSink::add_clause(encoder, &[!gate, !l]);
        }
    }
    if pooled_ok {
        debug_assert_eq!(
            model_cost_in(encoder, &compiled.softs, &best_model),
            best_cost,
            "retained witness must achieve the optimum"
        );
        encoder.install_model_override(best_model);
    } else {
        let restored = encoder.solve_with(context);
        debug_assert_eq!(restored, SolveResult::Sat);
    }
    MaxSatOutcome::Optimal { cost: best_cost, violated: best_violated }
}

/// Reports which soft constraints the current model violates.
fn violated_indices(encoder: &Encoder, soft: &[Soft]) -> Vec<usize> {
    soft.iter()
        .enumerate()
        .filter(|(_, s)| !encoder.eval_under_model(&s.formula))
        .map(|(i, _)| i)
        .collect()
}

fn model_cost(encoder: &Encoder, soft: &[Soft]) -> u64 {
    violated_indices(encoder, soft)
        .into_iter()
        .map(|i| soft[i].weight)
        .sum()
}

/// [`violated_indices`] against a raw worker model instead of the session
/// model (unmapped atoms count as false, matching projected semantics).
fn violated_indices_in(encoder: &Encoder, soft: &[Soft], model: &[Option<bool>]) -> Vec<usize> {
    soft.iter()
        .enumerate()
        .filter(|(_, s)| !s.formula.eval(&|a| encoder.atom_value_in(a, model).unwrap_or(false)))
        .map(|(i, _)| i)
        .collect()
}

fn model_cost_in(encoder: &Encoder, soft: &[Soft], model: &[Option<bool>]) -> u64 {
    violated_indices_in(encoder, soft, model)
        .into_iter()
        .map(|i| soft[i].weight)
        .sum()
}

/// Destructive linear descent: compiles the totalizer in place and hardens
/// the optimum permanently. The gate is the always-true literal, so the
/// gated hardening clauses in [`minimize_under`] strip to permanent units
/// at level 0 — identical behavior to a dedicated ungated implementation.
fn linear_gte(encoder: &mut Encoder, soft: &[Soft]) -> MaxSatOutcome {
    // Routed through the backend so a portfolio races the initial
    // feasibility check too — on hard theories it is as expensive as any
    // bound probe.
    if encoder.solve_with_backend(&[]) != SolveResult::Sat {
        return MaxSatOutcome::HardUnsat;
    }
    if soft.is_empty() {
        return MaxSatOutcome::Optimal { cost: 0, violated: Vec::new() };
    }
    let compiled = match compile_softs(encoder, soft.to_vec()) {
        Ok(c) => c,
        Err(WeightOverflow) => return MaxSatOutcome::WeightOverflow,
    };
    let gate = encoder.true_lit();
    minimize_under(encoder, &compiled, &[], gate)
}

/// Classic Fu-Malik for uniform weights.
fn fu_malik(encoder: &mut Encoder, soft: &[Soft]) -> MaxSatOutcome {
    let weight = soft[0].weight;
    // Each soft constraint's current "satisfaction disjunct" literals:
    // its Tseitin literal plus one blocking variable per relaxation round.
    let mut disjuncts: Vec<Vec<Lit>> = soft
        .iter()
        .map(|s| vec![encoder.lit_for(&s.formula)])
        .collect();
    // Assumption literal per soft constraint guarding the clause
    // `a_i → (formula_i ∨ blockers…)`; replaced whenever the disjunction
    // grows.
    let mut assumption_of: Vec<Lit> = Vec::with_capacity(soft.len());
    for d in &disjuncts {
        let a = encoder.new_selector();
        let mut clause = vec![!a];
        clause.extend(d);
        ClauseSink::add_clause(encoder, &clause);
        assumption_of.push(a);
    }

    let mut rounds = 0u64;
    loop {
        let result = {
            let assumptions: Vec<Lit> = assumption_of.clone();
            encoder.solve_with(&assumptions)
        };
        match result {
            SolveResult::Sat => {
                let cost = rounds * weight;
                // Model currently satisfies all (relaxed) softs; compute
                // which original formulas are violated.
                let violated = violated_indices(encoder, soft);
                debug_assert_eq!(violated.len() as u64, rounds);
                return MaxSatOutcome::Optimal { cost, violated };
            }
            SolveResult::Unknown => {
                // Treat as UNSAT-undetermined: fall back to linear descent.
                return linear_gte(encoder, soft);
            }
            SolveResult::Unsat => {
                let core: Vec<Lit> = encoder.solver().unsat_core().to_vec();
                let members: Vec<usize> = assumption_of
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| core.contains(a))
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    // Hard constraints alone are inconsistent.
                    return MaxSatOutcome::HardUnsat;
                }
                // Relax every core member with a fresh blocking var and
                // constrain exactly-one blocking var true.
                let mut blockers = Vec::with_capacity(members.len());
                for &i in &members {
                    let b = encoder.new_selector();
                    blockers.push(b);
                    disjuncts[i].push(b);
                    // Replace the guard: retire the old assumption literal
                    // and emit a new guarded clause with the extended
                    // disjunction.
                    let old = assumption_of[i];
                    ClauseSink::add_clause(encoder, &[!old]); // retire
                    let a = encoder.new_selector();
                    assumption_of[i] = a;
                    let mut clause = vec![!a];
                    clause.extend(&disjuncts[i]);
                    ClauseSink::add_clause(encoder, &clause);
                }
                cardinality::assert_exactly(encoder, &blockers, 1, CardEncoding::Auto);
                rounds += 1;
            }
        }
    }
}

/// Lexicographic multi-level minimization: minimizes each level in order,
/// hardening its optimum before moving on. Returns per-level outcomes, or
/// `None` when any level fails to optimize (hard-UNSAT or weight overflow).
pub fn minimize_lex(
    encoder: &mut Encoder,
    levels: &[Vec<Soft>],
    algorithm: MaxSatAlgorithm,
) -> Option<Vec<MaxSatOutcome>> {
    let mut outcomes = Vec::with_capacity(levels.len());
    for level in levels {
        let outcome = minimize(encoder, level, algorithm);
        if !matches!(outcome, MaxSatOutcome::Optimal { .. }) {
            return None;
        }
        outcomes.push(outcome);
    }
    Some(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;

    fn a(i: u32) -> Formula {
        Formula::Atom(Atom(i))
    }

    fn softs(items: &[(u64, Formula)]) -> Vec<Soft> {
        items.iter().map(|(w, f)| Soft::new(*w, f.clone())).collect()
    }

    #[test]
    fn all_softs_satisfiable_costs_zero() {
        for alg in [MaxSatAlgorithm::LinearGte, MaxSatAlgorithm::FuMalik] {
            let mut e = Encoder::new();
            e.assert(&Formula::or([a(0), a(1)]));
            let soft = softs(&[(1, a(0)), (1, a(1))]);
            let outcome = minimize(&mut e, &soft, alg);
            assert_eq!(outcome, MaxSatOutcome::Optimal { cost: 0, violated: vec![] }, "{alg:?}");
        }
    }

    #[test]
    fn forced_violation_of_cheapest() {
        for alg in [MaxSatAlgorithm::LinearGte, MaxSatAlgorithm::FuMalik] {
            // a0 xor a1 forced; soft wants both; both weight 1 → cost 1.
            let mut e = Encoder::new();
            e.assert(&Formula::xor(a(0), a(1)));
            let soft = softs(&[(1, a(0)), (1, a(1))]);
            match minimize(&mut e, &soft, alg) {
                MaxSatOutcome::Optimal { cost, violated } => {
                    assert_eq!(cost, 1, "{alg:?}");
                    assert_eq!(violated.len(), 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn weights_steer_which_soft_breaks() {
        // ¬(a0 ∧ a1): cannot have both. Soft(5, a0), Soft(1, a1) →
        // break a1, keep a0, cost 1.
        let mut e = Encoder::new();
        e.assert(&Formula::not(Formula::and([a(0), a(1)])));
        let soft = softs(&[(5, a(0)), (1, a(1))]);
        match minimize(&mut e, &soft, MaxSatAlgorithm::LinearGte) {
            MaxSatOutcome::Optimal { cost, violated } => {
                assert_eq!(cost, 1);
                assert_eq!(violated, vec![1]);
                assert_eq!(e.atom_value(Atom(0)), Some(true));
                assert_eq!(e.atom_value(Atom(1)), Some(false));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hard_unsat_detected() {
        for alg in [MaxSatAlgorithm::LinearGte, MaxSatAlgorithm::FuMalik] {
            let mut e = Encoder::new();
            e.assert(&a(0));
            e.assert(&Formula::not(a(0)));
            let soft = softs(&[(1, a(1))]);
            assert_eq!(minimize(&mut e, &soft, alg), MaxSatOutcome::HardUnsat, "{alg:?}");
        }
    }

    #[test]
    fn fu_malik_multi_core() {
        // Three pairwise-conflicting atoms, softs want all three;
        // at most one can hold → cost 2.
        let mut e = Encoder::new();
        e.assert(&Formula::at_most(1, [a(0), a(1), a(2)]));
        let soft = softs(&[(1, a(0)), (1, a(1)), (1, a(2))]);
        match minimize(&mut e, &soft, MaxSatAlgorithm::FuMalik) {
            MaxSatOutcome::Optimal { cost, violated } => {
                assert_eq!(cost, 2);
                assert_eq!(violated.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn linear_matches_brute_force_on_random_cases() {
        use netarch_rt::Rng;
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..30 {
            let num_atoms = rng.gen_range(2..=5u32);
            // Random hard 2-clauses + random weighted soft literals.
            let mut hard = Vec::new();
            for _ in 0..rng.gen_range(0..4) {
                let x = Formula::Atom(Atom(rng.gen_range(0..num_atoms)));
                let y = Formula::Atom(Atom(rng.gen_range(0..num_atoms)));
                let x = if rng.gen_bool(0.5) { Formula::not(x) } else { x };
                let y = if rng.gen_bool(0.5) { Formula::not(y) } else { y };
                hard.push(Formula::or([x, y]));
            }
            let mut soft = Vec::new();
            for _ in 0..rng.gen_range(1..5) {
                let x = Formula::Atom(Atom(rng.gen_range(0..num_atoms)));
                let x = if rng.gen_bool(0.5) { Formula::not(x) } else { x };
                soft.push(Soft::new(rng.gen_range(1..6), x));
            }
            // Brute force optimum.
            let mut best: Option<u64> = None;
            'outer: for bits in 0u32..(1 << num_atoms) {
                let assign = |at: Atom| (bits >> at.0) & 1 == 1;
                for h in &hard {
                    if !h.eval(&assign) {
                        continue 'outer;
                    }
                }
                let cost: u64 = soft
                    .iter()
                    .filter(|s| !s.formula.eval(&assign))
                    .map(|s| s.weight)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }
            let mut e = Encoder::new();
            for h in &hard {
                e.assert(h);
            }
            let outcome = minimize(&mut e, &soft, MaxSatAlgorithm::LinearGte);
            match (best, outcome) {
                (None, MaxSatOutcome::HardUnsat) => {}
                (Some(b), MaxSatOutcome::Optimal { cost, .. }) => {
                    assert_eq!(cost, b, "hard={hard:?} soft={soft:?}");
                }
                (expected, got) => panic!("expected {expected:?}, got {got:?}"),
            }
        }
    }

    #[test]
    fn lexicographic_respects_priority() {
        // a0 and a1 conflict. Level 1 prefers a0; level 2 prefers a1.
        // Lexicographic: satisfy level 1 (a0), then level 2 must break.
        let mut e = Encoder::new();
        e.assert(&Formula::not(Formula::and([a(0), a(1)])));
        let levels = vec![
            softs(&[(1, a(0))]),
            softs(&[(1, a(1))]),
        ];
        let outcomes = minimize_lex(&mut e, &levels, MaxSatAlgorithm::LinearGte).expect("feasible");
        assert_eq!(outcomes[0], MaxSatOutcome::Optimal { cost: 0, violated: vec![] });
        assert_eq!(outcomes[1], MaxSatOutcome::Optimal { cost: 1, violated: vec![0] });
        assert_eq!(e.atom_value(Atom(0)), Some(true));
        assert_eq!(e.atom_value(Atom(1)), Some(false));
    }

    #[test]
    fn lexicographic_reversed_priority_flips_outcome() {
        let mut e = Encoder::new();
        e.assert(&Formula::not(Formula::and([a(0), a(1)])));
        let levels = vec![
            softs(&[(1, a(1))]),
            softs(&[(1, a(0))]),
        ];
        let outcomes = minimize_lex(&mut e, &levels, MaxSatAlgorithm::LinearGte).expect("feasible");
        assert_eq!(outcomes[0], MaxSatOutcome::Optimal { cost: 0, violated: vec![] });
        assert_eq!(e.atom_value(Atom(1)), Some(true));
        assert_eq!(e.atom_value(Atom(0)), Some(false));
    }

    #[test]
    fn overflowing_weights_are_refused_not_wrapped() {
        // u64::MAX + 2 wraps to 1 with unchecked summation, which would
        // silently truncate the totalizer. Both algorithms must refuse.
        for alg in [MaxSatAlgorithm::LinearGte, MaxSatAlgorithm::FuMalik] {
            let mut e = Encoder::new();
            e.assert(&Formula::or([a(0), a(1)]));
            let soft = softs(&[(u64::MAX, a(0)), (2, a(1))]);
            assert_eq!(minimize(&mut e, &soft, alg), MaxSatOutcome::WeightOverflow, "{alg:?}");
        }
        // minimize_lex reports the failure by aborting.
        let mut e = Encoder::new();
        e.assert(&a(0));
        let levels = vec![softs(&[(u64::MAX, a(0)), (1, a(1))])];
        assert!(minimize_lex(&mut e, &levels, MaxSatAlgorithm::LinearGte).is_none());
    }

    #[test]
    fn weights_at_the_u64_boundary_still_optimize() {
        // Total is exactly u64::MAX: no overflow, and the cheap soft breaks.
        let mut e = Encoder::new();
        e.assert(&Formula::xor(a(0), a(1)));
        let soft = softs(&[(u64::MAX - 1, a(0)), (1, a(1))]);
        match minimize(&mut e, &soft, MaxSatAlgorithm::LinearGte) {
            MaxSatOutcome::Optimal { cost, violated } => {
                assert_eq!(cost, 1);
                assert_eq!(violated, vec![1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gated_minimize_reuses_one_totalizer_across_queries() {
        // Compile the objective once; two gated optimize "queries" over the
        // same session must agree, and retiring each gate must release its
        // hardened bound (the session stays exactly the base theory).
        let mut e = Encoder::new();
        e.assert(&Formula::xor(a(0), a(1)));
        let compiled =
            compile_softs(&mut e, softs(&[(2, a(0)), (1, a(1))])).expect("no overflow");
        let clauses_after_compile = e.clause_count();
        for _ in 0..2 {
            let gate = e.new_selector();
            match minimize_under(&mut e, &compiled, &[], gate) {
                MaxSatOutcome::Optimal { cost, violated } => {
                    assert_eq!(cost, 1);
                    assert_eq!(violated, vec![1]);
                    assert_eq!(e.atom_value(Atom(0)), Some(true));
                }
                other => panic!("unexpected {other:?}"),
            }
            e.retire(gate);
        }
        // Only gated hardening + retirement units were added — no second
        // totalizer. With 2 outputs above cost 1, that is ≤ 3 clauses/query.
        assert!(e.clause_count() - clauses_after_compile <= 6);
        // After retirement the base theory is unconstrained by old optima:
        // the expensive assignment (a1, cost 2) is reachable again.
        let a1 = e.atom_lit(Atom(1));
        assert_eq!(e.solve_with(&[a1]), netarch_sat::SolveResult::Sat);
        assert_eq!(e.atom_value(Atom(0)), Some(false));
    }

    #[test]
    fn gated_minimize_respects_base_assumptions() {
        // Base context forces a0 false; under xor the optimum flips to
        // violating the heavier soft. A later query without that base sees
        // the unconstrained optimum again.
        let mut e = Encoder::new();
        e.assert(&Formula::xor(a(0), a(1)));
        let sel = e.new_selector();
        e.assert_under(sel, &Formula::not(a(0)));
        let compiled =
            compile_softs(&mut e, softs(&[(2, a(0)), (1, a(1))])).expect("no overflow");
        let g1 = e.new_selector();
        match minimize_under(&mut e, &compiled, &[sel], g1) {
            MaxSatOutcome::Optimal { cost, violated } => {
                assert_eq!(cost, 2);
                assert_eq!(violated, vec![0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        e.retire(g1);
        let g2 = e.new_selector();
        match minimize_under(&mut e, &compiled, &[], g2) {
            MaxSatOutcome::Optimal { cost, .. } => assert_eq!(cost, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gated_minimize_reports_hard_unsat_under_base() {
        let mut e = Encoder::new();
        let sel = e.new_selector();
        e.assert_under(sel, &a(0));
        e.assert_under(sel, &Formula::not(a(0)));
        let compiled = compile_softs(&mut e, softs(&[(1, a(1))])).expect("no overflow");
        let gate = e.new_selector();
        assert_eq!(
            minimize_under(&mut e, &compiled, &[sel], gate),
            MaxSatOutcome::HardUnsat
        );
    }

    #[test]
    fn lexicographic_hard_unsat_propagates() {
        let mut e = Encoder::new();
        e.assert(&a(0));
        e.assert(&Formula::not(a(0)));
        let levels = vec![softs(&[(1, a(1))])];
        assert!(minimize_lex(&mut e, &levels, MaxSatAlgorithm::LinearGte).is_none());
    }
}
