//! # netarch-logic
//!
//! The logic layer between the raw CDCL solver (`netarch-sat`) and the
//! architecture reasoning engine (`netarch-core`). It provides everything
//! the HotNets '24 paper's "shim layer over SAT solvers" (§5.1) needs:
//!
//! * a propositional [`Formula`] AST with first-class cardinality operators,
//! * the Tseitin [`Encoder`] with selector-guarded assertion groups,
//! * cardinality encodings (pairwise / sequential counter / totalizer),
//! * pseudo-Boolean constraints via a generalized totalizer ([`pb`]),
//! * weighted & lexicographic MaxSAT ([`maxsat`]) for
//!   `Optimize(latency > Hardware cost > monitoring)`-style objectives,
//! * order-encoded bounded integers ([`int`]) for capacity planning,
//! * minimal unsatisfiable subset extraction ([`mus`]) for diagnosis,
//! * projected model enumeration ([`enumerate`]) for design equivalence
//!   classes,
//! * solve-then-check verified solving ([`verify`]): SAT models are
//!   re-evaluated and UNSAT verdicts must carry a DRAT proof the
//!   independent checker accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod backend;
pub mod cardinality;
pub mod encoder;
pub mod enumerate;
pub mod int;
pub mod maxsat;
pub mod mus;
pub mod pb;
pub mod sink;
pub mod verify;

pub use ast::{Atom, Formula};
pub use backend::{
    backend_from_env, solver_config_from_env, threads_requested, PortfolioOptions, SolveBackend,
    Speculation,
};
pub use cardinality::CardEncoding;
pub use encoder::{EncodeConfig, Encoder};
pub use int::{Bound, OrderInt};
pub use maxsat::{CompiledSofts, MaxSatAlgorithm, MaxSatOutcome, Soft, WeightOverflow};
pub use mus::{GroupId, GroupedAssertions};
pub use sink::{ClauseSink, CollectSink};
pub use verify::{proofs_requested, verified_solve, Verified, VerifyError};
