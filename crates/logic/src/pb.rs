//! Pseudo-Boolean (weighted sum) constraints.
//!
//! Encodes `Σ wᵢ·xᵢ ⋈ bound` using a **generalized totalizer** (GTE,
//! Joshi-Martins-Manquinho 2015): a balanced merge tree whose nodes track
//! the set of achievable weighted sums, with one output literal per sum.
//! The encoding is one-directional (inputs force outputs), which suffices
//! for assertions; reification composes two one-directional encodings.
//!
//! Sums are *saturated* at `cap`: any achievable sum above the cap is
//! collapsed into a single overflow output, keeping node sizes bounded when
//! only a comparison against `bound ≤ cap` is needed.
//!
//! The architecture engine uses this for resource contention (§2.2):
//! "cores_needed(CPU_FACTOR * num_flows)" summed over selected systems must
//! fit the server inventory.

use crate::sink::ClauseSink;
use netarch_sat::Lit;

/// One weighted term of a pseudo-Boolean sum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PbTerm {
    /// Non-negative weight.
    pub weight: u64,
    /// The literal contributing `weight` when true.
    pub lit: Lit,
}

impl PbTerm {
    /// Creates a term.
    pub fn new(weight: u64, lit: Lit) -> PbTerm {
        PbTerm { weight, lit }
    }
}

/// A node of the generalized totalizer: achievable sums in increasing
/// order, each with the literal that is forced true when the inputs reach
/// at least that sum.
#[derive(Clone, Debug)]
pub struct GteOutputs {
    /// `(sum, lit)` pairs sorted by increasing sum; `lit` is forced true
    /// whenever the weighted input sum is ≥ `sum`.
    pub outputs: Vec<(u64, Lit)>,
}

impl GteOutputs {
    /// Literal that is true when the sum is at least `threshold`, if such
    /// an output exists (the smallest output ≥ threshold).
    pub fn reached(&self, threshold: u64) -> Option<Lit> {
        self.outputs
            .iter()
            .find(|&&(s, _)| s >= threshold)
            .map(|&(_, l)| l)
    }

    /// The distinct achievable sums (including saturated overflow value).
    pub fn sums(&self) -> Vec<u64> {
        self.outputs.iter().map(|&(s, _)| s).collect()
    }
}

/// Builds the generalized totalizer over `terms`, saturating sums at `cap`.
///
/// Terms with zero weight are ignored. Returns outputs covering every
/// achievable sum in `1..=cap`, plus one overflow output representing
/// "sum > cap" when the total weight exceeds the cap.
pub fn gte_outputs(sink: &mut impl ClauseSink, terms: &[PbTerm], cap: u64) -> GteOutputs {
    let inputs: Vec<PbTerm> = terms.iter().copied().filter(|t| t.weight > 0).collect();
    if inputs.is_empty() {
        return GteOutputs { outputs: Vec::new() };
    }
    let saturate = cap.saturating_add(1);
    build_node(sink, &inputs, saturate)
}

/// Recursive tree builder. `saturate` is the collapsed overflow sum.
fn build_node(sink: &mut impl ClauseSink, terms: &[PbTerm], saturate: u64) -> GteOutputs {
    if terms.len() == 1 {
        let w = terms[0].weight.min(saturate);
        return GteOutputs { outputs: vec![(w, terms[0].lit)] };
    }
    let mid = terms.len() / 2;
    let left = build_node(sink, &terms[..mid], saturate);
    let right = build_node(sink, &terms[mid..], saturate);
    merge_nodes(sink, &left, &right, saturate)
}

fn merge_nodes(
    sink: &mut impl ClauseSink,
    a: &GteOutputs,
    b: &GteOutputs,
    saturate: u64,
) -> GteOutputs {
    // Collect achievable sums: each side alone, plus each pairwise total.
    let mut sums: Vec<u64> = Vec::new();
    for &(s, _) in &a.outputs {
        sums.push(s.min(saturate));
    }
    for &(s, _) in &b.outputs {
        sums.push(s.min(saturate));
    }
    for &(sa, _) in &a.outputs {
        for &(sb, _) in &b.outputs {
            sums.push(sa.saturating_add(sb).min(saturate));
        }
    }
    sums.sort_unstable();
    sums.dedup();

    let outputs: Vec<(u64, Lit)> = sums.iter().map(|&s| (s, sink.fresh_lit())).collect();
    let find = |s: u64| -> Lit {
        // Largest output sum ≤ s (always exists for the sums we emit).
        let idx = outputs.partition_point(|&(os, _)| os <= s) - 1;
        outputs[idx].1
    };

    // a_sa → out_sa ; b_sb → out_sb ; a_sa ∧ b_sb → out_{sa+sb}
    for &(sa, la) in &a.outputs {
        sink.add_clause(&[!la, find(sa.min(saturate))]);
    }
    for &(sb, lb) in &b.outputs {
        sink.add_clause(&[!lb, find(sb.min(saturate))]);
    }
    for &(sa, la) in &a.outputs {
        for &(sb, lb) in &b.outputs {
            let total = sa.saturating_add(sb).min(saturate);
            sink.add_clause(&[!la, !lb, find(total)]);
        }
    }
    // Monotonicity between adjacent outputs: reaching a larger sum implies
    // reaching every smaller one. Not required for assert-≤ soundness, but
    // it lets callers assume only the smallest violated output.
    for w in outputs.windows(2) {
        let (_, lo) = w[0];
        let (_, hi) = w[1];
        sink.add_clause(&[!hi, lo]);
    }
    GteOutputs { outputs }
}

/// Asserts `Σ wᵢ·xᵢ ≤ bound`.
pub fn assert_pb_le(sink: &mut impl ClauseSink, terms: &[PbTerm], bound: u64) {
    let total: u64 = terms.iter().map(|t| t.weight).sum();
    if total <= bound {
        return; // trivially satisfied
    }
    // Any single weight above the bound forces its literal false.
    let mut remaining: Vec<PbTerm> = Vec::with_capacity(terms.len());
    for &t in terms {
        if t.weight > bound {
            sink.add_clause(&[!t.lit]);
        } else if t.weight > 0 {
            remaining.push(t);
        }
    }
    let rem_total: u64 = remaining.iter().map(|t| t.weight).sum();
    if rem_total <= bound {
        return;
    }
    let node = gte_outputs(sink, &remaining, bound);
    for &(s, l) in &node.outputs {
        if s > bound {
            sink.add_clause(&[!l]);
        }
    }
}

/// Asserts `Σ wᵢ·xᵢ ≥ bound` (via the complement sum).
pub fn assert_pb_ge(sink: &mut impl ClauseSink, terms: &[PbTerm], bound: u64) {
    if bound == 0 {
        return;
    }
    let total: u64 = terms.iter().map(|t| t.weight).sum();
    if total < bound {
        // Unsatisfiable: emit the empty clause.
        sink.add_clause(&[]);
        return;
    }
    // Σ w x ≥ b  ⇔  Σ w (¬x) ≤ total - b
    let complemented: Vec<PbTerm> = terms
        .iter()
        .map(|&t| PbTerm::new(t.weight, !t.lit))
        .collect();
    assert_pb_le(sink, &complemented, total - bound);
}

/// Asserts `Σ wᵢ·xᵢ = bound`.
pub fn assert_pb_eq(sink: &mut impl ClauseSink, terms: &[PbTerm], bound: u64) {
    assert_pb_le(sink, terms, bound);
    assert_pb_ge(sink, terms, bound);
}

/// Creates a literal `p` such that `p ⇔ (Σ wᵢ·xᵢ ≤ bound)`.
///
/// Composed from two one-directional encodings guarded by `p`:
/// `p → (sum ≤ bound)` and `¬p → (sum ≥ bound + 1)`.
pub fn reify_pb_le(sink: &mut impl ClauseSink, terms: &[PbTerm], bound: u64) -> Lit {
    let p = sink.fresh_lit();
    let total: u64 = terms.iter().map(|t| t.weight).sum();
    if total <= bound {
        sink.add_clause(&[p]);
        return p;
    }
    // p → sum ≤ bound: forbid every over-bound output unless ¬p.
    let node = gte_outputs(sink, terms, bound);
    for &(s, l) in &node.outputs {
        if s > bound {
            sink.add_clause(&[!p, !l]);
        }
    }
    // ¬p → sum ≥ bound+1, i.e. complement sum ≤ total - bound - 1,
    // guarded by p in every bound clause.
    let complemented: Vec<PbTerm> = terms
        .iter()
        .map(|&t| PbTerm::new(t.weight, !t.lit))
        .collect();
    let comp_bound = total - bound - 1;
    let comp = gte_outputs(sink, &complemented, comp_bound);
    for &(s, l) in &comp.outputs {
        if s > comp_bound {
            sink.add_clause(&[p, !l]);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_sat::{SolveResult, Solver};

    fn inputs(s: &mut Solver, weights: &[u64]) -> Vec<PbTerm> {
        weights
            .iter()
            .map(|&w| PbTerm::new(w, s.new_var().positive()))
            .collect()
    }

    /// Brute-force check: for every input assignment, constraint result
    /// must equal the arithmetic comparison.
    fn check_all_assignments(
        weights: &[u64],
        bound: u64,
        build: impl Fn(&mut Solver, &[PbTerm]),
        cmp: impl Fn(u64, u64) -> bool,
    ) {
        let n = weights.len();
        for bits in 0u32..(1 << n) {
            let mut s = Solver::new();
            let terms = inputs(&mut s, weights);
            build(&mut s, &terms);
            for (i, t) in terms.iter().enumerate() {
                if (bits >> i) & 1 == 1 {
                    s.add_clause([t.lit]);
                } else {
                    s.add_clause([!t.lit]);
                }
            }
            let sum: u64 = terms
                .iter()
                .enumerate()
                .filter(|(i, _)| (bits >> i) & 1 == 1)
                .map(|(_, t)| t.weight)
                .sum();
            let expected = if cmp(sum, bound) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(
                s.solve(),
                expected,
                "weights={weights:?} bound={bound} bits={bits:b} sum={sum}"
            );
        }
    }

    #[test]
    fn pb_le_exhaustive() {
        for (weights, bound) in [
            (vec![1u64, 1, 1], 2u64),
            (vec![2, 3, 4], 5),
            (vec![5, 1, 1, 1], 5),
            (vec![7, 7, 7], 13),
            (vec![1, 2, 4, 8], 9),
            (vec![3, 3, 3, 3], 6),
            (vec![10, 1], 0),
        ] {
            check_all_assignments(
                &weights,
                bound,
                |s, t| assert_pb_le(s, t, bound),
                |sum, b| sum <= b,
            );
        }
    }

    #[test]
    fn pb_ge_exhaustive() {
        for (weights, bound) in [
            (vec![1u64, 1, 1], 2u64),
            (vec![2, 3, 4], 5),
            (vec![1, 2, 4, 8], 9),
            (vec![3, 3, 3], 9),
            (vec![4, 4], 1),
        ] {
            check_all_assignments(
                &weights,
                bound,
                |s, t| assert_pb_ge(s, t, bound),
                |sum, b| sum >= b,
            );
        }
    }

    #[test]
    fn pb_eq_exhaustive() {
        for (weights, bound) in [
            (vec![1u64, 1, 1], 2u64),
            (vec![2, 3, 4], 5),
            (vec![1, 2, 4], 7),
            (vec![2, 2, 2], 3), // odd target with even weights: only UNSAT rows
        ] {
            check_all_assignments(
                &weights,
                bound,
                |s, t| assert_pb_eq(s, t, bound),
                |sum, b| sum == b,
            );
        }
    }

    #[test]
    fn pb_ge_unreachable_bound_is_unsat() {
        let mut s = Solver::new();
        let terms = inputs(&mut s, &[1, 2]);
        assert_pb_ge(&mut s, &terms, 10);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn reified_pb_le_both_directions() {
        for (weights, bound) in [(vec![2u64, 3, 4], 5u64), (vec![1, 1, 1], 1), (vec![5, 2], 4)] {
            let n = weights.len();
            for bits in 0u32..(1 << n) {
                let mut s = Solver::new();
                let terms = inputs(&mut s, &weights);
                let p = reify_pb_le(&mut s, &terms, bound);
                for (i, t) in terms.iter().enumerate() {
                    if (bits >> i) & 1 == 1 {
                        s.add_clause([t.lit]);
                    } else {
                        s.add_clause([!t.lit]);
                    }
                }
                assert_eq!(s.solve(), SolveResult::Sat);
                let sum: u64 = terms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (bits >> i) & 1 == 1)
                    .map(|(_, t)| t.weight)
                    .sum();
                assert_eq!(
                    s.model_lit_value(p),
                    Some(sum <= bound),
                    "weights={weights:?} bound={bound} bits={bits:b}"
                );
            }
        }
    }

    #[test]
    fn gte_outputs_reflect_reached_sums() {
        let mut s = Solver::new();
        let terms = inputs(&mut s, &[2, 3, 5]);
        let node = gte_outputs(&mut s, &terms, 10);
        // Force x0 (w=2) and x2 (w=5): sum = 7.
        s.add_clause([terms[0].lit]);
        s.add_clause([!terms[1].lit]);
        s.add_clause([terms[2].lit]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &(sum, l) in &node.outputs {
            let v = s.model_lit_value(l).unwrap();
            if sum <= 7 {
                assert!(v, "output for sum {sum} should be reached");
            }
            // One-directional encoding: outputs above the true sum are not
            // forced either way, so no assertion for sum > 7.
        }
        assert!(node.reached(7).is_some());
        assert!(node.reached(8).is_none_or(|l| {
            // If an output ≥ 8 exists, it must not be *forced* true; solver
            // may have chosen either value. Just ensure lookup works.
            let _ = l;
            true
        }));
    }

    #[test]
    fn zero_weight_terms_are_ignored() {
        let mut s = Solver::new();
        let terms = inputs(&mut s, &[0, 0, 3]);
        assert_pb_le(&mut s, &terms, 2);
        // x2 has weight 3 > bound 2, so x2 is forced false; x0/x1 free.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_lit_value(terms[2].lit), Some(false));
    }

    #[test]
    fn trivially_satisfied_le_emits_nothing() {
        let mut sink = crate::sink::CollectSink::default();
        let terms: Vec<PbTerm> = (0..3)
            .map(|_| PbTerm::new(1, sink.fresh_lit()))
            .collect();
        assert_pb_le(&mut sink, &terms, 3);
        assert!(sink.clauses.is_empty());
    }

    #[test]
    fn saturation_keeps_outputs_bounded() {
        let mut sink = crate::sink::CollectSink::default();
        let terms: Vec<PbTerm> = (0..12)
            .map(|i| PbTerm::new(1 << (i % 6), sink.fresh_lit()))
            .collect();
        let node = gte_outputs(&mut sink, &terms, 10);
        // Saturated at cap+1 = 11: no output sum may exceed 11.
        assert!(node.outputs.iter().all(|&(s, _)| s <= 11));
    }
}
