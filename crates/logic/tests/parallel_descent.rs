//! Differential property sweep for the racing MaxSAT descent.
//!
//! Over seeded random weighted instances, `minimize` on an encoder whose
//! backend races bound probes across 1, 2, or 4 parallel seats — in both
//! deterministic and racing arbitration — must report exactly the optimum
//! cost the plain sequential encoder finds. Deterministic runs must repeat
//! bit-identically (same cost, same violated set, same model values).
//!
//! All randomness is seeded — running the sweep twice explores the same
//! instances.

use netarch_logic::backend::{PortfolioOptions, SolveBackend};
use netarch_logic::maxsat::{minimize, MaxSatAlgorithm, MaxSatOutcome, Soft};
use netarch_logic::{Atom, EncodeConfig, Encoder, Formula};
use netarch_rt::Rng;

struct Instance {
    hard: Vec<Formula>,
    soft: Vec<Soft>,
    num_atoms: u32,
}

fn gen_instance(rng: &mut Rng) -> Instance {
    let num_atoms = rng.gen_range(3..=7u32);
    let atom = |rng: &mut Rng, n: u32| {
        let f = Formula::Atom(Atom(rng.gen_range(0..n)));
        if rng.gen_bool(0.5) {
            Formula::not(f)
        } else {
            f
        }
    };
    let mut hard = Vec::new();
    for _ in 0..rng.gen_range(0..6) {
        let x = atom(rng, num_atoms);
        let y = atom(rng, num_atoms);
        hard.push(Formula::or([x, y]));
    }
    let mut soft = Vec::new();
    for _ in 0..rng.gen_range(2..8) {
        soft.push(Soft::new(rng.gen_range(1..9), atom(rng, num_atoms)));
    }
    Instance { hard, soft, num_atoms }
}

fn encoder_with(backend: SolveBackend) -> Encoder {
    Encoder::with_config(EncodeConfig {
        backend,
        ..EncodeConfig::default()
    })
}

fn optimize(instance: &Instance, backend: SolveBackend) -> (MaxSatOutcome, Vec<Option<bool>>) {
    let mut e = encoder_with(backend);
    for h in &instance.hard {
        e.assert(h);
    }
    let outcome = minimize(&mut e, &instance.soft, MaxSatAlgorithm::LinearGte);
    let model = (0..instance.num_atoms).map(|i| e.atom_value(Atom(i))).collect();
    (outcome, model)
}

fn racing_backend(threads: usize, deterministic: bool) -> SolveBackend {
    SolveBackend::Portfolio(PortfolioOptions {
        num_threads: threads,
        deterministic,
        ..PortfolioOptions::default()
    })
}

#[test]
fn racing_descent_matches_sequential_optimum() {
    let mut rng = Rng::seed_from_u64(0xDE5C_E117);
    let mut optima = 0usize;
    for case_idx in 0..30 {
        let instance = gen_instance(&mut rng);
        let (expected, _) = optimize(&instance, SolveBackend::Sequential);
        for threads in [1usize, 2, 4] {
            for deterministic in [true, false] {
                let (got, _) = optimize(&instance, racing_backend(threads, deterministic));
                let label = format!("case={case_idx} threads={threads} det={deterministic}");
                match (&expected, &got) {
                    (
                        MaxSatOutcome::Optimal { cost: a, .. },
                        MaxSatOutcome::Optimal { cost: b, .. },
                    ) => assert_eq!(a, b, "{label}: optimum cost disagrees"),
                    (a, b) => assert_eq!(a, b, "{label}: outcome kind disagrees"),
                }
            }
        }
        if matches!(expected, MaxSatOutcome::Optimal { .. }) {
            optima += 1;
        }
    }
    assert!(optima >= 15, "degenerate sweep: only {optima} optimizable cases");
}

#[test]
fn deterministic_racing_descent_repeats_bit_identically() {
    let mut rng = Rng::seed_from_u64(0x002E_9EA7);
    for case_idx in 0..10 {
        let instance = gen_instance(&mut rng);
        let (o1, m1) = optimize(&instance, racing_backend(4, true));
        let (o2, m2) = optimize(&instance, racing_backend(4, true));
        assert_eq!(o1, o2, "case {case_idx}: outcome drifted between runs");
        assert_eq!(m1, m2, "case {case_idx}: model drifted between runs");
    }
}

#[test]
fn parallel_queries_switch_keeps_loops_sequential() {
    // parallel_queries: false must not change answers either — it routes
    // one-shot probes through the portfolio but keeps the descent loop on
    // the session solver.
    let mut rng = Rng::seed_from_u64(0x00FF_10AD);
    for _ in 0..8 {
        let instance = gen_instance(&mut rng);
        let (expected, _) = optimize(&instance, SolveBackend::Sequential);
        let backend = SolveBackend::Portfolio(PortfolioOptions {
            num_threads: 4,
            deterministic: true,
            parallel_queries: false,
            ..PortfolioOptions::default()
        });
        let mut e = encoder_with(backend);
        assert_eq!(e.parallel_seats(), 1, "switch must disable the parallel loops");
        for h in &instance.hard {
            e.assert(h);
        }
        let got = minimize(&mut e, &instance.soft, MaxSatAlgorithm::LinearGte);
        match (&expected, &got) {
            (MaxSatOutcome::Optimal { cost: a, .. }, MaxSatOutcome::Optimal { cost: b, .. }) => {
                assert_eq!(a, b)
            }
            (a, b) => assert_eq!(a, b),
        }
    }
}
