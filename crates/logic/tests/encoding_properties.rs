//! Property tests: the Tseitin encoding must be *equisatisfiable with
//! identical atom projections* — for every formula, the encoder's verdict
//! and model count (projected on atoms) must match brute-force evaluation
//! of the AST semantics.

use netarch_logic::{Atom, Encoder, Formula, MaxSatAlgorithm, Soft};
use netarch_rt::prop::{self, gen_vec, Config, Shrink};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};
use netarch_sat::SolveResult;

const MAX_ATOMS: u32 = 5;

/// Shrinkable wrapper: a random formula over up to MAX_ATOMS atoms.
#[derive(Clone, Debug)]
struct F(Formula);

/// Random formula with nesting depth at most `depth`.
fn gen_formula_depth(rng: &mut Rng, depth: u32) -> Formula {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_range(0..7u32) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::Atom(Atom(rng.gen_range(0..MAX_ATOMS))),
        };
    }
    let d = depth - 1;
    let children =
        |rng: &mut Rng, lo: usize, hi: usize| gen_vec(rng, lo..=hi, |r| gen_formula_depth(r, d));
    match rng.gen_range(0..9u32) {
        0 => Formula::not(gen_formula_depth(rng, d)),
        1 => Formula::and(children(rng, 2, 3)),
        2 => Formula::or(children(rng, 2, 3)),
        3 => Formula::implies(gen_formula_depth(rng, d), gen_formula_depth(rng, d)),
        4 => Formula::iff(gen_formula_depth(rng, d), gen_formula_depth(rng, d)),
        5 => Formula::xor(gen_formula_depth(rng, d), gen_formula_depth(rng, d)),
        6 => Formula::at_most(rng.gen_range(0..4u32), children(rng, 1, 3)),
        7 => Formula::at_least(rng.gen_range(0..4u32), children(rng, 1, 3)),
        _ => Formula::exactly(rng.gen_range(0..4u32), children(rng, 1, 3)),
    }
}

fn gen_formula(rng: &mut Rng) -> F {
    F(gen_formula_depth(rng, 4))
}

impl Shrink for F {
    /// Candidates: the constants, each direct subformula, and the node
    /// with one operand removed — enough to strip a failing formula down
    /// to a small witness.
    fn shrink(&self) -> Vec<F> {
        let mut out = vec![F(Formula::True), F(Formula::False)];
        let subs: Vec<Formula> = match &self.0 {
            Formula::True | Formula::False | Formula::Atom(_) => Vec::new(),
            Formula::Not(a) => vec![(**a).clone()],
            Formula::And(fs) | Formula::Or(fs) => fs.clone(),
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
                vec![(**a).clone(), (**b).clone()]
            }
            Formula::AtMost(_, fs) | Formula::AtLeast(_, fs) | Formula::Exactly(_, fs) => {
                fs.clone()
            }
        };
        out.extend(subs.into_iter().map(F));
        if let Formula::And(fs) | Formula::Or(fs) = &self.0 {
            for i in 0..fs.len() {
                let mut rest = fs.clone();
                rest.remove(i);
                out.push(F(match &self.0 {
                    Formula::And(_) => Formula::and(rest),
                    _ => Formula::or(rest),
                }));
            }
        }
        out
    }
}

/// Counts satisfying assignments over all MAX_ATOMS atoms by evaluation.
fn brute_count(f: &Formula) -> usize {
    (0u32..(1 << MAX_ATOMS))
        .filter(|bits| f.eval(&|a: Atom| (bits >> a.0) & 1 == 1))
        .count()
}

#[test]
fn encoder_verdict_matches_semantics() {
    prop::check(&Config::with_cases(192), gen_formula, |F(f)| {
        let expected_sat = brute_count(f) > 0;
        let mut e = Encoder::new();
        e.assert(f);
        let got = e.solve();
        prop_assert_eq!(got == SolveResult::Sat, expected_sat, "formula: {}", f);
        if got == SolveResult::Sat {
            // The returned model must actually satisfy the formula.
            prop_assert!(e.eval_under_model(f), "model violates formula {}", f);
        }
        Ok(())
    });
}

#[test]
fn projected_model_count_matches_semantics() {
    prop::check(&Config::with_cases(192), gen_formula, |F(f)| {
        let expected = brute_count(f);
        let mut e = Encoder::new();
        e.assert(f);
        // Ensure all atoms are materialized so projection covers them.
        let atoms: Vec<Atom> = (0..MAX_ATOMS).map(Atom).collect();
        for &a in &atoms {
            let _ = e.atom_var(a);
        }
        let result = netarch_logic::enumerate::enumerate_models(e, &atoms, &[], 1 << MAX_ATOMS);
        prop_assert!(!result.truncated);
        prop_assert_eq!(result.models.len(), expected, "formula: {}", f);
        Ok(())
    });
}

#[test]
fn lit_for_is_full_equivalence() {
    prop::check(&Config::with_cases(192), gen_formula, |F(f)| {
        // Reify f as a literal, force the literal false: remaining models
        // must be exactly the countermodels of f.
        let expected_counter = (1usize << MAX_ATOMS) - brute_count(f);
        let mut e = Encoder::new();
        let l = e.lit_for(f);
        e.solver_mut().add_clause([!l]);
        let atoms: Vec<Atom> = (0..MAX_ATOMS).map(Atom).collect();
        for &a in &atoms {
            let _ = e.atom_var(a);
        }
        let result = netarch_logic::enumerate::enumerate_models(e, &atoms, &[], 1 << MAX_ATOMS);
        prop_assert!(!result.truncated);
        prop_assert_eq!(result.models.len(), expected_counter, "formula: {}", f);
        Ok(())
    });
}

#[test]
fn maxsat_linear_is_optimal() {
    prop::check(
        &Config::with_cases(192),
        |rng| {
            let hard = gen_formula(rng);
            let soft_formulas = gen_vec(rng, 1..=3, gen_formula);
            let weights = gen_vec(rng, 1..=3, |r| r.gen_range(1..8u64));
            (hard, soft_formulas, weights)
        },
        |(F(hard), soft_formulas, weights)| {
            let soft: Vec<Soft> = soft_formulas
                .iter()
                .zip(weights.iter().cycle())
                .map(|(F(f), &w)| Soft::new(w.max(1), f.clone()))
                .collect();
            // Brute-force optimum.
            let mut best: Option<u64> = None;
            for bits in 0u32..(1 << MAX_ATOMS) {
                let assign = |a: Atom| (bits >> a.0) & 1 == 1;
                if !hard.eval(&assign) {
                    continue;
                }
                let cost: u64 = soft
                    .iter()
                    .filter(|s| !s.formula.eval(&assign))
                    .map(|s| s.weight)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }
            let mut e = Encoder::new();
            e.assert(hard);
            let outcome = netarch_logic::maxsat::minimize(&mut e, &soft, MaxSatAlgorithm::LinearGte);
            match (best, outcome) {
                (None, netarch_logic::MaxSatOutcome::HardUnsat) => {}
                (Some(b), netarch_logic::MaxSatOutcome::Optimal { cost, .. }) => {
                    prop_assert_eq!(cost, b, "hard={} soft={:?}", hard, soft);
                }
                (expected, got) => {
                    prop_assert!(false, "expected {:?}, got {:?}", expected, got)
                }
            }
            Ok(())
        },
    );
}

#[test]
fn fu_malik_matches_linear_on_uniform_weights() {
    prop::check(
        &Config::with_cases(192),
        |rng| (gen_formula(rng), gen_vec(rng, 1..=3, gen_formula)),
        |(F(hard), soft_formulas)| {
            let soft: Vec<Soft> = soft_formulas
                .iter()
                .map(|F(f)| Soft::new(1, f.clone()))
                .collect();
            let mut e1 = Encoder::new();
            e1.assert(hard);
            let r1 = netarch_logic::maxsat::minimize(&mut e1, &soft, MaxSatAlgorithm::LinearGte);
            let mut e2 = Encoder::new();
            e2.assert(hard);
            let r2 = netarch_logic::maxsat::minimize(&mut e2, &soft, MaxSatAlgorithm::FuMalik);
            match (r1, r2) {
                (
                    netarch_logic::MaxSatOutcome::Optimal { cost: c1, .. },
                    netarch_logic::MaxSatOutcome::Optimal { cost: c2, .. },
                ) => prop_assert_eq!(c1, c2, "hard={}", hard),
                (
                    netarch_logic::MaxSatOutcome::HardUnsat,
                    netarch_logic::MaxSatOutcome::HardUnsat,
                ) => {}
                (x, y) => prop_assert!(false, "mismatch {:?} vs {:?}", x, y),
            }
            Ok(())
        },
    );
}

#[test]
fn mus_members_are_all_necessary() {
    prop::check(
        &Config::with_cases(192),
        |rng| gen_vec(rng, 2..=5, gen_formula),
        |formulas| {
            let mut e = Encoder::new();
            let mut g = netarch_logic::GroupedAssertions::new();
            let ids: Vec<_> = formulas
                .iter()
                .enumerate()
                .map(|(i, F(f))| g.add_group(&mut e, format!("g{i}"), f))
                .collect();
            if let Some(mus) = g.find_mus(&mut e, &ids) {
                // MUS itself must be UNSAT.
                prop_assert_eq!(g.solve_with_groups(&mut e, &mus), SolveResult::Unsat);
                // Every proper subset missing one member must be SAT.
                for drop in &mus {
                    let rest: Vec<_> = mus.iter().copied().filter(|x| x != drop).collect();
                    prop_assert_eq!(
                        g.solve_with_groups(&mut e, &rest),
                        SolveResult::Sat,
                        "MUS not minimal: {:?} removable",
                        drop
                    );
                }
            }
            Ok(())
        },
    );
}
