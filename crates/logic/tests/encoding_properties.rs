//! Property tests: the Tseitin encoding must be *equisatisfiable with
//! identical atom projections* — for every formula, the encoder's verdict
//! and model count (projected on atoms) must match brute-force evaluation
//! of the AST semantics.

use netarch_logic::{Atom, Encoder, Formula, MaxSatAlgorithm, Soft};
use netarch_sat::SolveResult;
use proptest::prelude::*;

const MAX_ATOMS: u32 = 5;

/// Random formula generator over up to MAX_ATOMS atoms.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..MAX_ATOMS).prop_map(|i| Formula::Atom(Atom(i))),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(4, 48, 5, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::xor(a, b)),
            (0u32..4, prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(k, fs)| Formula::at_most(k, fs)),
            (0u32..4, prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(k, fs)| Formula::at_least(k, fs)),
            (0u32..4, prop::collection::vec(inner, 1..4))
                .prop_map(|(k, fs)| Formula::exactly(k, fs)),
        ]
    })
}

/// Counts satisfying assignments over all MAX_ATOMS atoms by evaluation.
fn brute_count(f: &Formula) -> usize {
    (0u32..(1 << MAX_ATOMS))
        .filter(|bits| f.eval(&|a: Atom| (bits >> a.0) & 1 == 1))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn encoder_verdict_matches_semantics(f in formula_strategy()) {
        let expected_sat = brute_count(&f) > 0;
        let mut e = Encoder::new();
        e.assert(&f);
        let got = e.solve();
        prop_assert_eq!(got == SolveResult::Sat, expected_sat, "formula: {}", f);
        if got == SolveResult::Sat {
            // The returned model must actually satisfy the formula.
            prop_assert!(e.eval_under_model(&f), "model violates formula {}", f);
        }
    }

    #[test]
    fn projected_model_count_matches_semantics(f in formula_strategy()) {
        let expected = brute_count(&f);
        let mut e = Encoder::new();
        e.assert(&f);
        // Ensure all atoms are materialized so projection covers them.
        let atoms: Vec<Atom> = (0..MAX_ATOMS).map(Atom).collect();
        for &a in &atoms {
            let _ = e.atom_var(a);
        }
        let result = netarch_logic::enumerate::enumerate_models(e, &atoms, &[], 1 << MAX_ATOMS);
        prop_assert!(!result.truncated);
        prop_assert_eq!(result.models.len(), expected, "formula: {}", f);
    }

    #[test]
    fn lit_for_is_full_equivalence(f in formula_strategy()) {
        // Reify f as a literal, force the literal false: remaining models
        // must be exactly the countermodels of f.
        let expected_counter = (1usize << MAX_ATOMS) - brute_count(&f);
        let mut e = Encoder::new();
        let l = e.lit_for(&f);
        e.solver_mut().add_clause([!l]);
        let atoms: Vec<Atom> = (0..MAX_ATOMS).map(Atom).collect();
        for &a in &atoms {
            let _ = e.atom_var(a);
        }
        let result = netarch_logic::enumerate::enumerate_models(e, &atoms, &[], 1 << MAX_ATOMS);
        prop_assert!(!result.truncated);
        prop_assert_eq!(result.models.len(), expected_counter, "formula: {}", f);
    }

    #[test]
    fn maxsat_linear_is_optimal(
        hard in formula_strategy(),
        soft_formulas in prop::collection::vec(formula_strategy(), 1..4),
        weights in prop::collection::vec(1u64..8, 1..4),
    ) {
        let soft: Vec<Soft> = soft_formulas
            .iter()
            .zip(weights.iter().cycle())
            .map(|(f, &w)| Soft::new(w, f.clone()))
            .collect();
        // Brute-force optimum.
        let mut best: Option<u64> = None;
        for bits in 0u32..(1 << MAX_ATOMS) {
            let assign = |a: Atom| (bits >> a.0) & 1 == 1;
            if !hard.eval(&assign) {
                continue;
            }
            let cost: u64 = soft
                .iter()
                .filter(|s| !s.formula.eval(&assign))
                .map(|s| s.weight)
                .sum();
            best = Some(best.map_or(cost, |b: u64| b.min(cost)));
        }
        let mut e = Encoder::new();
        e.assert(&hard);
        let outcome = netarch_logic::maxsat::minimize(&mut e, &soft, MaxSatAlgorithm::LinearGte);
        match (best, outcome) {
            (None, netarch_logic::MaxSatOutcome::HardUnsat) => {}
            (Some(b), netarch_logic::MaxSatOutcome::Optimal { cost, .. }) => {
                prop_assert_eq!(cost, b, "hard={} soft={:?}", hard, soft);
            }
            (expected, got) => prop_assert!(false, "expected {:?}, got {:?}", expected, got),
        }
    }

    #[test]
    fn fu_malik_matches_linear_on_uniform_weights(
        hard in formula_strategy(),
        soft_formulas in prop::collection::vec(formula_strategy(), 1..4),
    ) {
        let soft: Vec<Soft> = soft_formulas
            .iter()
            .map(|f| Soft::new(1, f.clone()))
            .collect();
        let mut e1 = Encoder::new();
        e1.assert(&hard);
        let r1 = netarch_logic::maxsat::minimize(&mut e1, &soft, MaxSatAlgorithm::LinearGte);
        let mut e2 = Encoder::new();
        e2.assert(&hard);
        let r2 = netarch_logic::maxsat::minimize(&mut e2, &soft, MaxSatAlgorithm::FuMalik);
        match (r1, r2) {
            (
                netarch_logic::MaxSatOutcome::Optimal { cost: c1, .. },
                netarch_logic::MaxSatOutcome::Optimal { cost: c2, .. },
            ) => prop_assert_eq!(c1, c2, "hard={}", hard),
            (netarch_logic::MaxSatOutcome::HardUnsat, netarch_logic::MaxSatOutcome::HardUnsat) => {}
            (x, y) => prop_assert!(false, "mismatch {:?} vs {:?}", x, y),
        }
    }

    #[test]
    fn mus_members_are_all_necessary(
        formulas in prop::collection::vec(formula_strategy(), 2..6),
    ) {
        let mut e = Encoder::new();
        let mut g = netarch_logic::GroupedAssertions::new();
        let ids: Vec<_> = formulas
            .iter()
            .enumerate()
            .map(|(i, f)| g.add_group(&mut e, format!("g{i}"), f))
            .collect();
        if let Some(mus) = g.find_mus(&mut e, &ids) {
            // MUS itself must be UNSAT.
            prop_assert_eq!(g.solve_with_groups(&mut e, &mus), SolveResult::Unsat);
            // Every proper subset missing one member must be SAT.
            for drop in &mus {
                let rest: Vec<_> = mus.iter().copied().filter(|x| x != drop).collect();
                prop_assert_eq!(
                    g.solve_with_groups(&mut e, &rest),
                    SolveResult::Sat,
                    "MUS not minimal: {:?} removable", drop
                );
            }
        }
    }
}
