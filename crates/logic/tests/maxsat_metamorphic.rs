//! Metamorphic tests for the MaxSAT layer.
//!
//! Instead of an oracle, these tests apply meaning-preserving (or
//! meaning-shifting-in-a-known-way) transformations to random weighted
//! MaxSAT instances and assert the relation between the optima:
//!
//! * permuting the soft constraints never changes the optimum,
//! * duplicating a soft constraint is equivalent to doubling its weight,
//! * adding a soft constraint satisfied by an optimal model never changes
//!   the optimum,
//! * both algorithms (linear GTE descent, Fu-Malik) agree on the optimum.
//!
//! Every variant solves on a fresh `Encoder` — the optimizers harden their
//! optimum into the solver, so encoders cannot be reused across variants.

use netarch_logic::maxsat::{self, MaxSatOutcome};
use netarch_logic::{Atom, Encoder, Formula, MaxSatAlgorithm, Soft};
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert_eq, Rng};

/// A literal over a small atom universe: (atom index, polarity).
type RawLit = (u32, bool);

/// A random weighted instance: hard 2-literal disjunctions plus weighted
/// soft literals, over up to 5 atoms.
#[derive(Clone, Debug)]
struct RawInstance {
    num_atoms: u32,
    hard: Vec<Vec<RawLit>>,
    soft: Vec<(u64, RawLit)>,
}

impl_shrink_struct!(RawInstance { num_atoms, hard, soft });

fn gen_instance(rng: &mut Rng) -> RawInstance {
    let num_atoms = rng.gen_range(2..=5u32);
    let lit = |r: &mut Rng| (r.gen_range(0..num_atoms), r.gen_bool(0.5));
    let hard = gen_vec(rng, 0..=4, |r| gen_vec(r, 2..=2, lit));
    let soft = gen_vec(rng, 1..=5, |r| (r.gen_range(1..=5u64), lit(r)));
    RawInstance { num_atoms, hard, soft }
}

/// Shrinking is structure-blind; clamp atom indices back into range.
fn normalize(raw: &RawInstance) -> RawInstance {
    let num_atoms = raw.num_atoms.clamp(2, 5);
    let fix = |&(a, pos): &RawLit| (a % num_atoms, pos);
    RawInstance {
        num_atoms,
        hard: raw.hard.iter().map(|c| c.iter().map(fix).collect()).collect(),
        soft: raw.soft.iter().map(|&(w, l)| (w.max(1), fix(&l))).collect(),
    }
}

fn formula(l: RawLit) -> Formula {
    let atom = Formula::Atom(Atom(l.0));
    if l.1 {
        atom
    } else {
        Formula::not(atom)
    }
}

fn softs(raw: &[(u64, RawLit)]) -> Vec<Soft> {
    raw.iter().map(|&(w, l)| Soft::new(w, formula(l))).collect()
}

fn encoder_for(raw: &RawInstance) -> Encoder {
    let mut e = Encoder::new();
    for clause in &raw.hard {
        e.assert(&Formula::or(clause.iter().map(|&l| formula(l))));
    }
    e
}

/// Optimum cost on a fresh encoder; `None` when the hard part is UNSAT.
fn optimum(raw: &RawInstance, soft: &[Soft], alg: MaxSatAlgorithm) -> Option<u64> {
    let mut e = encoder_for(raw);
    match maxsat::minimize(&mut e, soft, alg) {
        MaxSatOutcome::Optimal { cost, .. } => Some(cost),
        MaxSatOutcome::HardUnsat => None,
        MaxSatOutcome::WeightOverflow => {
            unreachable!("generated weights are tiny; the total cannot overflow")
        }
    }
}

#[test]
fn permuting_soft_order_never_changes_the_optimum() {
    prop::check(
        &Config::with_cases(64),
        |rng| {
            let inst = gen_instance(rng);
            // A permutation as a seed; materialized after normalization so
            // shrinking cannot desynchronize it from the soft list.
            let perm_seed = rng.gen_range(0..u64::MAX / 2);
            (inst, perm_seed)
        },
        |(inst, perm_seed)| {
            let inst = normalize(inst);
            let base = softs(&inst.soft);
            // Fisher-Yates with a derived Rng.
            let mut permuted = base.clone();
            let mut r = Rng::seed_from_u64(*perm_seed);
            for i in (1..permuted.len()).rev() {
                permuted.swap(i, r.gen_range(0..=i));
            }
            for alg in [MaxSatAlgorithm::LinearGte, MaxSatAlgorithm::FuMalik] {
                prop_assert_eq!(
                    optimum(&inst, &base, alg),
                    optimum(&inst, &permuted, alg),
                    "permutation changed the optimum"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn duplicating_a_soft_equals_doubling_its_weight() {
    prop::check(
        &Config::with_cases(64),
        |rng| {
            let inst = gen_instance(rng);
            let pick = rng.gen_range(0..inst.soft.len());
            (inst, pick)
        },
        |(inst, pick)| {
            let inst = normalize(inst);
            if inst.soft.is_empty() {
                return Ok(()); // shrinking may empty the soft list
            }
            let pick = *pick % inst.soft.len();
            let base = softs(&inst.soft);

            // Variant A: the picked soft appears twice at its weight.
            let mut duplicated = base.clone();
            duplicated.push(base[pick].clone());
            // Variant B: the picked soft once, at double weight.
            let mut doubled = base;
            doubled[pick].weight *= 2;

            prop_assert_eq!(
                optimum(&inst, &duplicated, MaxSatAlgorithm::LinearGte),
                optimum(&inst, &doubled, MaxSatAlgorithm::LinearGte),
                "duplicate soft is not equivalent to doubled weight"
            );
            Ok(())
        },
    );
}

#[test]
fn adding_a_soft_satisfied_by_an_optimal_model_preserves_the_optimum() {
    prop::check(
        &Config::with_cases(64),
        |rng| {
            let inst = gen_instance(rng);
            let atom_seed = rng.gen_range(0..u32::MAX);
            let weight = rng.gen_range(1..=5u64);
            (inst, atom_seed, weight)
        },
        |(inst, atom_seed, weight)| {
            let inst = normalize(inst);
            let base = softs(&inst.soft);

            // Solve the base instance and keep the optimal model around.
            let mut e = encoder_for(&inst);
            let base_cost = match maxsat::minimize(&mut e, &base, MaxSatAlgorithm::LinearGte) {
                MaxSatOutcome::Optimal { cost, .. } => cost,
                // Nothing to compare (tiny weights cannot overflow).
                _ => return Ok(()),
            };

            // A literal the optimal model satisfies. Atoms never mentioned
            // get a fixed polarity: a soft on them is free to satisfy, which
            // is exactly the "already satisfied" case too.
            let atom = Atom(atom_seed % inst.num_atoms);
            let value = e.atom_value(atom).unwrap_or(true);
            let extra = Soft::new(*weight, if value {
                Formula::Atom(atom)
            } else {
                Formula::not(Formula::Atom(atom))
            });

            let mut extended = base;
            extended.push(extra);
            prop_assert_eq!(
                optimum(&inst, &extended, MaxSatAlgorithm::LinearGte),
                Some(base_cost),
                "satisfied extra soft changed the optimum"
            );
            Ok(())
        },
    );
}

#[test]
fn both_algorithms_agree_on_uniform_weight_instances() {
    // Fu-Malik only runs its core-guided loop on uniform weights; force
    // them uniform so the differential actually exercises both code paths.
    prop::check(&Config::with_cases(64), gen_instance, |inst| {
        let inst = normalize(inst);
        let uniform: Vec<Soft> =
            softs(&inst.soft).into_iter().map(|s| Soft::new(1, s.formula)).collect();
        prop_assert_eq!(
            optimum(&inst, &uniform, MaxSatAlgorithm::LinearGte),
            optimum(&inst, &uniform, MaxSatAlgorithm::FuMalik),
            "algorithms disagree on the optimum"
        );
        Ok(())
    });
}
