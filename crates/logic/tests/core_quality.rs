//! Unsat-core quality: every reported core member must be necessary.
//!
//! Diagnosis output (paper §6) is only useful if it does not blame
//! innocent rules. These tests build instance families whose unique
//! minimal conflict is known by construction — a single clause that
//! requires *all* of `k` designated assumptions, surrounded by satisfiable
//! noise — and assert two things about each reported core / MUS:
//!
//! * **completeness**: it contains every member of the planted conflict
//!   (dropping any one of those makes the rest satisfiable, so no correct
//!   core can omit one), and
//! * **minimality**: it contains nothing else, verified by the oracle
//!   check "drop each member → SAT".

use netarch_logic::{Atom, Encoder, Formula, GroupedAssertions, GroupId};
use netarch_rt::prop::{self, Config};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};
use netarch_sat::{Lit, SolveResult, Solver, Var};
use std::collections::HashSet;

/// An instance whose only conflict is `¬s_0 ∨ … ∨ ¬s_{k-1}` over the
/// first `k` variables, plus `noise` all-positive clauses (satisfiable by
/// assigning true everywhere) over `noise_vars` further variables.
#[derive(Clone, Debug)]
struct PlantedCore {
    k: usize,
    noise_vars: usize,
    noise: Vec<Vec<usize>>, // indices into the noise var block
    shuffle_seed: u64,
}

impl netarch_rt::prop::Shrink for PlantedCore {}

fn gen_planted(rng: &mut Rng) -> PlantedCore {
    let k = rng.gen_range(2..=6usize);
    let noise_vars = rng.gen_range(1..=6usize);
    let noise = netarch_rt::prop::gen_vec(rng, 0..=5, |r| {
        netarch_rt::prop::gen_vec(r, 1..=3, |r| r.gen_range(0..noise_vars))
    });
    PlantedCore { k, noise_vars, noise, shuffle_seed: rng.gen_range(0..u64::MAX / 2) }
}

fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut r = Rng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        out.swap(i, r.gen_range(0..=i));
    }
    out
}

#[test]
fn solver_core_is_exactly_the_planted_conflict() {
    prop::check(&Config::with_cases(128), gen_planted, |p| {
        let mut s = Solver::new();
        s.ensure_vars(p.k + p.noise_vars);
        // The planted conflict: at least one of the k selectors is false.
        s.add_clause((0..p.k).map(|i| Var::from_index(i).negative()));
        // Noise: all-positive clauses over the disjoint noise block.
        for clause in &p.noise {
            s.add_clause(clause.iter().map(|&i| Var::from_index(p.k + i).positive()));
        }
        // Assume every selector AND every noise variable true, in a random
        // order; only the selectors belong in the core.
        let planted: Vec<Lit> = (0..p.k).map(|i| Var::from_index(i).positive()).collect();
        let mut assumptions = planted.clone();
        assumptions.extend((0..p.noise_vars).map(|i| Var::from_index(p.k + i).positive()));
        let assumptions = shuffled(&assumptions, p.shuffle_seed);

        prop_assert_eq!(s.solve_with(&assumptions), SolveResult::Unsat);
        let core: HashSet<Lit> = s.unsat_core().iter().copied().collect();
        let expected: HashSet<Lit> = planted.iter().copied().collect();
        prop_assert_eq!(&core, &expected, "core must be exactly the planted selectors");

        // Oracle minimality check: dropping any single core member is SAT.
        for drop in &core {
            let rest: Vec<Lit> =
                assumptions.iter().copied().filter(|l| l != drop).collect();
            prop_assert_eq!(
                s.solve_with(&rest),
                SolveResult::Sat,
                "core member is not necessary"
            );
        }
        Ok(())
    });
}

#[test]
fn mus_is_exactly_the_planted_conflict() {
    prop::check(&Config::with_cases(64), gen_planted, |p| {
        let mut e = Encoder::new();
        let mut g = GroupedAssertions::new();
        // Necessary groups: each asserts atom x_i, plus a cap asserting
        // ¬(x_0 ∧ … ∧ x_{k-1}). All k+1 are needed for the conflict.
        let mut necessary: Vec<GroupId> = (0..p.k)
            .map(|i| g.add_group(&mut e, format!("x{i}"), &Formula::Atom(Atom(i as u32))))
            .collect();
        necessary.push(g.add_group(
            &mut e,
            "cap",
            &Formula::not(Formula::and((0..p.k).map(|i| Formula::Atom(Atom(i as u32))))),
        ));
        // Noise groups: positive disjunctions over a disjoint atom block.
        let noise: Vec<GroupId> = p
            .noise
            .iter()
            .enumerate()
            .map(|(n, clause)| {
                let f = Formula::or(
                    clause.iter().map(|&i| Formula::Atom(Atom((p.k + i) as u32))),
                );
                g.add_group(&mut e, format!("noise{n}"), &f)
            })
            .collect();

        let mut candidates = necessary.clone();
        candidates.extend(&noise);
        let candidates = shuffled(&candidates, p.shuffle_seed);

        let mus = g.find_mus(&mut e, &candidates).expect("planted conflict is UNSAT");
        let mut expected = necessary.clone();
        expected.sort_unstable();
        prop_assert_eq!(&mus, &expected, "MUS must be exactly the planted groups");

        // Oracle minimality check: dropping any member is SAT.
        for drop in &mus {
            let rest: Vec<GroupId> = mus.iter().copied().filter(|x| x != drop).collect();
            prop_assert_eq!(g.solve_with_groups(&mut e, &rest), SolveResult::Sat);
        }
        Ok(())
    });
}

#[test]
fn mus_from_overlapping_conflicts_is_minimal() {
    // Several independent planted pairs {x_j, ¬x_j}: a MUS is ONE pair.
    prop::check(
        &Config::with_cases(64),
        |rng| (rng.gen_range(1..=4usize), rng.gen_range(0..u64::MAX / 2)),
        |&(pairs, seed)| {
            let mut e = Encoder::new();
            let mut g = GroupedAssertions::new();
            let mut by_pair: Vec<[GroupId; 2]> = Vec::new();
            for j in 0..pairs.max(1) {
                let atom = Formula::Atom(Atom(j as u32));
                by_pair.push([
                    g.add_group(&mut e, format!("p{j}"), &atom),
                    g.add_group(&mut e, format!("n{j}"), &Formula::not(atom.clone())),
                ]);
            }
            let candidates = shuffled(&g.ids(), seed);
            let mus = g.find_mus(&mut e, &candidates).expect("conflicting pairs");
            prop_assert_eq!(mus.len(), 2, "a minimal conflict is one pair");
            prop_assert!(
                by_pair.iter().any(|pair| {
                    let mut sorted = pair.to_vec();
                    sorted.sort_unstable();
                    sorted == mus
                }),
                "MUS mixes members of different pairs"
            );
            Ok(())
        },
    );
}
