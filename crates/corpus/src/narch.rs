//! The text form of the corpus: the committed `corpus/*.narch` files,
//! embedded and loaded through the `netarch-dsl` frontend.
//!
//! The Rust builder modules remain the *oracle*: the `.narch` tree is
//! generated from them by `netarch export-narch corpus`, and this module's
//! conformance tests (plus the CI regeneration diff) keep the two
//! representations semantically identical. Downstream users can therefore
//! consume the corpus either way — compiled-in values or text files —
//! and get the same catalog byte-for-byte at the JSON level.

use netarch_core::prelude::*;
use netarch_dsl::{Loader, ScenarioDoc};

/// Every committed corpus source, as `(repo-relative path, contents)`.
pub const SOURCES: &[(&str, &str)] = &[
    ("corpus/systems/stacks.narch", include_str!("../../../corpus/systems/stacks.narch")),
    (
        "corpus/systems/congestion.narch",
        include_str!("../../../corpus/systems/congestion.narch"),
    ),
    (
        "corpus/systems/monitoring.narch",
        include_str!("../../../corpus/systems/monitoring.narch"),
    ),
    ("corpus/systems/firewalls.narch", include_str!("../../../corpus/systems/firewalls.narch")),
    ("corpus/systems/vswitches.narch", include_str!("../../../corpus/systems/vswitches.narch")),
    (
        "corpus/systems/load_balancers.narch",
        include_str!("../../../corpus/systems/load_balancers.narch"),
    ),
    (
        "corpus/systems/transports.narch",
        include_str!("../../../corpus/systems/transports.narch"),
    ),
    ("corpus/systems/misc.narch", include_str!("../../../corpus/systems/misc.narch")),
    (
        "corpus/hardware/switches.narch",
        include_str!("../../../corpus/hardware/switches.narch"),
    ),
    ("corpus/hardware/nics.narch", include_str!("../../../corpus/hardware/nics.narch")),
    ("corpus/hardware/servers.narch", include_str!("../../../corpus/hardware/servers.narch")),
    ("corpus/orderings.narch", include_str!("../../../corpus/orderings.narch")),
    ("corpus/case_study.narch", include_str!("../../../corpus/case_study.narch")),
];

/// Loads and lowers the whole `.narch` corpus (catalog, case-study
/// workloads and scenario, and the document's queries).
///
/// # Panics
/// Never on the shipped corpus: the text is generated from the Rust
/// builders and conformance-tested against them.
pub fn document() -> ScenarioDoc {
    let mut loader = Loader::new();
    for (path, content) in SOURCES {
        loader.add_source(path, content).expect("committed corpus text parses");
    }
    loader.finish().expect("committed corpus text lowers")
}

/// The full catalog, built from text instead of the Rust builders.
pub fn full_catalog() -> Catalog {
    document().catalog
}

/// The §2.3 case-study scenario, built from text.
pub fn case_study_scenario() -> Scenario {
    document().scenario.expect("corpus/case_study.narch has a scenario block")
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_dsl::QuerySpec;

    /// The tentpole acceptance bar: the lowered text corpus is
    /// *semantically equal* to the Rust-built corpus — equality taken at
    /// the canonical-JSON level, which covers every field of every
    /// encoding.
    #[test]
    fn text_catalog_conforms_to_rust_catalog() {
        assert_eq!(
            netarch_rt::json::to_string(&full_catalog()),
            netarch_rt::json::to_string(&crate::full_catalog()),
        );
    }

    #[test]
    fn text_case_study_conforms_to_rust_case_study() {
        assert_eq!(
            netarch_rt::json::to_string(&case_study_scenario()),
            netarch_rt::json::to_string(&crate::case_study::scenario()),
        );
    }

    #[test]
    fn corpus_document_carries_the_case_study_queries() {
        let doc = document();
        assert_eq!(doc.queries, vec![QuerySpec::Check, QuerySpec::Optimize]);
    }

    /// Formatting stability: reprinting the lowered corpus parses back to
    /// text that reprints identically (print ∘ lower is a fixpoint), and
    /// the reload preserves the catalog exactly.
    #[test]
    fn committed_text_is_canonically_formatted() {
        let doc = document();
        let reprinted = netarch_dsl::print_doc(&doc);
        let mut loader = Loader::new();
        loader.add_source("<reprinted>", &reprinted).unwrap();
        let again = loader.finish().unwrap();
        assert_eq!(netarch_dsl::print_doc(&again), reprinted);
        assert_eq!(
            netarch_rt::json::to_string(&again.catalog),
            netarch_rt::json::to_string(&doc.catalog)
        );
    }

    #[test]
    fn paper_scale_claims_hold_in_text_form() {
        let catalog = full_catalog();
        assert!(catalog.num_systems() > 50, "got {}", catalog.num_systems());
        assert!(catalog.num_hardware() >= 180, "got {}", catalog.num_hardware());
    }
}
