//! Virtual switch / network virtualization encodings (§2.3's first role).

use crate::vocab::{caps, feats, props};
use netarch_core::prelude::*;

fn vs(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::VirtualSwitch).solves(caps::VIRTUALIZATION)
}

/// All virtual switch encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        vs("OVS")
            .name("Open vSwitch")
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(0)
            .notes("The simplest choice in the paper's §2.3 starting design.")
            .build(),
        vs("OVS_DPDK")
            .name("Open vSwitch (DPDK datapath)")
            .requires("ovsdpdk-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .consumes(Resource::Cores, AmountExpr::constant(6))
            .cost(500)
            .notes("Poll-mode datapath: better throughput, dedicated cores.")
            .build(),
        vs("ANDROMEDA")
            .name("Andromeda")
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(4_000)
            .notes("Hierarchical dataplane with hotspot offload (Dalton et al., NSDI 2018).")
            .build(),
        vs("VFP")
            .name("VFP")
            .consumes(Resource::Cores, AmountExpr::constant(3))
            .cost(3_000)
            .notes("Layered match-action host SDN (Firestone, NSDI 2017).")
            .build(),
        vs("ACCELNET")
            .name("AccelNet (FPGA SmartNIC offload)")
            .requires_cited(
                "accelnet-needs-fpga-smartnic",
                Condition::nics_have(feats::SMARTNIC_FPGA),
                "Firestone et al., NSDI 2018",
            )
            .consumes(Resource::SmartNicCapacity, AmountExpr::constant(40))
            .provides(feats::TUNNEL_OFFLOAD)
            .cost(5_000)
            .notes("Hardware-offloaded virtualization (§2.3's hardware-offloaded approach).")
            .build(),
        vs("SRIOV_PASSTHROUGH")
            .name("SR-IOV passthrough")
            .requires("sriov-needs-sriov-nic", Condition::nics_have(feats::SRIOV))
            .requires_cited(
                "sriov-blocks-live-migration",
                Condition::not(Condition::workload(props::LIVE_MIGRATION)),
                "VF passthrough pins VMs to hosts",
            )
            .cost(0)
            .notes("Near-native I/O, but bypasses the hypervisor dataplane.")
            .build(),
        vs("BESS")
            .name("BESS")
            .requires("bess-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires(
                "bess-research-prototype",
                Condition::not(Condition::workload(props::PRODUCTION_ONLY)),
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(200)
            .notes("Modular software switch for NFV pipelines.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_virtual_switches() {
        let all = systems();
        assert_eq!(all.len(), 7);
        for s in &all {
            assert!(s.solves(&Capability::new(caps::VIRTUALIZATION)));
        }
    }

    #[test]
    fn accelnet_provides_tunnel_offload_and_uses_smartnic() {
        let all = systems();
        let a = all.iter().find(|s| s.id.as_str() == "ACCELNET").unwrap();
        assert!(a.provides.contains(&Feature::new(feats::TUNNEL_OFFLOAD)));
        assert!(a.resources.iter().any(|d| d.resource == Resource::SmartNicCapacity));
    }

    #[test]
    fn sriov_excludes_live_migration_workloads() {
        let all = systems();
        let s = all.iter().find(|s| s.id.as_str() == "SRIOV_PASSTHROUGH").unwrap();
        assert!(s
            .requires
            .iter()
            .any(|r| r.condition == Condition::not(Condition::workload(props::LIVE_MIGRATION))));
    }
}
