//! Server SKU encodings.
//!
//! Generated as a grid of CPU generations × core-count configurations —
//! which is exactly how vendor SKU sheets look. Core counts feed the
//! `Resource::Cores` capacity; the paper notes such numeric hardware
//! properties are the easy, reliably-encodable part (§3.1).

use crate::vocab::feats;
use netarch_core::prelude::*;

/// One CPU generation: id prefix, marketing family, available
/// (cores, memory GiB, cost USD) configurations, watts per config scale,
/// platform feature flags.
struct Family {
    prefix: &'static str,
    name: &'static str,
    configs: &'static [(u32, u32, u64)],
    base_power_w: u32,
    features: &'static [&'static str],
}

const FAMILIES: &[Family] = &[
    Family {
        prefix: "XEON_SKY",
        name: "2U Intel Xeon Skylake-SP",
        configs: &[(16, 128, 4_500), (20, 160, 5_200), (24, 192, 6_000), (28, 224, 6_800), (32, 256, 7_500), (40, 384, 9_500)],
        base_power_w: 350,
        features: &[],
    },
    Family {
        prefix: "XEON_CAS",
        name: "2U Intel Xeon Cascade Lake",
        configs: &[(24, 192, 6_500), (32, 256, 8_000), (40, 320, 9_500), (48, 384, 11_000), (56, 512, 13_500)],
        base_power_w: 380,
        features: &[],
    },
    Family {
        prefix: "XEON_ICE",
        name: "2U Intel Xeon Ice Lake",
        configs: &[(32, 256, 9_000), (40, 384, 10_500), (48, 512, 12_500), (56, 640, 14_000), (64, 768, 16_000), (72, 896, 18_500), (80, 1024, 21_000)],
        base_power_w: 420,
        features: &[],
    },
    Family {
        prefix: "XEON_SPR",
        name: "2U Intel Xeon Sapphire Rapids",
        configs: &[(48, 512, 14_000), (56, 640, 15_500), (64, 768, 18_000), (80, 896, 21_500), (96, 1024, 26_000), (112, 2048, 34_000)],
        base_power_w: 480,
        features: &[feats::CXL],
    },
    Family {
        prefix: "EPYC_ROME",
        name: "1U AMD EPYC Rome",
        configs: &[(32, 256, 7_000), (48, 384, 9_500), (64, 512, 12_000), (96, 768, 17_000), (128, 1024, 22_000)],
        base_power_w: 400,
        features: &[],
    },
    Family {
        prefix: "EPYC_MILAN",
        name: "1U AMD EPYC Milan",
        configs: &[(32, 256, 8_000), (48, 512, 11_000), (56, 640, 12_500), (64, 768, 14_000), (96, 896, 19_000), (128, 1024, 25_000)],
        base_power_w: 420,
        features: &[],
    },
    Family {
        prefix: "EPYC_GENOA",
        name: "1U AMD EPYC Genoa",
        configs: &[(48, 512, 13_000), (64, 768, 16_500), (84, 1024, 20_000), (96, 1152, 23_000), (128, 1536, 29_000), (192, 2304, 40_000)],
        base_power_w: 460,
        features: &[feats::CXL],
    },
    Family {
        prefix: "XEON_BDW",
        name: "2U Intel Xeon Broadwell-EP",
        configs: &[(12, 96, 3_200), (16, 128, 3_800), (22, 192, 4_800)],
        base_power_w: 300,
        features: &[],
    },
    Family {
        prefix: "EPYC_BERGAMO",
        name: "1U AMD EPYC Bergamo (cloud-native)",
        configs: &[(112, 1152, 26_000), (128, 1536, 30_000), (256, 2304, 48_000)],
        base_power_w: 500,
        features: &[feats::CXL],
    },
    Family {
        prefix: "ARM_GRAVITON",
        name: "1U Graviton-class Arm",
        configs: &[(64, 512, 9_000), (96, 768, 13_000), (128, 1024, 16_500)],
        base_power_w: 300,
        features: &[],
    },
    Family {
        prefix: "ARM_ALTRA",
        name: "1U Ampere Altra",
        configs: &[(64, 512, 10_000), (80, 768, 12_500), (96, 768, 14_000), (128, 1024, 17_000)],
        base_power_w: 350,
        features: &[],
    },
];

/// All server encodings.
pub fn specs() -> Vec<HardwareSpec> {
    FAMILIES
        .iter()
        .flat_map(|family| {
            family.configs.iter().map(move |&(cores, memory_gb, cost)| {
                let b = HardwareSpec::builder(
                    format!("{}_{cores}C", family.prefix),
                    HardwareKind::Server,
                )
                .model_name(format!("{} ({cores} cores, {memory_gb} GiB)", family.name))
                .numeric("cores", f64::from(cores))
                .numeric("memory_gb", f64::from(memory_gb))
                .numeric(
                    "max_power_w",
                    f64::from(family.base_power_w) + 2.0 * f64::from(cores),
                )
                .cost(cost);
                let b = family
                    .features
                    .iter()
                    .fold(b, |b, f| b.feature(*f));
                b.build()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_count_and_uniqueness() {
        let all = specs();
        assert!(all.len() >= 30, "got {}", all.len());
        let ids: std::collections::BTreeSet<_> = all.iter().map(|h| h.id.clone()).collect();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn cores_capacity_is_derivable() {
        for h in specs() {
            assert_eq!(h.kind, HardwareKind::Server);
            assert!(h.capacity(&Resource::Cores) >= 12);
            assert!(h.capacity(&Resource::ServerMemoryGb) >= 96);
            assert!(h.cost_usd >= 3_000);
        }
    }

    #[test]
    fn core_counts_span_small_to_huge() {
        let all = specs();
        let cores: Vec<u64> = all.iter().map(|h| h.capacity(&Resource::Cores)).collect();
        assert!(cores.iter().any(|&c| c <= 16));
        assert!(cores.iter().any(|&c| c >= 192));
    }
}
