//! NIC model encodings.
//!
//! Feature attribution matters here more than anywhere else in the
//! corpus, because the paper's marquee rules hinge on NIC capabilities:
//! Timely/Swift/Simon want hardware timestamps, packet spraying wants
//! reorder buffers, Shenango wants interrupt-aware polling, AccelNet
//! wants an FPGA SmartNIC, RoCE wants RDMA silicon.

use crate::vocab::feats;
use netarch_core::prelude::*;

/// One NIC row: id, name, speed (Gbit/s), ports, SmartNIC compute
/// capacity (percent; 0 for fixed-function), cost, features.
struct Row(
    &'static str,
    &'static str,
    u32,
    u32,
    u32,
    u64,
    &'static [&'static str],
);

const BASIC: &[&str] = &[feats::SRIOV];
const DPDK: &[&str] = &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP];
const DPDK_TS: &[&str] = &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP, feats::NIC_TIMESTAMPS];
const MLX_FULL: &[&str] = &[
    feats::SRIOV,
    feats::KERNEL_BYPASS,
    feats::XDP,
    feats::NIC_TIMESTAMPS,
    feats::RDMA,
    feats::INTERRUPT_POLLING,
    feats::REORDER_BUFFER,
];
const MLX_MID: &[&str] = &[
    feats::SRIOV,
    feats::KERNEL_BYPASS,
    feats::XDP,
    feats::NIC_TIMESTAMPS,
    feats::RDMA,
    feats::INTERRUPT_POLLING,
];
const SMART_CPU: &[&str] = &[
    feats::SRIOV,
    feats::KERNEL_BYPASS,
    feats::XDP,
    feats::NIC_TIMESTAMPS,
    feats::RDMA,
    feats::INTERRUPT_POLLING,
    feats::REORDER_BUFFER,
    feats::SMARTNIC_CPU,
];
const SMART_FPGA: &[&str] = &[
    feats::SRIOV,
    feats::KERNEL_BYPASS,
    feats::NIC_TIMESTAMPS,
    feats::REORDER_BUFFER,
    feats::SMARTNIC_FPGA,
];
const IWARP_SET: &[&str] = &[feats::SRIOV, feats::KERNEL_BYPASS, feats::IWARP, feats::NIC_TIMESTAMPS];

#[rustfmt::skip]
const ROWS: &[Row] = &[
    // Intel fixed-function Ethernet.
    Row("INTEL_82599",   "Intel 82599 10GbE",          10, 2, 0,    200, BASIC),
    Row("INTEL_X710",    "Intel X710 10GbE",           10, 4, 0,    350, DPDK),
    Row("INTEL_XL710",   "Intel XL710 40GbE",          40, 2, 0,    550, DPDK),
    Row("INTEL_XXV710",  "Intel XXV710 25GbE",         25, 2, 0,    450, DPDK),
    Row("INTEL_E810_25", "Intel E810 25GbE",           25, 2, 0,    500, DPDK_TS),
    Row("INTEL_E810_100","Intel E810 100GbE",         100, 1, 0,    900, DPDK_TS),
    // Mellanox/NVIDIA ConnectX.
    Row("MLX_CX3_40",    "ConnectX-3 40GbE",           40, 2, 0,    400, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::RDMA]),
    Row("MLX_CX4_25",    "ConnectX-4 Lx 25GbE",        25, 2, 0,    500, MLX_MID),
    Row("MLX_CX4_50",    "ConnectX-4 50GbE",           50, 2, 0,    650, MLX_MID),
    Row("MLX_CX4_100",   "ConnectX-4 100GbE",         100, 1, 0,    800, MLX_MID),
    Row("MLX_CX5_25",    "ConnectX-5 25GbE",           25, 2, 0,    600, MLX_FULL),
    Row("MLX_CX5_100",   "ConnectX-5 100GbE",         100, 2, 0,    950, MLX_FULL),
    Row("MLX_CX6_100",   "ConnectX-6 Dx 100GbE",      100, 2, 0,  1_200, MLX_FULL),
    Row("MLX_CX6_200",   "ConnectX-6 200GbE",         200, 1, 0,  1_500, MLX_FULL),
    Row("MLX_CX7_200",   "ConnectX-7 200GbE",         200, 2, 0,  1_900, MLX_FULL),
    Row("MLX_CX7_400",   "ConnectX-7 400GbE",         400, 1, 0,  2_400, MLX_FULL),
    // CPU SmartNICs / DPUs.
    Row("BLUEFIELD1",    "BlueField-1 DPU 100GbE",    100, 2, 60,  1_800, SMART_CPU),
    Row("BLUEFIELD2",    "BlueField-2 DPU 100GbE",    100, 2, 100, 2_400, SMART_CPU),
    Row("BLUEFIELD3",    "BlueField-3 DPU 400GbE",    400, 2, 160, 3_800, SMART_CPU),
    Row("STINGRAY",      "Broadcom Stingray PS225",    25, 2, 60,  1_500, SMART_CPU),
    Row("PENSANDO_DSC25","Pensando DSC-25",            25, 2, 80,  1_600, SMART_CPU),
    Row("PENSANDO_DSC100","Pensando DSC-100",         100, 2, 100, 2_200, SMART_CPU),
    Row("INTEL_IPU_E2000","Intel IPU E2000 200GbE",   200, 2, 120, 3_000, SMART_CPU),
    Row("OCTEON10",      "Marvell Octeon 10 DPU",     100, 2, 90,  2_000, SMART_CPU),
    // FPGA SmartNICs.
    Row("CATAPULT",      "MS Catapult FPGA 40GbE",     40, 1, 80,  2_500, SMART_FPGA),
    Row("ALVEO_U25",     "AMD Alveo U25N 25GbE",       25, 2, 70,  2_200, SMART_FPGA),
    Row("ALVEO_U45",     "AMD Alveo SN1000 100GbE",   100, 2, 120, 3_500, SMART_FPGA),
    Row("NAPATECH_NT200","Napatech NT200 FPGA 100GbE",100, 2, 90,  3_200, SMART_FPGA),
    Row("INTEL_N3000",   "Intel FPGA PAC N3000 25GbE", 25, 4, 80,  2_800, SMART_FPGA),
    Row("INTEL_N6000",   "Intel IPU F2000X FPGA 100G",100, 2, 130, 4_000, SMART_FPGA),
    // iWARP line.
    Row("CHELSIO_T5",    "Chelsio T580 40GbE",         40, 2, 0,    700, IWARP_SET),
    Row("CHELSIO_T6_25", "Chelsio T6225 25GbE",        25, 2, 0,    650, IWARP_SET),
    Row("CHELSIO_T6_100","Chelsio T62100 100GbE",     100, 2, 0,  1_100, IWARP_SET),
    // Cloud-vendor virtual NICs (fixed-function, no bypass).
    Row("ENA_25",        "AWS ENA 25GbE",              25, 1, 0,      0, BASIC),
    Row("ENA_100",       "AWS ENA 100GbE",            100, 1, 0,      0, BASIC),
    Row("GVNIC_100",     "Google gVNIC 100GbE",       100, 1, 0,      0, BASIC),
    // Broadcom fixed-function.
    Row("BCM_57414",     "Broadcom 57414 25GbE",       25, 2, 0,    400, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP, feats::RDMA]),
    Row("BCM_57508",     "Broadcom 57508 100GbE",     100, 2, 0,    900, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP, feats::RDMA, feats::NIC_TIMESTAMPS]),
    Row("BCM_57608",     "Broadcom 57608 400GbE",     400, 2, 0,  1_800, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP, feats::RDMA, feats::NIC_TIMESTAMPS]),
    // Solarflare/Xilinx low-latency line (Onload's home silicon).
    Row("SFC_X2522",     "Solarflare X2522 25GbE",     25, 2, 0,  1_000, DPDK_TS),
    Row("SFC_X2541",     "Solarflare X2541 100GbE",   100, 1, 0,  1_600, DPDK_TS),
    Row("SFC_8522",      "Solarflare 8522 10GbE",      10, 2, 0,    600, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::NIC_TIMESTAMPS]),
    // Netronome SmartNICs.
    Row("AGILIO_CX25",   "Netronome Agilio CX 25GbE",  25, 2, 50,  1_200, SMART_CPU),
    Row("AGILIO_LX100",  "Netronome Agilio LX 100GbE",100, 2, 80,  2_000, SMART_CPU),
    // Marvell/QLogic FastLinQ (iWARP + RoCE universal RDMA).
    Row("QL45000",       "Marvell FastLinQ 45000 25GbE", 25, 2, 0,   550, IWARP_SET),
    Row("QL41000",       "Marvell FastLinQ 41000 10GbE", 10, 2, 0,   400, IWARP_SET),
    // Additional Intel SKUs.
    Row("INTEL_E823",    "Intel E823 25GbE (timestamps)", 25, 4, 0,  600, DPDK_TS),
    Row("INTEL_E830",    "Intel E830 200GbE",         200, 2, 0,  1_400, DPDK_TS),
    Row("INTEL_X550",    "Intel X550 10GBASE-T",       10, 2, 0,    300, BASIC),
    Row("INTEL_I225",    "Intel i225 2.5GbE",           2, 1, 0,     50, BASIC),
    // More ConnectX configurations.
    Row("MLX_CX4121A",   "ConnectX-4 Lx 10GbE",        10, 2, 0,    350, MLX_MID),
    Row("MLX_CX512F",    "ConnectX-5 50GbE",           50, 2, 0,    800, MLX_FULL),
    Row("MLX_CX621",     "ConnectX-6 Dx 25GbE",        25, 2, 0,    700, MLX_FULL),
    Row("MLX_CX75",      "ConnectX-7 100GbE",         100, 2, 0,  1_500, MLX_FULL),
    // More DPUs / FPGA cards.
    Row("FUNGIBLE_F1",   "Fungible F1 DPU 200GbE",    200, 2, 140, 3_200, SMART_CPU),
    Row("HUAWEI_IN200",  "Huawei IN200 SmartNIC 100G",100, 2, 80,  1_800, SMART_CPU),
    Row("ALVEO_U280",    "AMD Alveo U280 100GbE FPGA",100, 2, 140, 4_500, SMART_FPGA),
    Row("BITTWARE_385A", "BittWare 385A FPGA 40GbE",   40, 2, 70,  2_600, SMART_FPGA),
    // Cloud vNICs.
    Row("EFA_100",       "AWS EFA 100GbE (SRD)",      100, 1, 0,      0, &[feats::SRIOV, feats::KERNEL_BYPASS]),
    Row("AZURE_MANA",    "Azure MANA 200GbE",         200, 1, 0,      0, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::RDMA]),
    // Older/lower-speed parts that still populate real fleets.
    Row("INTEL_I350",    "Intel i350 1GbE",             1, 4, 0,    100, BASIC),
    Row("BCM_5720",      "Broadcom 5720 1GbE",          1, 2, 0,     80, BASIC),
    Row("MLX_CX3PRO_10", "ConnectX-3 Pro 10GbE",       10, 2, 0,    250, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::RDMA]),
    Row("QL41112",       "Marvell FastLinQ 41112 10GbE",10, 2, 0,   300, &[feats::SRIOV, feats::KERNEL_BYPASS]),
    Row("X540_T2",       "Intel X540-T2 10GBASE-T",    10, 2, 0,    250, BASIC),
    Row("SFN7122F",      "Solarflare SFN7122F 10GbE",  10, 2, 0,    450, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::NIC_TIMESTAMPS]),
    // Current high-end additions.
    Row("MLX_CX8_800",   "ConnectX-8 800GbE",         800, 1, 0,  3_500, MLX_FULL),
    Row("BLUEFIELD3_B3220", "BlueField-3 B3220 200GbE", 200, 2, 140, 3_200, SMART_CPU),
    Row("INTEL_E810_XXVDA4", "Intel E810-XXVDA4 25GbE", 25, 4, 0,    650, DPDK_TS),
    Row("THOR2_400",     "Broadcom Thor-2 400GbE",    400, 1, 0,  2_200, &[feats::SRIOV, feats::KERNEL_BYPASS, feats::XDP, feats::RDMA, feats::NIC_TIMESTAMPS, feats::REORDER_BUFFER]),
];

/// All NIC encodings.
pub fn specs() -> Vec<HardwareSpec> {
    ROWS.iter()
        .map(|Row(id, name, speed, ports, smart_capacity, cost, features)| {
            let mut b = HardwareSpec::builder(*id, HardwareKind::Nic)
                .model_name(*name)
                .numeric("port_bandwidth_gbps", f64::from(*speed))
                .numeric("ports", f64::from(*ports))
                .cost(*cost);
            if *smart_capacity > 0 {
                b = b.numeric("smartnic_capacity", f64::from(*smart_capacity));
            }
            for f in *features {
                b = b.feature(*f);
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_count_and_uniqueness() {
        let all = specs();
        assert!(all.len() >= 38, "got {}", all.len());
        let ids: std::collections::BTreeSet<_> = all.iter().map(|h| h.id.clone()).collect();
        assert_eq!(ids.len(), all.len());
        for h in &all {
            assert_eq!(h.kind, HardwareKind::Nic);
        }
    }

    #[test]
    fn smartnics_expose_capacity() {
        let all = specs();
        for h in &all {
            let smart = h.has_feature(&Feature::new(feats::SMARTNIC_CPU))
                || h.has_feature(&Feature::new(feats::SMARTNIC_FPGA));
            let capacity = h.numeric("smartnic_capacity").unwrap_or(0.0);
            assert_eq!(smart, capacity > 0.0, "{}: SmartNIC flag vs capacity", h.id);
        }
    }

    #[test]
    fn rule_critical_feature_coverage() {
        let all = specs();
        let with = |f: &str| all.iter().filter(|h| h.has_feature(&Feature::new(f))).count();
        assert!(with(feats::NIC_TIMESTAMPS) >= 15, "timestamps scarce");
        assert!(with(feats::REORDER_BUFFER) >= 10, "reorder buffers scarce");
        assert!(with(feats::INTERRUPT_POLLING) >= 10, "interrupt polling scarce");
        assert!(with(feats::RDMA) >= 10, "rdma scarce");
        assert!(with(feats::IWARP) >= 3, "iwarp scarce");
        assert!(with(feats::SMARTNIC_FPGA) >= 5, "fpga smartnics scarce");
        // And scarcity in the other direction: plenty of NICs *lack*
        // timestamps, so the Simon/Timely rules actually bind.
        assert!(with(feats::NIC_TIMESTAMPS) < all.len());
    }

    #[test]
    fn speeds_span_figure1_conditions() {
        let all = specs();
        assert!(all.iter().any(|h| h.numeric("port_bandwidth_gbps") == Some(10.0)));
        assert!(all.iter().any(|h| h.numeric("port_bandwidth_gbps").unwrap_or(0.0) >= 400.0));
    }
}
