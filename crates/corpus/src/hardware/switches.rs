//! Switch model encodings (Listing 1 style).
//!
//! Product families are encoded table-driven: each row is one model with
//! its port configuration, resources, and feature flags, mirroring the
//! fields the paper's auto-extraction produced for the Cisco Catalyst
//! 9500-40X (Listing 1). Feature attribution follows public datasheets at
//! the granularity the paper endorses (§3.1: hardware properties are easy
//! to characterize accurately); per-model numbers are representative, not
//! gospel.

use crate::vocab::feats;
use netarch_core::prelude::*;

/// One switch model row: identifier, marketing name, port count, per-port
/// Gbit/s, packet-buffer/table memory (MB), max power (W), MAC table
/// entries (thousands), unit cost (USD), P4 pipeline stages (0 = fixed
/// function), feature flags.
struct Row(
    &'static str,
    &'static str,
    u32,
    u32,
    u32,
    u32,
    u32,
    u64,
    u32,
    &'static [&'static str],
);

const COMMODITY: &[&str] = &[feats::ECN, feats::PFC, feats::SFLOW];
const COMMODITY_MIRROR: &[&str] = &[feats::ECN, feats::PFC, feats::SFLOW, feats::MIRRORING];
const MODERN: &[&str] = &[
    feats::ECN,
    feats::PFC,
    feats::SFLOW,
    feats::MIRRORING,
    feats::FLOWLET_SWITCHING,
];
const MODERN_QCN: &[&str] = &[
    feats::ECN,
    feats::PFC,
    feats::QCN,
    feats::SFLOW,
    feats::MIRRORING,
    feats::FLOWLET_SWITCHING,
];
const PROGRAMMABLE: &[&str] = &[
    feats::ECN,
    feats::PFC,
    feats::P4,
    feats::INT,
    feats::MIRRORING,
    feats::PER_FLOW_QUEUES,
    feats::FLOWLET_SWITCHING,
];
const DEEP_BUFFER: &[&str] = &[
    feats::ECN,
    feats::PFC,
    feats::DEEP_BUFFERS,
    feats::SFLOW,
    feats::MIRRORING,
];

#[rustfmt::skip]
const ROWS: &[Row] = &[
    // The paper's Listing 1 entry, verbatim fields.
    Row("CISCO_CATALYST_9500_40X", "Cisco Catalyst 9500-40X", 40, 10, 16_384, 950, 64, 24_000, 0, &[feats::ECN]),
    // Cisco Nexus fixed-function family.
    Row("CISCO_N9K_C9336C",  "Cisco Nexus 9336C-FX2",     36, 100, 40,  650, 256, 38_000, 0, COMMODITY_MIRROR),
    Row("CISCO_N9K_C93180YC","Cisco Nexus 93180YC-FX",    48,  25, 40,  440, 256, 21_000, 0, COMMODITY_MIRROR),
    Row("CISCO_N9K_C9364C",  "Cisco Nexus 9364C",         64, 100, 40,  750, 256, 55_000, 0, COMMODITY_MIRROR),
    Row("CISCO_N3K_C3172",   "Cisco Nexus 3172PQ",        48,  10, 12,  250, 128,  9_000, 0, COMMODITY),
    // Broadcom Trident merchant silicon (speeds by generation).
    Row("TRIDENT2_T48",   "Trident II 48x10G",            48,  10, 12,  300, 128,  8_000, 0, COMMODITY),
    Row("TRIDENT2_T32",   "Trident II 32x40G",            32,  40, 12,  350, 128, 12_000, 0, COMMODITY),
    Row("TRIDENT3_T48",   "Trident 3 48x25G",             48,  25, 32,  380, 256, 16_000, 0, MODERN),
    Row("TRIDENT3_T32",   "Trident 3 32x100G",            32, 100, 32,  420, 256, 24_000, 0, MODERN),
    Row("TRIDENT4_T48",   "Trident 4 48x100G",            48, 100, 64,  500, 512, 34_000, 0, MODERN_QCN),
    Row("TRIDENT4_T32",   "Trident 4 32x400G",            32, 400, 64,  600, 512, 48_000, 0, MODERN_QCN),
    // Broadcom Tomahawk generations.
    Row("TOMAHAWK1_T32",  "Tomahawk 32x100G",             32, 100, 16,  450, 136, 20_000, 0, COMMODITY),
    Row("TOMAHAWK2_T64",  "Tomahawk 2 64x100G",           64, 100, 42,  600, 136, 30_000, 0, COMMODITY_MIRROR),
    Row("TOMAHAWK3_T32",  "Tomahawk 3 32x400G",           32, 400, 64,  700, 136, 45_000, 0, MODERN),
    Row("TOMAHAWK4_T64",  "Tomahawk 4 64x400G",           64, 400, 113, 900, 256, 65_000, 0, MODERN_QCN),
    Row("TOMAHAWK5_T64",  "Tomahawk 5 64x800G",           64, 800, 165, 1100, 256, 90_000, 0, MODERN_QCN),
    // Intel/Barefoot Tofino programmable pipelines.
    Row("TOFINO_T32",     "Tofino 32x100G",               32, 100, 22,  450, 128, 30_000, 12, PROGRAMMABLE),
    Row("TOFINO_T64",     "Tofino 64x100G",               64, 100, 22,  550, 128, 42_000, 12, PROGRAMMABLE),
    Row("TOFINO2_T32",    "Tofino 2 32x400G",             32, 400, 64,  650, 256, 60_000, 20, PROGRAMMABLE),
    Row("TOFINO2_T64",    "Tofino 2 64x200G",             64, 200, 64,  650, 256, 55_000, 20, PROGRAMMABLE),
    // Arista platforms (7280R = deep buffer).
    Row("ARISTA_7050X3",  "Arista 7050X3 48x25G",         48,  25, 32,  400, 288, 18_000, 0, MODERN),
    Row("ARISTA_7060X4",  "Arista 7060X4 32x400G",        32, 400, 64,  550, 288, 40_000, 0, MODERN),
    Row("ARISTA_7170",    "Arista 7170 64x100G",          64, 100, 22,  600, 128, 45_000, 12, PROGRAMMABLE),
    Row("ARISTA_7280R",   "Arista 7280R 48x100G",         48, 100, 8_192, 800, 512, 70_000, 0, DEEP_BUFFER),
    Row("ARISTA_7280R3",  "Arista 7280R3 48x400G",        48, 400, 16_384, 950, 512, 95_000, 0, DEEP_BUFFER),
    // Mellanox/NVIDIA Spectrum.
    Row("SPECTRUM_SN2700","Spectrum SN2700 32x100G",      32, 100, 42,  400, 176, 22_000, 0, MODERN_QCN),
    Row("SPECTRUM2_SN3700","Spectrum-2 SN3700 32x200G",   32, 200, 42,  450, 512, 32_000, 0, MODERN_QCN),
    Row("SPECTRUM3_SN4700","Spectrum-3 SN4700 32x400G",   32, 400, 64,  550, 512, 45_000, 0, MODERN_QCN),
    Row("SPECTRUM4_SN5600","Spectrum-4 SN5600 64x800G",   64, 800, 160, 800, 512, 85_000, 0, MODERN_QCN),
    // Juniper QFX.
    Row("JUNIPER_QFX5100", "Juniper QFX5100 48x10G",      48,  10, 12,  350, 288, 10_000, 0, COMMODITY),
    Row("JUNIPER_QFX5200", "Juniper QFX5200 32x100G",     32, 100, 16,  450, 288, 24_000, 0, COMMODITY_MIRROR),
    Row("JUNIPER_QFX5700", "Juniper QFX5700 32x400G",     32, 400, 64,  650, 512, 50_000, 0, MODERN),
    // Whitebox / SONiC.
    Row("EDGECORE_AS7712", "Edgecore AS7712 32x100G",     32, 100, 16,  400, 136, 14_000, 0, COMMODITY),
    Row("EDGECORE_AS9716", "Edgecore AS9716 32x400G",     32, 400, 64,  700, 256, 35_000, 0, MODERN),
    Row("WEDGE100",        "Facebook Wedge 100 32x100G",  32, 100, 16,  400, 136, 13_000, 0, COMMODITY),
    Row("WEDGE400",        "Facebook Wedge 400 32x400G",  32, 400, 64,  650, 256, 32_000, 0, MODERN),
    // CONGA-era custom fabric (leaf/spine pair).
    Row("ACI_LEAF_9336",   "Cisco ACI leaf (CONGA fabric)", 36, 40, 40, 500, 256, 28_000, 0,
        &[feats::ECN, feats::PFC, feats::MIRRORING, feats::CONGA_FABRIC, feats::FLOWLET_SWITCHING]),
    Row("ACI_SPINE_9508",  "Cisco ACI spine (CONGA fabric)", 64, 40, 60, 900, 512, 55_000, 0,
        &[feats::ECN, feats::PFC, feats::MIRRORING, feats::CONGA_FABRIC]),
    // More Cisco fixed-function platforms.
    Row("CISCO_C9300_48",  "Cisco Catalyst 9300 48x1G",     48,   1, 8_192, 350, 32,  6_000, 0, &[feats::ECN]),
    Row("CISCO_C9400_48",  "Cisco Catalyst 9400 48x10G",    48,  10, 16_384, 900, 64, 18_000, 0, &[feats::ECN]),
    Row("CISCO_N9K_C93108","Cisco Nexus 93108TC-FX",        48,  10, 40,  420, 256, 14_000, 0, COMMODITY_MIRROR),
    Row("CISCO_N9K_C9332D","Cisco Nexus 9332D-GX2B",        32, 400, 80,  700, 256, 52_000, 0, COMMODITY_MIRROR),
    Row("CISCO_N3K_C3548", "Cisco Nexus 3548 (low latency)",48,  10, 18,  300, 64, 16_000, 0, COMMODITY),
    // More Arista platforms.
    Row("ARISTA_7010T",    "Arista 7010T 48x1G",            48,   1,  4,  120, 64,  4_000, 0, COMMODITY),
    Row("ARISTA_7020R",    "Arista 7020R 48x10G",           48,  10, 3_072, 350, 288, 22_000, 0, DEEP_BUFFER),
    Row("ARISTA_7050X4",   "Arista 7050X4 32x200G",         32, 200, 64,  500, 288, 30_000, 0, MODERN),
    Row("ARISTA_7060DX5",  "Arista 7060DX5 32x800G",        32, 800, 165, 950, 288, 80_000, 0, MODERN_QCN),
    Row("ARISTA_7130",     "Arista 7130 (L1/FPGA)",         32,  10, 16,  250, 64, 35_000, 0, &[feats::MIRRORING]),
    Row("ARISTA_7500R3",   "Arista 7500R3 96x400G chassis", 96, 400, 24_576, 3_000, 512, 220_000, 0, DEEP_BUFFER),
    // More NVIDIA/Mellanox.
    Row("SPECTRUM_SN2010", "Spectrum SN2010 18x25G+4x100G", 22,  25, 42,  200, 176, 11_000, 0, MODERN_QCN),
    Row("SPECTRUM_SN2100", "Spectrum SN2100 16x100G",       16, 100, 42,  250, 176, 15_000, 0, MODERN_QCN),
    Row("SPECTRUM2_SN3420","Spectrum-2 SN3420 48x25G",      48,  25, 42,  350, 512, 20_000, 0, MODERN_QCN),
    Row("SPECTRUM3_SN4410","Spectrum-3 SN4410 48x100G",     48, 100, 64,  500, 512, 38_000, 0, MODERN_QCN),
    // More Juniper.
    Row("JUNIPER_QFX5110", "Juniper QFX5110 48x10G",        48,  10, 16,  380, 288, 13_000, 0, COMMODITY_MIRROR),
    Row("JUNIPER_QFX5120", "Juniper QFX5120 48x25G",        48,  25, 32,  420, 288, 19_000, 0, MODERN),
    Row("JUNIPER_QFX5210", "Juniper QFX5210 64x100G",       64, 100, 42,  650, 288, 38_000, 0, MODERN),
    Row("JUNIPER_QFX10002","Juniper QFX10002 72x40G (deep)",72,  40, 12_288, 1_100, 512, 85_000, 0, DEEP_BUFFER),
    // Dell / whitebox.
    Row("DELL_S4148F",     "Dell S4148F-ON 48x10G",         48,  10, 16,  350, 136,  9_000, 0, COMMODITY),
    Row("DELL_S5248F",     "Dell S5248F-ON 48x25G",         48,  25, 32,  400, 256, 15_000, 0, MODERN),
    Row("DELL_Z9332F",     "Dell Z9332F-ON 32x400G",        32, 400, 64,  650, 256, 42_000, 0, MODERN),
    Row("EDGECORE_AS5812", "Edgecore AS5812 48x10G",        48,  10, 12,  300, 136,  7_000, 0, COMMODITY),
    Row("EDGECORE_AS7326", "Edgecore AS7326 48x25G",        48,  25, 32,  380, 256, 12_000, 0, MODERN),
    Row("EDGECORE_WEDGE100BF", "Edgecore Wedge100BF-32X (Tofino)", 32, 100, 22, 450, 128, 26_000, 12, PROGRAMMABLE),
    Row("CELESTICA_DX010", "Celestica Seastone DX010 32x100G", 32, 100, 16, 400, 136, 12_000, 0, COMMODITY),
    Row("QUANTA_IX8",      "QuantaMesh IX8 48x25G",         48,  25, 32,  380, 256, 11_000, 0, COMMODITY_MIRROR),
    // Huawei / H3C.
    Row("HUAWEI_CE6865",   "Huawei CE6865 48x25G",          48,  25, 42,  400, 256, 14_000, 0, MODERN_QCN),
    Row("HUAWEI_CE8850",   "Huawei CE8850 32x100G",         32, 100, 42,  500, 512, 26_000, 0, MODERN_QCN),
    Row("H3C_S6850",       "H3C S6850 48x25G",              48,  25, 42,  400, 256, 13_000, 0, MODERN),
    // Campus/management-tier and additional fabric models.
    Row("CISCO_C9200_24",  "Cisco Catalyst 9200 24x1G",     24,   1, 4_096, 125, 16,  2_500, 0, &[]),
    Row("ARISTA_720XP",    "Arista 720XP 48x1G PoE",        48,   1, 2_048, 600, 64,  5_500, 0, &[feats::ECN]),
    Row("SN2201_MGMT",     "Spectrum SN2201 48x1G mgmt",    48,   1, 16,  150, 88,  4_000, 0, COMMODITY),
    Row("TOMAHAWK5_T32",   "Tomahawk 5 32x800G+64x400G",    96, 400, 165, 1_050, 256, 82_000, 0, MODERN_QCN),
    Row("TRIDENT5_T48",    "Trident 5 48x200G",             48, 200, 113, 700, 512, 55_000, 0, MODERN_QCN),
    Row("JERICHO2_J48",    "Broadcom Jericho2 48x100G (deep)", 48, 100, 8_192, 900, 512, 75_000, 0, DEEP_BUFFER),
    Row("RAMON_FABRIC",    "Broadcom Ramon fabric element", 48, 400, 64,  800, 128, 60_000, 0, &[feats::ECN, feats::PFC]),
    Row("SILICONONE_G100", "Cisco Silicon One 32x400G",     32, 400, 108, 650, 512, 58_000, 0, MODERN_QCN),
];

/// All switch encodings.
pub fn specs() -> Vec<HardwareSpec> {
    ROWS.iter()
        .map(|Row(id, name, ports, speed, mem_mb, power, mac_k, cost, stages, features)| {
            let mut b = HardwareSpec::builder(*id, HardwareKind::Switch)
                .model_name(*name)
                .numeric("ports", f64::from(*ports))
                .numeric("port_bandwidth_gbps", f64::from(*speed))
                .numeric("memory_mb", f64::from(*mem_mb))
                .numeric("max_power_w", f64::from(*power))
                .numeric("mac_table_entries", f64::from(*mac_k) * 1000.0)
                .numeric("qos_classes", 8.0)
                .cost(*cost);
            if *stages > 0 {
                b = b.numeric("p4_stages", f64::from(*stages));
            }
            for f in *features {
                b = b.feature(*f);
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_count_and_uniqueness() {
        let all = specs();
        assert!(all.len() >= 38, "got {}", all.len());
        let ids: std::collections::BTreeSet<_> = all.iter().map(|h| h.id.clone()).collect();
        assert_eq!(ids.len(), all.len());
        for h in &all {
            assert_eq!(h.kind, HardwareKind::Switch);
            assert!(h.numeric("ports").unwrap() > 0.0);
            assert!(h.cost_usd > 0);
        }
    }

    #[test]
    fn listing_1_catalyst_matches_the_paper() {
        let all = specs();
        let c = all
            .iter()
            .find(|h| h.id.as_str() == "CISCO_CATALYST_9500_40X")
            .unwrap();
        assert_eq!(c.model_name, "Cisco Catalyst 9500-40X");
        assert_eq!(c.numeric("port_bandwidth_gbps"), Some(10.0));
        assert_eq!(c.numeric("max_power_w"), Some(950.0));
        assert_eq!(c.numeric("ports"), Some(40.0));
        assert_eq!(c.numeric("memory_mb"), Some(16_384.0)); // 16 GB
        assert_eq!(c.numeric("mac_table_entries"), Some(64_000.0));
        assert!(c.has_feature(&Feature::new(feats::ECN)));
        assert!(!c.has_feature(&Feature::new(feats::P4))); // "P4 Supported?": "No"
        assert_eq!(c.numeric("p4_stages"), None); // "N/A"
    }

    #[test]
    fn programmable_switches_expose_stages() {
        let all = specs();
        for h in &all {
            let p4 = h.has_feature(&Feature::new(feats::P4));
            let stages = h.numeric("p4_stages").unwrap_or(0.0);
            assert_eq!(p4, stages > 0.0, "{}: P4 flag and stages must agree", h.id);
        }
    }

    #[test]
    fn qcn_and_deep_buffer_models_exist() {
        let all = specs();
        assert!(all.iter().any(|h| h.has_feature(&Feature::new(feats::QCN))));
        assert!(all.iter().any(|h| h.has_feature(&Feature::new(feats::DEEP_BUFFERS))));
        assert!(all.iter().any(|h| h.has_feature(&Feature::new(feats::CONGA_FABRIC))));
    }
}
