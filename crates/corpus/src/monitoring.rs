//! Network monitoring encodings.
//!
//! Listing 2 is reproduced verbatim for SIMON (capture_delays +
//! detect_queue_length; NIC timestamps; cores ∝ flows). §2.3 adds that
//! Simon wants SmartNICs — modeled as a SmartNIC-capacity demand, which
//! also captures the paper's marginal-cost observation: once SmartNICs are
//! in the inventory for Simon, other SmartNIC consumers share them.
//! Sonata and Marple consume programmable-switch pipeline stages.

use crate::vocab::{caps, feats};
use netarch_core::prelude::*;

fn mon(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::Monitoring)
}

/// Listing 2's CPU_FACTOR: one collector core per 2 000 concurrent flows
/// (corpus assumption; the paper leaves the constant symbolic).
pub const SIMON_CPU_FACTOR: f64 = 0.0005;

/// All monitoring encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        mon("SIMON")
            .name("SIMON")
            .solves(caps::CAPTURE_DELAYS)
            .solves(caps::DETECT_QUEUE_LENGTH)
            .requires_cited(
                "simon-needs-nic-timestamps",
                Condition::nics_have(feats::NIC_TIMESTAMPS),
                "Geng et al., NSDI 2019; paper Listing 2",
            )
            .consumes(
                Resource::Cores,
                AmountExpr::scaled(crate::vocab::params::NUM_FLOWS, SIMON_CPU_FACTOR),
            )
            .consumes(Resource::SmartNicCapacity, AmountExpr::constant(20))
            .cost(1_500)
            .notes("Reconstructs queue lengths/delays from host timestamps (Listing 2).")
            .build(),
        mon("PINGMESH")
            .name("Pingmesh")
            .solves(caps::REACHABILITY_MONITORING)
            .solves(caps::CAPTURE_DELAYS)
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(200)
            .notes("Always-on ping matrix; coarse but trivially deployable.")
            .build(),
        mon("SONATA")
            .name("Sonata")
            .solves(caps::TELEMETRY_QUERIES)
            .solves(caps::DETECT_QUEUE_LENGTH)
            .requires_cited(
                "sonata-needs-p4-switches",
                Condition::switches_have(feats::P4),
                "Gupta et al., SIGCOMM 2018",
            )
            .consumes(Resource::P4Stages, AmountExpr::constant(4))
            .consumes(Resource::Cores, AmountExpr::constant(8))
            .cost(2_000)
            .notes("Query-driven telemetry split across switch and stream processor.")
            .build(),
        mon("MARPLE")
            .name("Marple")
            .solves(caps::TELEMETRY_QUERIES)
            .solves(caps::DETECT_QUEUE_LENGTH)
            .requires_cited(
                "marple-needs-p4-switches",
                Condition::switches_have(feats::P4),
                "Narayana et al., SIGCOMM 2017",
            )
            .consumes(Resource::P4Stages, AmountExpr::constant(3))
            .consumes(Resource::SwitchMemoryMb, AmountExpr::constant(32))
            .cost(1_500)
            .notes("Language-directed switch telemetry with host backing store.")
            .build(),
        mon("INT_COLLECTOR")
            .name("INT telemetry collector")
            .solves(caps::DETECT_QUEUE_LENGTH)
            .solves(caps::CAPTURE_DELAYS)
            .requires(
                "int-collector-needs-int-switches",
                Condition::switches_have(feats::INT),
            )
            .consumes(Resource::Cores, AmountExpr::constant(6))
            .cost(800)
            .notes("Per-hop queue depth from in-band telemetry headers.")
            .build(),
        mon("EVERFLOW")
            .name("Everflow")
            .solves(caps::REACHABILITY_MONITORING)
            .solves(caps::TELEMETRY_QUERIES)
            .requires(
                "everflow-needs-mirroring-switches",
                Condition::switches_have(feats::MIRRORING),
            )
            .consumes(Resource::Cores, AmountExpr::constant(12))
            .cost(1_200)
            .notes("Match-and-mirror packet tracing with commodity switches.")
            .build(),
        mon("NETFLOW")
            .name("NetFlow/IPFIX")
            .solves(caps::REACHABILITY_MONITORING)
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .consumes(Resource::SwitchMemoryMb, AmountExpr::constant(64))
            .cost(100)
            .notes("Flow-record export; per-flow switch cache.")
            .build(),
        mon("SFLOW_MON")
            .name("sFlow")
            .solves(caps::REACHABILITY_MONITORING)
            .requires("sflow-needs-switch-support", Condition::switches_have(feats::SFLOW))
            .consumes(Resource::Cores, AmountExpr::constant(1))
            .cost(100)
            .notes("Sampled datagram export; negligible switch state.")
            .build(),
        mon("LANZ")
            .name("LANZ queue-length streaming")
            .solves(caps::DETECT_QUEUE_LENGTH)
            .requires("lanz-needs-mirroring", Condition::switches_have(feats::MIRRORING))
            .consumes(Resource::Cores, AmountExpr::constant(1))
            .cost(400)
            .notes("Vendor microburst/queue telemetry stream.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_monitoring_systems() {
        let all = systems();
        assert_eq!(all.len(), 9);
        for s in &all {
            assert_eq!(s.category, Category::Monitoring);
        }
    }

    #[test]
    fn simon_matches_listing_2() {
        let all = systems();
        let simon = all.iter().find(|s| s.id.as_str() == "SIMON").unwrap();
        assert!(simon.solves(&Capability::new(caps::CAPTURE_DELAYS)));
        assert!(simon.solves(&Capability::new(caps::DETECT_QUEUE_LENGTH)));
        assert!(simon
            .requires
            .iter()
            .any(|r| r.condition == Condition::nics_have(feats::NIC_TIMESTAMPS)));
        let cores = simon
            .resources
            .iter()
            .find(|d| d.resource == Resource::Cores)
            .expect("cores demand");
        assert_eq!(
            cores.amount,
            AmountExpr::scaled("num_flows", SIMON_CPU_FACTOR)
        );
    }

    #[test]
    fn sonata_consumes_p4_stages() {
        let all = systems();
        let sonata = all.iter().find(|s| s.id.as_str() == "SONATA").unwrap();
        assert!(sonata.resources.iter().any(|d| d.resource == Resource::P4Stages));
        assert!(sonata.requires.iter().any(|r| r.condition == Condition::switches_have(feats::P4)));
    }

    #[test]
    fn queue_length_has_multiple_providers() {
        let providers: Vec<String> = systems()
            .iter()
            .filter(|s| s.solves(&Capability::new(caps::DETECT_QUEUE_LENGTH)))
            .map(|s| s.id.as_str().to_string())
            .collect();
        assert!(providers.len() >= 4, "{providers:?}");
    }
}
