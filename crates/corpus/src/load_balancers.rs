//! Load balancing encodings.
//!
//! The §2.3 chain is encoded faithfully: ECMP can leave load imbalanced
//! (it sits at the bottom of the quality order), packet spraying fixes
//! that but "requires larger reorder buffers at NICs". Fabric schemes
//! (CONGA/HULA/DRILL/LetFlow) need specific switch support. Maglev and
//! Katran are *service* (L4) load balancers — a different capability —
//! and provision edge compute, which the edge firewall can then reuse
//! (§1).

use crate::vocab::{caps, feats, props};
use netarch_core::prelude::*;

fn lb(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::LoadBalancer)
}

/// All load balancer encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        lb("ECMP")
            .name("ECMP")
            .solves(caps::LOAD_BALANCING)
            .cost(0)
            .notes("Per-flow hashing; prone to imbalance under elephants (§2.3).")
            .build(),
        lb("WCMP")
            .name("WCMP")
            .solves(caps::LOAD_BALANCING)
            .consumes(Resource::SwitchMemoryMb, AmountExpr::constant(8))
            .cost(300)
            .notes("Weighted ECMP; needs larger multipath group tables.")
            .build(),
        lb("VLB")
            .name("Valiant load balancing")
            .solves(caps::LOAD_BALANCING)
            .cost(0)
            .notes("Two-hop randomization; balanced but adds path stretch.")
            .build(),
        lb("PACKET_SPRAY")
            .name("Packet spraying")
            .solves(caps::LOAD_BALANCING)
            .requires_cited(
                "spray-needs-nic-reorder-buffers",
                Condition::nics_have(feats::REORDER_BUFFER),
                "paper §2.3 (packet spraying requires larger reorder buffers at NICs)",
            )
            .cost(200)
            .notes("Per-packet multipath; reordering absorbed at the NIC.")
            .build(),
        lb("LETFLOW")
            .name("LetFlow")
            .solves(caps::LOAD_BALANCING)
            .requires("letflow-needs-flowlet-switching", Condition::switches_have(feats::FLOWLET_SWITCHING))
            .cost(400)
            .notes("Flowlet rehashing in the fabric.")
            .build(),
        lb("CONGA")
            .name("CONGA")
            .solves(caps::LOAD_BALANCING)
            .requires_cited(
                "conga-needs-fabric-asic",
                Condition::switches_have(feats::CONGA_FABRIC),
                "Alizadeh et al., SIGCOMM 2014 (custom leaf-spine ASIC)",
            )
            .cost(2_000)
            .notes("Congestion-aware flowlet routing; custom fabric silicon.")
            .build(),
        lb("HULA")
            .name("HULA")
            .solves(caps::LOAD_BALANCING)
            .requires("hula-needs-p4", Condition::switches_have(feats::P4))
            .consumes(Resource::P4Stages, AmountExpr::constant(2))
            .requires(
                "hula-research-prototype",
                Condition::not(Condition::workload(props::PRODUCTION_ONLY)),
            )
            .cost(800)
            .notes("Programmable-switch distance-vector utilization probes.")
            .build(),
        lb("DRILL")
            .name("DRILL")
            .solves(caps::LOAD_BALANCING)
            .requires("drill-needs-queue-depth-asic", Condition::switches_have(feats::PER_FLOW_QUEUES))
            .requires(
                "drill-research-prototype",
                Condition::not(Condition::workload(props::PRODUCTION_ONLY)),
            )
            .cost(800)
            .notes("Per-packet local decisions from queue depths.")
            .build(),
        lb("MAGLEV")
            .name("Maglev")
            .solves(caps::L4_LOAD_BALANCING)
            .consumes(Resource::Cores, AmountExpr::constant(16))
            .provides(feats::EDGE_PROVISIONED)
            .cost(4_000)
            .notes("Software L4 LB with consistent hashing; provisions edge compute (§1).")
            .build(),
        lb("KATRAN")
            .name("Katran")
            .solves(caps::L4_LOAD_BALANCING)
            .requires("katran-needs-xdp-nic", Condition::nics_have(feats::XDP))
            .consumes(Resource::Cores, AmountExpr::constant(8))
            .provides(feats::EDGE_PROVISIONED)
            .cost(1_000)
            .notes("XDP-based L4 LB; cheaper per packet than userspace LBs.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_load_balancers() {
        assert_eq!(systems().len(), 10);
    }

    #[test]
    fn packet_spray_needs_reorder_buffers() {
        let all = systems();
        let spray = all.iter().find(|s| s.id.as_str() == "PACKET_SPRAY").unwrap();
        assert!(spray
            .requires
            .iter()
            .any(|r| r.condition == Condition::nics_have(feats::REORDER_BUFFER)));
    }

    #[test]
    fn l4_lbs_provision_the_edge() {
        let all = systems();
        for id in ["MAGLEV", "KATRAN"] {
            let s = all.iter().find(|s| s.id.as_str() == id).unwrap();
            assert!(s.provides.contains(&Feature::new(feats::EDGE_PROVISIONED)), "{id}");
            assert!(s.solves(&Capability::new(caps::L4_LOAD_BALANCING)));
        }
    }

    #[test]
    fn fabric_lbs_need_switch_support() {
        let all = systems();
        for (id, feature) in [
            ("LETFLOW", feats::FLOWLET_SWITCHING),
            ("CONGA", feats::CONGA_FABRIC),
            ("HULA", feats::P4),
        ] {
            let s = all.iter().find(|s| s.id.as_str() == id).unwrap();
            assert!(
                s.requires
                    .iter()
                    .any(|r| r.condition == Condition::switches_have(feature)),
                "{id} should require switches.have({feature})"
            );
        }
    }
}
