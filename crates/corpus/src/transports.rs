//! Transport protocol and L2 address-resolution encodings.
//!
//! The §2.2 PFC-deadlock vignette is encoded here: RoCEv2 requires
//! PFC-capable switches *and* the absence of any flooding-based address
//! resolution — the rule the paper says "an expert might have anticipated
//! … and could have encoded: PFC cannot be used with any flooding
//! algorithms" (§3.4, after Guo et al., SIGCOMM 2016). The L2 category
//! (Custom) offers flooding or an ARP proxy/SDN directory, so the engine
//! can both *catch* the deadlock configuration and *synthesize* the fix.

use crate::vocab::{caps, feats, props};
use netarch_core::prelude::*;

fn tp(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::Transport).solves(caps::TRANSPORT)
}

fn l2(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::Custom("l2-address-resolution".into()))
        .solves(caps::ADDRESS_RESOLUTION)
}

/// All transport and L2 encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        tp("TCP").name("TCP").cost(0).notes("The default reliable transport.").build(),
        tp("UDP")
            .name("UDP (app-level reliability)")
            .cost(0)
            .notes("Datagram transport; reliability left to the application.")
            .build(),
        tp("QUIC")
            .name("QUIC")
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(500)
            .notes("Userspace encrypted transport; more CPU per byte than TCP.")
            .build(),
        tp("ROCEV2")
            .name("RDMA over Converged Ethernet v2")
            .requires_cited(
                "rocev2-needs-rdma-nics",
                Condition::nics_have(feats::RDMA),
                "Guo et al., SIGCOMM 2016",
            )
            .requires_cited(
                "rocev2-needs-pfc-switches",
                Condition::switches_have(feats::PFC),
                "Guo et al., SIGCOMM 2016",
            )
            .requires_cited(
                "pfc-forbids-flooding",
                Condition::not(Condition::system("ARP_FLOODING")),
                "paper §2.2/§3.4: PFC deadlocks under packet flooding (Guo et al. 2016)",
            )
            .cost(2_000)
            .notes("Kernel-bypass RDMA; lossless fabric via PFC, deadlock-prone with flooding.")
            .build(),
        tp("IWARP")
            .name("iWARP")
            .requires("iwarp-needs-iwarp-nics", Condition::nics_have(feats::IWARP))
            .cost(2_500)
            .notes("RDMA over TCP; no lossless fabric requirement, higher latency than RoCE.")
            .build(),
        tp("HOMA_TRANSPORT")
            .name("Homa (message transport)")
            .consumes(Resource::QosClasses, AmountExpr::constant(4))
            .requires(
                "homa-transport-research-prototype",
                Condition::not(Condition::workload(props::PRODUCTION_ONLY)),
            )
            .cost(500)
            .notes("Receiver-driven message transport over priority queues.")
            .build(),
        // --- L2 address resolution (Custom category) ---
        l2("ARP_FLOODING")
            .name("Classic ARP flooding")
            .cost(0)
            .notes("Broadcast-based resolution; breaks up-down routing invariants (§2.2).")
            .build(),
        l2("ARP_PROXY")
            .name("ARP proxy / SDN directory")
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(800)
            .notes("Directory-based resolution; no flooding, safe with PFC.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_transport_layer_systems() {
        assert_eq!(systems().len(), 8);
    }

    #[test]
    fn rocev2_encodes_the_pfc_deadlock_rule() {
        let all = systems();
        let roce = all.iter().find(|s| s.id.as_str() == "ROCEV2").unwrap();
        assert!(roce
            .requires
            .iter()
            .any(|r| r.condition == Condition::not(Condition::system("ARP_FLOODING"))));
        assert!(roce
            .requires
            .iter()
            .any(|r| r.condition == Condition::switches_have(feats::PFC)));
        let deadlock_rule = roce
            .requires
            .iter()
            .find(|r| r.label == "pfc-forbids-flooding")
            .unwrap();
        assert!(deadlock_rule.citation.as_deref().unwrap().contains("Guo"));
    }

    #[test]
    fn l2_category_offers_flooding_and_proxy() {
        let all = systems();
        let l2: Vec<&SystemSpec> = all
            .iter()
            .filter(|s| s.category == Category::Custom("l2-address-resolution".into()))
            .collect();
        assert_eq!(l2.len(), 2);
        for s in &l2 {
            assert!(s.solves(&Capability::new(caps::ADDRESS_RESOLUTION)));
        }
    }
}
