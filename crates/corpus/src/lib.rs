//! # netarch-corpus
//!
//! The knowledge corpus for the HotNets '24 reproduction: "We encoded
//! over fifty systems, spread across Network Stacks, Congestion Control,
//! Network Monitoring, Firewalls, Virtual Switches, Load Balancers, and
//! Transport Protocols. In addition, we encode about 200 hardware specs
//! of servers, switches, NICs, etc, from publicly available information"
//! (paper §5.1).
//!
//! Every encoding carries provenance; rules taken verbatim from the paper
//! cite the section. See DESIGN.md substitution #4 for how the authors'
//! private encodings were reconstructed.
//!
//! The corpus ships in two equivalent forms: the Rust builders in this
//! crate (the oracle) and the generated `.narch` text under `corpus/`
//! at the repo root, embedded and conformance-tested by [`narch`].
//! Regenerate the text with `netarch export-narch corpus` after editing
//! a builder; CI diffs the tree to keep the two in lockstep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod congestion;
pub mod narch;
pub mod firewalls;
pub mod load_balancers;
pub mod misc;
pub mod monitoring;
pub mod orderings;
pub mod stacks;
pub mod transports;
pub mod vocab;
pub mod vswitches;

/// Hardware model encodings.
pub mod hardware {
    pub mod nics;
    pub mod servers;
    pub mod switches;
}

use netarch_core::prelude::*;

/// Assembles the full catalog: every system, hardware model, and ordering
/// edge in the corpus.
///
/// # Panics
/// Never on the shipped corpus — duplicate ids or dangling ordering
/// endpoints are corpus bugs caught by the crate's tests.
pub fn full_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    for spec in all_systems() {
        catalog.add_system(spec).expect("corpus system ids are unique");
    }
    for spec in all_hardware() {
        catalog.add_hardware(spec).expect("corpus hardware ids are unique");
    }
    for edge in orderings::edges() {
        catalog.add_ordering(edge).expect("ordering endpoints exist");
    }
    catalog
}

/// Every system encoding across the seven categories (plus extensions).
pub fn all_systems() -> Vec<SystemSpec> {
    let mut out = Vec::new();
    out.extend(stacks::systems());
    out.extend(congestion::systems());
    out.extend(monitoring::systems());
    out.extend(firewalls::systems());
    out.extend(vswitches::systems());
    out.extend(load_balancers::systems());
    out.extend(transports::systems());
    out.extend(misc::systems());
    out
}

/// Every hardware encoding.
pub fn all_hardware() -> Vec<HardwareSpec> {
    let mut out = Vec::new();
    out.extend(hardware::switches::specs());
    out.extend(hardware::nics::specs());
    out.extend(hardware::servers::specs());
    out
}

/// Serializes the full catalog as pretty JSON (the interchange format the
/// paper's Listing 1 sketches).
pub fn catalog_json() -> String {
    netarch_rt::json::to_string_pretty(&full_catalog())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_claims_hold() {
        let catalog = full_catalog();
        assert!(
            catalog.num_systems() > 50,
            "paper §5.1 claims over fifty systems; corpus has {}",
            catalog.num_systems()
        );
        assert!(
            catalog.num_hardware() >= 180,
            "paper §5.1 claims about 200 hardware specs; corpus has {}",
            catalog.num_hardware()
        );
    }

    #[test]
    fn catalog_passes_referential_validation() {
        let catalog = full_catalog();
        let errors = catalog.validate();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn all_seven_paper_categories_populated() {
        let catalog = full_catalog();
        for cat in Category::builtin() {
            assert!(
                !catalog.systems_in(&cat).is_empty(),
                "category {cat} is empty"
            );
        }
    }

    #[test]
    fn no_preference_cycles_in_default_contexts() {
        use netarch_core::condition::StaticContext;
        struct Ctx(f64);
        impl StaticContext for Ctx {
            fn param(&self, name: &ParamName) -> Option<f64> {
                (name.as_str() == "link_speed_gbps").then_some(self.0)
            }
            fn workload_has(&self, _p: &Property) -> bool {
                true // worst case: every conditional edge active
            }
        }
        let catalog = full_catalog();
        let dims: std::collections::BTreeSet<Dimension> = catalog
            .order()
            .edges()
            .iter()
            .map(|e| e.dimension.clone())
            .collect();
        for speed in [10.0, 100.0] {
            for dim in &dims {
                assert_eq!(
                    catalog.order().find_cycle(dim, &Ctx(speed)),
                    None,
                    "cycle on {dim} at {speed} Gbps"
                );
            }
        }
    }

    #[test]
    fn json_export_roundtrips() {
        let json = catalog_json();
        let back: Catalog = netarch_rt::json::from_str(&json).unwrap();
        assert_eq!(back.num_systems(), full_catalog().num_systems());
        assert_eq!(back.num_hardware(), full_catalog().num_hardware());
        assert!(json.contains("Cisco Catalyst 9500-40X"));
    }

    #[test]
    fn spec_size_grows_linearly_with_systems() {
        // §3.1's success metric: specification length linear in component
        // count. Check the per-system marginal stays bounded.
        let catalog = full_catalog();
        let total = catalog.spec_size();
        let components = catalog.num_systems() + catalog.num_hardware();
        let per_component = total as f64 / components as f64;
        assert!(
            per_component < 12.0,
            "spec units per component too high: {per_component:.1}"
        );
    }
}
