//! Miscellaneous systems outside the paper's seven core categories,
//! needed by the §5.1 queries (CXL memory pooling).

use crate::vocab::feats;
use netarch_core::prelude::*;

/// Extra systems: memory pooling (query 3 of §5.1).
pub fn systems() -> Vec<SystemSpec> {
    vec![
        SystemSpec::builder("CXL_POOL", Category::Custom("memory-pooling".into()))
            .name("CXL memory pooling")
            .solves("memory_pooling")
            .requires(
                "cxl-needs-cxl-servers",
                Condition::ServerFeature(Feature::new(feats::CXL)),
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(12_000)
            .notes("Pools far memory across hosts; only on CXL-capable platforms (§5.1 q3).")
            .build(),
        SystemSpec::builder("LOCAL_DRAM_ONLY", Category::Custom("memory-pooling".into()))
            .name("Local DRAM only (no pooling)")
            .solves("memory_provisioning")
            .cost(0)
            .notes("Status quo: overprovision DRAM per host.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_requires_capable_servers() {
        let all = systems();
        let cxl = all.iter().find(|s| s.id.as_str() == "CXL_POOL").unwrap();
        assert!(cxl.requires.iter().any(|r| matches!(
            &r.condition,
            Condition::ServerFeature(f) if f.as_str() == feats::CXL
        )));
    }
}
