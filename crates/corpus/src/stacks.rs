//! Network stack encodings (paper Figure 1 plus research stacks).
//!
//! Rules are grounded in the paper where it speaks: Linux suffices below
//! ~40 Gbps (§3.1), NetChannel's benefits appear only at ≥ 40 Gbps (§2.3),
//! Snap's Pony Express engine outperforms its TCP engine but requires
//! application modification (§3.1/Figure 1), Shenango needs NICs that
//! support interrupt-aware polling (§4.2) and a dedicated spin-polling
//! core (§4.2) while offering less process isolation (§2.3). Research
//! stacks carry a `production_only` caveat: an architect with a sharp
//! deadline cannot deploy them (§3.1).

use crate::vocab::{caps, feats, props};
use netarch_core::prelude::*;

fn stack(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::NetworkStack).solves(caps::HOST_NETWORKING)
}

/// Requirement shared by research prototypes: not deployable when the
/// architect demands production-hardened systems only (§3.1's deadline
/// example).
fn research_caveat() -> Condition {
    Condition::not(Condition::workload(props::PRODUCTION_ONLY))
}

/// All network stack encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        stack("LINUX")
            .name("Linux kernel stack")
            .cost(0)
            .notes("Default choice; sufficient below ~40 Gbps link rates (paper §3.1).")
            .build(),
        stack("SNAP_TCP")
            .name("Snap (TCP engine)")
            .requires_cited(
                "snap-needs-dedicated-cores",
                Condition::True,
                "Marty et al., SOSP 2019",
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(2_000)
            .notes("Microkernel host networking, unmodified-app engine.")
            .build(),
        stack("SNAP_PONY")
            .name("Snap (Pony Express engine)")
            .requires_cited(
                "pony-needs-app-modification",
                Condition::workload(props::APPS_MODIFIABLE),
                "Marty et al., SOSP 2019; paper §3.1",
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .provides(feats::PONY)
            .cost(2_500)
            .notes("Pony Express outperforms the TCP engine but applications must be ported.")
            .build(),
        stack("NETCHANNEL")
            .name("NetChannel")
            .requires_cited(
                "netchannel-relevant-at-40g",
                Condition::param(crate::vocab::params::LINK_SPEED_GBPS, CmpOp::Ge, 40.0),
                "Cai et al., SIGCOMM 2022; paper §2.3",
            )
            .requires("netchannel-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(6))
            .cost(1_000)
            .notes("Disaggregated kernel stack; only relevant at NIC speeds ≥ 40 Gbit/s.")
            .build(),
        stack("SHENANGO")
            .name("Shenango")
            .requires_cited(
                "shenango-needs-interrupt-polling-nic",
                Condition::nics_have(feats::INTERRUPT_POLLING),
                "Ousterhout et al., NSDI 2019; paper §4.2",
            )
            .requires("shenango-research-prototype", research_caveat())
            // Dedicated IOKernel spin-polling core (paper §4.2).
            .consumes(Resource::Cores, AmountExpr::constant(1))
            .cost(500)
            .notes("Low latency via a dedicated spin-polling IOKernel core; less isolation.")
            .build(),
        stack("DEMIKERNEL")
            .name("Demikernel")
            .requires_cited(
                "demikernel-needs-kernel-bypass-nic",
                Condition::nics_have(feats::KERNEL_BYPASS),
                "Zhang et al., SOSP 2021",
            )
            .requires("demikernel-needs-app-port", Condition::workload(props::APPS_MODIFIABLE))
            .requires("demikernel-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(500)
            .notes("Library OS datapath for microsecond-scale apps.")
            .build(),
        stack("ZYGOS")
            .name("ZygOS")
            .requires_cited(
                "zygos-needs-kernel-bypass-nic",
                Condition::nics_have(feats::KERNEL_BYPASS),
                "Prekas et al., SOSP 2017",
            )
            .requires("zygos-needs-app-port", Condition::workload(props::APPS_MODIFIABLE))
            .requires("zygos-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(500)
            .notes("Work-stealing kernel-bypass stack for µs-scale RPCs.")
            .build(),
        stack("CALADAN")
            .name("Caladan")
            .requires("caladan-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires("caladan-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(1))
            .cost(500)
            .notes("Interference-aware core allocation; Shenango lineage.")
            .build(),
        stack("MTCP")
            .name("mTCP")
            .requires("mtcp-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires("mtcp-needs-app-port", Condition::workload(props::APPS_MODIFIABLE))
            .requires("mtcp-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(200)
            .notes("User-level TCP over DPDK/netmap.")
            .build(),
        stack("IX")
            .name("IX")
            .requires("ix-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires("ix-needs-app-port", Condition::workload(props::APPS_MODIFIABLE))
            .requires("ix-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(200)
            .notes("Dataplane OS with adaptive batching.")
            .build(),
        stack("TAS")
            .name("TAS (TCP acceleration service)")
            .requires("tas-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires("tas-research-prototype", research_caveat())
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(300)
            .notes("Fast-path TCP as a separate service on dedicated cores.")
            .build(),
        stack("FSTACK")
            .name("F-Stack")
            .requires("fstack-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .requires("fstack-needs-app-port", Condition::workload(props::APPS_MODIFIABLE))
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(100)
            .notes("FreeBSD stack over DPDK; production use at Tencent.")
            .build(),
        stack("ONLOAD")
            .name("OpenOnload")
            .requires("onload-needs-kernel-bypass-nic", Condition::nics_have(feats::KERNEL_BYPASS))
            .consumes(Resource::Cores, AmountExpr::constant(1))
            .cost(3_000)
            .notes("Vendor kernel-bypass sockets; binary-compatible with unmodified apps.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_stacks_all_solve_host_networking() {
        let all = systems();
        assert_eq!(all.len(), 13);
        for s in &all {
            assert_eq!(s.category, Category::NetworkStack);
            assert!(s.solves(&Capability::new(caps::HOST_NETWORKING)), "{}", s.id);
        }
    }

    #[test]
    fn figure1_stacks_present() {
        let ids: Vec<String> = systems().iter().map(|s| s.id.as_str().to_string()).collect();
        for required in ["ZYGOS", "LINUX", "SNAP_TCP", "SNAP_PONY", "NETCHANNEL", "SHENANGO", "DEMIKERNEL"] {
            assert!(ids.contains(&required.to_string()), "missing {required}");
        }
    }

    #[test]
    fn pony_requires_app_modification() {
        let all = systems();
        let pony = all.iter().find(|s| s.id.as_str() == "SNAP_PONY").unwrap();
        assert!(pony
            .requires
            .iter()
            .any(|r| r.condition == Condition::workload(props::APPS_MODIFIABLE)));
        assert!(pony.provides.contains(&Feature::new(feats::PONY)));
    }

    #[test]
    fn netchannel_gated_on_40g() {
        let all = systems();
        let nc = all.iter().find(|s| s.id.as_str() == "NETCHANNEL").unwrap();
        assert!(nc.requires.iter().any(|r| matches!(
            &r.condition,
            Condition::Param(name, CmpOp::Ge, v) if name.as_str() == "link_speed_gbps" && *v == 40.0
        )));
    }

    #[test]
    fn shenango_needs_interrupt_polling() {
        let all = systems();
        let sh = all.iter().find(|s| s.id.as_str() == "SHENANGO").unwrap();
        assert!(sh
            .requires
            .iter()
            .any(|r| r.condition == Condition::nics_have(feats::INTERRUPT_POLLING)));
        // Dedicated spin core.
        assert!(sh.resources.iter().any(|d| d.resource == Resource::Cores));
    }
}
