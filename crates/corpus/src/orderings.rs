//! Preference orderings — Figure 1 and the paper's other rules-of-thumb.
//!
//! The Figure 1 reconstruction (network stacks over throughput /
//! isolation / app-modification) follows the paper's text precisely where
//! it speaks and is conservative elsewhere:
//!
//! * "Linux is usually sufficiently performant at low link rates
//!   (< 40 Gbps)" → NetChannel ≈ Linux below 40 G, ≻ above (§3.1, §2.3);
//! * "Snap performs better when using Pony, using Pony requires
//!   application modification" → Pony engine ≻ TCP engine on throughput,
//!   ≺ on app-compatibility (§3.1);
//! * "Shenango offers low latencies but less process isolation" (§2.3);
//! * deliberately **no** isolation edge between Shenango and Demikernel —
//!   "we couldn't find a comparison in the literature" (§3.1).
//!
//! Listing 2's monitoring edges (Simon ≻ Pingmesh on quality, Pingmesh ≻
//! Simon on deployment ease) and the §2.3 load-balancing / tail-latency
//! rules round out the set.

use crate::vocab::{params, props};
use netarch_core::prelude::*;

/// At-or-above the Figure 1 link-speed threshold.
fn fast_links() -> Condition {
    Condition::param(params::LINK_SPEED_GBPS, CmpOp::Ge, 40.0)
}

/// Below the Figure 1 link-speed threshold.
fn slow_links() -> Condition {
    Condition::param(params::LINK_SPEED_GBPS, CmpOp::Lt, 40.0)
}

/// All ordering edges of the corpus.
pub fn edges() -> Vec<OrderingEdge> {
    let mut out = Vec::new();
    let t = Dimension::Throughput;
    let iso = Dimension::Isolation;
    let app = Dimension::AppCompatibility;
    let lat = Dimension::Latency;
    let tail = Dimension::TailLatency;
    let monq = Dimension::MonitoringQuality;
    let ease = Dimension::DeploymentEase;
    let lbq = Dimension::LoadBalancingQuality;
    let cpu = Dimension::CpuEfficiency;

    // ---- Figure 1: throughput (yellow) ----
    out.extend([
        OrderingEdge::strict("NETCHANNEL", "LINUX", t.clone())
            .when(fast_links())
            .cited("Cai et al. 2022; paper Figure 1 (load ≥ 40 Gbps)"),
        OrderingEdge::equal("NETCHANNEL", "LINUX", t.clone())
            .when(slow_links())
            .cited("paper §3.1: Linux sufficient at low link rates"),
        OrderingEdge::strict("SNAP_PONY", "SNAP_TCP", t.clone())
            .cited("Marty et al. 2019; paper Figure 1 (Pony > TCP engine)"),
        OrderingEdge::strict("SNAP_TCP", "LINUX", t.clone())
            .when(fast_links())
            .cited("Marty et al. 2019"),
        OrderingEdge::strict("ZYGOS", "LINUX", t.clone()).cited("Prekas et al. 2017"),
        OrderingEdge::strict("SHENANGO", "LINUX", t.clone()).cited("Ousterhout et al. 2019"),
        OrderingEdge::strict("DEMIKERNEL", "LINUX", t.clone()).cited("Zhang et al. 2021"),
        OrderingEdge::strict("CALADAN", "SHENANGO", t.clone()).cited("Fried et al. 2020"),
    ]);

    // ---- Figure 1: isolation (red) ----
    out.extend([
        OrderingEdge::strict("LINUX", "SHENANGO", iso.clone())
            .cited("paper §2.3: Shenango offers less process isolation"),
        OrderingEdge::strict("SNAP_TCP", "SHENANGO", iso.clone())
            .cited("Snap's microkernel isolates engines from apps"),
        OrderingEdge::equal("SNAP_TCP", "SNAP_PONY", iso.clone()),
        OrderingEdge::strict("LINUX", "ZYGOS", iso.clone()),
        OrderingEdge::strict("LINUX", "MTCP", iso.clone()),
        // Intentionally ABSENT: SHENANGO vs DEMIKERNEL isolation (§3.1).
    ]);

    // ---- Figure 1: application modification (blue; higher = fewer
    //      modifications needed) ----
    out.extend([
        OrderingEdge::strict("LINUX", "SNAP_PONY", app.clone())
            .cited("paper §3.1: Pony requires application modification"),
        OrderingEdge::strict("SNAP_TCP", "SNAP_PONY", app.clone())
            .cited("paper Figure 1: If (Pony enabled) > If (TCP enabled)"),
        OrderingEdge::equal("LINUX", "SNAP_TCP", app.clone()),
        OrderingEdge::strict("LINUX", "DEMIKERNEL", app.clone()),
        OrderingEdge::strict("LINUX", "ZYGOS", app.clone()),
        OrderingEdge::strict("LINUX", "MTCP", app.clone()),
        OrderingEdge::strict("LINUX", "IX", app.clone()),
        OrderingEdge::strict("ONLOAD", "MTCP", app.clone())
            .cited("Onload is binary-compatible with sockets apps"),
    ]);

    // ---- Stack latency / CPU efficiency (paper §2.3 narrative) ----
    out.extend([
        OrderingEdge::strict("SHENANGO", "LINUX", lat.clone()).cited("Ousterhout et al. 2019"),
        OrderingEdge::strict("CALADAN", "LINUX", lat.clone()),
        OrderingEdge::strict("ZYGOS", "LINUX", lat.clone()),
        OrderingEdge::strict("DEMIKERNEL", "LINUX", lat.clone()),
        OrderingEdge::strict("SNAP_PONY", "LINUX", lat.clone()),
        OrderingEdge::strict("SHENANGO", "SNAP_TCP", cpu.clone())
            .cited("Shenango's core reallocation beats static provisioning"),
        OrderingEdge::strict("SNAP_TCP", "LINUX", cpu.clone()),
    ]);

    // ---- Listing 2: monitoring ----
    out.extend([
        OrderingEdge::strict("SIMON", "PINGMESH", monq.clone())
            .cited("paper Listing 2: Ordering(SIMON, monitoring, better_than = PINGMESH)"),
        OrderingEdge::strict("PINGMESH", "SIMON", ease.clone())
            .cited("paper Listing 2: Ordering(PINGMESH, deployment_ease, better_than = SIMON)"),
        OrderingEdge::strict("SONATA", "NETFLOW", monq.clone()),
        OrderingEdge::strict("MARPLE", "NETFLOW", monq.clone()),
        OrderingEdge::strict("INT_COLLECTOR", "PINGMESH", monq.clone()),
        OrderingEdge::strict("EVERFLOW", "NETFLOW", monq.clone()),
        OrderingEdge::strict("NETFLOW", "SFLOW_MON", monq.clone()),
        OrderingEdge::strict("SFLOW_MON", "SONATA", ease.clone()),
        OrderingEdge::strict("NETFLOW", "SONATA", ease.clone()),
        OrderingEdge::strict("PINGMESH", "SONATA", ease.clone()),
        OrderingEdge::strict("PINGMESH", "MARPLE", ease.clone()),
    ]);

    // ---- Load balancing quality (§2.3: ECMP imbalance → spraying) ----
    out.extend([
        OrderingEdge::strict("PACKET_SPRAY", "ECMP", lbq.clone())
            .cited("paper §2.3: ECMP load imbalance; spraying instead"),
        OrderingEdge::strict("LETFLOW", "ECMP", lbq.clone()),
        OrderingEdge::strict("CONGA", "LETFLOW", lbq.clone()).cited("Alizadeh et al. 2014"),
        OrderingEdge::strict("CONGA", "PACKET_SPRAY", lbq.clone()),
        OrderingEdge::strict("HULA", "PACKET_SPRAY", lbq.clone()),
        OrderingEdge::strict("DRILL", "PACKET_SPRAY", lbq.clone()),
        OrderingEdge::strict("WCMP", "ECMP", lbq.clone()),
        OrderingEdge::equal("VLB", "ECMP", lbq.clone()),
        OrderingEdge::strict("ECMP", "PACKET_SPRAY", ease.clone()),
        OrderingEdge::strict("ECMP", "CONGA", ease.clone()),
    ]);

    // ---- Congestion control: latency & tail latency ----
    out.extend([
        OrderingEdge::strict("DCTCP", "CUBIC", lat.clone())
            .cited("Alizadeh et al. 2010")
            .when(Condition::workload(props::DC_FLOWS)),
        OrderingEdge::strict("SWIFT", "DCTCP", lat.clone()).cited("Kumar et al. 2020"),
        OrderingEdge::strict("TIMELY", "DCTCP", lat.clone()).cited("Mittal et al. 2015"),
        OrderingEdge::strict("HPCC", "DCTCP", tail.clone()).cited("Li et al. 2019"),
        OrderingEdge::strict("SWIFT", "TIMELY", tail.clone())
            .cited("Kumar et al. 2020 (Swift supersedes Timely at Google)"),
        OrderingEdge::strict("BFC", "HPCC", tail.clone()).cited("Goyal et al. 2022"),
        OrderingEdge::strict("ANNULUS", "CUBIC", tail.clone())
            .when(Condition::workload(props::WAN_TRAFFIC))
            .cited("Saeed et al. 2020; paper §2.3: Annulus improves tail latency"),
        OrderingEdge::strict("CUBIC", "RENO", t.clone()).cited("Ha et al. 2008"),
        OrderingEdge::strict("BBR", "CUBIC", t.clone())
            .when(Condition::workload(props::WAN_TRAFFIC)),
        OrderingEdge::strict("FASTPASS", "DCTCP", tail.clone())
            .cited("Perry et al. 2014 (zero-queue)"),
        // §2.3: QCN-class features degrade alongside virtualization —
        // a *dynamic* edge conditioned on a virtual switch being deployed.
        OrderingEdge::strict("SWIFT", "ANNULUS", tail.clone())
            .when(Condition::CategoryFilled(Category::VirtualSwitch))
            .cited("paper §2.3: lower performance when QCN used with virtualization features"),
        // Deployment ease.
        OrderingEdge::strict("CUBIC", "DCTCP", ease.clone()),
        OrderingEdge::strict("DCTCP", "HPCC", ease.clone()),
        OrderingEdge::strict("DCTCP", "BFC", ease.clone()),
        OrderingEdge::strict("CUBIC", "FASTPASS", ease.clone()),
    ]);

    // ---- Transports ----
    out.extend([
        OrderingEdge::strict("ROCEV2", "TCP", lat.clone()).cited("Guo et al. 2016"),
        OrderingEdge::strict("ROCEV2", "IWARP", lat.clone()),
        OrderingEdge::strict("IWARP", "TCP", lat.clone()),
        OrderingEdge::strict("HOMA_TRANSPORT", "TCP", tail.clone())
            .when(Condition::workload(props::SHORT_FLOWS))
            .cited("Montazeri et al. 2018 (short-message tail latency)"),
        OrderingEdge::strict("TCP", "ROCEV2", ease.clone()),
        OrderingEdge::strict("TCP", "QUIC", cpu.clone()),
        OrderingEdge::strict("ROCEV2", "TCP", cpu.clone()),
    ]);

    // ---- Virtual switches ----
    out.extend([
        OrderingEdge::strict("ACCELNET", "OVS", t.clone()).cited("Firestone et al. 2018"),
        OrderingEdge::strict("ACCELNET", "OVS", cpu.clone()),
        OrderingEdge::strict("OVS_DPDK", "OVS", t.clone()),
        OrderingEdge::strict("ANDROMEDA", "OVS", t.clone()).cited("Dalton et al. 2018"),
        OrderingEdge::strict("SRIOV_PASSTHROUGH", "OVS", lat.clone()),
        OrderingEdge::strict("OVS", "OVS_DPDK", cpu.clone()),
        OrderingEdge::strict("OVS", "ACCELNET", ease.clone()),
        OrderingEdge::strict("OVS", "ANDROMEDA", ease.clone()),
    ]);

    // ---- Firewalls ----
    out.extend([
        OrderingEdge::strict("XDP_FW", "IPTABLES", cpu.clone()),
        OrderingEdge::strict("NFTABLES", "IPTABLES", cpu.clone()),
        OrderingEdge::strict("SMARTNIC_FW", "XDP_FW", cpu.clone()),
        OrderingEdge::strict("HW_FIREWALL", "IPTABLES", t.clone()),
        OrderingEdge::strict("IPTABLES", "HW_FIREWALL", ease.clone()),
    ]);

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_reference_only_known_dimensions() {
        // Smoke: every edge builds and the set is non-trivial.
        let all = edges();
        assert!(all.len() >= 60, "got {}", all.len());
    }

    #[test]
    fn figure1_absence_is_preserved() {
        // No isolation edge touches both SHENANGO and DEMIKERNEL.
        let all = edges();
        let offending = all.iter().any(|e| {
            e.dimension == Dimension::Isolation
                && ((e.better.as_str() == "SHENANGO" && e.worse.as_str() == "DEMIKERNEL")
                    || (e.better.as_str() == "DEMIKERNEL" && e.worse.as_str() == "SHENANGO"))
        });
        assert!(!offending, "the paper deliberately leaves this pair incomparable");
    }

    #[test]
    fn listing2_monitoring_edges_exact() {
        let all = edges();
        assert!(all.iter().any(|e| e.dimension == Dimension::MonitoringQuality
            && e.better.as_str() == "SIMON"
            && e.worse.as_str() == "PINGMESH"));
        assert!(all.iter().any(|e| e.dimension == Dimension::DeploymentEase
            && e.better.as_str() == "PINGMESH"
            && e.worse.as_str() == "SIMON"));
    }

    #[test]
    fn netchannel_edges_are_speed_conditioned() {
        let all = edges();
        let strict = all
            .iter()
            .find(|e| {
                e.kind == EdgeKind::Strict
                    && e.better.as_str() == "NETCHANNEL"
                    && e.worse.as_str() == "LINUX"
            })
            .unwrap();
        assert_ne!(strict.condition, Condition::True);
        let equal = all
            .iter()
            .find(|e| {
                e.kind == EdgeKind::Equal
                    && e.better.as_str() == "NETCHANNEL"
                    && e.worse.as_str() == "LINUX"
            })
            .unwrap();
        assert_ne!(equal.condition, Condition::True);
    }

    #[test]
    fn dynamic_virtualization_edge_present() {
        let all = edges();
        assert!(all.iter().any(|e| {
            e.condition == Condition::CategoryFilled(Category::VirtualSwitch)
                && e.dimension == Dimension::TailLatency
        }));
    }
}
