//! Firewall encodings.
//!
//! Captures the paper's §1 observation that "deploying a load balancer at
//! an edge site may make it easier to also deploy a firewall there since
//! resources are already provisioned": the edge firewall requires the
//! abstract `EDGE_PROVISIONED` feature, which L4 load balancers provide.

use crate::vocab::{caps, feats};
use netarch_core::prelude::*;

fn fw(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::Firewall).solves(caps::FIREWALLING)
}

/// All firewall encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        fw("IPTABLES")
            .name("iptables/conntrack")
            .consumes(Resource::Cores, AmountExpr::scaled(crate::vocab::params::NUM_FLOWS, 0.0001))
            .cost(0)
            .notes("Kernel firewall; per-flow connection tracking costs CPU.")
            .build(),
        fw("NFTABLES")
            .name("nftables")
            .consumes(Resource::Cores, AmountExpr::scaled(crate::vocab::params::NUM_FLOWS, 0.00008))
            .cost(0)
            .notes("Successor to iptables with a bytecode ruleset engine.")
            .build(),
        fw("XDP_FW")
            .name("eBPF/XDP firewall")
            .requires("xdpfw-needs-xdp-nic", Condition::nics_have(feats::XDP))
            .consumes(Resource::Cores, AmountExpr::constant(2))
            .cost(500)
            .notes("Driver-level filtering before the stack; needs XDP-capable NIC drivers.")
            .build(),
        fw("SMARTNIC_FW")
            .name("SmartNIC-offloaded firewall")
            .requires(
                "smartnicfw-needs-smartnic",
                Condition::any([
                    Condition::nics_have(feats::SMARTNIC_CPU),
                    Condition::nics_have(feats::SMARTNIC_FPGA),
                ]),
            )
            .consumes(Resource::SmartNicCapacity, AmountExpr::constant(30))
            .cost(2_000)
            .notes("Stateful filtering on the NIC; shares SmartNIC capacity (§2.3).")
            .build(),
        fw("HW_FIREWALL")
            .name("Hardware firewall appliance")
            .cost(30_000)
            .notes("Dedicated appliance at the aggregation layer; costly but host-transparent.")
            .build(),
        fw("EDGE_FW")
            .name("Edge-site firewall")
            .requires_cited(
                "edgefw-needs-provisioned-edge",
                Condition::ProvidedFeature(Feature::new(feats::EDGE_PROVISIONED)),
                "paper §1 (co-deploy with edge load balancer)",
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .cost(1_000)
            .notes("Cheap once an edge LB has provisioned the site.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_firewalls_all_solve_firewalling() {
        let all = systems();
        assert_eq!(all.len(), 6);
        for s in &all {
            assert!(s.solves(&Capability::new(caps::FIREWALLING)));
        }
    }

    #[test]
    fn edge_firewall_needs_provisioned_edge() {
        let all = systems();
        let edge = all.iter().find(|s| s.id.as_str() == "EDGE_FW").unwrap();
        assert!(edge.requires.iter().any(|r| matches!(
            &r.condition,
            Condition::ProvidedFeature(f) if f.as_str() == feats::EDGE_PROVISIONED
        )));
    }

    #[test]
    fn smartnic_fw_consumes_shared_capacity() {
        let all = systems();
        let s = all.iter().find(|s| s.id.as_str() == "SMARTNIC_FW").unwrap();
        assert!(s.resources.iter().any(|d| d.resource == Resource::SmartNicCapacity));
    }
}
