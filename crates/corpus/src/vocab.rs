//! Canonical vocabulary for the knowledge corpus.
//!
//! The engine treats capabilities, features, and properties as opaque
//! tokens (paper §6: "we don't assign semantics to any individual
//! property"). The corpus nevertheless needs a *consistent* vocabulary so
//! that a system's `solves` matches a workload's `needs` and a hardware
//! feature matches a requirement. These constants are that contract.

/// Capability tokens (`solves = [...]` / workload `needs`).
pub mod caps {
    /// Dividing capacity between network participants (§2.1).
    pub const BANDWIDTH_ALLOCATION: &str = "bandwidth_allocation";
    /// End-host packet processing (a network stack).
    pub const HOST_NETWORKING: &str = "host_networking";
    /// Queue-length telemetry (Listing 2).
    pub const DETECT_QUEUE_LENGTH: &str = "detect_queue_length";
    /// Per-packet delay capture (Listing 2).
    pub const CAPTURE_DELAYS: &str = "capture_delays";
    /// General reachability/health monitoring.
    pub const REACHABILITY_MONITORING: &str = "reachability_monitoring";
    /// Streaming telemetry queries (Sonata/Marple).
    pub const TELEMETRY_QUERIES: &str = "telemetry_queries";
    /// Traffic filtering.
    pub const FIREWALLING: &str = "firewalling";
    /// Network virtualization / tenant overlay.
    pub const VIRTUALIZATION: &str = "virtualization";
    /// Intra-fabric path load balancing.
    pub const LOAD_BALANCING: &str = "load_balancing";
    /// Service-level (L4) load balancing.
    pub const L4_LOAD_BALANCING: &str = "l4_load_balancing";
    /// Reliable byte/message transport.
    pub const TRANSPORT: &str = "transport";
    /// L2 address resolution.
    pub const ADDRESS_RESOLUTION: &str = "address_resolution";
}

/// Hardware/provided feature tokens.
pub mod feats {
    /// NIC hardware timestamps (Timely/Swift/Simon dependency).
    pub const NIC_TIMESTAMPS: &str = "NIC_TIMESTAMPS";
    /// NIC-side packet reorder buffers (packet spraying dependency, §2.3).
    pub const REORDER_BUFFER: &str = "REORDER_BUFFER";
    /// NIC supports interrupt-driven polling handoff (Shenango, §4.2).
    pub const INTERRUPT_POLLING: &str = "INTERRUPT_POLLING";
    /// RDMA-capable NIC (RoCE).
    pub const RDMA: &str = "RDMA";
    /// iWARP-capable NIC.
    pub const IWARP: &str = "IWARP";
    /// A CPU-based SmartNIC.
    pub const SMARTNIC_CPU: &str = "SMARTNIC_CPU";
    /// An FPGA-based SmartNIC.
    pub const SMARTNIC_FPGA: &str = "SMARTNIC_FPGA";
    /// NIC supports kernel-bypass (DPDK-class) drivers.
    pub const KERNEL_BYPASS: &str = "KERNEL_BYPASS";
    /// NIC driver supports XDP.
    pub const XDP: &str = "XDP";
    /// NIC supports SR-IOV virtual functions.
    pub const SRIOV: &str = "SRIOV";
    /// Switch supports ECN marking (DCTCP/DCQCN dependency).
    pub const ECN: &str = "ECN";
    /// Switch supports in-band network telemetry (HPCC dependency).
    pub const INT: &str = "INT";
    /// Switch supports QCN congestion notifications (Annulus, §2.3).
    pub const QCN: &str = "QCN";
    /// Switch supports priority flow control (RoCE/DCQCN dependency).
    pub const PFC: &str = "PFC";
    /// P4-programmable pipeline.
    pub const P4: &str = "P4";
    /// Deep packet buffers (scavenger-transport co-existence, §2.2).
    pub const DEEP_BUFFERS: &str = "DEEP_BUFFERS";
    /// Flowlet-switching support (LetFlow).
    pub const FLOWLET_SWITCHING: &str = "FLOWLET_SWITCHING";
    /// CONGA-style congestion-aware fabric ASIC.
    pub const CONGA_FABRIC: &str = "CONGA_FABRIC";
    /// Port mirroring (Everflow-class telemetry).
    pub const MIRRORING: &str = "MIRRORING";
    /// Line-rate sampled flow export.
    pub const SFLOW: &str = "SFLOW";
    /// Per-flow queues in the fabric (BFC dependency).
    pub const PER_FLOW_QUEUES: &str = "PER_FLOW_QUEUES";
    /// Provided (abstract): tunnel encap/decap offloaded from CPUs.
    pub const TUNNEL_OFFLOAD: &str = "TUNNEL_OFFLOAD";
    /// Provided (abstract): an edge site already provisioned with compute
    /// (the paper's §1 load-balancer-then-firewall example).
    pub const EDGE_PROVISIONED: &str = "EDGE_PROVISIONED";
    /// Provided (abstract): Snap's Pony Express transport engine active.
    pub const PONY: &str = "PONY";
    /// Server supports CXL memory expansion/pooling (§5.1 query 3).
    pub const CXL: &str = "CXL";
}

/// Workload property tokens.
pub mod props {
    /// Intra-datacenter flows (Listing 3).
    pub const DC_FLOWS: &str = "dc_flows";
    /// Mostly short flows (Listing 3).
    pub const SHORT_FLOWS: &str = "short_flows";
    /// Latency-critical (Listing 3).
    pub const HIGH_PRIORITY: &str = "high_priority";
    /// Competing WAN traffic present (Annulus condition, §4.1).
    pub const WAN_TRAFFIC: &str = "wan_traffic";
    /// Applications can be modified/recompiled (Snap+Pony condition, §3.1).
    pub const APPS_MODIFIABLE: &str = "apps_modifiable";
    /// VMs require live migration.
    pub const LIVE_MIGRATION: &str = "live_migration";
    /// Buffer-filling best-effort traffic shares the fabric (the
    /// delay-CC scavenger caveat, §2.2).
    pub const BUFFER_FILLING_TRAFFIC: &str = "buffer_filling_traffic";
    /// Deployment must use only production-hardened systems.
    pub const PRODUCTION_ONLY: &str = "production_only";
}

/// Scenario parameter names.
pub mod params {
    /// Fabric link speed, Gbit/s (Figure 1 conditions).
    pub const LINK_SPEED_GBPS: &str = "link_speed_gbps";
    /// Total concurrent flows (derived from workloads by default).
    pub const NUM_FLOWS: &str = "num_flows";
}

#[cfg(test)]
mod tests {
    #[test]
    fn tokens_are_nonempty_and_unique() {
        let all = [
            super::caps::BANDWIDTH_ALLOCATION,
            super::caps::HOST_NETWORKING,
            super::caps::DETECT_QUEUE_LENGTH,
            super::caps::CAPTURE_DELAYS,
            super::caps::REACHABILITY_MONITORING,
            super::caps::TELEMETRY_QUERIES,
            super::caps::FIREWALLING,
            super::caps::VIRTUALIZATION,
            super::caps::LOAD_BALANCING,
            super::caps::L4_LOAD_BALANCING,
            super::caps::TRANSPORT,
            super::caps::ADDRESS_RESOLUTION,
            super::feats::NIC_TIMESTAMPS,
            super::feats::REORDER_BUFFER,
            super::feats::INTERRUPT_POLLING,
            super::feats::RDMA,
            super::feats::IWARP,
            super::feats::SMARTNIC_CPU,
            super::feats::SMARTNIC_FPGA,
            super::feats::KERNEL_BYPASS,
            super::feats::XDP,
            super::feats::SRIOV,
            super::feats::ECN,
            super::feats::INT,
            super::feats::QCN,
            super::feats::PFC,
            super::feats::P4,
            super::feats::DEEP_BUFFERS,
            super::feats::FLOWLET_SWITCHING,
            super::feats::CONGA_FABRIC,
            super::feats::MIRRORING,
            super::feats::SFLOW,
            super::feats::PER_FLOW_QUEUES,
            super::feats::TUNNEL_OFFLOAD,
            super::feats::EDGE_PROVISIONED,
            super::feats::PONY,
            super::props::DC_FLOWS,
            super::props::SHORT_FLOWS,
            super::props::HIGH_PRIORITY,
            super::props::WAN_TRAFFIC,
            super::props::APPS_MODIFIABLE,
            super::props::LIVE_MIGRATION,
            super::props::BUFFER_FILLING_TRAFFIC,
            super::props::PRODUCTION_ONLY,
        ];
        let set: std::collections::BTreeSet<&str> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
        assert!(all.iter().all(|t| !t.is_empty()));
    }
}
