//! The §2.3 case study: an ML inference application.
//!
//! The architect "wants to deploy a machine learning inference
//! application … serve requests with low latency, so they want to use
//! load balancing. To ensure network delays do not interfere … they also
//! want to monitor network queue lengths." Five roles are in play:
//! virtualization, network stack, congestion control, load balancing, and
//! monitoring. Listing 3 gives the workload encoding and the objective
//! stack `Optimize(latency > Hardware cost > monitoring)`.

use crate::vocab::{caps, params, props};
use crate::{full_catalog};
use netarch_core::prelude::*;

/// Listing 3's workload, transliterated.
pub fn inference_workload() -> Workload {
    Workload::builder("inference_app")
        .name("ML inference serving")
        .property(props::DC_FLOWS)
        .property(props::SHORT_FLOWS)
        .property(props::HIGH_PRIORITY)
        .deployed_at(0..3)
        .peak_cores(2_800)
        .peak_bandwidth(30)
        .num_flows(50_000)
        .needs(caps::LOAD_BALANCING)
        .needs(caps::DETECT_QUEUE_LENGTH)
        .needs(caps::HOST_NETWORKING)
        .needs(caps::BANDWIDTH_ALLOCATION)
        .needs(caps::VIRTUALIZATION)
        .performance_bound(Dimension::LoadBalancingQuality, "PACKET_SPRAY")
        .build()
}

/// A second workload for the §5.1 "support more applications" query:
/// a WAN-facing batch analytics job.
pub fn batch_workload() -> Workload {
    Workload::builder("batch_analytics")
        .name("WAN batch analytics")
        .property(props::DC_FLOWS)
        .property(props::WAN_TRAFFIC)
        .property(props::BUFFER_FILLING_TRAFFIC)
        .deployed_at(3..6)
        .peak_cores(1_600)
        .peak_bandwidth(80)
        .num_flows(20_000)
        .needs(caps::BANDWIDTH_ALLOCATION)
        .needs(caps::HOST_NETWORKING)
        .build()
}

/// The case study's hardware inventory: a spread of server SKUs, NIC
/// generations (plain → timestamping → SmartNIC), and switch families
/// (fixed-function → QCN-capable → programmable).
pub fn inventory() -> Inventory {
    Inventory {
        server_candidates: ["XEON_ICE_64C", "XEON_SPR_64C", "EPYC_MILAN_64C"]
            .iter()
            .map(|s| HardwareId::new(*s))
            .collect(),
        nic_candidates: ["INTEL_X710", "INTEL_E810_100", "MLX_CX5_100", "MLX_CX6_100", "BLUEFIELD2"]
            .iter()
            .map(|s| HardwareId::new(*s))
            .collect(),
        switch_candidates: ["CISCO_CATALYST_9500_40X", "TRIDENT3_T32", "TRIDENT4_T48", "SPECTRUM2_SN3700", "TOFINO_T32"]
            .iter()
            .map(|s| HardwareId::new(*s))
            .collect(),
        num_servers: 96, // 3 racks × 32 servers
        num_switches: 6,
    }
}

/// The five §2.3 roles, all required.
fn case_study_roles(scenario: Scenario) -> Scenario {
    scenario
        .with_role(Category::VirtualSwitch, RoleRule::Required)
        .with_role(Category::NetworkStack, RoleRule::Required)
        .with_role(Category::CongestionControl, RoleRule::Required)
        .with_role(Category::LoadBalancer, RoleRule::Required)
        .with_role(Category::Monitoring, RoleRule::Required)
}

/// The full case-study scenario with Listing 3's objective stack:
/// `Optimize(latency > Hardware cost > monitoring)`.
pub fn scenario() -> Scenario {
    let s = Scenario::new(full_catalog())
        .with_workload(inference_workload())
        .with_param(params::LINK_SPEED_GBPS, 100.0)
        .with_inventory(inventory())
        .with_objective(Objective::MaximizeDimension(Dimension::Latency))
        .with_objective(Objective::MinimizeCost)
        .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
    case_study_roles(s)
}

/// The §2.3 "simplest choices" starting point: OVS + Linux (Cubic) +
/// ECMP, no monitoring, fixed-function hardware. Encoded as pins over the
/// same catalog so the engine can show *why* it fails the latency goal.
pub fn naive_scenario() -> Scenario {
    let s = Scenario::new(full_catalog())
        .with_workload(inference_workload())
        .with_param(params::LINK_SPEED_GBPS, 100.0)
        .with_inventory(inventory())
        .with_pin(Pin::Require(SystemId::new("OVS")))
        .with_pin(Pin::Require(SystemId::new("LINUX")))
        .with_pin(Pin::Require(SystemId::new("CUBIC")))
        .with_pin(Pin::Require(SystemId::new("ECMP")));
    case_study_roles(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_3_fields() {
        let w = inference_workload();
        assert_eq!(w.racks, 0..3);
        assert_eq!(w.peak_cores, 2_800);
        assert_eq!(w.peak_bandwidth_gbps, 30);
        assert!(w.has_property(&Property::new(props::DC_FLOWS)));
        assert!(w.has_property(&Property::new(props::SHORT_FLOWS)));
        assert!(w.has_property(&Property::new(props::HIGH_PRIORITY)));
        assert_eq!(w.bounds[0].better_than.as_str(), "PACKET_SPRAY");
    }

    #[test]
    fn inventory_models_exist_in_catalog() {
        let catalog = full_catalog();
        let inv = inventory();
        for id in inv
            .server_candidates
            .iter()
            .chain(&inv.nic_candidates)
            .chain(&inv.switch_candidates)
        {
            assert!(catalog.hardware(id).is_some(), "missing {id}");
        }
    }

    #[test]
    fn objective_stack_is_listing_3() {
        let s = scenario();
        assert_eq!(
            s.objectives,
            vec![
                Objective::MaximizeDimension(Dimension::Latency),
                Objective::MinimizeCost,
                Objective::MaximizeDimension(Dimension::MonitoringQuality),
            ]
        );
    }

    #[test]
    fn naive_scenario_pins_the_simple_design() {
        let s = naive_scenario();
        assert_eq!(s.pins.len(), 4);
    }
}
