//! Congestion control encodings.
//!
//! Grounded rules: HPCC needs INT-enabled switches (§3.1); Timely and
//! Swift depend on NIC timestamps and a dedicated QoS level for ACKs
//! (§3.1); Annulus needs QCN-capable switches and matters only when WAN
//! and DC traffic compete (§2.3, §4.1); delay-based algorithms such as
//! Vegas/Swift cannot share a queue with buffer-filling traffic unless
//! deployed as a scavenger with deep queues (§2.2, RFC 6297); DCQCN rides
//! on PFC, which is deadlock-prone under flooding (§2.2, Guo et al. 2016);
//! BFC needs programmable switches with per-flow queues.

use crate::vocab::{caps, feats, props};
use netarch_core::prelude::*;

fn cc(id: &str) -> netarch_core::component::SystemSpecBuilder {
    SystemSpec::builder(id, Category::CongestionControl).solves(caps::BANDWIDTH_ALLOCATION)
}

/// The delay-based scavenger caveat (§2.2): deployable only if no
/// buffer-filling traffic shares the fabric, or the switches have deep
/// buffers to protect the non-scavenger flows.
fn delay_based_caveat() -> Condition {
    Condition::any([
        Condition::not(Condition::workload(props::BUFFER_FILLING_TRAFFIC)),
        Condition::switches_have(feats::DEEP_BUFFERS),
    ])
}

/// All congestion control encodings.
pub fn systems() -> Vec<SystemSpec> {
    vec![
        cc("CUBIC")
            .name("Cubic")
            .notes("Linux default; loss-based buffer filler (Ha et al. 2008).")
            .build(),
        cc("RENO")
            .name("NewReno")
            .notes("Classic loss-based AIMD.")
            .build(),
        cc("BBR")
            .name("BBR")
            .notes("Model-based; no switch support needed.")
            .build(),
        cc("VEGAS")
            .name("TCP Vegas")
            .requires_cited(
                "vegas-scavenger-caveat",
                delay_based_caveat(),
                "Brakmo et al. 1994; RFC 6297; paper §2.2",
            )
            .notes("Delay-based; loses to buffer fillers unless scavenger-deployed.")
            .build(),
        cc("DCTCP")
            .name("DCTCP")
            .requires_cited(
                "dctcp-needs-ecn",
                Condition::switches_have(feats::ECN),
                "Alizadeh et al., SIGCOMM 2010",
            )
            .notes("ECN-proportional backoff; the DC workhorse.")
            .build(),
        cc("TIMELY")
            .name("Timely")
            .requires_cited(
                "timely-needs-nic-timestamps",
                Condition::nics_have(feats::NIC_TIMESTAMPS),
                "Mittal et al., SIGCOMM 2015; paper §3.1",
            )
            .requires_cited(
                "timely-needs-ack-qos-level",
                Condition::True,
                "paper §3.1 (dedicated QoS level for acknowledgements)",
            )
            .consumes(Resource::QosClasses, AmountExpr::constant(1))
            .requires("timely-scavenger-caveat", delay_based_caveat())
            .notes("RTT-gradient control from NIC timestamps.")
            .build(),
        cc("SWIFT")
            .name("Swift")
            .requires_cited(
                "swift-needs-nic-timestamps",
                Condition::nics_have(feats::NIC_TIMESTAMPS),
                "Kumar et al., SIGCOMM 2020; paper §3.1",
            )
            .consumes(Resource::QosClasses, AmountExpr::constant(1))
            .requires("swift-scavenger-caveat", delay_based_caveat())
            .notes("Target-delay control; robust at scale.")
            .build(),
        cc("HPCC")
            .name("HPCC")
            .requires_cited(
                "hpcc-needs-int-switches",
                Condition::switches_have(feats::INT),
                "Li et al., SIGCOMM 2019; paper §3.1",
            )
            .notes("Precise per-hop link utilization via INT.")
            .build(),
        cc("ANNULUS")
            .name("Annulus")
            .requires_cited(
                "annulus-needs-qcn-switches",
                Condition::switches_have(feats::QCN),
                "Saeed et al., SIGCOMM 2020; paper §2.3",
            )
            .requires_cited(
                "annulus-only-with-competing-wan-traffic",
                Condition::workload(props::WAN_TRAFFIC),
                "paper §4.1 (required only when WAN and DC traffic compete)",
            )
            .notes("Dual loop: QCN near-source control for WAN/DC aggregates.")
            .build(),
        cc("DCQCN")
            .name("DCQCN")
            .requires_cited(
                "dcqcn-needs-ecn",
                Condition::switches_have(feats::ECN),
                "Zhu et al., SIGCOMM 2015",
            )
            .requires_cited(
                "dcqcn-needs-rdma-transport",
                Condition::system("ROCEV2"),
                "DCQCN is the RoCEv2 congestion control",
            )
            .notes("RoCEv2 companion CC.")
            .build(),
        cc("BFC")
            .name("Backpressure Flow Control")
            .requires_cited(
                "bfc-needs-programmable-switches",
                Condition::all([
                    Condition::switches_have(feats::P4),
                    Condition::switches_have(feats::PER_FLOW_QUEUES),
                ]),
                "Goyal et al., NSDI 2022",
            )
            .consumes(Resource::P4Stages, AmountExpr::constant(3))
            .notes("Per-hop per-flow backpressure in the fabric.")
            .build(),
        cc("FASTPASS")
            .name("Fastpass")
            .requires_cited(
                "fastpass-dc-only",
                Condition::workload(props::DC_FLOWS),
                "Perry et al., SIGCOMM 2014",
            )
            .consumes(Resource::Cores, AmountExpr::scaled(crate::vocab::params::NUM_FLOWS, 0.0002))
            .cost(3_000)
            .notes("Centralized zero-queue arbiter; arbiter cores scale with flows.")
            .build(),
        cc("BWE")
            .name("BwE")
            .requires_cited(
                "bwe-wan-only",
                Condition::workload(props::WAN_TRAFFIC),
                "Kumar et al., SIGCOMM 2015",
            )
            .consumes(Resource::Cores, AmountExpr::constant(8))
            .cost(5_000)
            .notes("Hierarchical WAN bandwidth allocator.")
            .build(),
        cc("PCC")
            .name("PCC Vivace")
            .notes("Online-learning rate control; host-only.")
            .build(),
        cc("HOMA_CC")
            .name("Homa (receiver-driven CC)")
            .requires_cited(
                "homa-needs-priority-queues",
                Condition::True,
                "Montazeri et al., SIGCOMM 2018 (uses switch priority levels)",
            )
            .consumes(Resource::QosClasses, AmountExpr::constant(4))
            .requires("homa-research-prototype", Condition::not(Condition::workload(props::PRODUCTION_ONLY)))
            .notes("Receiver-driven grants over multiple priority levels.")
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_cc_systems() {
        let all = systems();
        assert_eq!(all.len(), 15);
        for s in &all {
            assert_eq!(s.category, Category::CongestionControl);
        }
    }

    #[test]
    fn hpcc_requires_int() {
        let all = systems();
        let hpcc = all.iter().find(|s| s.id.as_str() == "HPCC").unwrap();
        assert!(hpcc
            .requires
            .iter()
            .any(|r| r.condition == Condition::switches_have(feats::INT)));
    }

    #[test]
    fn annulus_carries_both_paper_conditions() {
        let all = systems();
        let a = all.iter().find(|s| s.id.as_str() == "ANNULUS").unwrap();
        assert!(a.requires.iter().any(|r| r.condition == Condition::switches_have(feats::QCN)));
        assert!(a
            .requires
            .iter()
            .any(|r| r.condition == Condition::workload(props::WAN_TRAFFIC)));
    }

    #[test]
    fn delay_based_systems_carry_scavenger_caveat() {
        let all = systems();
        for id in ["VEGAS", "TIMELY", "SWIFT"] {
            let s = all.iter().find(|s| s.id.as_str() == id).unwrap();
            assert!(
                s.requires.iter().any(|r| r.label.contains("scavenger")),
                "{id} missing scavenger caveat"
            );
        }
    }

    #[test]
    fn timely_and_swift_reserve_a_qos_class() {
        let all = systems();
        for id in ["TIMELY", "SWIFT"] {
            let s = all.iter().find(|s| s.id.as_str() == id).unwrap();
            assert!(s.resources.iter().any(|d| d.resource == Resource::QosClasses));
        }
    }

    #[test]
    fn dcqcn_depends_on_rocev2_selection() {
        let all = systems();
        let s = all.iter().find(|s| s.id.as_str() == "DCQCN").unwrap();
        assert!(s.requires.iter().any(|r| r.condition == Condition::system("ROCEV2")));
    }
}
