//! Property tests for the reasoning engine over randomly generated
//! catalogs and scenarios.
//!
//! Invariants:
//! * every feasible verdict's design passes the SAT-free semantic
//!   validator (encoding ↔ semantics agreement);
//! * every infeasible verdict's diagnosis is a *minimal* conflict:
//!   the named rules are jointly unsatisfiable, and dropping any pin or
//!   workload-need rule named in it restores feasibility;
//! * enumeration returns distinct, individually valid designs;
//! * optimization never worsens feasibility and its design validates.

use netarch_core::baseline::validate_design;
use netarch_core::prelude::*;
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, Rng};

/// Generation parameters for a synthetic catalog.
#[derive(Debug, Clone)]
struct ScenarioSeed {
    systems_per_category: Vec<u8>, // for 4 categories
    feature_mask: u16,             // which systems require which feature
    conflict_mask: u16,
    nic_features: [bool; 3],
    needs_mask: u8,
    pins_mask: u8,
    demands: Vec<u8>,
    server_cores: u8,
    required_roles: u8,
}

impl_shrink_struct!(ScenarioSeed {
    systems_per_category,
    feature_mask,
    conflict_mask,
    nic_features,
    needs_mask,
    pins_mask,
    demands,
    server_cores,
    required_roles,
});

fn gen_seed(rng: &mut Rng) -> ScenarioSeed {
    ScenarioSeed {
        systems_per_category: gen_vec(rng, 4..=4, |r| r.gen_range(1..4u8)),
        feature_mask: rng.gen_range(0..=u16::MAX),
        conflict_mask: rng.gen_range(0..=u16::MAX),
        nic_features: [rng.gen_bool(0.5), rng.gen_bool(0.5), rng.gen_bool(0.5)],
        needs_mask: rng.gen_range(0..=u8::MAX),
        pins_mask: rng.gen_range(0..=u8::MAX),
        demands: gen_vec(rng, 12..=12, |r| r.gen_range(0..40u8)),
        server_cores: rng.gen_range(8..=64u8),
        required_roles: rng.gen_range(0..=u8::MAX),
    }
}

const CATEGORIES: [Category; 4] = [
    Category::Monitoring,
    Category::LoadBalancer,
    Category::CongestionControl,
    Category::Firewall,
];

const FEATURES: [&str; 3] = ["F0", "F1", "F2"];

fn build_scenario(seed: &ScenarioSeed) -> Scenario {
    let mut catalog = Catalog::new();
    let mut all_ids: Vec<SystemId> = Vec::new();
    let mut index = 0usize;
    for (c, &count) in CATEGORIES.iter().zip(&seed.systems_per_category) {
        // Shrinking may zero a count; keep at least one system per
        // category so the scenario stays structurally comparable.
        for k in 0..count.max(1) {
            let id = format!("{}_{k}", c.to_string().to_uppercase().replace('-', "_"));
            let mut b = SystemSpec::builder(id.clone(), c.clone())
                .solves(format!("cap_{c}"))
                .cost(100 * (u64::from(k) + 1));
            // Feature requirement bit.
            if (seed.feature_mask >> (index % 16)) & 1 == 1 {
                let f = FEATURES[index % FEATURES.len()];
                b = b.requires(format!("needs-{f}"), Condition::nics_have(f));
            }
            // Resource demand.
            let demand = seed
                .demands
                .get(index % seed.demands.len().max(1))
                .copied()
                .unwrap_or(0);
            if demand > 0 {
                b = b.consumes(Resource::Cores, AmountExpr::constant(u64::from(demand)));
            }
            let spec = b.build();
            all_ids.push(spec.id.clone());
            catalog.add_system(spec).unwrap();
            index += 1;
        }
    }
    // Conflicts between consecutive systems per the mask.
    for i in 1..all_ids.len() {
        if (seed.conflict_mask >> (i % 16)) & 1 == 1 {
            let mut spec = catalog.system(&all_ids[i]).unwrap().clone();
            spec.conflicts.push(all_ids[i - 1].clone());
            catalog
                .apply(netarch_core::catalog::CatalogDelta::update_system(spec))
                .unwrap();
        }
    }
    // One NIC model with a feature subset; one server SKU.
    let mut nic = HardwareSpec::builder("NIC", HardwareKind::Nic);
    for (f, &on) in FEATURES.iter().zip(&seed.nic_features) {
        if on {
            nic = nic.feature(*f);
        }
    }
    catalog.add_hardware(nic.cost(500).build()).unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("SRV", HardwareKind::Server)
                .numeric("cores", f64::from(seed.server_cores))
                .cost(5_000)
                .build(),
        )
        .unwrap();

    let mut workload = Workload::builder("app").peak_cores(4);
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.needs_mask >> i) & 1 == 1 {
            workload = workload.needs(format!("cap_{c}"));
        }
    }
    let mut scenario = Scenario::new(catalog)
        .with_workload(workload.build())
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC")],
            server_candidates: vec![HardwareId::new("SRV")],
            num_servers: 2,
            ..Inventory::default()
        });
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.required_roles >> i) & 1 == 1 {
            scenario = scenario.with_role(c.clone(), RoleRule::Required);
        }
    }
    for (i, id) in all_ids.iter().enumerate() {
        if (seed.pins_mask >> (i % 8)) & 1 == 1 && i % 3 == 0 {
            scenario = scenario.with_pin(if i % 2 == 0 {
                Pin::Require(id.clone())
            } else {
                Pin::Forbid(id.clone())
            });
        }
    }
    scenario
}

fn check_feasible_designs_validate_and_diagnoses_are_minimal(
    seed: &ScenarioSeed,
) -> Result<(), String> {
    let scenario = build_scenario(seed);
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => {
            let violations = validate_design(&scenario, &design);
            prop_assert!(violations.is_empty(), "invalid design: {violations:?}\n{design}");
        }
        Outcome::Infeasible(diagnosis) => {
            prop_assert!(!diagnosis.conflicts.is_empty(), "empty diagnosis");
            // The diagnosis is a minimal conflict *as a rule subset*:
            // jointly UNSAT, and SAT once any single member is dropped.
            // (The full scenario may hold other, disjoint conflicts —
            // minimality is relative to the subset itself.)
            let labels: Vec<&str> =
                diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
            prop_assert!(
                !engine.check_rule_subset(&labels).expect("runs"),
                "diagnosis subset is satisfiable: {labels:?}"
            );
            for drop in &labels {
                let rest: Vec<&str> = labels.iter().copied().filter(|l| l != drop).collect();
                prop_assert!(
                    engine.check_rule_subset(&rest).expect("runs"),
                    "diagnosis not minimal: {drop} removable from {labels:?}"
                );
            }
        }
    }
    Ok(())
}

#[test]
fn feasible_designs_validate_and_diagnoses_are_minimal() {
    prop::check(
        &Config::with_cases(96),
        gen_seed,
        check_feasible_designs_validate_and_diagnoses_are_minimal,
    );
}

/// Regression seeds discovered by earlier property-test runs; kept as
/// explicit cases so they run on every `cargo test`.
#[test]
fn regression_conflict_chain_diagnosis_is_minimal() {
    let seed = ScenarioSeed {
        systems_per_category: vec![1, 1, 2, 2],
        feature_mask: 59616,
        conflict_mask: 58664,
        nic_features: [false, false, false],
        needs_mask: 0,
        pins_mask: 0,
        demands: vec![0; 12],
        server_cores: 8,
        required_roles: 0,
    };
    check_feasible_designs_validate_and_diagnoses_are_minimal(&seed).unwrap();
}

#[test]
fn regression_pinned_needs_diagnosis_is_minimal() {
    let seed = ScenarioSeed {
        systems_per_category: vec![2, 3, 2, 2],
        feature_mask: 28781,
        conflict_mask: 0,
        nic_features: [false, false, false],
        needs_mask: 216,
        pins_mask: 195,
        demands: vec![0; 12],
        server_cores: 8,
        required_roles: 144,
    };
    check_feasible_designs_validate_and_diagnoses_are_minimal(&seed).unwrap();
}

#[test]
fn optimize_agrees_with_check_on_feasibility() {
    prop::check(&Config::with_cases(96), gen_seed, |seed| {
        let scenario = build_scenario(seed);
        let mut engine = Engine::new(scenario.clone()).expect("compiles");
        let feasible = engine.check().expect("runs").design().is_some();
        let mut scenario2 = scenario.clone();
        scenario2.objectives = vec![Objective::MinimizeCost];
        let mut engine2 = Engine::new(scenario2).expect("compiles");
        match engine2.optimize().expect("runs") {
            Ok(result) => {
                prop_assert!(feasible, "optimize found a design where check did not");
                let violations = validate_design(&scenario, &result.design);
                prop_assert!(violations.is_empty(), "{violations:?}");
            }
            Err(_) => prop_assert!(!feasible, "optimize infeasible but check feasible"),
        }
        Ok(())
    });
}

#[test]
fn enumerated_designs_are_distinct_and_valid() {
    prop::check(&Config::with_cases(96), gen_seed, |seed| {
        let scenario = build_scenario(seed);
        let mut engine = Engine::new(scenario.clone()).expect("compiles");
        let designs = engine.enumerate_designs(12, false).expect("runs");
        let mut fingerprints = std::collections::BTreeSet::new();
        for d in &designs {
            let violations = validate_design(&scenario, d);
            prop_assert!(violations.is_empty(), "{violations:?}");
            let fp: Vec<String> = d.systems().iter().map(|s| s.to_string()).collect();
            prop_assert!(fingerprints.insert(fp), "duplicate equivalence class");
        }
        Ok(())
    });
}

#[test]
fn cheapest_enumerated_design_is_never_cheaper_than_optimum() {
    prop::check(&Config::with_cases(96), gen_seed, |seed| {
        let mut scenario = build_scenario(seed);
        scenario.objectives = vec![Objective::MinimizeCost];
        let mut engine = Engine::new(scenario.clone()).expect("compiles");
        let designs = engine.enumerate_designs(64, true).expect("runs");
        if designs.len() >= 64 {
            return Ok(()); // truncated: the sample may miss the optimum
        }
        let mut engine = Engine::new(scenario.clone()).expect("compiles");
        if let Ok(result) = engine.optimize().expect("runs") {
            let enumerated_min = designs.iter().map(|d| d.total_cost_usd).min();
            if let Some(min_cost) = enumerated_min {
                prop_assert!(
                    result.design.total_cost_usd <= min_cost,
                    "optimizer ${} worse than enumerated ${min_cost}",
                    result.design.total_cost_usd
                );
            }
        }
        Ok(())
    });
}
