//! Property tests for the conditional partial-order algebra: the BFS
//! dominance closure must behave like a preorder with strictness —
//! antisymmetric verdicts, transitive dominance, ranks consistent with
//! pairwise comparisons, and equivalence symmetric.

use netarch_core::condition::StaticContext;
use netarch_core::ordering::{Comparison, OrderingEdge, PreferenceOrder};
use netarch_core::prelude::*;
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};

const N: usize = 6;

fn sid(i: usize) -> SystemId {
    SystemId::new(format!("S{i}"))
}

struct NoCtx;
impl StaticContext for NoCtx {
    fn param(&self, _n: &ParamName) -> Option<f64> {
        None
    }
    fn workload_has(&self, _p: &Property) -> bool {
        false
    }
}

/// Raw edge lists; a shrinkable stand-in for a [`PreferenceOrder`].
type RawEdges = (Vec<(usize, usize)>, Vec<(usize, usize)>);

fn gen_edges(rng: &mut Rng) -> RawEdges {
    let strict = gen_vec(rng, 0..=9, |r| (r.gen_range(0..N), r.gen_range(0..N)));
    let equal = gen_vec(rng, 0..=3, |r| (r.gen_range(0..N), r.gen_range(0..N)));
    (strict, equal)
}

/// Random DAG-ish edge set: strict edges only from lower to higher index
/// (guaranteeing acyclicity), equal edges anywhere.
fn build_order(edges: &RawEdges) -> PreferenceOrder {
    let mut o = PreferenceOrder::new();
    for &(a, b) in &edges.0 {
        let (a, b) = (a % N, b % N);
        if a == b {
            continue;
        }
        let (hi, lo) = if a < b { (a, b) } else { (b, a) };
        o.add(OrderingEdge::strict(sid(hi), sid(lo), Dimension::Throughput));
    }
    for &(a, b) in &edges.1 {
        let (a, b) = (a % N, b % N);
        if a == b {
            continue;
        }
        // Equal edges only between same-index-parity nodes to avoid
        // collapsing strict chains into cycles.
        if a % 2 == b % 2 {
            o.add(OrderingEdge::equal(sid(a), sid(b), Dimension::Isolation));
        }
    }
    o
}

#[test]
fn comparisons_are_antisymmetric() {
    prop::check(&Config::with_cases(128), gen_edges, |edges| {
        let o = build_order(edges);
        let dim = Dimension::Throughput;
        for a in 0..N {
            for b in 0..N {
                if a == b {
                    continue;
                }
                let ab = o.compare(&sid(a), &sid(b), &dim, &NoCtx);
                let ba = o.compare(&sid(b), &sid(a), &dim, &NoCtx);
                let expected = match ab {
                    Comparison::Better => Comparison::Worse,
                    Comparison::Worse => Comparison::Better,
                    other => other,
                };
                prop_assert_eq!(ba, expected, "S{} vs S{}", a, b);
            }
        }
        Ok(())
    });
}

#[test]
fn dominance_is_transitive() {
    prop::check(&Config::with_cases(128), gen_edges, |edges| {
        let o = build_order(edges);
        let dim = Dimension::Throughput;
        for a in 0..N {
            let da = o.dominated_by(&sid(a), &dim, &NoCtx);
            for b in da.iter() {
                let db = o.dominated_by(b, &dim, &NoCtx);
                for c in db.iter() {
                    prop_assert!(
                        da.contains(c),
                        "S{} ≻ {} ≻ {} but closure misses the chain",
                        a,
                        b,
                        c
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn strict_dominance_is_irreflexive_on_acyclic_inputs() {
    prop::check(&Config::with_cases(128), gen_edges, |edges| {
        let o = build_order(edges);
        let dim = Dimension::Throughput;
        prop_assert_eq!(o.find_cycle(&dim, &NoCtx), None);
        for a in 0..N {
            prop_assert!(
                !o.dominated_by(&sid(a), &dim, &NoCtx).contains(&sid(a)),
                "S{} dominates itself",
                a
            );
        }
        Ok(())
    });
}

#[test]
fn ranks_agree_with_pairwise_dominance() {
    prop::check(&Config::with_cases(128), gen_edges, |edges| {
        let o = build_order(edges);
        let dim = Dimension::Throughput;
        let universe: Vec<SystemId> = (0..N).map(sid).collect();
        let ranks = o.ranks(&universe, &dim, &NoCtx);
        for a in 0..N {
            let expected = (0..N)
                .filter(|&b| b != a)
                .filter(|&b| o.compare(&sid(a), &sid(b), &dim, &NoCtx) == Comparison::Better)
                .count();
            prop_assert_eq!(ranks[&sid(a)], expected, "rank of S{}", a);
        }
        Ok(())
    });
}

#[test]
fn equality_is_symmetric_and_never_strict() {
    prop::check(&Config::with_cases(128), gen_edges, |edges| {
        let o = build_order(edges);
        let dim = Dimension::Isolation;
        for a in 0..N {
            let ea = o.equal_to(&sid(a), &dim, &NoCtx);
            for b in ea.iter() {
                let idx: usize = b.as_str()[1..].parse().unwrap();
                prop_assert!(
                    o.equal_to(b, &dim, &NoCtx).contains(&sid(a)),
                    "equality not symmetric: S{} ~ {}",
                    a,
                    b
                );
                // No strict edges exist on this dimension in the generator,
                // so equality must be the whole story.
                prop_assert_eq!(
                    o.compare(&sid(a), &sid(idx), &dim, &NoCtx),
                    Comparison::Equal
                );
            }
        }
        Ok(())
    });
}

#[test]
fn conditional_edges_do_not_leak_across_contexts() {
    prop::check(
        &Config::with_cases(128),
        |rng| gen_vec(rng, 1..=7, |r| (r.gen_range(0..N), r.gen_range(0..N))),
        |strict| {
            // Every edge gated on a parameter the context lacks: nothing holds.
            let mut o = PreferenceOrder::new();
            for &(a, b) in strict {
                let (a, b) = (a % N, b % N);
                if a == b {
                    continue;
                }
                let (hi, lo) = if a < b { (a, b) } else { (b, a) };
                o.add(
                    OrderingEdge::strict(sid(hi), sid(lo), Dimension::Latency)
                        .when(Condition::param("undefined_param", CmpOp::Ge, 1.0)),
                );
            }
            for a in 0..N {
                for b in 0..N {
                    if a == b {
                        continue;
                    }
                    prop_assert_eq!(
                        o.compare(&sid(a), &sid(b), &Dimension::Latency, &NoCtx),
                        Comparison::Incomparable
                    );
                }
            }
            Ok(())
        },
    );
}
