//! Property tests for the conditional partial-order algebra: the BFS
//! dominance closure must behave like a preorder with strictness —
//! antisymmetric verdicts, transitive dominance, ranks consistent with
//! pairwise comparisons, and equivalence symmetric.

use netarch_core::condition::StaticContext;
use netarch_core::ordering::{Comparison, OrderingEdge, PreferenceOrder};
use netarch_core::prelude::*;
use proptest::prelude::*;

const N: usize = 6;

fn sid(i: usize) -> SystemId {
    SystemId::new(format!("S{i}"))
}

struct NoCtx;
impl StaticContext for NoCtx {
    fn param(&self, _n: &ParamName) -> Option<f64> {
        None
    }
    fn workload_has(&self, _p: &Property) -> bool {
        false
    }
}

/// Random DAG-ish edge set: strict edges only from lower to higher index
/// (guaranteeing acyclicity), equal edges anywhere.
fn order_strategy() -> impl Strategy<Value = PreferenceOrder> {
    let strict_edges = prop::collection::vec((0..N, 0..N), 0..10);
    let equal_edges = prop::collection::vec((0..N, 0..N), 0..4);
    (strict_edges, equal_edges).prop_map(|(strict, equal)| {
        let mut o = PreferenceOrder::new();
        for (a, b) in strict {
            if a == b {
                continue;
            }
            let (hi, lo) = if a < b { (a, b) } else { (b, a) };
            o.add(OrderingEdge::strict(sid(hi), sid(lo), Dimension::Throughput));
        }
        for (a, b) in equal {
            if a == b {
                continue;
            }
            // Equal edges only between same-index-parity nodes to avoid
            // collapsing strict chains into cycles.
            if a % 2 == b % 2 {
                o.add(OrderingEdge::equal(sid(a), sid(b), Dimension::Isolation));
            }
        }
        o
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn comparisons_are_antisymmetric(o in order_strategy()) {
        let dim = Dimension::Throughput;
        for a in 0..N {
            for b in 0..N {
                if a == b { continue; }
                let ab = o.compare(&sid(a), &sid(b), &dim, &NoCtx);
                let ba = o.compare(&sid(b), &sid(a), &dim, &NoCtx);
                let expected = match ab {
                    Comparison::Better => Comparison::Worse,
                    Comparison::Worse => Comparison::Better,
                    other => other,
                };
                prop_assert_eq!(ba, expected, "S{} vs S{}", a, b);
            }
        }
    }

    #[test]
    fn dominance_is_transitive(o in order_strategy()) {
        let dim = Dimension::Throughput;
        for a in 0..N {
            let da = o.dominated_by(&sid(a), &dim, &NoCtx);
            for b in da.iter() {
                let db = o.dominated_by(b, &dim, &NoCtx);
                for c in db.iter() {
                    prop_assert!(
                        da.contains(c),
                        "S{} ≻ {} ≻ {} but closure misses the chain", a, b, c
                    );
                }
            }
        }
    }

    #[test]
    fn strict_dominance_is_irreflexive_on_acyclic_inputs(o in order_strategy()) {
        let dim = Dimension::Throughput;
        prop_assert_eq!(o.find_cycle(&dim, &NoCtx), None);
        for a in 0..N {
            prop_assert!(
                !o.dominated_by(&sid(a), &dim, &NoCtx).contains(&sid(a)),
                "S{} dominates itself", a
            );
        }
    }

    #[test]
    fn ranks_agree_with_pairwise_dominance(o in order_strategy()) {
        let dim = Dimension::Throughput;
        let universe: Vec<SystemId> = (0..N).map(sid).collect();
        let ranks = o.ranks(&universe, &dim, &NoCtx);
        for a in 0..N {
            let expected = (0..N)
                .filter(|&b| b != a)
                .filter(|&b| o.compare(&sid(a), &sid(b), &dim, &NoCtx) == Comparison::Better)
                .count();
            prop_assert_eq!(ranks[&sid(a)], expected, "rank of S{}", a);
        }
    }

    #[test]
    fn equality_is_symmetric_and_never_strict(o in order_strategy()) {
        let dim = Dimension::Isolation;
        for a in 0..N {
            let ea = o.equal_to(&sid(a), &dim, &NoCtx);
            for b in ea.iter() {
                let idx: usize = b.as_str()[1..].parse().unwrap();
                prop_assert!(
                    o.equal_to(b, &dim, &NoCtx).contains(&sid(a)),
                    "equality not symmetric: S{} ~ {}", a, b
                );
                // No strict edges exist on this dimension in the generator,
                // so equality must be the whole story.
                prop_assert_eq!(
                    o.compare(&sid(a), &sid(idx), &dim, &NoCtx),
                    Comparison::Equal
                );
            }
        }
    }

    #[test]
    fn conditional_edges_do_not_leak_across_contexts(strict in prop::collection::vec((0..N, 0..N), 1..8)) {
        // Every edge gated on a parameter the context lacks: nothing holds.
        let mut o = PreferenceOrder::new();
        for (a, b) in strict {
            if a == b { continue; }
            let (hi, lo) = if a < b { (a, b) } else { (b, a) };
            o.add(
                OrderingEdge::strict(sid(hi), sid(lo), Dimension::Latency)
                    .when(Condition::param("undefined_param", CmpOp::Ge, 1.0)),
            );
        }
        for a in 0..N {
            for b in 0..N {
                if a == b { continue; }
                prop_assert_eq!(
                    o.compare(&sid(a), &sid(b), &Dimension::Latency, &NoCtx),
                    Comparison::Incomparable
                );
            }
        }
    }
}
