//! Engine queries under `NETARCH_VERIFY_PROOFS`.
//!
//! Every test in this binary switches the engine into verified-solving
//! mode: the encoder records DRAT proofs, mirrors every asserted clause,
//! and re-validates each verdict with the independent checker — SAT models
//! are re-evaluated against the CNF, UNSAT verdicts must carry an accepted
//! refutation, and any discrepancy panics. A passing suite means the
//! engine's feasibility answers and diagnoses are all certified, not just
//! asserted.
//!
//! All tests set the variable to the same value, so the usual set-env-in-
//! parallel-tests hazard does not apply; keep it that way when adding
//! tests here.

use netarch_core::prelude::*;

fn enable_verification() {
    std::env::set_var("NETARCH_VERIFY_PROOFS", "1");
}

/// The same small-but-complete scenario the engine unit tests use: two
/// monitoring systems (one needing a NIC feature), two NIC models, one
/// load balancer.
fn test_scenario() -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("detect_queue_length")
                .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
                .cost(400)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("PINGMESH", Category::Monitoring)
                .solves("detect_queue_length")
                .cost(100)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("ECMP", Category::LoadBalancer).solves("load_balancing").build(),
        )
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::strict("SIMON", "PINGMESH", Dimension::MonitoringQuality))
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::strict("PINGMESH", "SIMON", Dimension::DeploymentEase))
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("NIC_TS", HardwareKind::Nic)
                .feature("NIC_TIMESTAMPS")
                .cost(900)
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(HardwareSpec::builder("NIC_PLAIN", HardwareKind::Nic).cost(300).build())
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("detect_queue_length").build())
        .with_role(Category::Monitoring, RoleRule::Required)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC_TS"), HardwareId::new("NIC_PLAIN")],
            num_servers: 4,
            ..Inventory::default()
        })
}

#[test]
fn feasible_check_verifies_its_model() {
    enable_verification();
    let mut engine = Engine::new(test_scenario()).unwrap();
    let outcome = engine.check().unwrap();
    let design = outcome.design().expect("feasible");
    assert!(design.selection(&Category::Monitoring).is_some());
}

#[test]
fn infeasibility_diagnosis_verifies_every_unsat_verdict() {
    // Diagnosis shrinks the conflict via repeated assumption solves — every
    // intermediate UNSAT verdict must carry an accepted proof, not just the
    // final one.
    enable_verification();
    let scenario = test_scenario()
        .with_pin(Pin::Require(SystemId::new("SIMON")))
        .with_pin(Pin::Forbid(SystemId::new("SIMON")));
    let mut engine = Engine::new(scenario).unwrap();
    let outcome = engine.check().unwrap();
    let diagnosis = outcome.diagnosis().expect("infeasible");
    let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
    assert!(labels.contains(&"pin:require:SIMON"));
    assert!(labels.contains(&"pin:forbid:SIMON"));
    assert_eq!(diagnosis.conflicts.len(), 2);
}

#[test]
fn requirement_conflict_diagnosis_is_certified() {
    enable_verification();
    let mut scenario = test_scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
    scenario.inventory.nic_candidates = vec![HardwareId::new("NIC_PLAIN")];
    let mut engine = Engine::new(scenario).unwrap();
    let outcome = engine.check().unwrap();
    let diagnosis = outcome.diagnosis().expect("infeasible");
    let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
    assert!(
        labels.contains(&"req:SIMON:needs-nic-timestamps"),
        "diagnosis should name the NIC-timestamp rule, got {labels:?}"
    );
}

#[test]
fn optimization_runs_fully_verified() {
    // MaxSAT drives many solves (bound tightening / core-guided rounds);
    // all of them flow through the verified encoder.
    enable_verification();
    let scenario =
        test_scenario().with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
    let mut engine = Engine::new(scenario).unwrap();
    let result = engine.optimize().unwrap().expect("feasible");
    assert_eq!(result.design.selection(&Category::Monitoring).unwrap().as_str(), "SIMON");
}

#[test]
fn rule_subset_probes_are_certified() {
    enable_verification();
    let scenario = test_scenario()
        .with_pin(Pin::Require(SystemId::new("SIMON")))
        .with_pin(Pin::Forbid(SystemId::new("SIMON")));
    let mut engine = Engine::new(scenario).unwrap();
    assert!(engine.check_rule_subset(&["pin:require:SIMON"]).unwrap());
    assert!(!engine
        .check_rule_subset(&["pin:require:SIMON", "pin:forbid:SIMON"])
        .unwrap());
}
