//! Differential oracle for the incremental session engine.
//!
//! The engine answers every query on one persistent solver, gating each
//! query's destructive clauses behind an activation literal that is
//! retired afterwards. Correctness criterion: a long-lived session
//! answering a random interleaving of `check` / `optimize` /
//! `enumerate_designs` / `check_rule_subset` must agree, query by query,
//! with a throwaway engine freshly compiled for that single query.
//!
//! Agreement is semantic, not bit-for-bit: feasibility verdicts, optimal
//! per-level penalties, and (untruncated) equivalence-class sets must
//! match; designs and diagnoses may differ as witnesses, so designs are
//! checked by the SAT-free validator and the session's diagnosis is
//! replayed as an UNSAT rule subset on the fresh engine.

use netarch_core::baseline::validate_design;
use netarch_core::prelude::*;
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, prop_assert_eq, Rng};

const CATEGORIES: [Category; 3] =
    [Category::Monitoring, Category::LoadBalancer, Category::Firewall];

const FEATURES: [&str; 2] = ["F0", "F1"];

/// Generation parameters: a small scenario plus an opcode tape.
#[derive(Debug, Clone)]
struct Seed {
    systems_per_category: Vec<u8>, // for the 3 categories
    feature_mask: u8,
    conflict_mask: u8,
    nic_features: [bool; 2],
    needs_mask: u8,
    pins_mask: u8,
    required_roles: u8,
    ops: Vec<u8>,
}

impl_shrink_struct!(Seed {
    systems_per_category,
    feature_mask,
    conflict_mask,
    nic_features,
    needs_mask,
    pins_mask,
    required_roles,
    ops,
});

fn gen_seed(rng: &mut Rng) -> Seed {
    Seed {
        systems_per_category: gen_vec(rng, 3..=3, |r| r.gen_range(1..4u8)),
        feature_mask: rng.gen_range(0..=u8::MAX),
        conflict_mask: rng.gen_range(0..=u8::MAX),
        nic_features: [rng.gen_bool(0.5), rng.gen_bool(0.5)],
        needs_mask: rng.gen_range(0..=u8::MAX),
        pins_mask: rng.gen_range(0..=u8::MAX),
        required_roles: rng.gen_range(0..=u8::MAX),
        ops: gen_vec(rng, 3..=6, |r| r.gen_range(0..=u8::MAX)),
    }
}

fn build_scenario(seed: &Seed) -> Scenario {
    let mut catalog = Catalog::new();
    let mut all_ids: Vec<SystemId> = Vec::new();
    let mut index = 0usize;
    for (c, i) in CATEGORIES.iter().zip(0..) {
        // Shrinking may truncate or zero the counts; keep one system per
        // category so the scenario stays structurally comparable.
        let count = seed.systems_per_category.get(i).copied().unwrap_or(1).max(1);
        for k in 0..count {
            let id = format!("{}_{k}", c.to_string().to_uppercase().replace('-', "_"));
            let mut b = SystemSpec::builder(id.clone(), c.clone())
                .solves(format!("cap_{c}"))
                .cost(100 * (u64::from(k) + 1));
            if (seed.feature_mask >> (index % 8)) & 1 == 1 {
                let f = FEATURES[index % FEATURES.len()];
                b = b.requires(format!("needs-{f}"), Condition::nics_have(f));
            }
            let spec = b.build();
            all_ids.push(spec.id.clone());
            catalog.add_system(spec).unwrap();
            index += 1;
        }
    }
    for i in 1..all_ids.len() {
        if (seed.conflict_mask >> (i % 8)) & 1 == 1 {
            let mut spec = catalog.system(&all_ids[i]).unwrap().clone();
            spec.conflicts.push(all_ids[i - 1].clone());
            catalog
                .apply(netarch_core::catalog::CatalogDelta::update_system(spec))
                .unwrap();
        }
    }
    let mut nic = HardwareSpec::builder("NIC", HardwareKind::Nic);
    for (f, &on) in FEATURES.iter().zip(&seed.nic_features) {
        if on {
            nic = nic.feature(*f);
        }
    }
    catalog.add_hardware(nic.cost(500).build()).unwrap();

    let mut workload = Workload::builder("app");
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.needs_mask >> i) & 1 == 1 {
            workload = workload.needs(format!("cap_{c}"));
        }
    }
    let mut scenario = Scenario::new(catalog)
        .with_workload(workload.build())
        .with_objective(Objective::MinimizeCost)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC")],
            num_servers: 2,
            ..Inventory::default()
        });
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.required_roles >> i) & 1 == 1 {
            scenario = scenario.with_role(c.clone(), RoleRule::Required);
        }
    }
    for (i, id) in all_ids.iter().enumerate() {
        if (seed.pins_mask >> (i % 8)) & 1 == 1 && i % 3 == 0 {
            scenario = scenario.with_pin(if i % 2 == 0 {
                Pin::Require(id.clone())
            } else {
                Pin::Forbid(id.clone())
            });
        }
    }
    scenario
}

/// One step of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    Check,
    Optimize,
    Enumerate(usize),
    Subset(u8),
}

fn decode(byte: u8) -> Op {
    match byte % 4 {
        0 => Op::Check,
        1 => Op::Optimize,
        2 => Op::Enumerate(2 + usize::from(byte / 4) % 3),
        _ => Op::Subset(byte / 4),
    }
}

/// Candidate rule labels for subset queries. Labels absent from the
/// compiled scenario filter to nothing in `check_rule_subset`, so the
/// pool may safely over-approximate — both engines filter identically.
fn label_pool(scenario: &Scenario) -> Vec<String> {
    let mut pool: Vec<String> = CATEGORIES.iter().map(|c| format!("role:{c}")).collect();
    pool.extend(CATEGORIES.iter().map(|c| format!("workload:app:needs:cap_{c}")));
    for pin in &scenario.pins {
        pool.push(match pin {
            Pin::Require(id) => format!("pin:require:{id}"),
            Pin::Forbid(id) => format!("pin:forbid:{id}"),
        });
    }
    pool
}

fn fingerprints(designs: &[Design]) -> Vec<Vec<String>> {
    let mut fps: Vec<Vec<String>> = designs
        .iter()
        .map(|d| d.systems().iter().map(|s| s.to_string()).collect())
        .collect();
    fps.sort();
    fps
}

fn session_agrees_with_fresh_engines(seed: &Seed) -> Result<(), String> {
    let scenario = build_scenario(seed);
    let mut session = Engine::new(scenario.clone()).expect("compiles");
    let pool = label_pool(&scenario);
    for &byte in &seed.ops {
        let op = decode(byte);
        let mut fresh = Engine::new(scenario.clone()).expect("compiles");
        match op {
            Op::Check => {
                let a = session.check().expect("runs");
                let b = fresh.check().expect("runs");
                prop_assert_eq!(
                    a.design().is_some(),
                    b.design().is_some(),
                    "feasibility diverged after {op:?}"
                );
                for d in [a.design(), b.design()].into_iter().flatten() {
                    let violations = validate_design(&scenario, d);
                    prop_assert!(violations.is_empty(), "{violations:?}\n{d}");
                }
                if let Some(diagnosis) = a.diagnosis() {
                    let labels: Vec<&str> =
                        diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
                    prop_assert!(!labels.is_empty(), "empty session diagnosis");
                    prop_assert!(
                        !fresh.check_rule_subset(&labels).expect("runs"),
                        "session diagnosis {labels:?} is satisfiable on a fresh engine"
                    );
                }
            }
            Op::Optimize => {
                let a = session.optimize().expect("runs");
                let b = fresh.optimize().expect("runs");
                match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        let pa: Vec<u64> = ra.levels.iter().map(|l| l.penalty).collect();
                        let pb: Vec<u64> = rb.levels.iter().map(|l| l.penalty).collect();
                        prop_assert_eq!(pa, pb, "optimal level penalties diverged");
                        for d in [&ra.design, &rb.design] {
                            let violations = validate_design(&scenario, d);
                            prop_assert!(violations.is_empty(), "{violations:?}\n{d}");
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => {
                        return Err(format!(
                            "optimize feasibility diverged: session ok={} fresh ok={}",
                            a.is_ok(),
                            b.is_ok()
                        ))
                    }
                }
            }
            Op::Enumerate(limit) => {
                let a = session.enumerate_designs(limit, false).expect("runs");
                let b = fresh.enumerate_designs(limit, false).expect("runs");
                prop_assert_eq!(a.len(), b.len(), "class count diverged at limit {limit}");
                if a.len() < limit {
                    // Both exhaustive: the class sets must coincide.
                    prop_assert_eq!(
                        fingerprints(&a),
                        fingerprints(&b),
                        "equivalence classes diverged"
                    );
                }
                for d in &a {
                    let violations = validate_design(&scenario, d);
                    prop_assert!(violations.is_empty(), "{violations:?}\n{d}");
                }
            }
            Op::Subset(mask) => {
                let labels: Vec<&str> = pool
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (mask >> (i % 8)) & 1 == 1)
                    .map(|(_, l)| l.as_str())
                    .collect();
                prop_assert_eq!(
                    session.check_rule_subset(&labels).expect("runs"),
                    fresh.check_rule_subset(&labels).expect("runs"),
                    "rule-subset verdict diverged for {labels:?}"
                );
            }
        }
    }
    prop_assert_eq!(
        session.stats().recompiles,
        0,
        "the session recompiled mid-interleaving"
    );
    Ok(())
}

#[test]
fn interleaved_session_queries_match_fresh_engines() {
    prop::check(&Config::with_cases(48), gen_seed, session_agrees_with_fresh_engines);
}

/// Frozen-variable regression for solver inprocessing: a session that runs
/// a full inprocessing round (subsumption, vivification, bounded variable
/// elimination) between queries must keep answering identically to fresh
/// engines, on the original compilation, with zero recompiles. The encoder
/// freezes every atom, selector, and cardinality-structure variable, so
/// BVE may only eliminate single-assertion Tseitin auxiliaries — if that
/// contract broke, the next gated assertion or assumption would panic or
/// silently diverge, and this test would catch either.
#[test]
fn session_answers_identically_after_forced_inprocessing() {
    let seed = Seed {
        systems_per_category: vec![2, 2, 2],
        feature_mask: 0b0101,
        conflict_mask: 0b0010,
        nic_features: [true, false],
        needs_mask: 0b011,
        pins_mask: 0,
        required_roles: 0b001,
        ops: vec![0, 1, 2, 3, 0, 1, 2], // check, optimize, enumerate, subset, …
    };
    let scenario = build_scenario(&seed);
    let mut session = Engine::new(scenario.clone()).expect("compiles");
    let pool = label_pool(&scenario);
    for &byte in &seed.ops {
        // Inprocess *before* every query: any variable the next query still
        // needs must have survived.
        assert!(session.inprocess_session(), "session root became inconsistent");
        let mut fresh = Engine::new(scenario.clone()).expect("compiles");
        match decode(byte) {
            Op::Check => {
                let a = session.check().expect("runs");
                let b = fresh.check().expect("runs");
                assert_eq!(a.design().is_some(), b.design().is_some());
            }
            Op::Optimize => {
                let a = session.optimize().expect("runs");
                let b = fresh.optimize().expect("runs");
                match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        let pa: Vec<u64> = ra.levels.iter().map(|l| l.penalty).collect();
                        let pb: Vec<u64> = rb.levels.iter().map(|l| l.penalty).collect();
                        assert_eq!(pa, pb, "optimal penalties diverged after inprocessing");
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "optimize feasibility diverged: session ok={} fresh ok={}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
            Op::Enumerate(limit) => {
                let a = session.enumerate_designs(limit, false).expect("runs");
                let b = fresh.enumerate_designs(limit, false).expect("runs");
                assert_eq!(a.len(), b.len(), "class count diverged after inprocessing");
                if a.len() < limit {
                    // Both exhaustive: the class sets must coincide.
                    assert_eq!(fingerprints(&a), fingerprints(&b));
                }
            }
            Op::Subset(mask) => {
                let labels: Vec<&str> = pool
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (mask >> (i % 8)) & 1 == 1)
                    .map(|(_, l)| l.as_str())
                    .collect();
                assert_eq!(
                    session.check_rule_subset(&labels).expect("runs"),
                    fresh.check_rule_subset(&labels).expect("runs"),
                );
            }
        }
    }
    let stats = session.stats();
    assert_eq!(stats.recompiles, 0, "inprocessing forced a session recompile");
    assert!(stats.session_solves > 0);
}

/// Deterministic spot-check of the acceptance interleaving:
/// check → optimize → enumerate → check on one session, zero recompiles.
#[test]
fn acceptance_interleaving_runs_on_one_compile() {
    let seed = Seed {
        systems_per_category: vec![2, 2, 1],
        feature_mask: 0b0101,
        conflict_mask: 0,
        nic_features: [true, false],
        needs_mask: 0b011,
        pins_mask: 0,
        required_roles: 0b001,
        ops: vec![0, 1, 2, 0], // check, optimize, enumerate(2), check
    };
    session_agrees_with_fresh_engines(&seed).unwrap();
}

// ---------------------------------------------------------------------------
// Adversarial query orderings over a sweep-style variant grid
// ---------------------------------------------------------------------------

/// All permutations of `tape`, in a stable order (recursive insertion).
fn permutations(tape: &[u8]) -> Vec<Vec<u8>> {
    if tape.len() <= 1 {
        return vec![tape.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in tape.iter().enumerate() {
        let mut rest = tape.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// The canonical tape: one op of every kind. Byte 11 decodes to
/// `Subset(2)` so the rule-subset query carries a non-trivial mask.
const CANONICAL_TAPE: [u8; 4] = [0, 1, 2, 11];

#[test]
fn every_ordering_of_the_canonical_tape_agrees() {
    // A sweep-style grid over scenario knobs (workload needs × required
    // roles × NIC features — the same axes a `sweep` block's choice
    // groups vary) crossed with *every* ordering of the canonical
    // four-op tape. Fail-fast: the first divergent ordering panics with
    // enough context to replay it.
    let orderings = permutations(&CANONICAL_TAPE);
    assert_eq!(orderings.len(), 24);
    for (needs_mask, required_roles) in [(0b011u8, 0b001u8), (0b001, 0b011), (0b111, 0b000)] {
        for nic_features in [[true, false], [false, false]] {
            for ops in &orderings {
                let seed = Seed {
                    systems_per_category: vec![2, 2, 1],
                    feature_mask: 0b0101,
                    conflict_mask: 0b0010,
                    nic_features,
                    needs_mask,
                    pins_mask: 0,
                    required_roles,
                    ops: ops.clone(),
                };
                if let Err(e) = session_agrees_with_fresh_engines(&seed) {
                    panic!(
                        "ordering {ops:?} diverged (needs={needs_mask:#05b} \
                         roles={required_roles:#05b} nic={nic_features:?}): {e}"
                    );
                }
            }
        }
    }
}

/// Random scenario × adversarially chosen tape ordering, with shrinking:
/// a failure minimizes both the scenario knobs and the permutation index.
#[derive(Debug, Clone)]
struct OrderingSeed {
    scenario: Seed,
    perm: u8,
}

impl_shrink_struct!(OrderingSeed { scenario, perm });

#[test]
fn random_variants_survive_adversarial_orderings() {
    let orderings = permutations(&CANONICAL_TAPE);
    prop::check(
        &Config::with_cases(24),
        |rng| OrderingSeed {
            scenario: gen_seed(rng),
            perm: rng.gen_range(0..24u8),
        },
        |seed| {
            let mut scenario = seed.scenario.clone();
            scenario.ops = orderings[usize::from(seed.perm) % orderings.len()].clone();
            session_agrees_with_fresh_engines(&scenario)
        },
    );
}
