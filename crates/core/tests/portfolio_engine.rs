//! Engine-level differential tests for the parallel portfolio backend.
//!
//! The same scenarios are compiled twice — once on the default sequential
//! session backend, once with an explicit 2-worker portfolio — and every
//! query verdict must agree. Backends are pinned via
//! [`Engine::with_backend`] rather than `NETARCH_THREADS` so the tests
//! never mutate process-global environment state (which races with
//! parallel test threads).

use netarch_core::prelude::*;
use netarch_core::query::OptimizedDesign;
use netarch_logic::{PortfolioOptions, SolveBackend, Speculation};

fn portfolio_backend(num_threads: usize) -> SolveBackend {
    SolveBackend::Portfolio(PortfolioOptions {
        num_threads,
        deterministic: true, // reproducible CI: fixed winner arbitration
        ..PortfolioOptions::default()
    })
}

/// Two monitoring systems (one needs a NIC feature), two NIC models, one
/// load balancer — the same shape as the engine's unit-test scenario.
fn monitoring_scenario() -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("detect_queue_length")
                .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
                .cost(400)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("PINGMESH", Category::Monitoring)
                .solves("detect_queue_length")
                .cost(100)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("ECMP", Category::LoadBalancer).solves("load_balancing").build(),
        )
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::strict("SIMON", "PINGMESH", Dimension::MonitoringQuality))
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("NIC_TS", HardwareKind::Nic)
                .feature("NIC_TIMESTAMPS")
                .cost(900)
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(HardwareSpec::builder("NIC_PLAIN", HardwareKind::Nic).cost(300).build())
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("detect_queue_length").build())
        .with_role(Category::Monitoring, RoleRule::Required)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC_TS"), HardwareId::new("NIC_PLAIN")],
            num_servers: 4,
            ..Inventory::default()
        })
}

fn capacity_scenario(peak_cores: u64) -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("MONITOR", Category::Monitoring)
                .solves("monitoring")
                .consumes(Resource::Cores, AmountExpr::constant(40))
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("SRV32", HardwareKind::Server)
                .numeric("cores", 32.0)
                .cost(5_000)
                .build(),
        )
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("monitoring").peak_cores(peak_cores).build())
        .with_inventory(Inventory {
            server_candidates: vec![HardwareId::new("SRV32")],
            num_servers: 1,
            ..Inventory::default()
        })
}

fn optimize_with(
    scenario: Scenario,
    backend: SolveBackend,
) -> Result<OptimizedDesign, Diagnosis> {
    let mut engine = Engine::with_backend(scenario, backend).unwrap();
    engine.optimize().unwrap()
}

#[test]
fn optimize_agrees_across_backends() {
    for objective in [
        Objective::MinimizeCost,
        Objective::MaximizeDimension(Dimension::MonitoringQuality),
    ] {
        let scenario = monitoring_scenario().with_objective(objective);
        let seq = optimize_with(scenario.clone(), SolveBackend::Sequential).expect("feasible");
        let par = optimize_with(scenario, portfolio_backend(2)).expect("feasible");
        assert_eq!(seq.design.selections, par.design.selections);
        assert_eq!(seq.design.hardware, par.design.hardware);
        assert_eq!(seq.levels, par.levels, "per-level penalties must agree");
    }
}

#[test]
fn infeasibility_diagnosis_agrees_across_backends() {
    let scenario = monitoring_scenario()
        .with_pin(Pin::Require(SystemId::new("SIMON")))
        .with_pin(Pin::Forbid(SystemId::new("SIMON")))
        .with_objective(Objective::MinimizeCost);
    let seq = optimize_with(scenario.clone(), SolveBackend::Sequential).expect_err("infeasible");
    let par = optimize_with(scenario, portfolio_backend(2)).expect_err("infeasible");
    let labels = |d: &Diagnosis| {
        let mut l: Vec<String> = d.conflicts.iter().map(|c| c.label.clone()).collect();
        l.sort();
        l
    };
    assert_eq!(labels(&seq), labels(&par));
}

#[test]
fn capacity_plans_agree_across_backends() {
    // `Speculation::Always` forces the capacity probes through the
    // portfolio so the probe-count assertion below holds on any machine;
    // under the default `Auto` policy a core-starved host may (correctly)
    // keep the probes on the warm session solver.
    let speculating = SolveBackend::Portfolio(PortfolioOptions {
        num_threads: 2,
        speculation: Speculation::Always,
        ..PortfolioOptions::default()
    });
    for peak in [100, 200, 500] {
        let mut seq_engine =
            Engine::with_backend(capacity_scenario(peak), SolveBackend::Sequential).unwrap();
        let mut par_engine =
            Engine::with_backend(capacity_scenario(peak), speculating.clone()).unwrap();
        let mut auto_engine =
            Engine::with_backend(capacity_scenario(peak), portfolio_backend(2)).unwrap();
        let seq = seq_engine.plan_capacity(64).unwrap().expect("feasible");
        let par = par_engine.plan_capacity(64).unwrap().expect("feasible");
        let auto = auto_engine.plan_capacity(64).unwrap().expect("feasible");
        assert_eq!(seq.servers_needed, par.servers_needed, "peak_cores={peak}");
        assert_eq!(seq.design.selections, par.design.selections);
        assert_eq!(seq.servers_needed, auto.servers_needed, "peak_cores={peak}");
        assert_eq!(seq.design.selections, auto.design.selections);
        // The forced engine actually used the portfolio for its probes.
        assert!(par_engine.stats().portfolio_solves > 0);
        assert_eq!(seq_engine.stats().portfolio_solves, 0);
    }
}

#[test]
fn racing_portfolio_agrees_too() {
    // Non-deterministic (racing, clause-sharing) mode: verdicts and
    // design-level answers are still unique optima, so they must agree
    // even though the winning worker varies.
    let backend = SolveBackend::Portfolio(PortfolioOptions {
        num_threads: 2,
        deterministic: false,
        ..PortfolioOptions::default()
    });
    let scenario = monitoring_scenario().with_objective(Objective::MinimizeCost);
    let seq = optimize_with(scenario.clone(), SolveBackend::Sequential).expect("feasible");
    let par = optimize_with(scenario, backend).expect("feasible");
    assert_eq!(seq.design.selections, par.design.selections);
    assert_eq!(seq.levels, par.levels);
}

#[test]
fn session_queries_survive_portfolio_probes() {
    // Interleave queries on one portfolio-backed engine: the session
    // solver still owns cores, enumeration, and memoization.
    let scenario = monitoring_scenario().with_objective(Objective::MinimizeCost);
    let mut engine = Engine::with_backend(scenario, portfolio_backend(2)).unwrap();
    assert!(engine.check().unwrap().design().is_some());
    let opt1 = engine.optimize().unwrap().expect("feasible");
    let classes = engine.enumerate_designs(16, false).unwrap();
    assert!(classes.len() >= 2, "{classes:?}");
    let opt2 = engine.optimize().unwrap().expect("feasible");
    assert_eq!(opt1.design.selections, opt2.design.selections);
    assert_eq!(engine.stats().recompiles, 0, "portfolio probes must not recompile");
    assert!(engine.stats().portfolio_solves > 0);
}
