//! Property tests for the content-addressed scenario fingerprint.
//!
//! The fingerprint is a cache key for compiled scenarios, so it owes its
//! callers three contracts:
//!
//! 1. **Order-insensitivity where the model is order-free.** Registering
//!    the same systems, hardware, edges, workloads, pins, params, and
//!    inventory candidates in a different order must not move the
//!    digest — otherwise identical tenants miss each other's sessions.
//! 2. **Single-atom sensitivity.** Any one-atom content edit — a
//!    component's cost, a hardware attribute, a workload demand, an
//!    ordering edge, the objective order — must move the digest;
//!    otherwise the cache serves answers for the wrong scenario.
//! 3. **Cross-run stability.** The digest is a pure function of
//!    content: no addresses, no per-process hasher salt, no map
//!    iteration accidents. Pinned by golden constants that any
//!    rebuild, rerun, or refactor must reproduce.

use netarch_core::fingerprint::fingerprint_scenario;
use netarch_core::prelude::*;
use netarch_rt::json::{FromJson, ToJson};
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, prop_assert_eq, Rng};

const CATEGORIES: [Category; 3] =
    [Category::Monitoring, Category::LoadBalancer, Category::Firewall];

const FEATURES: [&str; 3] = ["F0", "F1", "F2"];

/// Content description: everything the scenario contains, as data, so
/// the same content can be assembled in any insertion order.
#[derive(Debug, Clone)]
struct Seed {
    systems_per_category: Vec<u8>,
    cost_mask: u8,
    feature_mask: u8,
    edge_mask: u8,
    nic_count: u8,
    workload_count: u8,
    pin_mask: u8,
    param_count: u8,
    objective_flip: bool,
    shuffle_seed: u64,
}

impl_shrink_struct!(Seed {
    systems_per_category,
    cost_mask,
    feature_mask,
    edge_mask,
    nic_count,
    workload_count,
    pin_mask,
    param_count,
    objective_flip,
    shuffle_seed,
});

fn gen_seed(rng: &mut Rng) -> Seed {
    Seed {
        systems_per_category: gen_vec(rng, 3..=3, |r| r.gen_range(1..4u8)),
        cost_mask: rng.gen_range(0..=u8::MAX),
        feature_mask: rng.gen_range(0..=u8::MAX),
        edge_mask: rng.gen_range(0..=u8::MAX),
        nic_count: rng.gen_range(1..4u8),
        workload_count: rng.gen_range(1..4u8),
        pin_mask: rng.gen_range(0..=u8::MAX),
        param_count: rng.gen_range(0..4u8),
        objective_flip: rng.gen_bool(0.5),
        shuffle_seed: rng.next_u64(),
    }
}

fn system_ids(seed: &Seed) -> Vec<(SystemId, Category, usize)> {
    let mut out = Vec::new();
    let mut index = 0usize;
    for (i, c) in CATEGORIES.iter().enumerate() {
        let count = seed.systems_per_category.get(i).copied().unwrap_or(1).max(1);
        for k in 0..count {
            let id = SystemId::new(format!("{c}_{k}").to_uppercase().replace('-', "_"));
            out.push((id, c.clone(), index));
            index += 1;
        }
    }
    out
}

/// Assembles the scenario described by `seed`. When `shuffle` is true,
/// every order-free collection is inserted in a permuted order drawn
/// from `seed.shuffle_seed`; content is identical either way.
fn build_scenario(seed: &Seed, shuffle: bool) -> Scenario {
    let mut order_rng = Rng::seed_from_u64(seed.shuffle_seed);
    let mut permute = |n: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        if shuffle {
            order_rng.shuffle(&mut idx);
        }
        idx
    };

    let ids = system_ids(seed);
    let systems: Vec<SystemSpec> = ids
        .iter()
        .map(|(id, c, index)| {
            let mut b = SystemSpec::builder(id.clone(), c.clone())
                .solves(format!("cap_{c}"))
                .cost(100 + 10 * u64::from((seed.cost_mask >> (index % 8)) & 1));
            if (seed.feature_mask >> (index % 8)) & 1 == 1 {
                let f = FEATURES[index % FEATURES.len()];
                b = b.requires(format!("needs-{f}"), Condition::nics_have(f));
            }
            b.build()
        })
        .collect();
    let edges: Vec<OrderingEdge> = (1..ids.len())
        .filter(|i| (seed.edge_mask >> (i % 8)) & 1 == 1)
        .map(|i| {
            OrderingEdge::strict(ids[i - 1].0.clone(), ids[i].0.clone(), Dimension::Throughput)
        })
        .collect();
    let nics: Vec<HardwareSpec> = (0..seed.nic_count.max(1))
        .map(|k| {
            let mut b = HardwareSpec::builder(format!("NIC{k}"), HardwareKind::Nic)
                .cost(500 + u64::from(k));
            if k % 2 == 0 {
                b = b.feature(FEATURES[usize::from(k) % FEATURES.len()]);
            }
            b.numeric("ports", f64::from(k) + 1.0).build()
        })
        .collect();

    let mut catalog = Catalog::new();
    for i in permute(systems.len()) {
        catalog.add_system(systems[i].clone()).unwrap();
    }
    for i in permute(nics.len()) {
        catalog.add_hardware(nics[i].clone()).unwrap();
    }
    for i in permute(edges.len()) {
        catalog.add_ordering(edges[i].clone()).unwrap();
    }

    let workloads: Vec<Workload> = (0..seed.workload_count.max(1))
        .map(|w| {
            Workload::builder(format!("app{w}"))
                .needs(format!("cap_{}", CATEGORIES[usize::from(w) % CATEGORIES.len()]))
                .peak_bandwidth(10 * (u64::from(w) + 1))
                .build()
        })
        .collect();
    let pins: Vec<Pin> = ids
        .iter()
        .filter(|(_, _, index)| (seed.pin_mask >> (index % 8)) & 1 == 1 && index % 3 == 0)
        .map(|(id, _, index)| {
            if index % 2 == 0 {
                Pin::Require(id.clone())
            } else {
                Pin::Forbid(id.clone())
            }
        })
        .collect();
    let params: Vec<(String, f64)> = (0..seed.param_count)
        .map(|p| (format!("param_{p}"), f64::from(p) * 2.5))
        .collect();
    let candidates: Vec<HardwareId> =
        (0..seed.nic_count.max(1)).map(|k| HardwareId::new(format!("NIC{k}"))).collect();

    let mut objectives = vec![Objective::MinimizeCost, Objective::PreferCapability("cap_monitoring".into())];
    if seed.objective_flip {
        objectives.reverse();
    }

    let mut scenario = Scenario::new(catalog);
    for i in permute(workloads.len()) {
        scenario = scenario.with_workload(workloads[i].clone());
    }
    for i in permute(pins.len()) {
        scenario = scenario.with_pin(pins[i].clone());
    }
    for i in permute(params.len()) {
        let (name, value) = &params[i];
        scenario = scenario.with_param(name.clone(), *value);
    }
    let mut nic_candidates = Vec::new();
    for i in permute(candidates.len()) {
        nic_candidates.push(candidates[i].clone());
    }
    // Objectives are ORDER-SENSITIVE (lexicographic stack): always
    // inserted in seed order, never permuted.
    for objective in objectives.drain(..) {
        scenario = scenario.with_objective(objective);
    }
    scenario.with_inventory(Inventory {
        nic_candidates,
        num_servers: 4,
        ..Inventory::default()
    })
}

#[test]
fn insertion_order_never_moves_the_fingerprint() {
    prop::check(&Config::with_cases(64), gen_seed, |seed| {
        let plain = fingerprint_scenario(&build_scenario(seed, false));
        let shuffled = fingerprint_scenario(&build_scenario(seed, true));
        prop_assert_eq!(plain, shuffled, "insertion order leaked into the fingerprint");
        Ok(())
    });
}

#[test]
fn json_roundtrip_preserves_the_fingerprint() {
    // Serialize → parse → fingerprint: any dependence on in-memory
    // representation (as opposed to content) would break here.
    prop::check(&Config::with_cases(32), gen_seed, |seed| {
        let scenario = build_scenario(seed, true);
        let json = scenario.to_json();
        let reparsed = Scenario::from_json(&json).expect("scenario roundtrips");
        prop_assert_eq!(
            fingerprint_scenario(&scenario),
            fingerprint_scenario(&reparsed),
            "JSON roundtrip moved the fingerprint"
        );
        Ok(())
    });
}

/// One atomic content edit.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    SystemCost,
    HardwareAttr,
    WorkloadDemand,
    OrderingEdge,
    ObjectiveOrder,
    InventorySize,
    Param,
    Budget,
}

const MUTATIONS: [Mutation; 8] = [
    Mutation::SystemCost,
    Mutation::HardwareAttr,
    Mutation::WorkloadDemand,
    Mutation::OrderingEdge,
    Mutation::ObjectiveOrder,
    Mutation::InventorySize,
    Mutation::Param,
    Mutation::Budget,
];

/// Applies the mutation; returns whether it touches the catalog
/// component (vs only the context component).
fn apply_mutation(scenario: &mut Scenario, mutation: Mutation) -> bool {
    match mutation {
        Mutation::SystemCost => {
            let id = scenario.catalog.systems().next().unwrap().id.clone();
            let mut spec = scenario.catalog.system(&id).unwrap().clone();
            spec.cost_usd += 1;
            scenario
                .catalog
                .apply(netarch_core::catalog::CatalogDelta::update_system(spec))
                .unwrap();
            true
        }
        Mutation::HardwareAttr => {
            let mut spec = scenario.catalog.hardware_specs().next().unwrap().clone();
            let ports = spec.numeric("ports").unwrap_or(0.0);
            spec.numeric.insert("ports".to_string(), ports + 1.0);
            scenario
                .catalog
                .apply(netarch_core::catalog::CatalogDelta {
                    upsert_hardware: vec![spec],
                    ..Default::default()
                })
                .unwrap();
            true
        }
        Mutation::WorkloadDemand => {
            scenario.workloads[0].peak_bandwidth_gbps += 1;
            false
        }
        Mutation::OrderingEdge => {
            let ids: Vec<SystemId> = scenario.catalog.systems().map(|s| s.id.clone()).collect();
            let a = ids.first().unwrap().clone();
            let b = ids.last().unwrap().clone();
            scenario
                .catalog
                .add_ordering(OrderingEdge::strict(a, b, Dimension::Latency))
                .unwrap();
            true
        }
        Mutation::ObjectiveOrder => {
            scenario.objectives.swap(0, 1);
            false
        }
        Mutation::InventorySize => {
            scenario.inventory.num_servers += 1;
            false
        }
        Mutation::Param => {
            let count = scenario.params.len();
            scenario.params.insert(format!("mutant_{count}").into(), 42.0);
            false
        }
        Mutation::Budget => {
            scenario.budget_usd = Some(scenario.budget_usd.unwrap_or(0) + 1);
            false
        }
    }
}

#[test]
fn every_single_atom_mutation_moves_the_fingerprint() {
    prop::check(&Config::with_cases(48), gen_seed, |seed| {
        let baseline = build_scenario(seed, false);
        let base_fp = fingerprint_scenario(&baseline);
        for &mutation in &MUTATIONS {
            let mut mutated = baseline.clone();
            let touches_catalog = apply_mutation(&mut mutated, mutation);
            let fp = fingerprint_scenario(&mutated);
            prop_assert!(
                fp.full != base_fp.full,
                "mutation {mutation:?} left the full fingerprint unchanged"
            );
            if touches_catalog {
                prop_assert!(
                    fp.catalog != base_fp.catalog,
                    "catalog mutation {mutation:?} missed the catalog component"
                );
                prop_assert_eq!(
                    fp.context,
                    base_fp.context,
                    "catalog mutation {mutation:?} leaked into the context component"
                );
            } else {
                prop_assert_eq!(
                    fp.catalog,
                    base_fp.catalog,
                    "context mutation {mutation:?} leaked into the catalog component"
                );
                prop_assert!(
                    fp.context != base_fp.context,
                    "context mutation {mutation:?} missed the context component"
                );
            }
        }
        Ok(())
    });
}

/// Cross-run, cross-build stability: golden digests of a fixed
/// scenario. If these move, every deployed cache key moves with them —
/// an intentional format change must update the constants (and accept
/// one fleet-wide cold restart); an unintentional change is a leak of
/// process state into the digest.
#[test]
fn golden_fingerprints_are_stable_across_runs() {
    let seed = Seed {
        systems_per_category: vec![2, 1, 2],
        cost_mask: 0b1010_0101,
        feature_mask: 0b0110_0011,
        edge_mask: 0b0000_1101,
        nic_count: 2,
        workload_count: 2,
        pin_mask: 0b0100_1001,
        param_count: 2,
        objective_flip: false,
        shuffle_seed: 0x5EED,
    };
    let fp = fingerprint_scenario(&build_scenario(&seed, false));
    assert_eq!(
        format!("{}", fp.full),
        "f801d08a07244711c54e795745641152",
        "full fingerprint moved — content digest is no longer stable"
    );
    assert_eq!(
        format!("{}", fp.catalog),
        "98f70daa7572ce93027f03ae9be0224f",
        "catalog fingerprint moved"
    );
    assert_eq!(
        format!("{}", fp.context),
        "56728b3543c8a64758fa87531eb7e2c6",
        "context fingerprint moved"
    );
}
