//! Round-trip tests for the interchange format over every core data
//! type: serialize → parse must be the identity, including on randomly
//! generated condition trees and preference orders.

use netarch_core::catalog::CatalogDelta;
use netarch_core::ordering::{OrderingEdge, PreferenceOrder};
use netarch_core::prelude::*;
use netarch_rt::json;
use netarch_rt::prop::{self, gen_vec, Config, Shrink};
use netarch_rt::{prop_assert_eq, Rng};

fn roundtrip<T: json::ToJson + json::FromJson>(value: &T) -> T {
    json::from_str(&json::to_string(value)).expect("parses back")
}

/// Shrinkable wrapper over a random condition tree.
#[derive(Clone, Debug)]
struct Cond(Condition);

fn gen_condition_depth(rng: &mut Rng, depth: u32) -> Condition {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..8u32) {
            0 => Condition::True,
            1 => Condition::False,
            2 => Condition::system(format!("S{}", rng.gen_range(0..9u32))),
            3 => Condition::CategoryFilled(Category::Monitoring),
            4 => Condition::nics_have(format!("F{}", rng.gen_range(0..4u32))),
            5 => Condition::switches_have("INT"),
            6 => Condition::workload(format!("p{}", rng.gen_range(0..4u32))),
            _ => Condition::param(
                format!("x{}", rng.gen_range(0..3u32)),
                *rng.choose(&[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq]).unwrap(),
                (rng.gen_range(-1_000i64..1_000) as f64) / 8.0,
            ),
        };
    }
    let d = depth - 1;
    match rng.gen_range(0..3u32) {
        0 => Condition::not(gen_condition_depth(rng, d)),
        1 => Condition::all(gen_vec(rng, 1..=3, |r| gen_condition_depth(r, d))),
        _ => Condition::any(gen_vec(rng, 1..=3, |r| gen_condition_depth(r, d))),
    }
}

impl Shrink for Cond {
    fn shrink(&self) -> Vec<Cond> {
        match &self.0 {
            Condition::Not(inner) => vec![Cond((**inner).clone())],
            Condition::All(cs) | Condition::Any(cs) => {
                cs.iter().map(|c| Cond(c.clone())).collect()
            }
            Condition::True => Vec::new(),
            _ => vec![Cond(Condition::True)],
        }
    }
}

#[test]
fn random_condition_trees_roundtrip() {
    prop::check(
        &Config::with_cases(192),
        |rng| Cond(gen_condition_depth(rng, 4)),
        |Cond(c)| {
            prop_assert_eq!(&roundtrip(c), c);
            Ok(())
        },
    );
}

#[test]
fn random_preference_orders_roundtrip() {
    prop::check(
        &Config::with_cases(128),
        |rng| gen_vec(rng, 0..=10, |r| (r.gen_range(0..6u32), r.gen_range(0..6u32), r.gen_bool(0.5))),
        |edges| {
            let mut order = PreferenceOrder::new();
            for &(a, b, strict) in edges {
                let (a, b) = (SystemId::new(format!("S{a}")), SystemId::new(format!("S{b}")));
                let edge = if strict {
                    OrderingEdge::strict(a, b, Dimension::Throughput)
                } else {
                    OrderingEdge::equal(a, b, Dimension::Isolation)
                };
                order.add(edge.when(Condition::param("speed", CmpOp::Ge, 100.0)).cited("test"));
            }
            let back: PreferenceOrder = roundtrip(&order);
            prop_assert_eq!(back.edges(), order.edges());
            Ok(())
        },
    );
}

#[test]
fn workload_with_every_field_roundtrips() {
    let w = Workload::builder("inference_app")
        .name("Inference App")
        .property("dc_flows")
        .property("short_flows")
        .deployed_at(2..7)
        .peak_cores(2_800)
        .peak_bandwidth(30)
        .num_flows(50_000)
        .needs("load_balancing")
        .performance_bound(Dimension::LoadBalancingQuality, "PACKET_SPRAY")
        .build();
    assert_eq!(roundtrip(&w), w);
}

fn sample_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("monitoring")
                .requires("needs-agents", Condition::param("cores", CmpOp::Ge, 8.0))
                .consumes(Resource::Cores, AmountExpr::scaled("num_flows", 0.001))
                .cost(500)
                .notes("host-stack telemetry")
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("LETFLOW", Category::LoadBalancer)
                .solves("load_balancing")
                .conflicts_with("CONGA")
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("CONGA", Category::LoadBalancer).solves("load_balancing").build(),
        )
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("TOFINO", HardwareKind::Switch)
                .model_name("Intel Tofino 2")
                .feature("P4")
                .numeric("stages", 20.0)
                .cost(14_000)
                .build(),
        )
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::strict(
            SystemId::new("SIMON"),
            SystemId::new("LETFLOW"),
            Dimension::MonitoringQuality,
        ))
        .unwrap();
    catalog
}

#[test]
fn catalog_with_systems_hardware_and_order_roundtrips() {
    let catalog = sample_catalog();
    let back = roundtrip(&catalog);
    // Catalog has no PartialEq; textual equality of the canonical form
    // is the identity we care about for interchange.
    assert_eq!(json::to_string(&back), json::to_string(&catalog));
    assert_eq!(back.num_systems(), 3);
    assert_eq!(back.num_hardware(), 1);
    assert_eq!(back.order().edges().len(), 1);
}

#[test]
fn component_specs_roundtrip() {
    let catalog = sample_catalog();
    let system = catalog.system(&SystemId::new("SIMON")).unwrap();
    assert_eq!(&roundtrip(system), system);
    let hardware = catalog.hardware(&HardwareId::new("TOFINO")).unwrap();
    assert_eq!(&roundtrip(hardware), hardware);
}

#[test]
fn catalog_delta_roundtrips() {
    let delta = CatalogDelta::update_system(
        SystemSpec::builder("SIMON", Category::Monitoring).cost(900).build(),
    );
    let back = roundtrip(&delta);
    let mut catalog = sample_catalog();
    catalog.apply(back).unwrap();
    assert_eq!(catalog.system(&SystemId::new("SIMON")).unwrap().cost_usd, 900);
}

#[test]
fn full_scenario_roundtrips() {
    let scenario = Scenario::new(sample_catalog())
        .with_workload(Workload::builder("app").num_flows(10_000).build())
        .with_param("link_speed_gbps", 100.0)
        .with_role(Category::Monitoring, RoleRule::Required)
        .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality))
        .with_objective(Objective::MinimizeCost)
        .with_pin(Pin::Require(SystemId::new("SIMON")))
        .with_pin(Pin::Forbid(SystemId::new("CONGA")))
        .with_inventory(Inventory {
            switch_candidates: vec![HardwareId::new("TOFINO")],
            num_switches: 2,
            ..Inventory::default()
        })
        .with_budget(1_000_000);
    let back = roundtrip(&scenario);
    assert_eq!(json::to_string(&back.catalog), json::to_string(&scenario.catalog));
    assert_eq!(back.workloads, scenario.workloads);
    assert_eq!(back.inventory, scenario.inventory);
    assert_eq!(back.params, scenario.params);
    assert_eq!(back.roles, scenario.roles);
    assert_eq!(back.objectives, scenario.objectives);
    assert_eq!(back.pins, scenario.pins);
    assert_eq!(back.budget_usd, scenario.budget_usd);
}

#[test]
fn design_roundtrips_with_resource_usage() {
    let scenario = Scenario::new(sample_catalog())
        .with_workload(Workload::builder("app").num_flows(10_000).peak_cores(64).build());
    let design = netarch_core::solution::Design::from_model(
        &scenario,
        |id| id.as_str() == "SIMON",
        |_| false,
    );
    assert_eq!(roundtrip(&design), design);
}
