//! Differential property sweep for the three parallel query loops at the
//! engine level: racing MaxSAT descent (`optimize`), cube-and-conquer
//! projected enumeration (`enumerate_designs`), and speculative capacity
//! binary search (`plan_capacity`).
//!
//! Each query runs on the sequential backend as the oracle and on 1-, 2-,
//! and 4-seat portfolio backends; answers must be identical — same
//! selections, same per-level penalties, same design-class *sets* (the
//! cube merge may reorder classes but never add or drop one), same fleet
//! sizes. Deterministic portfolio runs must also be bit-identical across
//! repeats, merged enumeration order included.

use netarch_core::prelude::*;
use netarch_core::solution::Design;
use netarch_logic::{PortfolioOptions, SolveBackend, Speculation};

fn portfolio_backend(num_threads: usize, deterministic: bool) -> SolveBackend {
    SolveBackend::Portfolio(PortfolioOptions {
        num_threads,
        deterministic,
        ..PortfolioOptions::default()
    })
}

/// A portfolio backend with the speculative capacity pass forced on, so
/// the pass itself is exercised even on machines whose core count makes
/// the `Auto` heuristic (correctly) skip it.
fn speculating_backend(num_threads: usize, deterministic: bool) -> SolveBackend {
    SolveBackend::Portfolio(PortfolioOptions {
        num_threads,
        deterministic,
        speculation: Speculation::Always,
        ..PortfolioOptions::default()
    })
}

/// Monitoring scenario with enough slack that several design classes
/// exist: two interchangeable monitors, an optional load balancer role,
/// and two NIC models.
fn monitoring_scenario() -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("detect_queue_length")
                .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
                .cost(400)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("PINGMESH", Category::Monitoring)
                .solves("detect_queue_length")
                .cost(100)
                .build(),
        )
        .unwrap();
    catalog
        .add_system(
            SystemSpec::builder("ECMP", Category::LoadBalancer).solves("load_balancing").build(),
        )
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::strict("SIMON", "PINGMESH", Dimension::MonitoringQuality))
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("NIC_TS", HardwareKind::Nic)
                .feature("NIC_TIMESTAMPS")
                .cost(900)
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(HardwareSpec::builder("NIC_PLAIN", HardwareKind::Nic).cost(300).build())
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("detect_queue_length").build())
        .with_role(Category::Monitoring, RoleRule::Required)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC_TS"), HardwareId::new("NIC_PLAIN")],
            num_servers: 4,
            ..Inventory::default()
        })
}

fn capacity_scenario(peak_cores: u64) -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("MONITOR", Category::Monitoring)
                .solves("monitoring")
                .consumes(Resource::Cores, AmountExpr::constant(40))
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("SRV32", HardwareKind::Server)
                .numeric("cores", 32.0)
                .cost(5_000)
                .build(),
        )
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("monitoring").peak_cores(peak_cores).build())
        .with_inventory(Inventory {
            server_candidates: vec![HardwareId::new("SRV32")],
            num_servers: 1,
            ..Inventory::default()
        })
}

/// Design classes as a backend-order-independent sorted set. Hardware is
/// part of a class's identity only when it was projected on
/// (`include_hardware`); otherwise the hardware in a class is an
/// incidental witness choice and must not enter the comparison.
fn design_set(designs: &[Design], include_hardware: bool) -> Vec<String> {
    let mut keys: Vec<String> = designs
        .iter()
        .map(|d| {
            if include_hardware {
                format!("{:?}|{:?}", d.selections, d.hardware)
            } else {
                format!("{:?}", d.selections)
            }
        })
        .collect();
    keys.sort();
    keys
}

#[test]
fn racing_descent_matches_sequential_optimize() {
    let scenario = monitoring_scenario().with_objective(Objective::MinimizeCost);
    let mut seq = Engine::with_backend(scenario.clone(), SolveBackend::Sequential).unwrap();
    let expected = seq.optimize().unwrap().expect("feasible");
    for threads in [1usize, 2, 4] {
        for deterministic in [true, false] {
            let mut engine = Engine::with_backend(
                scenario.clone(),
                portfolio_backend(threads, deterministic),
            )
            .unwrap();
            let got = engine.optimize().unwrap().expect("feasible");
            let label = format!("threads={threads} det={deterministic}");
            assert_eq!(expected.design.selections, got.design.selections, "{label}");
            assert_eq!(expected.design.hardware, got.design.hardware, "{label}");
            assert_eq!(expected.levels, got.levels, "{label}: per-level penalties disagree");
        }
    }
}

#[test]
fn cube_enumeration_matches_sequential_design_classes() {
    for include_hardware in [false, true] {
        let scenario = monitoring_scenario();
        let mut seq = Engine::with_backend(scenario.clone(), SolveBackend::Sequential).unwrap();
        let expected =
            design_set(&seq.enumerate_designs(64, include_hardware).unwrap(), include_hardware);
        assert!(expected.len() >= 2, "scenario must admit several classes: {expected:?}");
        for threads in [1usize, 2, 4] {
            for deterministic in [true, false] {
                let mut engine = Engine::with_backend(
                    scenario.clone(),
                    portfolio_backend(threads, deterministic),
                )
                .unwrap();
                let got = design_set(
                    &engine.enumerate_designs(64, include_hardware).unwrap(),
                    include_hardware,
                );
                assert_eq!(
                    expected, got,
                    "threads={threads} det={deterministic} hw={include_hardware}: \
                     design-class sets disagree"
                );
            }
        }
    }
}

#[test]
fn merged_enumeration_order_is_deterministic() {
    // The cube merge rule (cube-index order, discovery order within a
    // cube) must make the *ordered* result reproducible run-to-run under
    // the deterministic backend — not just the set.
    let run = || {
        let mut engine =
            Engine::with_backend(monitoring_scenario(), portfolio_backend(4, true)).unwrap();
        engine.enumerate_designs(64, true).unwrap()
    };
    let first = run();
    assert!(first.len() >= 2);
    for _ in 0..2 {
        assert_eq!(first, run(), "merged enumeration order drifted between runs");
    }
}

#[test]
fn speculative_capacity_search_matches_sequential_plans() {
    for peak in [100u64, 200, 500, 1000] {
        let mut seq =
            Engine::with_backend(capacity_scenario(peak), SolveBackend::Sequential).unwrap();
        let expected = seq.plan_capacity(64).unwrap().expect("feasible");
        for threads in [1usize, 2, 4] {
            for deterministic in [true, false] {
                // Forced speculation exercises the probe-pool pass itself;
                // the default backend exercises whatever the Auto heuristic
                // chooses on this machine. Both must answer identically.
                for backend in [
                    speculating_backend(threads, deterministic),
                    portfolio_backend(threads, deterministic),
                ] {
                    let mut engine =
                        Engine::with_backend(capacity_scenario(peak), backend).unwrap();
                    let got = engine.plan_capacity(64).unwrap().expect("feasible");
                    assert_eq!(
                        expected.servers_needed, got.servers_needed,
                        "peak={peak} threads={threads} det={deterministic}"
                    );
                    assert_eq!(expected.design.selections, got.design.selections);
                }
            }
        }
    }
}

#[test]
fn speculation_policy_never_changes_the_answer() {
    // Auto, Always, and Never are pure scheduling policies: the plan —
    // fleet size and design — must be invariant across all three.
    let mut oracle =
        Engine::with_backend(capacity_scenario(800), SolveBackend::Sequential).unwrap();
    let expected = oracle.plan_capacity(64).unwrap().expect("feasible");
    for speculation in [Speculation::Auto, Speculation::Always, Speculation::Never] {
        let backend = SolveBackend::Portfolio(PortfolioOptions {
            num_threads: 4,
            speculation,
            ..PortfolioOptions::default()
        });
        let mut engine = Engine::with_backend(capacity_scenario(800), backend).unwrap();
        let got = engine.plan_capacity(64).unwrap().expect("feasible");
        assert_eq!(expected.servers_needed, got.servers_needed, "{speculation:?}");
        assert_eq!(expected.design.selections, got.design.selections, "{speculation:?}");
    }
}

#[test]
fn parallel_loops_fold_worker_effort_into_engine_stats() {
    // Workers spawned by the parallel loops do real solving; their effort
    // must show up in the engine's aggregate statistics rather than
    // silently vanishing.
    let mut engine =
        Engine::with_backend(monitoring_scenario(), portfolio_backend(4, true)).unwrap();
    engine.optimize().unwrap().expect("feasible");
    engine.enumerate_designs(64, false).unwrap();
    let stats = engine.stats();
    assert!(stats.portfolio_solves > 0, "parallel loops must be counted: {stats:?}");
    assert!(stats.session_solves > 0, "session totals must include worker solves: {stats:?}");
}
