//! System and hardware encodings — the paper's Listings 1 and 2.
//!
//! A [`SystemSpec`] captures a deployable software system at the paper's
//! "broad but shallow" abstraction level (§3.1): what it *solves*, what it
//! *requires* of the rest of the architecture, what it *conflicts* with,
//! which *resources* it consumes, and how it sits in the preference partial
//! order (the latter lives in [`crate::ordering`]). No performance numbers,
//! no temporal behavior (§3.2).
//!
//! A [`HardwareSpec`] mirrors the auto-generated encodings of Listing 1:
//! a model name plus feature flags and numeric attributes.

use crate::condition::{AmountExpr, Condition};
use crate::types::{Capability, Category, Feature, HardwareId, HardwareKind, Resource, SystemId};
use netarch_rt::impl_json_struct;
use std::collections::{BTreeMap, BTreeSet};

/// A named deployment requirement with provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct Requirement {
    /// Short human-readable rule name (used in diagnoses).
    pub label: String,
    /// The condition that must hold for the system to be deployable.
    pub condition: Condition,
    /// Where the rule came from (paper, datasheet, deployment experience).
    pub citation: Option<String>,
}

impl_json_struct!(Requirement { label, condition, citation });

impl Requirement {
    /// Creates a requirement.
    pub fn new(label: impl Into<String>, condition: Condition) -> Requirement {
        Requirement { label: label.into(), condition, citation: None }
    }

    /// Attaches a citation.
    pub fn cited(mut self, citation: impl Into<String>) -> Requirement {
        self.citation = Some(citation.into());
        self
    }
}

/// A resource demand: deploying the system consumes `amount` of `resource`.
#[derive(Clone, PartialEq, Debug)]
pub struct ResourceDemand {
    /// The contended resource.
    pub resource: Resource,
    /// How much is consumed (may scale with scenario parameters).
    pub amount: AmountExpr,
}

impl_json_struct!(ResourceDemand { resource, amount });

/// Encoding of one deployable system (paper Listing 2).
#[derive(Clone, PartialEq, Debug)]
pub struct SystemSpec {
    /// Unique identifier.
    pub id: SystemId,
    /// Human-readable name.
    pub name: String,
    /// The role this system fills.
    pub category: Category,
    /// Objectives the system can achieve (`solves = [...]`).
    pub solves: Vec<Capability>,
    /// Deployment requirements (`constraints = And(...)`).
    pub requires: Vec<Requirement>,
    /// Systems that cannot coexist with this one.
    pub conflicts: Vec<SystemId>,
    /// Resources consumed when deployed.
    pub resources: Vec<ResourceDemand>,
    /// Abstract features this system contributes to the deployment (e.g.
    /// a virtual switch offloading to SmartNICs provides
    /// `"TUNNEL_OFFLOAD"`), visible to other systems' conditions.
    pub provides: Vec<Feature>,
    /// Per-deployment monetary cost (licensing/engineering), USD.
    pub cost_usd: u64,
    /// Free-form notes (not used in reasoning).
    pub notes: Option<String>,
}

impl_json_struct!(SystemSpec {
    id,
    name,
    category,
    solves,
    requires,
    conflicts,
    resources,
    provides,
    cost_usd,
    notes,
});

impl SystemSpec {
    /// Starts a builder for the given id/category.
    pub fn builder(id: impl Into<SystemId>, category: Category) -> SystemSpecBuilder {
        let id = id.into();
        SystemSpecBuilder {
            spec: SystemSpec {
                name: id.as_str().to_string(),
                id,
                category,
                solves: Vec::new(),
                requires: Vec::new(),
                conflicts: Vec::new(),
                resources: Vec::new(),
                provides: Vec::new(),
                cost_usd: 0,
                notes: None,
            },
        }
    }

    /// True when the system claims to solve `capability`.
    pub fn solves(&self, capability: &Capability) -> bool {
        self.solves.contains(capability)
    }
}

/// Fluent builder for [`SystemSpec`] (mirrors the paper's
/// `System(solves = …, constraints = …)` constructor style).
pub struct SystemSpecBuilder {
    spec: SystemSpec,
}

impl SystemSpecBuilder {
    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Adds a solved capability.
    pub fn solves(mut self, capability: impl Into<Capability>) -> Self {
        self.spec.solves.push(capability.into());
        self
    }

    /// Adds a named requirement.
    pub fn requires(mut self, label: impl Into<String>, condition: Condition) -> Self {
        self.spec.requires.push(Requirement::new(label, condition));
        self
    }

    /// Adds a cited requirement.
    pub fn requires_cited(
        mut self,
        label: impl Into<String>,
        condition: Condition,
        citation: impl Into<String>,
    ) -> Self {
        self.spec
            .requires
            .push(Requirement::new(label, condition).cited(citation));
        self
    }

    /// Declares a conflicting system.
    pub fn conflicts_with(mut self, other: impl Into<SystemId>) -> Self {
        self.spec.conflicts.push(other.into());
        self
    }

    /// Adds a resource demand.
    pub fn consumes(mut self, resource: Resource, amount: AmountExpr) -> Self {
        self.spec.resources.push(ResourceDemand { resource, amount });
        self
    }

    /// Declares a provided feature.
    pub fn provides(mut self, feature: impl Into<Feature>) -> Self {
        self.spec.provides.push(feature.into());
        self
    }

    /// Sets the per-deployment cost.
    pub fn cost(mut self, usd: u64) -> Self {
        self.spec.cost_usd = usd;
        self
    }

    /// Attaches free-form notes.
    pub fn notes(mut self, notes: impl Into<String>) -> Self {
        self.spec.notes = Some(notes.into());
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SystemSpec {
        self.spec
    }
}

/// Encoding of one hardware model (paper Listing 1).
#[derive(Clone, PartialEq, Debug)]
pub struct HardwareSpec {
    /// Unique identifier.
    pub id: HardwareId,
    /// Vendor-facing model name, e.g. `"Cisco Catalyst 9500-40X"`.
    pub model_name: String,
    /// Which inventory slot this model competes for.
    pub kind: HardwareKind,
    /// Boolean feature flags (`"ECN"`, `"NIC_TIMESTAMPS"`, `"P4"`, …).
    pub features: BTreeSet<Feature>,
    /// Numeric attributes keyed by canonical names
    /// (`"port_bandwidth_gbps"`, `"ports"`, `"memory_gb"`,
    /// `"max_power_w"`, `"mac_table_entries"`, `"p4_stages"`, `"cores"`).
    pub numeric: BTreeMap<String, f64>,
    /// Unit cost, USD.
    pub cost_usd: u64,
}

impl_json_struct!(HardwareSpec {
    id,
    model_name,
    kind,
    features,
    numeric,
    cost_usd,
});

impl HardwareSpec {
    /// Starts a builder.
    pub fn builder(id: impl Into<HardwareId>, kind: HardwareKind) -> HardwareSpecBuilder {
        let id = id.into();
        HardwareSpecBuilder {
            spec: HardwareSpec {
                model_name: id.as_str().to_string(),
                id,
                kind,
                features: BTreeSet::new(),
                numeric: BTreeMap::new(),
                cost_usd: 0,
            },
        }
    }

    /// Whether the model carries a feature flag.
    pub fn has_feature(&self, feature: &Feature) -> bool {
        self.features.contains(feature)
    }

    /// A numeric attribute, if present.
    pub fn numeric(&self, key: &str) -> Option<f64> {
        self.numeric.get(key).copied()
    }

    /// Capacity this model contributes per unit for a resource, derived
    /// from its numeric attributes.
    pub fn capacity(&self, resource: &Resource) -> u64 {
        let key = match resource {
            Resource::Cores => "cores",
            Resource::ServerMemoryGb => "memory_gb",
            Resource::SwitchMemoryMb => "memory_mb",
            Resource::P4Stages => "p4_stages",
            Resource::SmartNicCapacity => "smartnic_capacity",
            Resource::QosClasses => "qos_classes",
            Resource::Custom(name) => name.as_str(),
        };
        self.numeric(key).map_or(0, |v| if v <= 0.0 { 0 } else { v as u64 })
    }
}

/// Fluent builder for [`HardwareSpec`].
pub struct HardwareSpecBuilder {
    spec: HardwareSpec,
}

impl HardwareSpecBuilder {
    /// Sets the vendor model name.
    pub fn model_name(mut self, name: impl Into<String>) -> Self {
        self.spec.model_name = name.into();
        self
    }

    /// Adds a feature flag.
    pub fn feature(mut self, feature: impl Into<Feature>) -> Self {
        self.spec.features.insert(feature.into());
        self
    }

    /// Sets a numeric attribute.
    pub fn numeric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.spec.numeric.insert(key.into(), value);
        self
    }

    /// Sets the unit cost.
    pub fn cost(mut self, usd: u64) -> Self {
        self.spec.cost_usd = usd;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> HardwareSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CmpOp;

    /// The paper's Listing 2, transliterated.
    fn simon() -> SystemSpec {
        SystemSpec::builder("SIMON", Category::Monitoring)
            .name("SIMON")
            .solves("capture_delays")
            .solves("detect_queue_length")
            .requires_cited(
                "simon-needs-nic-timestamps",
                Condition::nics_have("NIC_TIMESTAMPS"),
                "Geng et al., NSDI 2019",
            )
            .consumes(Resource::Cores, AmountExpr::scaled("num_flows", 0.001))
            .build()
    }

    #[test]
    fn listing_2_transliteration() {
        let s = simon();
        assert_eq!(s.id.as_str(), "SIMON");
        assert!(s.solves(&Capability::new("capture_delays")));
        assert!(s.solves(&Capability::new("detect_queue_length")));
        assert!(!s.solves(&Capability::new("firewalling")));
        assert_eq!(s.requires.len(), 1);
        assert_eq!(s.requires[0].condition, Condition::nics_have("NIC_TIMESTAMPS"));
        assert!(s.requires[0].citation.as_deref().unwrap().contains("NSDI"));
        assert_eq!(s.resources.len(), 1);
    }

    /// The paper's Listing 1, transliterated.
    fn catalyst_9500_40x() -> HardwareSpec {
        HardwareSpec::builder("CISCO_CATALYST_9500_40X", HardwareKind::Switch)
            .model_name("Cisco Catalyst 9500-40X")
            .numeric("port_bandwidth_gbps", 10.0)
            .numeric("max_power_w", 950.0)
            .numeric("ports", 40.0)
            .numeric("memory_gb", 16.0)
            .numeric("mac_table_entries", 64_000.0)
            .feature("ECN")
            .cost(24_000)
            .build()
    }

    #[test]
    fn listing_1_transliteration() {
        let hw = catalyst_9500_40x();
        assert_eq!(hw.model_name, "Cisco Catalyst 9500-40X");
        assert_eq!(hw.numeric("port_bandwidth_gbps"), Some(10.0));
        assert_eq!(hw.numeric("ports"), Some(40.0));
        assert!(hw.has_feature(&Feature::new("ECN")));
        assert!(!hw.has_feature(&Feature::new("P4")));
        assert_eq!(hw.numeric("p4_stages"), None); // "N/A" in the listing
    }

    #[test]
    fn capacity_derivation() {
        let server = HardwareSpec::builder("SRV", HardwareKind::Server)
            .numeric("cores", 64.0)
            .numeric("memory_gb", 512.0)
            .build();
        assert_eq!(server.capacity(&Resource::Cores), 64);
        assert_eq!(server.capacity(&Resource::ServerMemoryGb), 512);
        assert_eq!(server.capacity(&Resource::P4Stages), 0);
    }

    #[test]
    fn builder_accumulates_everything() {
        let s = SystemSpec::builder("X", Category::CongestionControl)
            .solves("bandwidth_allocation")
            .requires("needs-ecn", Condition::switches_have("ECN"))
            .requires(
                "fast-links-only",
                Condition::param("link_speed_gbps", CmpOp::Ge, 40.0),
            )
            .conflicts_with("Y")
            .provides("PACING")
            .cost(100)
            .notes("test system")
            .build();
        assert_eq!(s.requires.len(), 2);
        assert_eq!(s.conflicts, vec![SystemId::new("Y")]);
        assert_eq!(s.provides, vec![Feature::new("PACING")]);
        assert_eq!(s.cost_usd, 100);
    }

    #[test]
    fn json_roundtrip_system_and_hardware() {
        let s = simon();
        let text = netarch_rt::json::to_string_pretty(&s);
        assert_eq!(netarch_rt::json::from_str::<SystemSpec>(&text).unwrap(), s);

        let hw = catalyst_9500_40x();
        let text = netarch_rt::json::to_string_pretty(&hw);
        assert!(text.contains("Cisco Catalyst 9500-40X"));
        assert_eq!(netarch_rt::json::from_str::<HardwareSpec>(&text).unwrap(), hw);
    }
}
