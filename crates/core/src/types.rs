//! Foundational identifiers and vocabulary types.
//!
//! The paper's encoding style (Listings 1–3) names systems, hardware,
//! capabilities, hardware features, workload properties and preference
//! dimensions as opaque tokens — "we don't assign semantics to any
//! individual property" (§6, proof modularity). These newtypes keep those
//! token spaces from mixing while staying open-ended: any string is a
//! valid capability or feature, so new systems can be encoded without
//! touching the engine.

use netarch_rt::impl_json_enum;
use netarch_rt::json::{FromJson, Json, JsonError, JsonKey, ToJson};
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub String);

        impl $name {
            /// Creates an identifier from anything string-like.
            pub fn new(value: impl Into<String>) -> $name {
                $name(value.into())
            }

            /// The identifier text.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<&str> for $name {
            fn from(value: &str) -> $name {
                $name(value.to_string())
            }
        }

        impl From<String> for $name {
            fn from(value: String) -> $name {
                $name(value)
            }
        }

        // Ids serialize transparently as their inner string, and double
        // as JSON object keys.
        impl ToJson for $name {
            fn to_json(&self) -> Json {
                Json::Str(self.0.clone())
            }
        }

        impl FromJson for $name {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                Ok($name(String::from_json(j)?))
            }
        }

        impl JsonKey for $name {
            fn to_key(&self) -> String {
                self.0.clone()
            }
            fn from_key(key: &str) -> Result<Self, JsonError> {
                Ok($name(key.to_string()))
            }
        }
    };
}

string_id! {
    /// Identifies a deployable software system (e.g. `"SNAP"`, `"SIMON"`).
    SystemId
}

string_id! {
    /// Identifies a hardware model (e.g. `"CISCO_CATALYST_9500_40X"`).
    HardwareId
}

string_id! {
    /// Identifies a workload (e.g. `"ml_inference"`).
    WorkloadId
}

string_id! {
    /// A capability a system can provide — the paper's `solves = [...]`
    /// tokens, e.g. `"capture_delays"`, `"detect_queue_length"`.
    Capability
}

string_id! {
    /// A hardware feature flag, e.g. `"NIC_TIMESTAMPS"`, `"INT"`, `"QCN"`.
    Feature
}

string_id! {
    /// A workload property, e.g. `"dc_flows"`, `"short_flows"`,
    /// `"high_priority"`, `"wan_traffic"`.
    Property
}

string_id! {
    /// A named numeric scenario parameter, e.g. `"link_speed_gbps"`.
    ParamName
}

/// Implements [`JsonKey`] for an enum whose variants are unit names plus
/// one `Custom(String)` escape hatch: keys are the variant name, with
/// `Custom` values spelled `Custom:<name>`.
macro_rules! enum_json_key {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl JsonKey for $ty {
            fn to_key(&self) -> String {
                match self {
                    $($ty::$variant => stringify!($variant).to_string(),)+
                    $ty::Custom(name) => format!("Custom:{name}"),
                }
            }
            fn from_key(key: &str) -> Result<Self, JsonError> {
                $(if key == stringify!($variant) {
                    return Ok($ty::$variant);
                })+
                if let Some(name) = key.strip_prefix("Custom:") {
                    return Ok($ty::Custom(name.to_string()));
                }
                Err(JsonError(format!(
                    "unknown {} key `{key}`",
                    stringify!($ty)
                )))
            }
        }
    };
}

/// The functional role a system fills in the architecture. The paper's
/// prototype spans seven categories (§5.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Category {
    /// End-host network stacks (Linux, Snap, Shenango, …).
    NetworkStack,
    /// Congestion control algorithms (Cubic, DCTCP, Swift, …).
    CongestionControl,
    /// Network monitoring / telemetry (Simon, Sonata, Marple, …).
    Monitoring,
    /// Firewalls and packet filters.
    Firewall,
    /// Virtual switches (OVS, Andromeda, VFP, …).
    VirtualSwitch,
    /// Load balancing schemes (ECMP, packet spraying, …).
    LoadBalancer,
    /// Transport protocols (TCP, RDMA/RoCE, QUIC, …).
    Transport,
    /// An extension category not among the paper's seven.
    Custom(String),
}

impl_json_enum!(Category {
    unit NetworkStack,
    unit CongestionControl,
    unit Monitoring,
    unit Firewall,
    unit VirtualSwitch,
    unit LoadBalancer,
    unit Transport,
    one Custom(String),
});

enum_json_key!(Category {
    NetworkStack,
    CongestionControl,
    Monitoring,
    Firewall,
    VirtualSwitch,
    LoadBalancer,
    Transport,
});

impl Category {
    /// All built-in categories, in display order.
    pub fn builtin() -> [Category; 7] {
        [
            Category::NetworkStack,
            Category::CongestionControl,
            Category::Monitoring,
            Category::Firewall,
            Category::VirtualSwitch,
            Category::LoadBalancer,
            Category::Transport,
        ]
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::NetworkStack => write!(f, "network-stack"),
            Category::CongestionControl => write!(f, "congestion-control"),
            Category::Monitoring => write!(f, "monitoring"),
            Category::Firewall => write!(f, "firewall"),
            Category::VirtualSwitch => write!(f, "virtual-switch"),
            Category::LoadBalancer => write!(f, "load-balancer"),
            Category::Transport => write!(f, "transport"),
            Category::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

/// A preference dimension along which systems are partially ordered —
/// the colored edges of the paper's Figure 1 plus the dimensions used by
/// Listings 2–3.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dimension {
    /// Sustained data rate (Figure 1, yellow).
    Throughput,
    /// Inter-tenant/process isolation (Figure 1, red).
    Isolation,
    /// How little application modification is needed (Figure 1, blue;
    /// higher = fewer modifications required).
    AppCompatibility,
    /// End-to-end latency (lower is better; higher rank = lower latency).
    Latency,
    /// Tail latency specifically.
    TailLatency,
    /// Monitoring fidelity (Listing 2: Simon ≻ Pingmesh).
    MonitoringQuality,
    /// Operational ease of rollout (Listing 2: Pingmesh ≻ Simon).
    DeploymentEase,
    /// Quality of load balancing (Listing 3's performance bound).
    LoadBalancingQuality,
    /// CPU efficiency of the data path.
    CpuEfficiency,
    /// An extension dimension.
    Custom(String),
}

impl_json_enum!(Dimension {
    unit Throughput,
    unit Isolation,
    unit AppCompatibility,
    unit Latency,
    unit TailLatency,
    unit MonitoringQuality,
    unit DeploymentEase,
    unit LoadBalancingQuality,
    unit CpuEfficiency,
    one Custom(String),
});

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dimension::Throughput => write!(f, "throughput"),
            Dimension::Isolation => write!(f, "isolation"),
            Dimension::AppCompatibility => write!(f, "app-compatibility"),
            Dimension::Latency => write!(f, "latency"),
            Dimension::TailLatency => write!(f, "tail-latency"),
            Dimension::MonitoringQuality => write!(f, "monitoring-quality"),
            Dimension::DeploymentEase => write!(f, "deployment-ease"),
            Dimension::LoadBalancingQuality => write!(f, "load-balancing-quality"),
            Dimension::CpuEfficiency => write!(f, "cpu-efficiency"),
            Dimension::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

/// A consumable deployment resource (§2.2 "Resource contention").
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Resource {
    /// Server CPU cores.
    Cores,
    /// Server memory, GiB.
    ServerMemoryGb,
    /// Switch table/buffer memory, MiB.
    SwitchMemoryMb,
    /// Programmable-switch pipeline stages.
    P4Stages,
    /// SmartNIC processing capacity, percent of one NIC (100 = whole NIC).
    SmartNicCapacity,
    /// Distinct QoS classes available in the fabric.
    QosClasses,
    /// An extension resource.
    Custom(String),
}

impl_json_enum!(Resource {
    unit Cores,
    unit ServerMemoryGb,
    unit SwitchMemoryMb,
    unit P4Stages,
    unit SmartNicCapacity,
    unit QosClasses,
    one Custom(String),
});

enum_json_key!(Resource {
    Cores,
    ServerMemoryGb,
    SwitchMemoryMb,
    P4Stages,
    SmartNicCapacity,
    QosClasses,
});

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Cores => write!(f, "cores"),
            Resource::ServerMemoryGb => write!(f, "server-memory-gb"),
            Resource::SwitchMemoryMb => write!(f, "switch-memory-mb"),
            Resource::P4Stages => write!(f, "p4-stages"),
            Resource::SmartNicCapacity => write!(f, "smartnic-capacity"),
            Resource::QosClasses => write!(f, "qos-classes"),
            Resource::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

/// Hardware kind: which slot of the inventory a model competes for.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum HardwareKind {
    /// Top-of-rack / fabric switches.
    Switch,
    /// Server NICs.
    Nic,
    /// Server SKUs.
    Server,
}

impl_json_enum!(HardwareKind {
    unit Switch,
    unit Nic,
    unit Server,
});

impl JsonKey for HardwareKind {
    fn to_key(&self) -> String {
        match self {
            HardwareKind::Switch => "Switch".to_string(),
            HardwareKind::Nic => "Nic".to_string(),
            HardwareKind::Server => "Server".to_string(),
        }
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        match key {
            "Switch" => Ok(HardwareKind::Switch),
            "Nic" => Ok(HardwareKind::Nic),
            "Server" => Ok(HardwareKind::Server),
            other => Err(JsonError(format!("unknown HardwareKind key `{other}`"))),
        }
    }
}

impl fmt::Display for HardwareKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareKind::Switch => write!(f, "switch"),
            HardwareKind::Nic => write!(f, "nic"),
            HardwareKind::Server => write!(f, "server"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_rt::json;

    #[test]
    fn id_construction_and_display() {
        let s = SystemId::new("SNAP");
        assert_eq!(s.as_str(), "SNAP");
        assert_eq!(s.to_string(), "SNAP");
        assert_eq!(format!("{s:?}"), "SystemId(SNAP)");
        let s2: SystemId = "SNAP".into();
        assert_eq!(s, s2);
    }

    #[test]
    fn ids_of_different_types_do_not_mix() {
        // Compile-time property; runtime sanity that values are distinct
        // wrappers over the same text.
        let sys = SystemId::new("X");
        let hw = HardwareId::new("X");
        assert_eq!(sys.as_str(), hw.as_str());
    }

    #[test]
    fn category_display_roundtrips_against_builtin() {
        let all = Category::builtin();
        assert_eq!(all.len(), 7);
        let names: Vec<String> = all.iter().map(|c| c.to_string()).collect();
        assert!(names.contains(&"network-stack".to_string()));
        assert_eq!(Category::Custom("cache".into()).to_string(), "custom:cache");
    }

    #[test]
    fn json_roundtrip() {
        let c = Category::CongestionControl;
        let text = json::to_string(&c);
        assert_eq!(json::from_str::<Category>(&text).unwrap(), c);

        let d = Dimension::MonitoringQuality;
        let text = json::to_string(&d);
        assert_eq!(json::from_str::<Dimension>(&text).unwrap(), d);

        let id = SystemId::new("SIMON");
        let text = json::to_string(&id);
        assert_eq!(text, "\"SIMON\"");
        assert_eq!(json::from_str::<SystemId>(&text).unwrap(), id);
    }

    #[test]
    fn custom_variants_roundtrip() {
        let c = Category::Custom("cache".into());
        let text = json::to_string(&c);
        assert_eq!(text, r#"{"Custom":"cache"}"#);
        assert_eq!(json::from_str::<Category>(&text).unwrap(), c);
    }

    #[test]
    fn map_keys_roundtrip() {
        for kind in [HardwareKind::Switch, HardwareKind::Nic, HardwareKind::Server] {
            assert_eq!(HardwareKind::from_key(&kind.to_key()).unwrap(), kind);
        }
        for cat in Category::builtin() {
            assert_eq!(Category::from_key(&cat.to_key()).unwrap(), cat);
        }
        let custom = Resource::Custom("fpga-luts".into());
        assert_eq!(Resource::from_key(&custom.to_key()).unwrap(), custom);
        assert!(Category::from_key("NoSuch").is_err());
    }

    #[test]
    fn resource_display() {
        assert_eq!(Resource::SmartNicCapacity.to_string(), "smartnic-capacity");
        assert_eq!(Resource::Custom("fpga-luts".into()).to_string(), "custom:fpga-luts");
    }
}
