//! Error types for the reasoning engine.

use crate::types::{Category, HardwareId, ParamName, SystemId};
use std::fmt;

/// Errors raised while building a catalog.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CatalogError {
    /// A system id was registered twice.
    DuplicateSystem(SystemId),
    /// A hardware id was registered twice.
    DuplicateHardware(HardwareId),
    /// An edge or rule references a system not in the catalog.
    UnknownSystem(SystemId),
    /// A spec references another spec that is not registered.
    DanglingReference {
        /// The spec holding the reference.
        from: SystemId,
        /// The missing target.
        to: SystemId,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateSystem(id) => write!(f, "duplicate system id {id}"),
            CatalogError::DuplicateHardware(id) => write!(f, "duplicate hardware id {id}"),
            CatalogError::UnknownSystem(id) => write!(f, "unknown system {id}"),
            CatalogError::DanglingReference { from, to } => {
                write!(f, "system {from} references unknown system {to}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Errors raised while compiling a scenario to SAT.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// A pinned / referenced system is not in the catalog.
    UnknownSystem(SystemId),
    /// A referenced hardware model is not in the catalog.
    UnknownHardware(HardwareId),
    /// A hardware candidate was offered for the wrong inventory slot.
    WrongHardwareKind(HardwareId),
    /// A required role has no candidate systems in the catalog.
    EmptyRole(Category),
    /// A resource amount references an undefined scenario parameter.
    MissingParam {
        /// The system whose demand failed to evaluate.
        system: SystemId,
        /// The undefined parameter.
        param: ParamName,
    },
    /// The preference order has a strict cycle in this scenario's context.
    PreferenceCycle {
        /// Systems witnessing the cycle.
        witnesses: Vec<SystemId>,
    },
    /// The catalog failed referential validation.
    InvalidCatalog(Vec<CatalogError>),
    /// An objective level's soft-constraint weights overflow `u64` when
    /// summed, so the optimum is not representable.
    ObjectiveOverflow,
    /// The engine reached a state its own invariants rule out (e.g. a
    /// feasible scenario turned infeasible mid-optimization). Indicates a
    /// bug in the engine, never in the scenario.
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownSystem(id) => write!(f, "unknown system {id}"),
            CompileError::UnknownHardware(id) => write!(f, "unknown hardware {id}"),
            CompileError::WrongHardwareKind(id) => {
                write!(f, "hardware {id} offered for the wrong inventory slot")
            }
            CompileError::EmptyRole(cat) => {
                write!(f, "required role {cat} has no candidate systems")
            }
            CompileError::MissingParam { system, param } => {
                write!(f, "system {system} needs undefined scenario parameter {param}")
            }
            CompileError::PreferenceCycle { witnesses } => {
                write!(f, "preference order has a strict cycle involving ")?;
                for (i, w) in witnesses.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
            CompileError::InvalidCatalog(errors) => {
                write!(f, "catalog failed validation: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            CompileError::ObjectiveOverflow => {
                write!(f, "objective soft-constraint weights overflow u64 when summed")
            }
            CompileError::Internal(context) => {
                write!(f, "internal engine inconsistency (this is a bug): {context}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_culprit() {
        let e = CatalogError::DuplicateSystem(SystemId::new("SNAP"));
        assert!(e.to_string().contains("SNAP"));
        let e = CompileError::EmptyRole(Category::Monitoring);
        assert!(e.to_string().contains("monitoring"));
        let e = CompileError::MissingParam {
            system: SystemId::new("SIMON"),
            param: ParamName::new("num_flows"),
        };
        assert!(e.to_string().contains("SIMON") && e.to_string().contains("num_flows"));
        let e = CompileError::PreferenceCycle {
            witnesses: vec![SystemId::new("A"), SystemId::new("B")],
        };
        assert!(e.to_string().contains("A, B"));
        let e = CompileError::ObjectiveOverflow;
        assert!(e.to_string().contains("overflow"));
        let e = CompileError::Internal("optimize lost feasibility".into());
        assert!(e.to_string().contains("bug") && e.to_string().contains("optimize"));
    }
}
