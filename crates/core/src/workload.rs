//! Workload encodings — the paper's Listing 3.
//!
//! A workload is the architect's statement of what the network must carry:
//! descriptive properties (`dc_flows`, `short_flows`, `high_priority`),
//! placement, resource peaks, the capabilities it needs solved, and
//! performance bounds expressed against the preference partial order
//! ("the load balancing must be at least as good as packet spraying").

use crate::types::{Capability, Dimension, Property, SystemId, WorkloadId};
use netarch_rt::impl_json_struct;
use std::ops::Range;

/// A lower bound on solution quality along one dimension: the selected
/// system for the dimension's role must be *strictly better than* (or at
/// least *not worse than*) the reference system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PerformanceBound {
    /// The dimension the bound constrains.
    pub dimension: Dimension,
    /// The reference system (Listing 3: `better_than = PacketSpray`).
    pub better_than: SystemId,
}

impl_json_struct!(PerformanceBound { dimension, better_than });

/// Encoding of one workload (paper Listing 3).
#[derive(Clone, PartialEq, Debug)]
pub struct Workload {
    /// Unique identifier.
    pub id: WorkloadId,
    /// Human-readable name.
    pub name: String,
    /// Descriptive properties (`dc_flows`, `short_flows`, …).
    pub properties: Vec<Property>,
    /// Racks the workload is deployed on (`deployed_at = racks[0:3]`).
    pub racks: Range<u32>,
    /// Peak CPU cores consumed by the application itself.
    pub peak_cores: u64,
    /// Peak bandwidth, Gbit/s.
    pub peak_bandwidth_gbps: u64,
    /// Approximate concurrent flow count (drives per-flow resource rules).
    pub num_flows: u64,
    /// Capabilities the architecture must provide for this workload.
    pub needs: Vec<Capability>,
    /// Quality floors against the preference order.
    pub bounds: Vec<PerformanceBound>,
}

impl_json_struct!(Workload {
    id,
    name,
    properties,
    racks,
    peak_cores,
    peak_bandwidth_gbps,
    num_flows,
    needs,
    bounds,
});

impl Workload {
    /// Starts a builder.
    pub fn builder(id: impl Into<WorkloadId>) -> WorkloadBuilder {
        let id = id.into();
        WorkloadBuilder {
            workload: Workload {
                name: id.as_str().to_string(),
                id,
                properties: Vec::new(),
                racks: 0..0,
                peak_cores: 0,
                peak_bandwidth_gbps: 0,
                num_flows: 0,
                needs: Vec::new(),
                bounds: Vec::new(),
            },
        }
    }

    /// Whether the workload carries `property`.
    pub fn has_property(&self, property: &Property) -> bool {
        self.properties.contains(property)
    }
}

/// Fluent builder for [`Workload`].
pub struct WorkloadBuilder {
    workload: Workload,
}

impl WorkloadBuilder {
    /// Sets the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.workload.name = name.into();
        self
    }

    /// Adds a descriptive property.
    pub fn property(mut self, property: impl Into<Property>) -> Self {
        self.workload.properties.push(property.into());
        self
    }

    /// Sets the rack placement.
    pub fn deployed_at(mut self, racks: Range<u32>) -> Self {
        self.workload.racks = racks;
        self
    }

    /// Sets peak core usage.
    pub fn peak_cores(mut self, cores: u64) -> Self {
        self.workload.peak_cores = cores;
        self
    }

    /// Sets peak bandwidth (Gbit/s).
    pub fn peak_bandwidth(mut self, gbps: u64) -> Self {
        self.workload.peak_bandwidth_gbps = gbps;
        self
    }

    /// Sets the concurrent flow count.
    pub fn num_flows(mut self, flows: u64) -> Self {
        self.workload.num_flows = flows;
        self
    }

    /// Adds a required capability.
    pub fn needs(mut self, capability: impl Into<Capability>) -> Self {
        self.workload.needs.push(capability.into());
        self
    }

    /// Adds a performance bound (`set_performance_bound` in Listing 3).
    pub fn performance_bound(
        mut self,
        dimension: Dimension,
        better_than: impl Into<SystemId>,
    ) -> Self {
        self.workload.bounds.push(PerformanceBound {
            dimension,
            better_than: better_than.into(),
        });
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Workload {
        self.workload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Listing 3, transliterated.
    fn inference_app() -> Workload {
        Workload::builder("inference_app")
            .property("dc_flows")
            .property("short_flows")
            .property("high_priority")
            .deployed_at(0..3)
            .peak_cores(2800)
            .peak_bandwidth(30)
            .num_flows(50_000)
            .needs("load_balancing")
            .performance_bound(Dimension::LoadBalancingQuality, "PACKET_SPRAY")
            .build()
    }

    #[test]
    fn listing_3_transliteration() {
        let w = inference_app();
        assert_eq!(w.racks, 0..3);
        assert_eq!(w.peak_cores, 2800);
        assert_eq!(w.peak_bandwidth_gbps, 30);
        assert!(w.has_property(&Property::new("dc_flows")));
        assert!(w.has_property(&Property::new("high_priority")));
        assert!(!w.has_property(&Property::new("wan_traffic")));
        assert_eq!(w.bounds.len(), 1);
        assert_eq!(w.bounds[0].dimension, Dimension::LoadBalancingQuality);
        assert_eq!(w.bounds[0].better_than.as_str(), "PACKET_SPRAY");
    }

    #[test]
    fn json_roundtrip() {
        let w = inference_app();
        let text = netarch_rt::json::to_string(&w);
        assert_eq!(netarch_rt::json::from_str::<Workload>(&text).unwrap(), w);
    }
}
