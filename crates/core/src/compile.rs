//! Compilation of a [`Scenario`] into SAT.
//!
//! The translation scheme (DESIGN.md §5):
//!
//! * one decision atom per candidate **system** and per candidate
//!   **hardware model**;
//! * role rules become cardinality constraints per category;
//! * each system's requirements become guarded implications
//!   `selected(s) → condition`, asserted as *named groups* so that
//!   infeasibility diagnoses name the offending rules-of-thumb;
//! * resource demands become pseudo-Boolean sums guarded by the hardware
//!   model that defines the capacity;
//! * the objective stack becomes lexicographic MaxSAT levels whose weights
//!   scalarize the preference partial order (dominance counts).

use crate::catalog::Catalog;
use crate::condition::{AmountExpr, Condition};
use crate::error::CompileError;
use crate::ordering::EdgeKind;
use crate::scenario::{Inventory, Objective, Pin, RoleRule, Scenario};
use crate::types::{
    Capability, Category, Feature, HardwareId, HardwareKind, Resource, SystemId,
};
use netarch_logic::pb::{gte_outputs, PbTerm};
use netarch_logic::{Atom, ClauseSink, Encoder, Formula, GroupId, GroupedAssertions, Soft};
use std::collections::{BTreeMap, BTreeSet};

/// Provenance of one compiled rule group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleMeta {
    /// Stable label, e.g. `req:SIMON:simon-needs-nic-timestamps`.
    pub label: String,
    /// Human-readable description of what the rule enforces.
    pub description: String,
    /// Source citation when the rule came from the literature.
    pub citation: Option<String>,
}

/// One lexicographic objective level, compiled to soft constraints.
pub struct ObjectiveLevel {
    /// The objective this level realizes.
    pub objective: Objective,
    /// Its soft constraints.
    pub softs: Vec<Soft>,
}

/// Compilation size metrics (experiment E9: linear-growth claim), plus
/// session-reuse counters filled in by [`crate::query::Engine::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of named rule groups.
    pub rules: usize,
    /// Decision atoms (systems + hardware).
    pub decision_atoms: usize,
    /// Total clauses pushed into the solver.
    pub clauses: usize,
    /// Total solver variables (atoms + auxiliaries).
    pub solver_vars: usize,
    /// Scenario recompilations performed after engine construction. The
    /// incremental session answers every query on the original compile,
    /// so this stays 0 (capacity planning with a *changed* fleet bound is
    /// the one event that re-derives a side compilation).
    pub recompiles: u64,
    /// Solver invocations served by the persistent session solver.
    pub session_solves: u64,
    /// Per-query activation literals retired back into the session.
    pub retired_activations: u64,
    /// Decisive one-shot solves dispatched to the parallel portfolio
    /// backend (0 under the default sequential backend).
    pub portfolio_solves: u64,
    /// Conflicts resolved by the session solver over its lifetime.
    pub conflicts: u64,
    /// Learned clauses currently credited to the session solver — the
    /// state a serving layer preserves when it caches compiled scenarios
    /// and routes repeat traffic back to a warm session.
    pub learnt_clauses: u64,
    /// Clauses deleted by inprocessing subsumption in the session solver.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsumption resolution.
    pub strengthened: u64,
    /// Variables removed by bounded variable elimination. Frozen variables
    /// (atoms, selectors, cardinality structure) are never counted here —
    /// a nonzero value only ever reflects eliminable Tseitin auxiliaries.
    pub eliminated_vars: u64,
    /// Clauses shortened by vivification probes.
    pub vivified: u64,
    /// Conflicts resolved by chronological backtracking.
    pub chrono_backtracks: u64,
}

netarch_rt::impl_json_struct!(CompileStats {
    rules,
    decision_atoms,
    clauses,
    solver_vars,
    recompiles,
    session_solves,
    retired_activations,
    portfolio_solves,
    conflicts,
    learnt_clauses,
    subsumed,
    strengthened,
    eliminated_vars,
    vivified,
    chrono_backtracks,
});

/// A scenario compiled to SAT, ready for queries.
pub struct Compiled {
    /// The encoder holding the solver.
    pub encoder: Encoder,
    /// Rule groups (all must be assumed for the full scenario).
    pub groups: GroupedAssertions,
    /// Provenance per group, indexed by [`GroupId`].
    pub rules: Vec<RuleMeta>,
    /// Decision atom per candidate system.
    pub system_atoms: BTreeMap<SystemId, Atom>,
    /// Decision atom per candidate hardware model.
    pub hardware_atoms: BTreeMap<HardwareId, Atom>,
    /// Compiled objective stack.
    pub objective_levels: Vec<ObjectiveLevel>,
    /// Size metrics.
    pub stats: CompileStats,
}

impl Compiled {
    /// All decision atoms (projection set for design enumeration).
    pub fn decision_atoms(&self, include_hardware: bool) -> Vec<Atom> {
        let mut out: Vec<Atom> = self.system_atoms.values().copied().collect();
        if include_hardware {
            out.extend(self.hardware_atoms.values().copied());
        }
        out
    }

    /// Selector literals of every rule group (assume all to activate the
    /// complete scenario).
    pub fn all_selectors(&self) -> Vec<netarch_sat::Lit> {
        self.groups
            .ids()
            .into_iter()
            .map(|g| self.groups.selector(g))
            .collect()
    }

    /// Looks up rule provenance.
    pub fn rule(&self, id: GroupId) -> &RuleMeta {
        &self.rules[id.0]
    }
}

struct Compiler<'a> {
    scenario: &'a Scenario,
    encoder: Encoder,
    groups: GroupedAssertions,
    rules: Vec<RuleMeta>,
    next_atom: u32,
    system_atoms: BTreeMap<SystemId, Atom>,
    hardware_atoms: BTreeMap<HardwareId, Atom>,
    /// Capacity-planning mode: the server count is a solver variable in
    /// `[1, max]` instead of the fixed `inventory.num_servers`.
    server_count: Option<netarch_logic::OrderInt>,
}

/// A compiled scenario whose server count is a decision variable —
/// produced by [`compile_capacity`] for "how many servers do I need?"
/// queries.
pub struct CompiledCapacity {
    /// The compiled scenario (server-scaled resource rules are expressed
    /// against the variable count).
    pub compiled: Compiled,
    /// The order-encoded server count.
    pub server_count: netarch_logic::OrderInt,
}

/// Compiles a scenario with the server count as a variable in
/// `[1, max_servers]`. Budget constraints, when present, price the fleet
/// at the fixed `inventory.num_servers` (documented approximation: the
/// capacity query answers fleet *size*, with cost reported afterwards).
pub fn compile_capacity(
    scenario: &Scenario,
    max_servers: u64,
) -> Result<CompiledCapacity, CompileError> {
    compile_capacity_with_backend(scenario, max_servers, netarch_logic::backend_from_env())
}

/// [`compile_capacity`] with an explicit solve backend instead of the
/// `NETARCH_THREADS`-derived default.
pub fn compile_capacity_with_backend(
    scenario: &Scenario,
    max_servers: u64,
    backend: netarch_logic::SolveBackend,
) -> Result<CompiledCapacity, CompileError> {
    let mut out = compile_inner(scenario, Some(max_servers.max(1)), backend)?;
    let server_count = out
        .1
        .take()
        .expect("capacity mode allocates the server-count variable");
    Ok(CompiledCapacity { compiled: out.0, server_count })
}

/// Compiles a scenario. Validates the catalog, inventory references, and
/// preference order first. The solve backend for decisive one-shot queries
/// comes from the environment (`NETARCH_THREADS`); use
/// [`compile_with_backend`] to pin it explicitly.
pub fn compile(scenario: &Scenario) -> Result<Compiled, CompileError> {
    compile_with_backend(scenario, netarch_logic::backend_from_env())
}

/// [`compile`] with an explicit solve backend. Engine tests use this to
/// exercise the portfolio without mutating process-global environment
/// variables (which races with parallel test threads).
pub fn compile_with_backend(
    scenario: &Scenario,
    backend: netarch_logic::SolveBackend,
) -> Result<Compiled, CompileError> {
    Ok(compile_inner(scenario, None, backend)?.0)
}

fn compile_inner(
    scenario: &Scenario,
    capacity_mode: Option<u64>,
    backend: netarch_logic::SolveBackend,
) -> Result<(Compiled, Option<netarch_logic::OrderInt>), CompileError> {
    let catalog_errors = scenario.catalog.validate();
    if !catalog_errors.is_empty() {
        return Err(CompileError::InvalidCatalog(catalog_errors));
    }
    // Preference-cycle check across all dimensions appearing in edges.
    let dims: BTreeSet<_> = scenario
        .catalog
        .order()
        .edges()
        .iter()
        .map(|e| e.dimension.clone())
        .collect();
    for dim in &dims {
        if let Some(witnesses) = scenario.catalog.order().find_cycle(dim, scenario) {
            return Err(CompileError::PreferenceCycle { witnesses });
        }
    }

    // Opt-in paranoia: under NETARCH_VERIFY_PROOFS every verdict the engine
    // produces is re-validated by the independent DRAT checker (and SAT
    // models re-evaluated), panicking on any discrepancy. Tests use this to
    // make a wrong diagnosis loud instead of silently wrong.
    let mut encoder = Encoder::with_config(netarch_logic::EncodeConfig {
        verify_proofs: netarch_logic::proofs_requested(),
        backend,
        solver: netarch_logic::solver_config_from_env(),
        ..netarch_logic::EncodeConfig::default()
    });
    let server_count = capacity_mode
        .map(|max| netarch_logic::OrderInt::new(&mut encoder, 1, max.max(1)));
    let mut c = Compiler {
        scenario,
        encoder,
        groups: GroupedAssertions::new(),
        rules: Vec::new(),
        next_atom: 0,
        system_atoms: BTreeMap::new(),
        hardware_atoms: BTreeMap::new(),
        server_count,
    };
    c.allocate_atoms()?;
    c.compile_roles()?;
    c.compile_requirements()?;
    c.compile_conflicts();
    c.compile_workload_needs();
    c.compile_performance_bounds();
    c.compile_hardware_choice();
    c.compile_resources()?;
    c.compile_pins()?;
    c.compile_budget();
    let objective_levels = c.compile_objectives();

    let stats = CompileStats {
        rules: c.rules.len(),
        decision_atoms: c.system_atoms.len() + c.hardware_atoms.len(),
        clauses: c.encoder.clause_count(),
        solver_vars: c.encoder.solver().num_vars(),
        ..CompileStats::default()
    };
    Ok((
        Compiled {
            encoder: c.encoder,
            groups: c.groups,
            rules: c.rules,
            system_atoms: c.system_atoms,
            hardware_atoms: c.hardware_atoms,
            objective_levels,
            stats,
        },
        c.server_count,
    ))
}

impl<'a> Compiler<'a> {
    fn fresh_atom(&mut self) -> Atom {
        let a = Atom(self.next_atom);
        self.next_atom += 1;
        a
    }

    fn catalog(&self) -> &Catalog {
        &self.scenario.catalog
    }

    fn allocate_atoms(&mut self) -> Result<(), CompileError> {
        let ids: Vec<SystemId> = self.catalog().systems().map(|s| s.id.clone()).collect();
        for id in ids {
            let a = self.fresh_atom();
            self.system_atoms.insert(id, a);
        }
        let inv = &self.scenario.inventory;
        for (candidates, kind) in [
            (&inv.server_candidates, HardwareKind::Server),
            (&inv.nic_candidates, HardwareKind::Nic),
            (&inv.switch_candidates, HardwareKind::Switch),
        ] {
            for id in candidates {
                let spec = self
                    .catalog()
                    .hardware(id)
                    .ok_or_else(|| CompileError::UnknownHardware(id.clone()))?;
                if spec.kind != kind {
                    return Err(CompileError::WrongHardwareKind(id.clone()));
                }
                let a = self.fresh_atom();
                self.hardware_atoms.insert(id.clone(), a);
            }
        }
        Ok(())
    }

    fn system_formula(&self, id: &SystemId) -> Formula {
        match self.system_atoms.get(id) {
            Some(&a) => Formula::Atom(a),
            None => Formula::False,
        }
    }

    fn hardware_formula(&self, id: &HardwareId) -> Formula {
        match self.hardware_atoms.get(id) {
            Some(&a) => Formula::Atom(a),
            None => Formula::False,
        }
    }

    fn add_rule(
        &mut self,
        label: impl Into<String>,
        description: impl Into<String>,
        citation: Option<String>,
        formula: &Formula,
    ) -> GroupId {
        let label = label.into();
        let id = self.groups.add_group(&mut self.encoder, label.clone(), formula);
        self.rules.push(RuleMeta {
            label,
            description: description.into(),
            citation,
        });
        debug_assert_eq!(self.rules.len(), self.groups.len());
        id
    }

    /// Selection literals of hardware candidates of `kind` that carry
    /// `feature`.
    fn hardware_with_feature(&self, kind: HardwareKind, feature: &Feature) -> Vec<Formula> {
        let candidates = self.candidates_of_kind(kind);
        candidates
            .iter()
            .filter(|id| {
                self.catalog()
                    .hardware(id)
                    .is_some_and(|h| h.has_feature(feature))
            })
            .map(|id| self.hardware_formula(id))
            .collect()
    }

    fn candidates_of_kind(&self, kind: HardwareKind) -> &[HardwareId] {
        let inv = &self.scenario.inventory;
        match kind {
            HardwareKind::Server => &inv.server_candidates,
            HardwareKind::Nic => &inv.nic_candidates,
            HardwareKind::Switch => &inv.switch_candidates,
        }
    }

    /// Compiles a (statically pre-evaluated) condition into a formula over
    /// decision atoms.
    fn condition_formula(&self, condition: &Condition) -> Formula {
        match condition {
            Condition::True => Formula::True,
            Condition::False => Formula::False,
            Condition::SystemSelected(id) => self.system_formula(id),
            Condition::CategoryFilled(cat) => Formula::or(
                self.catalog()
                    .systems_in(cat)
                    .iter()
                    .map(|s| self.system_formula(&s.id)),
            ),
            Condition::NicFeature(f) => {
                Formula::or(self.hardware_with_feature(HardwareKind::Nic, f))
            }
            Condition::SwitchFeature(f) => {
                Formula::or(self.hardware_with_feature(HardwareKind::Switch, f))
            }
            Condition::ServerFeature(f) => {
                Formula::or(self.hardware_with_feature(HardwareKind::Server, f))
            }
            Condition::ProvidedFeature(f) => {
                let mut parts: Vec<Formula> = self
                    .catalog()
                    .systems()
                    .filter(|s| s.provides.contains(f))
                    .map(|s| self.system_formula(&s.id))
                    .collect();
                for kind in [HardwareKind::Server, HardwareKind::Nic, HardwareKind::Switch] {
                    parts.extend(self.hardware_with_feature(kind, f));
                }
                Formula::or(parts)
            }
            // Static conditions should have been folded; fold defensively.
            Condition::WorkloadProperty(_) | Condition::Param(..) => {
                match condition.partial_eval(self.scenario) {
                    Condition::True => Formula::True,
                    _ => Formula::False,
                }
            }
            Condition::Not(inner) => Formula::not(self.condition_formula(inner)),
            Condition::All(parts) => {
                Formula::and(parts.iter().map(|p| self.condition_formula(p)))
            }
            Condition::Any(parts) => {
                Formula::or(parts.iter().map(|p| self.condition_formula(p)))
            }
        }
    }

    /// Role coverage cardinality per category.
    fn compile_roles(&mut self) -> Result<(), CompileError> {
        let mut categories: BTreeSet<Category> = self
            .catalog()
            .systems()
            .map(|s| s.category.clone())
            .collect();
        categories.extend(self.scenario.roles.keys().cloned());
        for cat in categories {
            let members: Vec<Formula> = self
                .catalog()
                .systems_in(&cat)
                .iter()
                .map(|s| self.system_formula(&s.id))
                .collect();
            let rule = self.scenario.role_rule(&cat);
            match rule {
                RoleRule::Required => {
                    if members.is_empty() {
                        return Err(CompileError::EmptyRole(cat));
                    }
                    let f = Formula::exactly(1, members);
                    self.add_rule(
                        format!("role:{cat}"),
                        format!("exactly one {cat} system must be deployed"),
                        None,
                        &f,
                    );
                }
                RoleRule::Optional => {
                    if members.len() >= 2 {
                        let f = Formula::at_most(1, members);
                        self.add_rule(
                            format!("role:{cat}"),
                            format!("at most one {cat} system may be deployed"),
                            None,
                            &f,
                        );
                    }
                }
                RoleRule::Forbidden => {
                    if !members.is_empty() {
                        let f = Formula::and(members.into_iter().map(Formula::not));
                        self.add_rule(
                            format!("role:{cat}"),
                            format!("no {cat} system may be deployed"),
                            None,
                            &f,
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// `selected(s) → requirement-condition` per named requirement.
    fn compile_requirements(&mut self) -> Result<(), CompileError> {
        let specs: Vec<_> = self.catalog().systems().cloned().collect();
        for spec in specs {
            let sel = self.system_formula(&spec.id);
            for req in &spec.requires {
                let folded = req.condition.partial_eval(self.scenario);
                let body = self.condition_formula(&folded);
                let f = Formula::implies(sel.clone(), body);
                self.add_rule(
                    format!("req:{}:{}", spec.id, req.label),
                    format!("{} requires: {}", spec.name, req.condition),
                    req.citation.clone(),
                    &f,
                );
            }
        }
        Ok(())
    }

    /// Pairwise conflict clauses.
    fn compile_conflicts(&mut self) {
        let pairs: Vec<(SystemId, SystemId, String)> = self
            .catalog()
            .systems()
            .flat_map(|s| {
                s.conflicts
                    .iter()
                    .map(|other| (s.id.clone(), other.clone(), s.name.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut seen: BTreeSet<(SystemId, SystemId)> = BTreeSet::new();
        for (a, b, name) in pairs {
            let key = if a <= b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
            if !seen.insert(key) {
                continue;
            }
            let f = Formula::not(Formula::and([
                self.system_formula(&a),
                self.system_formula(&b),
            ]));
            self.add_rule(
                format!("conflict:{a}:{b}"),
                format!("{name} cannot coexist with {b}"),
                None,
                &f,
            );
        }
    }

    /// Every workload need must be solved by a selected system.
    fn compile_workload_needs(&mut self) {
        let needs: Vec<(String, Capability)> = self
            .scenario
            .workloads
            .iter()
            .flat_map(|w| {
                w.needs
                    .iter()
                    .map(|c| (w.id.as_str().to_string(), c.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (wid, cap) in needs {
            let providers: Vec<Formula> = self
                .catalog()
                .systems_solving(&cap)
                .iter()
                .map(|s| self.system_formula(&s.id))
                .collect();
            let f = Formula::or(providers);
            self.add_rule(
                format!("workload:{wid}:needs:{cap}"),
                format!("workload {wid} needs capability {cap}"),
                None,
                &f,
            );
        }
    }

    /// Listing 3 performance bounds: the selected system of the reference's
    /// category must be at least as good as the reference along the bound's
    /// dimension (statically resolvable edges only).
    fn compile_performance_bounds(&mut self) {
        let bounds: Vec<(String, crate::workload::PerformanceBound)> = self
            .scenario
            .workloads
            .iter()
            .flat_map(|w| {
                w.bounds
                    .iter()
                    .map(|b| (w.id.as_str().to_string(), b.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (wid, bound) in bounds {
            let Some(reference) = self.catalog().system(&bound.better_than) else {
                // Unknown reference: the bound is unsatisfiable knowledge —
                // surface as an impossible rule so diagnosis names it.
                self.add_rule(
                    format!("bound:{wid}:{}", bound.dimension),
                    format!(
                        "workload {wid} bound references unknown system {}",
                        bound.better_than
                    ),
                    None,
                    &Formula::False,
                );
                continue;
            };
            let category = reference.category.clone();
            let order = self.catalog().order();
            let acceptable: Vec<SystemId> = self
                .catalog()
                .systems_in(&category)
                .iter()
                .filter(|s| {
                    s.id == bound.better_than
                        || order
                            .dominated_by(&s.id, &bound.dimension, self.scenario)
                            .contains(&bound.better_than)
                        || order
                            .equal_to(&s.id, &bound.dimension, self.scenario)
                            .contains(&bound.better_than)
                })
                .map(|s| s.id.clone())
                .collect();
            let f = Formula::or(acceptable.iter().map(|id| self.system_formula(id)));
            self.add_rule(
                format!("bound:{wid}:{}", bound.dimension),
                format!(
                    "workload {wid} requires {} at least as good as {}",
                    bound.dimension, bound.better_than
                ),
                None,
                &f,
            );
        }
    }

    /// Exactly one hardware model per populated inventory slot.
    fn compile_hardware_choice(&mut self) {
        for kind in [HardwareKind::Server, HardwareKind::Nic, HardwareKind::Switch] {
            let candidates: Vec<HardwareId> = self.candidates_of_kind(kind).to_vec();
            if candidates.is_empty() {
                continue;
            }
            let members: Vec<Formula> =
                candidates.iter().map(|id| self.hardware_formula(id)).collect();
            let f = Formula::exactly(1, members);
            self.add_rule(
                format!("hw:{kind}"),
                format!("exactly one {kind} model must be chosen"),
                None,
                &f,
            );
        }
    }

    /// Resource contention: for each resource with demands, and each
    /// capacity-defining hardware candidate, a guarded PB constraint.
    fn compile_resources(&mut self) -> Result<(), CompileError> {
        // Gather demands: (resource → [(system, amount)]).
        let mut demands: BTreeMap<Resource, Vec<(SystemId, u64)>> = BTreeMap::new();
        let specs: Vec<_> = self.catalog().systems().cloned().collect();
        for spec in &specs {
            for d in &spec.resources {
                let amount = self.eval_amount(&spec.id, &d.amount)?;
                if amount > 0 {
                    demands
                        .entry(d.resource.clone())
                        .or_default()
                        .push((spec.id.clone(), amount));
                }
            }
        }
        let fixed_cores: u64 = self.scenario.workloads.iter().map(|w| w.peak_cores).sum();
        if fixed_cores > 0 {
            // Workload cores must be checked against server capacity even
            // when no *system* demands cores.
            demands.entry(Resource::Cores).or_default();
        }

        for (resource, sys_demands) in demands {
            let kind = governing_kind(&resource);
            let candidates: Vec<HardwareId> = self.candidates_of_kind(kind).to_vec();
            if candidates.is_empty() {
                // No inventory for this slot: the resource is unconstrained
                // in this scenario (document: pure-software questions skip
                // hardware modeling).
                continue;
            }
            let fixed = if resource == Resource::Cores { fixed_cores } else { 0 };
            if kind == HardwareKind::Server && self.server_count.is_some() {
                self.compile_variable_server_resource(&resource, &sys_demands, fixed)?;
                continue;
            }
            let terms: Vec<PbTerm> = sys_demands
                .iter()
                .map(|(id, amount)| {
                    let atom = self.system_atoms[id];
                    let lit = self.encoder.atom_lit(atom);
                    PbTerm::new(*amount, lit)
                })
                .collect();
            for model_id in candidates {
                let spec = self
                    .catalog()
                    .hardware(&model_id)
                    .expect("validated in allocate_atoms")
                    .clone();
                let capacity = spec.capacity(&resource)
                    * capacity_scale(&resource, &self.scenario.inventory);
                let selector = {
                    let atom = self.hardware_atoms[&model_id];
                    self.encoder.atom_lit(atom)
                };
                let label = format!("resource:{resource}:{model_id}");
                let description = format!(
                    "with {model_id}, {resource} demand must fit capacity {capacity}"
                );
                if capacity < fixed {
                    // The workloads alone exceed capacity: model unusable.
                    let f = Formula::not(Formula::Atom(self.hardware_atoms[&model_id]));
                    self.add_rule(label, description, None, &f);
                    continue;
                }
                let budget = capacity - fixed;
                let total: u64 = terms.iter().map(|t| t.weight).sum();
                if total <= budget {
                    continue; // never binding
                }
                // Guarded PB: selector ∧ group-selector → Σ ≤ budget.
                // Encode the GTE unconditionally, guard the bound clauses.
                let group_sel = self.encoder.new_selector();
                let node = gte_outputs(&mut self.encoder, &terms, budget);
                for &(s, l) in &node.outputs {
                    if s > budget {
                        let clause = [!group_sel, !selector, !l];
                        ClauseSink::add_clause(&mut self.encoder, &clause);
                    }
                }
                // Register as a group by hand (assert_under already done
                // via guarded clauses): reuse add_group with True to keep
                // selector bookkeeping uniform is not possible, so register
                // the selector directly.
                self.register_manual_group(group_sel, label, description, None);
            }
        }
        Ok(())
    }

    /// Capacity-planning variant of a server-scaled resource constraint:
    /// instead of checking demand against `num_servers × cap`, derive
    /// lower bounds on the variable server count — per model `m` with
    /// per-unit capacity `c`, if the selected systems' demand reaches `s`
    /// then `n ≥ ⌈(fixed + s) / c⌉`.
    fn compile_variable_server_resource(
        &mut self,
        resource: &Resource,
        sys_demands: &[(SystemId, u64)],
        fixed: u64,
    ) -> Result<(), CompileError> {
        let n = self.server_count.clone().expect("capacity mode");
        let max_n = n.hi();
        let candidates: Vec<HardwareId> =
            self.candidates_of_kind(HardwareKind::Server).to_vec();
        let terms: Vec<PbTerm> = sys_demands
            .iter()
            .map(|(id, amount)| {
                let atom = self.system_atoms[id];
                let lit = self.encoder.atom_lit(atom);
                PbTerm::new(*amount, lit)
            })
            .collect();
        let total: u64 = terms.iter().map(|t| t.weight).sum();
        // One shared demand totalizer per resource; per-model bound rules.
        let node = gte_outputs(&mut self.encoder, &terms, total);
        for model_id in candidates {
            let spec = self
                .catalog()
                .hardware(&model_id)
                .expect("validated in allocate_atoms")
                .clone();
            let per_unit = spec.capacity(resource);
            let selector = {
                let atom = self.hardware_atoms[&model_id];
                self.encoder.atom_lit(atom)
            };
            let group_sel = self.encoder.new_selector();
            let label = format!("capacity:{resource}:{model_id}");
            let description = format!(
                "server count must cover {resource} demand on {model_id} \
                 ({per_unit}/unit, fleet ≤ {max_n})"
            );
            if per_unit == 0 {
                if fixed > 0 || total > 0 {
                    // No fleet size helps: the model cannot host this.
                    let clause = [!group_sel, !selector];
                    ClauseSink::add_clause(&mut self.encoder, &clause);
                }
                self.register_manual_group(group_sel, label, description, None);
                continue;
            }
            let base_need = fixed.div_ceil(per_unit);
            match n.ge_const(base_need) {
                netarch_logic::Bound::AlwaysTrue => {}
                netarch_logic::Bound::AlwaysFalse => {
                    let clause = [!group_sel, !selector];
                    ClauseSink::add_clause(&mut self.encoder, &clause);
                }
                netarch_logic::Bound::Lit(q) => {
                    let clause = [!group_sel, !selector, q];
                    ClauseSink::add_clause(&mut self.encoder, &clause);
                }
            }
            for &(s, l) in &node.outputs {
                let need = (fixed + s).div_ceil(per_unit);
                match n.ge_const(need) {
                    netarch_logic::Bound::AlwaysTrue => {}
                    netarch_logic::Bound::AlwaysFalse => {
                        let clause = [!group_sel, !selector, !l];
                        ClauseSink::add_clause(&mut self.encoder, &clause);
                    }
                    netarch_logic::Bound::Lit(q) => {
                        let clause = [!group_sel, !selector, !l, q];
                        ClauseSink::add_clause(&mut self.encoder, &clause);
                    }
                }
            }
            self.register_manual_group(group_sel, label, description, None);
        }
        Ok(())
    }

    /// Registers a group whose clauses were already emitted under
    /// `selector`.
    fn register_manual_group(
        &mut self,
        selector: netarch_sat::Lit,
        label: String,
        description: String,
        citation: Option<String>,
    ) {
        self.groups.adopt_selector(selector, label.clone());
        self.rules.push(RuleMeta { label, description, citation });
        debug_assert_eq!(self.rules.len(), self.groups.len());
    }

    fn eval_amount(&self, system: &SystemId, amount: &AmountExpr) -> Result<u64, CompileError> {
        amount
            .eval(&|name| self.scenario.param_value(name))
            .map_err(|param| CompileError::MissingParam { system: system.clone(), param })
    }

    /// WhatIf pins.
    fn compile_pins(&mut self) -> Result<(), CompileError> {
        let pins = self.scenario.pins.clone();
        for pin in pins {
            match pin {
                Pin::Require(id) => {
                    if !self.system_atoms.contains_key(&id) {
                        return Err(CompileError::UnknownSystem(id));
                    }
                    let f = self.system_formula(&id);
                    self.add_rule(
                        format!("pin:require:{id}"),
                        format!("architect pinned {id} as already deployed"),
                        None,
                        &f,
                    );
                }
                Pin::Forbid(id) => {
                    if !self.system_atoms.contains_key(&id) {
                        return Err(CompileError::UnknownSystem(id));
                    }
                    let f = Formula::not(self.system_formula(&id));
                    self.add_rule(
                        format!("pin:forbid:{id}"),
                        format!("architect forbade {id}"),
                        None,
                        &f,
                    );
                }
            }
        }
        Ok(())
    }

    /// Total cost ≤ budget.
    fn compile_budget(&mut self) {
        let Some(budget) = self.scenario.budget_usd else {
            return;
        };
        let terms = self.cost_terms();
        let total: u64 = terms.iter().map(|t| t.weight).sum();
        if total <= budget {
            return;
        }
        let group_sel = self.encoder.new_selector();
        let node = gte_outputs(&mut self.encoder, &terms, budget);
        for &(s, l) in &node.outputs {
            if s > budget {
                let clause = [!group_sel, !l];
                ClauseSink::add_clause(&mut self.encoder, &clause);
            }
        }
        self.register_manual_group(
            group_sel,
            "budget".to_string(),
            format!("total cost must not exceed ${budget}"),
            None,
        );
    }

    /// `(decision atom, cost)` pairs over all priced decisions.
    fn cost_items(&self) -> Vec<(Atom, u64)> {
        let mut items = Vec::new();
        for spec in self.catalog().systems() {
            if spec.cost_usd > 0 {
                items.push((self.system_atoms[&spec.id], spec.cost_usd));
            }
        }
        let inv = &self.scenario.inventory;
        for (candidates, count) in [
            (&inv.server_candidates, inv.num_servers),
            (&inv.nic_candidates, inv.num_servers), // one NIC per server
            (&inv.switch_candidates, inv.num_switches),
        ] {
            for id in candidates {
                let unit = self.catalog().hardware(id).map_or(0, |h| h.cost_usd);
                let cost = unit.saturating_mul(count.max(1));
                if cost > 0 {
                    items.push((self.hardware_atoms[id], cost));
                }
            }
        }
        items
    }

    /// Weighted cost terms over all decisions.
    fn cost_terms(&mut self) -> Vec<PbTerm> {
        self.cost_items()
            .into_iter()
            .map(|(atom, cost)| {
                let lit = self.encoder.atom_lit(atom);
                PbTerm::new(cost, lit)
            })
            .collect()
    }

    /// The objective stack, compiled to soft-constraint levels.
    fn compile_objectives(&mut self) -> Vec<ObjectiveLevel> {
        let objectives = self.scenario.objectives.clone();
        objectives
            .into_iter()
            .map(|objective| {
                let softs = match &objective {
                    Objective::MaximizeDimension(dim) => self.dimension_softs(dim),
                    Objective::MinimizeCost => self.cost_softs(),
                    Objective::PreferCapability(cap) => {
                        let providers: Vec<Formula> = self
                            .catalog()
                            .systems_solving(cap)
                            .iter()
                            .map(|s| self.system_formula(&s.id))
                            .collect();
                        vec![Soft::new(1, Formula::or(providers))]
                    }
                };
                ObjectiveLevel { objective, softs }
            })
            .collect()
    }

    /// Scalarizes the preference order on one dimension: selecting a
    /// system is penalized by how many same-category systems dominate it
    /// in context; residual (dynamic) edges add conditional penalties.
    fn dimension_softs(&mut self, dim: &crate::types::Dimension) -> Vec<Soft> {
        let mut softs = Vec::new();
        let categories: BTreeSet<Category> = self
            .catalog()
            .systems()
            .map(|s| s.category.clone())
            .collect();
        for cat in categories {
            let members: Vec<SystemId> = self
                .catalog()
                .systems_in(&cat)
                .iter()
                .map(|s| s.id.clone())
                .collect();
            if members.len() < 2 {
                continue;
            }
            let ranks = self.catalog().order().ranks(&members, dim, self.scenario);
            let max_rank = ranks.values().copied().max().unwrap_or(0);
            for id in &members {
                let penalty = (max_rank - ranks[id]) as u64;
                if penalty > 0 {
                    softs.push(Soft::new(
                        penalty,
                        Formula::not(self.system_formula(id)),
                    ));
                }
            }
        }
        // Dynamic edges: penalize the worse side when the residual
        // condition holds in the model.
        let dynamic: Vec<(SystemId, Condition)> = self
            .catalog()
            .order()
            .dynamic_edges_on(dim, self.scenario)
            .into_iter()
            .filter(|(e, _)| e.kind == EdgeKind::Strict)
            .map(|(e, residual)| (e.worse.clone(), residual))
            .collect();
        for (worse, residual) in dynamic {
            let cond = self.condition_formula(&residual);
            softs.push(Soft::new(
                1,
                Formula::not(Formula::and([cond, self.system_formula(&worse)])),
            ));
        }
        softs
    }

    /// Cost minimization as soft constraints, normalized to keep the
    /// weighted totalizer small.
    fn cost_softs(&mut self) -> Vec<Soft> {
        let items = self.cost_items();
        if items.is_empty() {
            return Vec::new();
        }
        let gcd = items.iter().fold(0u64, |acc, &(_, w)| gcd(acc, w));
        let scale = gcd.max(1);
        // Keep total distinct-sum space bounded: further scale down when
        // the normalized total is enormous.
        let total: u64 = items.iter().map(|&(_, w)| w / scale).sum();
        let extra = (total / 2_000).max(1);
        items
            .into_iter()
            .map(|(atom, w)| {
                let weight = (w / scale / extra).max(1);
                Soft::new(weight, Formula::not(Formula::Atom(atom)))
            })
            .collect()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Which hardware slot defines the capacity of a resource.
fn governing_kind(resource: &Resource) -> HardwareKind {
    match resource {
        Resource::Cores | Resource::ServerMemoryGb | Resource::Custom(_) => HardwareKind::Server,
        Resource::SwitchMemoryMb | Resource::P4Stages | Resource::QosClasses => {
            HardwareKind::Switch
        }
        Resource::SmartNicCapacity => HardwareKind::Nic,
    }
}

/// How capacity scales with inventory counts: per-deployment resources
/// multiply by unit count; per-device resources (pipeline stages, QoS
/// classes, SmartNIC share) do not.
fn capacity_scale(resource: &Resource, inventory: &Inventory) -> u64 {
    match resource {
        Resource::Cores | Resource::ServerMemoryGb | Resource::Custom(_) => {
            inventory.num_servers.max(1)
        }
        Resource::SwitchMemoryMb => inventory.num_switches.max(1),
        Resource::P4Stages | Resource::QosClasses | Resource::SmartNicCapacity => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{HardwareSpec, SystemSpec};
    use crate::condition::CmpOp;
    use crate::scenario::Pin;
    use crate::types::Dimension;
    use crate::workload::Workload;

    fn one_system_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_system(SystemSpec::builder("X", Category::Monitoring).solves("m").build())
            .unwrap();
        c
    }

    #[test]
    fn unknown_hardware_in_inventory_rejected() {
        let scenario = Scenario::new(one_system_catalog()).with_inventory(
            crate::scenario::Inventory {
                nic_candidates: vec![HardwareId::new("GHOST_NIC")],
                ..Default::default()
            },
        );
        assert!(matches!(
            compile(&scenario),
            Err(CompileError::UnknownHardware(id)) if id.as_str() == "GHOST_NIC"
        ));
    }

    #[test]
    fn wrong_kind_hardware_rejected() {
        let mut catalog = one_system_catalog();
        catalog
            .add_hardware(HardwareSpec::builder("SW", HardwareKind::Switch).build())
            .unwrap();
        let scenario = Scenario::new(catalog).with_inventory(crate::scenario::Inventory {
            nic_candidates: vec![HardwareId::new("SW")], // a switch in the NIC slot
            ..Default::default()
        });
        assert!(matches!(
            compile(&scenario),
            Err(CompileError::WrongHardwareKind(id)) if id.as_str() == "SW"
        ));
    }

    #[test]
    fn empty_required_role_rejected() {
        let scenario = Scenario::new(one_system_catalog())
            .with_role(Category::Firewall, crate::scenario::RoleRule::Required);
        assert!(matches!(
            compile(&scenario),
            Err(CompileError::EmptyRole(Category::Firewall))
        ));
    }

    #[test]
    fn missing_param_in_resource_amount_rejected() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("X", Category::Monitoring)
                    .consumes(Resource::Cores, AmountExpr::scaled("undefined_param", 1.0))
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog);
        assert!(matches!(
            compile(&scenario),
            Err(CompileError::MissingParam { system, param })
                if system.as_str() == "X" && param.as_str() == "undefined_param"
        ));
    }

    #[test]
    fn preference_cycle_rejected() {
        let mut catalog = Catalog::new();
        for id in ["A", "B"] {
            catalog
                .add_system(SystemSpec::builder(id, Category::Transport).build())
                .unwrap();
        }
        catalog
            .add_ordering(crate::ordering::OrderingEdge::strict("A", "B", Dimension::Latency))
            .unwrap();
        catalog
            .add_ordering(crate::ordering::OrderingEdge::strict("B", "A", Dimension::Latency))
            .unwrap();
        let scenario = Scenario::new(catalog);
        assert!(matches!(compile(&scenario), Err(CompileError::PreferenceCycle { .. })));
    }

    #[test]
    fn conditional_preference_cycle_allowed_when_conditions_disjoint() {
        // A ≻ B at slow links, B ≻ A at fast links: fine in any one context.
        let mut catalog = Catalog::new();
        for id in ["A", "B"] {
            catalog
                .add_system(SystemSpec::builder(id, Category::Transport).build())
                .unwrap();
        }
        catalog
            .add_ordering(
                crate::ordering::OrderingEdge::strict("A", "B", Dimension::Latency)
                    .when(Condition::param("link_speed_gbps", CmpOp::Lt, 40.0)),
            )
            .unwrap();
        catalog
            .add_ordering(
                crate::ordering::OrderingEdge::strict("B", "A", Dimension::Latency)
                    .when(Condition::param("link_speed_gbps", CmpOp::Ge, 40.0)),
            )
            .unwrap();
        let scenario = Scenario::new(catalog).with_param("link_speed_gbps", 10.0);
        assert!(compile(&scenario).is_ok());
    }

    #[test]
    fn invalid_catalog_rejected_with_details() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("X", Category::Transport).conflicts_with("GHOST").build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog);
        match compile(&scenario) {
            Err(CompileError::InvalidCatalog(errors)) => assert_eq!(errors.len(), 1),
            Err(other) => panic!("expected InvalidCatalog, got {other:?}"),
            Ok(_) => panic!("expected InvalidCatalog, got a successful compile"),
        }
    }

    #[test]
    fn unknown_pin_rejected() {
        let scenario =
            Scenario::new(one_system_catalog()).with_pin(Pin::Require(SystemId::new("GHOST")));
        assert!(matches!(
            compile(&scenario),
            Err(CompileError::UnknownSystem(id)) if id.as_str() == "GHOST"
        ));
    }

    #[test]
    fn compiled_formula_semantics_match_validator() {
        // Cross-check: a condition compiled to a Formula and evaluated on
        // a model must agree with baseline::eval_condition on the design
        // extracted from that model. Exercise each condition constructor.
        use crate::baseline::eval_condition;
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("PROVIDER", Category::LoadBalancer)
                    .solves("lb")
                    .provides("EDGEY")
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("DEPENDENT", Category::Firewall)
                    .solves("fw")
                    .requires(
                        "dep-rule",
                        Condition::all([
                            Condition::ProvidedFeature(crate::types::Feature::new("EDGEY")),
                            Condition::nics_have("F1"),
                            Condition::not(Condition::system("FORBIDDEN")),
                        ]),
                    )
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(SystemSpec::builder("FORBIDDEN", Category::Transport).build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("N1", HardwareKind::Nic).feature("F1").build(),
            )
            .unwrap();
        catalog
            .add_hardware(HardwareSpec::builder("N2", HardwareKind::Nic).build())
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("w").needs("fw").build())
            .with_inventory(crate::scenario::Inventory {
                nic_candidates: vec![HardwareId::new("N1"), HardwareId::new("N2")],
                num_servers: 2,
                ..Default::default()
            });
        let mut engine = crate::query::Engine::new(scenario.clone()).unwrap();
        let outcome = engine.check().unwrap();
        let design = outcome.design().expect("feasible");
        // SAT said feasible; the independent evaluator must agree the
        // dependent's rule holds on the extracted design.
        let spec = scenario.catalog.system(&SystemId::new("DEPENDENT")).unwrap();
        assert!(eval_condition(&spec.requires[0].condition, &scenario, design));
        assert!(design.includes(&SystemId::new("PROVIDER")));
        assert!(!design.includes(&SystemId::new("FORBIDDEN")));
    }
}
