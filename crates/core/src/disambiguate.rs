//! Disambiguation — the paper's §6 "Explainability" extension.
//!
//! "It is likely that an architect's inputs … will be under-specified,
//! leaving … the possibility for multiple viable solutions … a future
//! version of the reasoning system should identify a minimal-effort
//! ordering for the architect to provide to make the solution unique."
//!
//! Given the equivalence classes of compliant designs (projected onto
//! system selections), [`plan_questions`] computes a short sequence of
//! role-level questions ("which monitoring system do you prefer?") that
//! pins the design down. The sequence is built greedily to minimize the
//! *worst-case* number of remaining classes after each answer — a
//! decision-tree-depth heuristic over the class set.

use crate::solution::Design;
use crate::types::{Category, SystemId};
use std::collections::{BTreeMap, BTreeSet};

/// One question to the architect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Question {
    /// The role whose selection is ambiguous.
    pub category: Category,
    /// The distinct choices observed across the (worst-case) remaining
    /// classes. Includes `None` (role left unfilled) as an option when
    /// some class omits the role.
    pub options: Vec<Option<SystemId>>,
    /// Upper bound on classes remaining after the architect answers
    /// (worst case over answers).
    pub worst_case_remaining: usize,
}

/// The disambiguation plan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Disambiguation {
    /// Number of design equivalence classes examined.
    pub classes: usize,
    /// Whether the class list was truncated by the enumeration limit
    /// (the plan is then a lower bound on the questions needed).
    pub truncated: bool,
    /// Greedy question sequence; empty when the design is already unique.
    pub questions: Vec<Question>,
    /// Classes that remain indistinguishable by role-level questions
    /// (identical system selections — differing only in hardware or other
    /// projections).
    pub residual_classes: usize,
}

/// Per-class fingerprint: each category's selection (or None).
type Fingerprint = BTreeMap<Category, Option<SystemId>>;

fn fingerprint(design: &Design, categories: &BTreeSet<Category>) -> Fingerprint {
    categories
        .iter()
        .map(|cat| {
            let selection = design
                .selections
                .get(cat)
                .and_then(|v| v.first())
                .cloned();
            (cat.clone(), selection)
        })
        .collect()
}

/// Plans a greedy minimal question sequence over the given design
/// classes.
pub fn plan_questions(designs: &[Design], truncated: bool) -> Disambiguation {
    let categories: BTreeSet<Category> = designs
        .iter()
        .flat_map(|d| d.selections.keys().cloned())
        .collect();
    let mut classes: Vec<Fingerprint> = designs
        .iter()
        .map(|d| fingerprint(d, &categories))
        .collect();
    classes.sort();
    classes.dedup();
    let total = classes.len();

    let mut questions = Vec::new();
    let mut remaining = classes;
    while remaining.len() > 1 {
        // Pick the category minimizing the worst-case group size.
        let mut best: Option<(Category, usize, Vec<Option<SystemId>>)> = None;
        for cat in &categories {
            let mut groups: BTreeMap<Option<SystemId>, usize> = BTreeMap::new();
            for class in &remaining {
                *groups.entry(class[cat].clone()).or_default() += 1;
            }
            if groups.len() < 2 {
                continue; // everyone agrees; asking gains nothing
            }
            let worst = groups.values().copied().max().unwrap_or(0);
            let options: Vec<Option<SystemId>> = groups.into_keys().collect();
            let better = match &best {
                None => true,
                Some((_, best_worst, _)) => worst < *best_worst,
            };
            if better {
                best = Some((cat.clone(), worst, options));
            }
        }
        let Some((category, worst_case_remaining, options)) = best else {
            break; // no category splits the rest: residual ambiguity
        };
        // Descend into the worst-case branch: the plan must work for any
        // answer, so its length is driven by the largest group.
        let mut groups: BTreeMap<Option<SystemId>, Vec<Fingerprint>> = BTreeMap::new();
        for class in remaining {
            groups.entry(class[&category].clone()).or_default().push(class);
        }
        remaining = groups
            .into_values()
            .max_by_key(Vec::len)
            .unwrap_or_default();
        questions.push(Question { category, options, worst_case_remaining });
    }

    Disambiguation {
        classes: total,
        truncated,
        questions,
        residual_classes: remaining.len(),
    }
}

/// Renders a plan for humans.
pub fn render_plan(plan: &Disambiguation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if plan.classes <= 1 {
        let _ = writeln!(out, "The design is already unique; no questions needed.");
        return out;
    }
    let _ = writeln!(
        out,
        "{} compliant design classes{}; {} question(s) pin the design down:",
        plan.classes,
        if plan.truncated { " (truncated)" } else { "" },
        plan.questions.len()
    );
    for (i, q) in plan.questions.iter().enumerate() {
        let options: Vec<String> = q
            .options
            .iter()
            .map(|o| o.as_ref().map_or("(none)".to_string(), |s| s.to_string()))
            .collect();
        let _ = writeln!(
            out,
            "  {}. which {}? options: {} (≤{} classes remain)",
            i + 1,
            q.category,
            options.join(" / "),
            q.worst_case_remaining
        );
    }
    if plan.residual_classes > 1 {
        let _ = writeln!(
            out,
            "  ({} classes stay equivalent at the system level — they differ \
             only in hardware or ancillary choices)",
            plan.residual_classes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(pairs: &[(&Category, &str)]) -> Design {
        let mut d = Design::default();
        for (cat, sys) in pairs {
            d.selections
                .entry((*cat).clone())
                .or_default()
                .push(SystemId::new(*sys));
        }
        d
    }

    #[test]
    fn unique_design_needs_no_questions() {
        let mon = Category::Monitoring;
        let designs = vec![design(&[(&mon, "SIMON")]), design(&[(&mon, "SIMON")])];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.classes, 1);
        assert!(plan.questions.is_empty());
        assert!(render_plan(&plan).contains("already unique"));
    }

    #[test]
    fn single_differing_role_needs_one_question() {
        let mon = Category::Monitoring;
        let designs = vec![
            design(&[(&mon, "SIMON")]),
            design(&[(&mon, "PINGMESH")]),
            design(&[(&mon, "SONATA")]),
        ];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.classes, 3);
        assert_eq!(plan.questions.len(), 1);
        assert_eq!(plan.questions[0].category, mon);
        assert_eq!(plan.questions[0].options.len(), 3);
        assert_eq!(plan.questions[0].worst_case_remaining, 1);
        assert_eq!(plan.residual_classes, 1);
    }

    #[test]
    fn greedy_prefers_the_most_splitting_category() {
        let mon = Category::Monitoring;
        let lb = Category::LoadBalancer;
        // Monitoring splits 2×2; LB splits 4 ways: LB first is optimal.
        let designs = vec![
            design(&[(&mon, "SIMON"), (&lb, "ECMP")]),
            design(&[(&mon, "SIMON"), (&lb, "CONGA")]),
            design(&[(&mon, "PINGMESH"), (&lb, "HULA")]),
            design(&[(&mon, "PINGMESH"), (&lb, "DRILL")]),
        ];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.questions[0].category, lb);
        assert_eq!(plan.questions.len(), 1, "LB answer fully determines the class");
    }

    #[test]
    fn multi_step_plan_descends_worst_case() {
        let mon = Category::Monitoring;
        let lb = Category::LoadBalancer;
        // Three classes: mon splits {SIMON: 2, PINGMESH: 1}; within the
        // SIMON branch LB still differs → two questions worst case.
        let designs = vec![
            design(&[(&mon, "SIMON"), (&lb, "ECMP")]),
            design(&[(&mon, "SIMON"), (&lb, "CONGA")]),
            design(&[(&mon, "PINGMESH"), (&lb, "ECMP")]),
        ];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.questions.len(), 2);
        assert_eq!(plan.residual_classes, 1);
    }

    #[test]
    fn missing_role_becomes_a_none_option() {
        let mon = Category::Monitoring;
        let designs = vec![design(&[(&mon, "SIMON")]), design(&[])];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.questions.len(), 1);
        assert!(plan.questions[0].options.contains(&None));
        assert!(render_plan(&plan).contains("(none)"));
    }

    #[test]
    fn identical_fingerprints_are_residual() {
        // Two designs with equal selections (e.g. differing hardware) are
        // one class.
        let mon = Category::Monitoring;
        let designs = vec![design(&[(&mon, "SIMON")]), design(&[(&mon, "SIMON")])];
        let plan = plan_questions(&designs, false);
        assert_eq!(plan.classes, 1);
        assert_eq!(plan.residual_classes, 1);
    }
}
