//! Rendering diagnoses for humans.
//!
//! The paper's §6 asks that an infeasible scenario be explained by naming
//! the conflicting requirements and by suggesting what the architect could
//! relax. Because the diagnosis is a *minimal* unsatisfiable subset,
//! dropping any single member restores feasibility — so every member is a
//! valid relaxation candidate, ranked here by how painful dropping it
//! likely is (architect pins are easiest to reconsider, physical resource
//! limits hardest).

use crate::query::{ConflictRule, Diagnosis};
use std::fmt::Write as _;

/// How painful relaxing a rule is, from easiest to hardest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RelaxationDifficulty {
    /// An architect-supplied pin — a decision, not a fact.
    Pin,
    /// A workload requirement — could be renegotiated with the app team.
    WorkloadNeed,
    /// A preference/performance bound — quality tradeoff.
    Bound,
    /// A role rule — structural choice of the scenario.
    Role,
    /// A system's documented deployment requirement — violating it means
    /// the system simply won't work.
    SystemRequirement,
    /// A hardware capacity or budget limit — physics and money.
    Capacity,
}

impl RelaxationDifficulty {
    /// Classifies a rule by its label prefix (labels are stable:
    /// `pin:…`, `workload:…`, `bound:…`, `role:…`, `req:…`,
    /// `resource:…`/`budget`/`hw:…`).
    pub fn classify(rule: &ConflictRule) -> RelaxationDifficulty {
        let label = rule.label.as_str();
        if label.starts_with("pin:") {
            RelaxationDifficulty::Pin
        } else if label.starts_with("workload:") {
            RelaxationDifficulty::WorkloadNeed
        } else if label.starts_with("bound:") {
            RelaxationDifficulty::Bound
        } else if label.starts_with("role:") {
            RelaxationDifficulty::Role
        } else if label.starts_with("req:") || label.starts_with("conflict:") {
            RelaxationDifficulty::SystemRequirement
        } else {
            RelaxationDifficulty::Capacity
        }
    }

    /// Short human phrasing.
    pub fn as_advice(self) -> &'static str {
        match self {
            RelaxationDifficulty::Pin => "reconsider this pinned decision",
            RelaxationDifficulty::WorkloadNeed => "renegotiate this workload requirement",
            RelaxationDifficulty::Bound => "lower this performance bound",
            RelaxationDifficulty::Role => "reconsider whether this role must be filled",
            RelaxationDifficulty::SystemRequirement => {
                "this is a documented system constraint; work around it with different hardware or systems"
            }
            RelaxationDifficulty::Capacity => {
                "this is a capacity/budget limit; expand the inventory or budget"
            }
        }
    }
}

/// A ranked relaxation suggestion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relaxation {
    /// The rule that could be dropped.
    pub rule: ConflictRule,
    /// Estimated difficulty.
    pub difficulty: RelaxationDifficulty,
}

/// Suggests relaxations for a diagnosis, easiest first.
pub fn suggest_relaxations(diagnosis: &Diagnosis) -> Vec<Relaxation> {
    let mut out: Vec<Relaxation> = diagnosis
        .conflicts
        .iter()
        .map(|rule| Relaxation {
            difficulty: RelaxationDifficulty::classify(rule),
            rule: rule.clone(),
        })
        .collect();
    out.sort_by(|a, b| a.difficulty.cmp(&b.difficulty).then(a.rule.label.cmp(&b.rule.label)));
    out
}

/// Renders a diagnosis as a human-readable report.
pub fn render_diagnosis(diagnosis: &Diagnosis) -> String {
    let mut out = String::new();
    if diagnosis.conflicts.is_empty() {
        let _ = writeln!(
            out,
            "The scenario is infeasible, but no named rule participates — \
             the base encoding itself is inconsistent (this indicates a \
             knowledge-base bug)."
        );
        return out;
    }
    let _ = writeln!(
        out,
        "The scenario is infeasible. {} rules conflict (dropping any one \
         of them restores feasibility):",
        diagnosis.conflicts.len()
    );
    for rule in &diagnosis.conflicts {
        let _ = write!(out, "  • [{}] {}", rule.label, rule.description);
        if let Some(citation) = &rule.citation {
            let _ = write!(out, " (source: {citation})");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "Suggested relaxations, easiest first:");
    for relaxation in suggest_relaxations(diagnosis) {
        let _ = writeln!(
            out,
            "  → [{}]: {}",
            relaxation.rule.label,
            relaxation.difficulty.as_advice()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(label: &str) -> ConflictRule {
        ConflictRule {
            label: label.to_string(),
            description: format!("description of {label}"),
            citation: (label.contains("req")).then(|| "Some Paper, 2020".to_string()),
        }
    }

    #[test]
    fn classification_by_label_prefix() {
        assert_eq!(
            RelaxationDifficulty::classify(&rule("pin:require:SONATA")),
            RelaxationDifficulty::Pin
        );
        assert_eq!(
            RelaxationDifficulty::classify(&rule("workload:app:needs:x")),
            RelaxationDifficulty::WorkloadNeed
        );
        assert_eq!(
            RelaxationDifficulty::classify(&rule("req:SIMON:needs-ts")),
            RelaxationDifficulty::SystemRequirement
        );
        assert_eq!(
            RelaxationDifficulty::classify(&rule("resource:cores:SRV")),
            RelaxationDifficulty::Capacity
        );
        assert_eq!(
            RelaxationDifficulty::classify(&rule("budget")),
            RelaxationDifficulty::Capacity
        );
    }

    #[test]
    fn suggestions_sorted_easiest_first() {
        let d = Diagnosis {
            conflicts: vec![
                rule("req:SIMON:needs-ts"),
                rule("pin:require:SIMON"),
                rule("workload:app:needs:monitoring"),
            ],
        };
        let suggestions = suggest_relaxations(&d);
        assert_eq!(suggestions[0].difficulty, RelaxationDifficulty::Pin);
        assert_eq!(suggestions[1].difficulty, RelaxationDifficulty::WorkloadNeed);
        assert_eq!(suggestions[2].difficulty, RelaxationDifficulty::SystemRequirement);
    }

    #[test]
    fn render_includes_rules_citations_and_advice() {
        let d = Diagnosis {
            conflicts: vec![rule("pin:require:SIMON"), rule("req:SIMON:needs-ts")],
        };
        let text = render_diagnosis(&d);
        assert!(text.contains("2 rules conflict"));
        assert!(text.contains("pin:require:SIMON"));
        assert!(text.contains("Some Paper, 2020"));
        assert!(text.contains("reconsider this pinned decision"));
    }

    #[test]
    fn render_empty_diagnosis_flags_kb_bug() {
        let text = render_diagnosis(&Diagnosis::default());
        assert!(text.contains("knowledge-base bug"));
    }
}
