//! The rule condition DSL.
//!
//! Conditions are the right-hand sides of rules-of-thumb: "Timely requires
//! NIC timestamps", "Annulus matters only when WAN and DC traffic compete",
//! "NetChannel is preferable only at link speeds ≥ 40 Gbps" (paper §2.3,
//! Figure 1). A condition is evaluated against a *deployment context* that
//! mixes statically-known facts (scenario parameters, workload properties)
//! with solver decisions (which systems and hardware models are selected),
//! so compilation yields a [`netarch_logic::Formula`] rather than a
//! Boolean.

use crate::types::{Category, Feature, ParamName, Property, SystemId};
use netarch_rt::impl_json_enum;
use std::fmt;

/// Comparison operators for numeric parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (exact floating comparison; parameters are architect-supplied
    /// constants, not computed values).
    Eq,
}

impl_json_enum!(CmpOp {
    unit Lt,
    unit Le,
    unit Gt,
    unit Ge,
    unit Eq,
});

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// A rule condition over the deployment context.
#[derive(Clone, PartialEq, Debug)]
pub enum Condition {
    /// Always holds.
    True,
    /// Never holds.
    False,
    /// The named system is part of the selected design.
    SystemSelected(SystemId),
    /// Some system of the category is part of the selected design.
    CategoryFilled(Category),
    /// The selected NIC model provides the feature.
    NicFeature(Feature),
    /// The selected switch model provides the feature.
    SwitchFeature(Feature),
    /// The selected server model provides the feature.
    ServerFeature(Feature),
    /// Some selected system or hardware model provides the abstract
    /// feature (e.g. `"TUNNEL_OFFLOAD"` provided by a hardware-offloaded
    /// virtual switch).
    ProvidedFeature(Feature),
    /// Some deployed workload has the property.
    WorkloadProperty(Property),
    /// A scenario parameter satisfies a comparison (statically resolved:
    /// parameters are fixed per scenario).
    Param(ParamName, CmpOp, f64),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction.
    All(Vec<Condition>),
    /// Disjunction.
    Any(Vec<Condition>),
}

impl_json_enum!(Condition {
    unit True,
    unit False,
    one SystemSelected(SystemId),
    one CategoryFilled(Category),
    one NicFeature(Feature),
    one SwitchFeature(Feature),
    one ServerFeature(Feature),
    one ProvidedFeature(Feature),
    one WorkloadProperty(Property),
    tuple Param(ParamName, CmpOp, f64),
    one Not(Box<Condition>),
    one All(Vec<Condition>),
    one Any(Vec<Condition>),
});

impl Condition {
    /// Convenience: conjunction.
    pub fn all(parts: impl IntoIterator<Item = Condition>) -> Condition {
        Condition::All(parts.into_iter().collect())
    }

    /// Convenience: disjunction.
    pub fn any(parts: impl IntoIterator<Item = Condition>) -> Condition {
        Condition::Any(parts.into_iter().collect())
    }

    /// Convenience: negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(part: Condition) -> Condition {
        Condition::Not(Box::new(part))
    }

    /// Convenience: `NICs.have(feature)` from Listing 2.
    pub fn nics_have(feature: impl Into<Feature>) -> Condition {
        Condition::NicFeature(feature.into())
    }

    /// Convenience: switches provide `feature`.
    pub fn switches_have(feature: impl Into<Feature>) -> Condition {
        Condition::SwitchFeature(feature.into())
    }

    /// Convenience: parameter comparison.
    pub fn param(name: impl Into<ParamName>, op: CmpOp, value: f64) -> Condition {
        Condition::Param(name.into(), op, value)
    }

    /// Convenience: the named system is deployed.
    pub fn system(id: impl Into<SystemId>) -> Condition {
        Condition::SystemSelected(id.into())
    }

    /// Convenience: some workload carries `property`.
    pub fn workload(property: impl Into<Property>) -> Condition {
        Condition::WorkloadProperty(property.into())
    }

    /// Systems referenced by the condition (for catalog validation).
    pub fn referenced_systems(&self) -> Vec<&SystemId> {
        let mut out = Vec::new();
        self.collect_systems(&mut out);
        out
    }

    fn collect_systems<'a>(&'a self, out: &mut Vec<&'a SystemId>) {
        match self {
            Condition::SystemSelected(id) => out.push(id),
            Condition::Not(inner) => inner.collect_systems(out),
            Condition::All(parts) | Condition::Any(parts) => {
                for p in parts {
                    p.collect_systems(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::SystemSelected(id) => write!(f, "deployed({id})"),
            Condition::CategoryFilled(c) => write!(f, "filled({c})"),
            Condition::NicFeature(feat) => write!(f, "NICs.have({feat})"),
            Condition::SwitchFeature(feat) => write!(f, "switches.have({feat})"),
            Condition::ServerFeature(feat) => write!(f, "servers.have({feat})"),
            Condition::ProvidedFeature(feat) => write!(f, "provided({feat})"),
            Condition::WorkloadProperty(p) => write!(f, "workload.has({p})"),
            Condition::Param(name, op, v) => write!(f, "{name} {op} {v}"),
            Condition::Not(inner) => write!(f, "not({inner})"),
            Condition::All(parts) => write_list(f, "all", parts),
            Condition::Any(parts) => write_list(f, "any", parts),
        }
    }
}

fn write_list(f: &mut fmt::Formatter<'_>, name: &str, parts: &[Condition]) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ")")
}

/// Static facts available before solving: scenario parameters and workload
/// properties are fixed per scenario, so conditions over them can be
/// resolved at compile time.
pub trait StaticContext {
    /// The value of a scenario parameter, if defined.
    fn param(&self, name: &ParamName) -> Option<f64>;

    /// Whether any deployed workload carries the property.
    fn workload_has(&self, property: &Property) -> bool;
}

impl Condition {
    /// Partially evaluates the condition against static facts, folding
    /// parameter comparisons and workload properties to constants while
    /// leaving solver-dependent parts (selections, hardware features)
    /// intact. Unknown parameters resolve to `False` — a rule gated on a
    /// parameter the architect did not supply is conservatively inactive.
    pub fn partial_eval(&self, ctx: &dyn StaticContext) -> Condition {
        match self {
            Condition::Param(name, op, value) => match ctx.param(name) {
                Some(actual) => {
                    if op.apply(actual, *value) {
                        Condition::True
                    } else {
                        Condition::False
                    }
                }
                None => Condition::False,
            },
            Condition::WorkloadProperty(p) => {
                if ctx.workload_has(p) {
                    Condition::True
                } else {
                    Condition::False
                }
            }
            Condition::Not(inner) => match inner.partial_eval(ctx) {
                Condition::True => Condition::False,
                Condition::False => Condition::True,
                other => Condition::Not(Box::new(other)),
            },
            Condition::All(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    match p.partial_eval(ctx) {
                        Condition::True => {}
                        Condition::False => return Condition::False,
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Condition::True,
                    1 => out.pop().expect("len checked"),
                    _ => Condition::All(out),
                }
            }
            Condition::Any(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    match p.partial_eval(ctx) {
                        Condition::False => {}
                        Condition::True => return Condition::True,
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => Condition::False,
                    1 => out.pop().expect("len checked"),
                    _ => Condition::Any(out),
                }
            }
            other => other.clone(),
        }
    }
}

/// A linear expression over scenario parameters, used for resource demand
/// amounts — Listing 2's `cores_needed(CPU_FACTOR * num_flows)`.
#[derive(Clone, PartialEq, Debug)]
pub enum AmountExpr {
    /// A fixed amount.
    Const(u64),
    /// `ceil(factor × param)`.
    ParamScaled {
        /// The scenario parameter supplying the scale base.
        param: ParamName,
        /// The multiplier (e.g. the paper's `CPU_FACTOR`).
        factor: f64,
    },
    /// Sum of sub-expressions.
    Sum(Vec<AmountExpr>),
}

impl_json_enum!(AmountExpr {
    one Const(u64),
    record ParamScaled { param: ParamName, factor: f64 },
    one Sum(Vec<AmountExpr>),
});

impl AmountExpr {
    /// Evaluates against the scenario's parameter table. Unknown
    /// parameters yield an error carrying the parameter name.
    pub fn eval(&self, params: &dyn Fn(&ParamName) -> Option<f64>) -> Result<u64, ParamName> {
        match self {
            AmountExpr::Const(v) => Ok(*v),
            AmountExpr::ParamScaled { param, factor } => {
                let base = params(param).ok_or_else(|| param.clone())?;
                let v = (base * factor).ceil();
                Ok(if v <= 0.0 { 0 } else { v as u64 })
            }
            AmountExpr::Sum(parts) => {
                let mut total = 0u64;
                for p in parts {
                    total = total.saturating_add(p.eval(params)?);
                }
                Ok(total)
            }
        }
    }

    /// Convenience: a constant amount.
    pub fn constant(v: u64) -> AmountExpr {
        AmountExpr::Const(v)
    }

    /// Convenience: `factor × param`.
    pub fn scaled(param: impl Into<ParamName>, factor: f64) -> AmountExpr {
        AmountExpr::ParamScaled { param: param.into(), factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(!CmpOp::Lt.apply(2.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(!CmpOp::Eq.apply(2.0, 2.1));
    }

    #[test]
    fn display_reads_like_listing_2() {
        let c = Condition::all([
            Condition::nics_have("NIC_TIMESTAMPS"),
            Condition::param("link_speed_gbps", CmpOp::Ge, 40.0),
        ]);
        assert_eq!(
            c.to_string(),
            "all(NICs.have(NIC_TIMESTAMPS), link_speed_gbps >= 40)"
        );
    }

    #[test]
    fn referenced_systems_found_in_nesting() {
        let c = Condition::any([
            Condition::system("SNAP"),
            Condition::not(Condition::all([Condition::system("OVS"), Condition::True])),
        ]);
        let refs: Vec<&str> = c.referenced_systems().iter().map(|s| s.as_str()).collect();
        assert_eq!(refs, vec!["SNAP", "OVS"]);
    }

    #[test]
    fn amount_expr_eval() {
        let params = |name: &ParamName| match name.as_str() {
            "num_flows" => Some(10_000.0),
            _ => None,
        };
        assert_eq!(AmountExpr::constant(5).eval(&params), Ok(5));
        assert_eq!(
            AmountExpr::scaled("num_flows", 0.001).eval(&params),
            Ok(10)
        );
        assert_eq!(
            AmountExpr::Sum(vec![AmountExpr::constant(2), AmountExpr::scaled("num_flows", 0.0001)])
                .eval(&params),
            Ok(3)
        );
        assert_eq!(
            AmountExpr::scaled("missing", 1.0).eval(&params),
            Err(ParamName::new("missing"))
        );
    }

    #[test]
    fn amount_expr_rounds_up_and_clamps() {
        let params = |name: &ParamName| match name.as_str() {
            "x" => Some(2.1),
            "neg" => Some(-5.0),
            _ => None,
        };
        assert_eq!(AmountExpr::scaled("x", 1.0).eval(&params), Ok(3));
        assert_eq!(AmountExpr::scaled("neg", 1.0).eval(&params), Ok(0));
    }

    struct Ctx;
    impl StaticContext for Ctx {
        fn param(&self, name: &ParamName) -> Option<f64> {
            match name.as_str() {
                "link_speed_gbps" => Some(100.0),
                _ => None,
            }
        }
        fn workload_has(&self, property: &Property) -> bool {
            property.as_str() == "wan_traffic"
        }
    }

    #[test]
    fn partial_eval_folds_static_facts() {
        let c = Condition::all([
            Condition::param("link_speed_gbps", CmpOp::Ge, 40.0),
            Condition::workload("wan_traffic"),
            Condition::nics_have("QCN"),
        ]);
        assert_eq!(c.partial_eval(&Ctx), Condition::nics_have("QCN"));
    }

    #[test]
    fn partial_eval_short_circuits() {
        let c = Condition::all([
            Condition::param("link_speed_gbps", CmpOp::Lt, 40.0),
            Condition::nics_have("QCN"),
        ]);
        assert_eq!(c.partial_eval(&Ctx), Condition::False);

        let c = Condition::any([
            Condition::workload("wan_traffic"),
            Condition::system("SNAP"),
        ]);
        assert_eq!(c.partial_eval(&Ctx), Condition::True);
    }

    #[test]
    fn partial_eval_unknown_param_is_false() {
        let c = Condition::param("undefined", CmpOp::Ge, 1.0);
        assert_eq!(c.partial_eval(&Ctx), Condition::False);
        // Under negation, the unknown-param-false rule flips as expected.
        let c = Condition::not(Condition::param("undefined", CmpOp::Ge, 1.0));
        assert_eq!(c.partial_eval(&Ctx), Condition::True);
    }

    #[test]
    fn partial_eval_keeps_dynamic_structure() {
        let c = Condition::any([
            Condition::system("SNAP"),
            Condition::all([
                Condition::nics_have("QCN"),
                Condition::param("link_speed_gbps", CmpOp::Ge, 40.0),
            ]),
        ]);
        let r = c.partial_eval(&Ctx);
        assert_eq!(
            r,
            Condition::any([Condition::system("SNAP"), Condition::nics_have("QCN")])
        );
    }

    #[test]
    fn json_roundtrip() {
        let c = Condition::all([
            Condition::nics_have("QCN"),
            Condition::workload("wan_traffic"),
            Condition::param("link_speed_gbps", CmpOp::Ge, 40.0),
        ]);
        let text = netarch_rt::json::to_string(&c);
        assert_eq!(netarch_rt::json::from_str::<Condition>(&text).unwrap(), c);
    }
}
