//! Scenarios: a catalog plus the architect's inputs.
//!
//! A [`Scenario`] is one concrete design question: the hardware inventory
//! under consideration, the workloads to carry, which roles must be
//! filled, numeric parameters (link speed, flow counts), WhatIf pins
//! ("I have already deployed Sonata", §5.1), and the objective stack
//! (`Optimize(latency > Hardware cost > monitoring)`, Listing 3).

use crate::catalog::Catalog;
use crate::condition::StaticContext;
use crate::types::{
    Capability, Category, Dimension, HardwareId, ParamName, Property, SystemId,
};
use crate::workload::Workload;
use netarch_rt::{impl_json_enum, impl_json_struct};
use std::collections::BTreeMap;

/// The hardware under consideration: candidate models per slot and the
/// deployment's unit counts.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct Inventory {
    /// Candidate server SKUs (the engine picks exactly one).
    pub server_candidates: Vec<HardwareId>,
    /// Candidate NIC models (one selected).
    pub nic_candidates: Vec<HardwareId>,
    /// Candidate switch models (one selected).
    pub switch_candidates: Vec<HardwareId>,
    /// Number of servers deployed (each with one NIC).
    pub num_servers: u64,
    /// Number of switches deployed.
    pub num_switches: u64,
}

impl_json_struct!(Inventory {
    server_candidates,
    nic_candidates,
    switch_candidates,
    num_servers,
    num_switches,
});

/// Whether a role must, may, or must not be filled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoleRule {
    /// Exactly one system of this category must be selected.
    Required,
    /// At most one system of this category may be selected.
    Optional,
    /// No system of this category may be selected.
    Forbidden,
}

impl_json_enum!(RoleRule {
    unit Required,
    unit Optional,
    unit Forbidden,
});

/// One level of the lexicographic objective stack.
#[derive(Clone, PartialEq, Debug)]
pub enum Objective {
    /// Prefer selections ranked higher in the preference order on this
    /// dimension (Listing 3's `latency` / `monitoring` terms).
    MaximizeDimension(Dimension),
    /// Minimize total monetary cost of hardware and systems (Listing 3's
    /// `Hardware cost` term).
    MinimizeCost,
    /// Prefer deployments that provide this capability (soft version of a
    /// workload need).
    PreferCapability(Capability),
}

impl_json_enum!(Objective {
    one MaximizeDimension(Dimension),
    unit MinimizeCost,
    one PreferCapability(Capability),
});

/// A WhatIf pin: force a system in or out of the design.
#[derive(Clone, PartialEq, Debug)]
pub enum Pin {
    /// The system must be part of the design ("already deployed").
    Require(SystemId),
    /// The system must not be part of the design.
    Forbid(SystemId),
}

impl_json_enum!(Pin {
    one Require(SystemId),
    one Forbid(SystemId),
});

/// A complete design question.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The knowledge catalog in force.
    pub catalog: Catalog,
    /// Workloads the architecture must carry.
    pub workloads: Vec<Workload>,
    /// Hardware candidates and counts.
    pub inventory: Inventory,
    /// Numeric parameters (`link_speed_gbps`, etc.). `num_flows` and
    /// `peak_cores` are derived from workloads automatically but may be
    /// overridden here.
    pub params: BTreeMap<ParamName, f64>,
    /// Role requirements. Categories not listed default to `Optional`.
    pub roles: BTreeMap<Category, RoleRule>,
    /// Lexicographic objective stack, most important first.
    pub objectives: Vec<Objective>,
    /// WhatIf pins.
    pub pins: Vec<Pin>,
    /// Optional budget cap on total cost, USD.
    pub budget_usd: Option<u64>,
}

impl_json_struct!(Scenario {
    catalog,
    workloads,
    inventory,
    params,
    roles,
    objectives,
    pins,
    budget_usd,
});

impl Scenario {
    /// Creates a scenario over a catalog with everything else empty.
    pub fn new(catalog: Catalog) -> Scenario {
        Scenario {
            catalog,
            workloads: Vec::new(),
            inventory: Inventory::default(),
            params: BTreeMap::new(),
            roles: BTreeMap::new(),
            objectives: Vec::new(),
            pins: Vec::new(),
            budget_usd: None,
        }
    }

    /// Adds a workload.
    pub fn with_workload(mut self, workload: Workload) -> Scenario {
        self.workloads.push(workload);
        self
    }

    /// Sets a parameter.
    pub fn with_param(mut self, name: impl Into<ParamName>, value: f64) -> Scenario {
        self.params.insert(name.into(), value);
        self
    }

    /// Declares a role rule.
    pub fn with_role(mut self, category: Category, rule: RoleRule) -> Scenario {
        self.roles.insert(category, rule);
        self
    }

    /// Appends an objective level.
    pub fn with_objective(mut self, objective: Objective) -> Scenario {
        self.objectives.push(objective);
        self
    }

    /// Adds a pin.
    pub fn with_pin(mut self, pin: Pin) -> Scenario {
        self.pins.push(pin);
        self
    }

    /// Sets the inventory.
    pub fn with_inventory(mut self, inventory: Inventory) -> Scenario {
        self.inventory = inventory;
        self
    }

    /// Sets the budget.
    pub fn with_budget(mut self, usd: u64) -> Scenario {
        self.budget_usd = Some(usd);
        self
    }

    /// The effective role rule for a category.
    pub fn role_rule(&self, category: &Category) -> RoleRule {
        self.roles.get(category).copied().unwrap_or(RoleRule::Optional)
    }

    /// The effective value of a parameter: explicit params win, then
    /// derived workload aggregates (`num_flows`, `peak_cores`,
    /// `peak_bandwidth_gbps`, `num_workloads`).
    pub fn param_value(&self, name: &ParamName) -> Option<f64> {
        if let Some(v) = self.params.get(name) {
            return Some(*v);
        }
        match name.as_str() {
            "num_flows" => Some(self.workloads.iter().map(|w| w.num_flows).sum::<u64>() as f64),
            "peak_cores" => Some(self.workloads.iter().map(|w| w.peak_cores).sum::<u64>() as f64),
            "peak_bandwidth_gbps" => Some(
                self.workloads
                    .iter()
                    .map(|w| w.peak_bandwidth_gbps)
                    .sum::<u64>() as f64,
            ),
            "num_workloads" => Some(self.workloads.len() as f64),
            "num_servers" => Some(self.inventory.num_servers as f64),
            "num_switches" => Some(self.inventory.num_switches as f64),
            _ => None,
        }
    }
}

/// One mechanical change to a scenario, produced by the sweep layer when
/// materializing an enumerated variant. Edits are deliberately coarse —
/// each one overwrites a whole knob — so that applying the same edit list
/// to the same base scenario is trivially deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioEdit {
    /// Pin a system into the design (`Pin::Require`).
    RequireSystem(SystemId),
    /// Pin a system out of the design (`Pin::Forbid`).
    ForbidSystem(SystemId),
    /// Replace the NIC candidate list.
    NicCandidates(Vec<HardwareId>),
    /// Replace the server candidate list.
    ServerCandidates(Vec<HardwareId>),
    /// Replace the switch candidate list.
    SwitchCandidates(Vec<HardwareId>),
    /// Set the server count.
    NumServers(u64),
    /// Set (or override) a numeric parameter.
    SetParam(ParamName, f64),
}

impl Scenario {
    /// Returns a copy of `self` with `edits` applied in order. Later edits
    /// to the same knob win, matching the stream order the sweep
    /// enumerator emits.
    pub fn with_edits(&self, edits: &[ScenarioEdit]) -> Scenario {
        let mut out = self.clone();
        for edit in edits {
            match edit {
                ScenarioEdit::RequireSystem(id) => {
                    out.pins.push(Pin::Require(id.clone()));
                }
                ScenarioEdit::ForbidSystem(id) => {
                    out.pins.push(Pin::Forbid(id.clone()));
                }
                ScenarioEdit::NicCandidates(ids) => {
                    out.inventory.nic_candidates = ids.clone();
                }
                ScenarioEdit::ServerCandidates(ids) => {
                    out.inventory.server_candidates = ids.clone();
                }
                ScenarioEdit::SwitchCandidates(ids) => {
                    out.inventory.switch_candidates = ids.clone();
                }
                ScenarioEdit::NumServers(n) => {
                    out.inventory.num_servers = *n;
                }
                ScenarioEdit::SetParam(name, value) => {
                    out.params.insert(name.clone(), *value);
                }
            }
        }
        out
    }
}

impl StaticContext for Scenario {
    fn param(&self, name: &ParamName) -> Option<f64> {
        self.param_value(name)
    }

    fn workload_has(&self, property: &Property) -> bool {
        self.workloads.iter().any(|w| w.has_property(property))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_params_aggregate_workloads() {
        let s = Scenario::new(Catalog::new())
            .with_workload(
                Workload::builder("w1").num_flows(100).peak_cores(10).peak_bandwidth(5).build(),
            )
            .with_workload(
                Workload::builder("w2").num_flows(50).peak_cores(20).peak_bandwidth(10).build(),
            );
        assert_eq!(s.param_value(&ParamName::new("num_flows")), Some(150.0));
        assert_eq!(s.param_value(&ParamName::new("peak_cores")), Some(30.0));
        assert_eq!(s.param_value(&ParamName::new("peak_bandwidth_gbps")), Some(15.0));
        assert_eq!(s.param_value(&ParamName::new("num_workloads")), Some(2.0));
        assert_eq!(s.param_value(&ParamName::new("undefined")), None);
    }

    #[test]
    fn explicit_params_override_derived() {
        let s = Scenario::new(Catalog::new())
            .with_workload(Workload::builder("w").num_flows(100).build())
            .with_param("num_flows", 9.0);
        assert_eq!(s.param_value(&ParamName::new("num_flows")), Some(9.0));
    }

    #[test]
    fn static_context_sees_workload_properties() {
        let s = Scenario::new(Catalog::new())
            .with_workload(Workload::builder("w").property("wan_traffic").build());
        assert!(s.workload_has(&Property::new("wan_traffic")));
        assert!(!s.workload_has(&Property::new("short_flows")));
    }

    #[test]
    fn edits_apply_in_order_and_leave_base_untouched() {
        let base = Scenario::new(Catalog::new()).with_param("link_speed_gbps", 10.0);
        let edited = base.with_edits(&[
            ScenarioEdit::RequireSystem(SystemId::new("SONATA")),
            ScenarioEdit::NumServers(4),
            ScenarioEdit::SetParam(ParamName::new("link_speed_gbps"), 40.0),
            ScenarioEdit::SetParam(ParamName::new("link_speed_gbps"), 100.0),
            ScenarioEdit::NicCandidates(vec![HardwareId::new("NIC_A")]),
        ]);
        assert_eq!(edited.pins, vec![Pin::Require(SystemId::new("SONATA"))]);
        assert_eq!(edited.inventory.num_servers, 4);
        assert_eq!(edited.param_value(&ParamName::new("link_speed_gbps")), Some(100.0));
        assert_eq!(edited.inventory.nic_candidates, vec![HardwareId::new("NIC_A")]);
        assert_eq!(base.inventory.num_servers, 0);
        assert!(base.pins.is_empty());
    }

    #[test]
    fn role_rules_default_to_optional() {
        let s = Scenario::new(Catalog::new())
            .with_role(Category::Monitoring, RoleRule::Required);
        assert_eq!(s.role_rule(&Category::Monitoring), RoleRule::Required);
        assert_eq!(s.role_rule(&Category::Firewall), RoleRule::Optional);
    }
}
