//! Baseline reasoners and the independent design validator.
//!
//! The paper motivates SAT-based reasoning by contrast with two
//! alternatives: manual whiteboard planning (§2, error-prone on subtle
//! cross-system interactions) and LLMs-as-reasoners (§5.2, "failed to
//! return correct results when faced with nuances"). This module provides
//! executable stand-ins for both, plus an exhaustive enumerator as ground
//! truth for small scenarios:
//!
//! * [`GreedyArchitect`] — fills roles one at a time by local preference,
//!   never revisits earlier choices, checks only the requirements that are
//!   *directly visible* at each step. Mimics sequential human planning.
//! * [`ExhaustiveSearch`] — tries every combination (bounded); ground
//!   truth for correctness tests.
//! * [`SimulatedLlm`] — answers aggregate numeric queries exactly, but
//!   proposes designs from unconditional "popularity" and *never reports
//!   incomparability* (overconfidence is the failure mode §5.2 observed).
//!   This is a deterministic, seeded stand-in for GPT-4o — see DESIGN.md
//!   substitution #1.
//!
//! [`validate_design`] re-checks a design against scenario semantics
//! *without* the SAT solver, so engine and baselines are judged by the
//! same independent referee.

use crate::condition::Condition;
use crate::ordering::Comparison;
use crate::scenario::{Pin, RoleRule, Scenario};
use crate::solution::Design;
use crate::types::{Category, Dimension, HardwareId, HardwareKind, Resource, SystemId};
use std::collections::{BTreeMap, BTreeSet};

/// A rule violation found by [`validate_design`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable label mirroring the compiled rule labels.
    pub label: String,
    /// Human-readable description.
    pub description: String,
}

/// Evaluates a condition against a concrete design (semantic reference
/// implementation, independent of the SAT encoding).
pub fn eval_condition(condition: &Condition, scenario: &Scenario, design: &Design) -> bool {
    match condition {
        Condition::True => true,
        Condition::False => false,
        Condition::SystemSelected(id) => design.includes(id),
        Condition::CategoryFilled(cat) => design
            .selections
            .get(cat)
            .is_some_and(|v| !v.is_empty()),
        Condition::NicFeature(f) => hardware_has(scenario, design, HardwareKind::Nic, f),
        Condition::SwitchFeature(f) => hardware_has(scenario, design, HardwareKind::Switch, f),
        Condition::ServerFeature(f) => hardware_has(scenario, design, HardwareKind::Server, f),
        Condition::ProvidedFeature(f) => {
            let by_system = design.systems().iter().any(|id| {
                scenario
                    .catalog
                    .system(id)
                    .is_some_and(|s| s.provides.contains(f))
            });
            by_system
                || [HardwareKind::Server, HardwareKind::Nic, HardwareKind::Switch]
                    .iter()
                    .any(|&k| hardware_has(scenario, design, k, f))
        }
        Condition::WorkloadProperty(p) => {
            scenario.workloads.iter().any(|w| w.has_property(p))
        }
        Condition::Param(name, op, v) => scenario
            .param_value(name)
            .is_some_and(|actual| op.apply(actual, *v)),
        Condition::Not(inner) => !eval_condition(inner, scenario, design),
        Condition::All(parts) => parts.iter().all(|p| eval_condition(p, scenario, design)),
        Condition::Any(parts) => parts.iter().any(|p| eval_condition(p, scenario, design)),
    }
}

fn hardware_has(
    scenario: &Scenario,
    design: &Design,
    kind: HardwareKind,
    feature: &crate::types::Feature,
) -> bool {
    design
        .hardware_for(kind)
        .and_then(|id| scenario.catalog.hardware(id))
        .is_some_and(|h| h.has_feature(feature))
}

/// Checks a design against every scenario rule; returns all violations.
pub fn validate_design(scenario: &Scenario, design: &Design) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut push = |label: String, description: String| {
        violations.push(Violation { label, description });
    };

    // Role rules.
    let mut categories: BTreeSet<Category> =
        scenario.catalog.systems().map(|s| s.category.clone()).collect();
    categories.extend(scenario.roles.keys().cloned());
    for cat in &categories {
        let count = design.selections.get(cat).map_or(0, Vec::len);
        match scenario.role_rule(cat) {
            RoleRule::Required if count != 1 => push(
                format!("role:{cat}"),
                format!("category {cat} must have exactly one selection, has {count}"),
            ),
            RoleRule::Optional if count > 1 => push(
                format!("role:{cat}"),
                format!("category {cat} allows at most one selection, has {count}"),
            ),
            RoleRule::Forbidden if count > 0 => push(
                format!("role:{cat}"),
                format!("category {cat} is forbidden but has {count} selections"),
            ),
            _ => {}
        }
    }

    // System requirements and conflicts.
    for id in design.systems() {
        let Some(spec) = scenario.catalog.system(id) else {
            push(
                format!("unknown:{id}"),
                format!("design references unknown system {id}"),
            );
            continue;
        };
        for req in &spec.requires {
            if !eval_condition(&req.condition, scenario, design) {
                push(
                    format!("req:{id}:{}", req.label),
                    format!("{} requires {}", spec.name, req.condition),
                );
            }
        }
        for other in &spec.conflicts {
            if design.includes(other) {
                push(
                    format!("conflict:{id}:{other}"),
                    format!("{id} conflicts with {other}"),
                );
            }
        }
    }

    // Workload needs and bounds.
    for w in &scenario.workloads {
        for cap in &w.needs {
            let provided = design.systems().iter().any(|id| {
                scenario.catalog.system(id).is_some_and(|s| s.solves(cap))
            });
            if !provided {
                push(
                    format!("workload:{}:needs:{cap}", w.id),
                    format!("workload {} needs {cap}", w.id),
                );
            }
        }
        for bound in &w.bounds {
            let Some(reference) = scenario.catalog.system(&bound.better_than) else {
                continue;
            };
            let cat = &reference.category;
            let ok = design.selections.get(cat).is_some_and(|sel| {
                sel.iter().any(|id| {
                    id == &bound.better_than
                        || matches!(
                            scenario.catalog.order().compare(
                                id,
                                &bound.better_than,
                                &bound.dimension,
                                scenario
                            ),
                            Comparison::Better | Comparison::Equal
                        )
                })
            });
            if !ok {
                push(
                    format!("bound:{}:{}", w.id, bound.dimension),
                    format!(
                        "workload {} requires {} at least as good as {}",
                        w.id, bound.dimension, bound.better_than
                    ),
                );
            }
        }
    }

    // Hardware slots: one model chosen per populated slot.
    let inv = &scenario.inventory;
    for (candidates, kind) in [
        (&inv.server_candidates, HardwareKind::Server),
        (&inv.nic_candidates, HardwareKind::Nic),
        (&inv.switch_candidates, HardwareKind::Switch),
    ] {
        if candidates.is_empty() {
            continue;
        }
        match design.hardware_for(kind) {
            None => push(
                format!("hw:{kind}"),
                format!("no {kind} model chosen from a populated slot"),
            ),
            Some(id) if !candidates.contains(id) => push(
                format!("hw:{kind}"),
                format!("{kind} model {id} is not among the candidates"),
            ),
            Some(_) => {}
        }
    }

    // Resources.
    for (resource, usage) in &design.resources {
        if let Some(capacity) = usage.capacity {
            if usage.used > capacity {
                push(
                    format!("resource:{resource}"),
                    format!("{resource} demand {} exceeds capacity {capacity}", usage.used),
                );
            }
        }
    }

    // Pins and budget.
    for pin in &scenario.pins {
        match pin {
            Pin::Require(id) if !design.includes(id) => push(
                format!("pin:require:{id}"),
                format!("pinned system {id} missing from design"),
            ),
            Pin::Forbid(id) if design.includes(id) => push(
                format!("pin:forbid:{id}"),
                format!("forbidden system {id} present in design"),
            ),
            _ => {}
        }
    }
    if let Some(budget) = scenario.budget_usd {
        if design.total_cost_usd > budget {
            push(
                "budget".to_string(),
                format!("cost ${} exceeds budget ${budget}", design.total_cost_usd),
            );
        }
    }
    violations
}

/// A design-proposing strategy, for head-to-head comparison with the
/// SAT engine (experiment E8).
pub trait Reasoner {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Proposes a design, or `None` when the strategy gives up.
    fn propose(&mut self, scenario: &Scenario) -> Option<Design>;

    /// Compares two systems along a dimension (how the strategy would
    /// answer a rule-of-thumb question).
    fn compare(&mut self, scenario: &Scenario, a: &SystemId, b: &SystemId, dim: &Dimension)
        -> Comparison;
}

/// Sequential human-style planning: fill each role by local preference,
/// never backtrack, check only requirements visible at selection time.
#[derive(Default)]
pub struct GreedyArchitect;

impl GreedyArchitect {
    /// Creates the baseline.
    pub fn new() -> GreedyArchitect {
        GreedyArchitect
    }

    fn score(&self, scenario: &Scenario, id: &SystemId) -> (usize, u64) {
        // Prefer systems that dominate more peers on the scenario's first
        // dimension objective; tie-break on cost. Workload performance
        // bounds are respected when directly visible — the architect does
        // read the requirements sheet; what they lose is cross-component
        // interactions.
        let dim = scenario.objectives.iter().find_map(|o| match o {
            crate::scenario::Objective::MaximizeDimension(d) => Some(d.clone()),
            _ => None,
        });
        let rank = dim
            .map(|d| {
                let spec = scenario.catalog.system(id);
                let members: Vec<SystemId> = spec
                    .map(|s| {
                        scenario
                            .catalog
                            .systems_in(&s.category)
                            .iter()
                            .map(|m| m.id.clone())
                            .collect()
                    })
                    .unwrap_or_default();
                *scenario
                    .catalog
                    .order()
                    .ranks(&members, &d, scenario)
                    .get(id)
                    .unwrap_or(&0)
            })
            .unwrap_or(0);
        let bound_bonus = if self.meets_bounds(scenario, id) { 1_000 } else { 0 };
        let cost = scenario.catalog.system(id).map_or(0, |s| s.cost_usd);
        (rank + bound_bonus, cost)
    }

    /// Whether `id` satisfies every workload bound aimed at its category.
    fn meets_bounds(&self, scenario: &Scenario, id: &SystemId) -> bool {
        let Some(spec) = scenario.catalog.system(id) else { return true };
        scenario.workloads.iter().all(|w| {
            w.bounds.iter().all(|bound| {
                let Some(reference) = scenario.catalog.system(&bound.better_than) else {
                    return true;
                };
                if reference.category != spec.category {
                    return true;
                }
                id == &bound.better_than
                    || matches!(
                        scenario.catalog.order().compare(
                            id,
                            &bound.better_than,
                            &bound.dimension,
                            scenario
                        ),
                        Comparison::Better | Comparison::Equal
                    )
            })
        })
    }
}

impl Reasoner for GreedyArchitect {
    fn name(&self) -> &'static str {
        "greedy-architect"
    }

    fn propose(&mut self, scenario: &Scenario) -> Option<Design> {
        let mut selected: Vec<SystemId> = Vec::new();
        // Respect pins first (humans do remember explicit decisions).
        for pin in &scenario.pins {
            if let Pin::Require(id) = pin {
                selected.push(id.clone());
            }
        }
        let forbidden: BTreeSet<&SystemId> = scenario
            .pins
            .iter()
            .filter_map(|p| match p {
                Pin::Forbid(id) => Some(id),
                _ => None,
            })
            .collect();

        // Needed capabilities: pick one provider each, greedily.
        let needed: BTreeSet<_> = scenario
            .workloads
            .iter()
            .flat_map(|w| w.needs.iter().cloned())
            .collect();
        for cap in needed {
            if selected.iter().any(|id| {
                scenario.catalog.system(id).is_some_and(|s| s.solves(&cap))
            }) {
                continue;
            }
            let mut providers = scenario.catalog.systems_solving(&cap);
            providers.retain(|s| !forbidden.contains(&s.id));
            providers.sort_by(|a, b| {
                let sa = self.score(scenario, &a.id);
                let sb = self.score(scenario, &b.id);
                sb.0.cmp(&sa.0).then(sa.1.cmp(&sb.1)).then(a.id.cmp(&b.id))
            });
            selected.push(providers.first()?.id.clone());
        }

        // Required roles: fill by local score.
        for (cat, rule) in &scenario.roles {
            if *rule != RoleRule::Required {
                continue;
            }
            if selected.iter().any(|id| {
                scenario.catalog.system(id).map(|s| &s.category) == Some(cat)
            }) {
                continue;
            }
            let mut members = scenario.catalog.systems_in(cat);
            members.retain(|s| !forbidden.contains(&s.id));
            members.sort_by(|a, b| {
                let sa = self.score(scenario, &a.id);
                let sb = self.score(scenario, &b.id);
                sb.0.cmp(&sa.0).then(sa.1.cmp(&sb.1)).then(a.id.cmp(&b.id))
            });
            selected.push(members.first()?.id.clone());
        }

        // Hardware: cheapest model per slot that satisfies the *directly
        // visible* single-feature requirements of the chosen systems.
        // (This single pass is exactly where the whiteboard method loses
        // cross-system interactions.)
        let mut needed_features: BTreeMap<HardwareKind, BTreeSet<crate::types::Feature>> =
            BTreeMap::new();
        for id in &selected {
            let Some(spec) = scenario.catalog.system(id) else { continue };
            for req in &spec.requires {
                match &req.condition {
                    Condition::NicFeature(f) => {
                        needed_features.entry(HardwareKind::Nic).or_default().insert(f.clone());
                    }
                    Condition::SwitchFeature(f) => {
                        needed_features
                            .entry(HardwareKind::Switch)
                            .or_default()
                            .insert(f.clone());
                    }
                    Condition::ServerFeature(f) => {
                        needed_features
                            .entry(HardwareKind::Server)
                            .or_default()
                            .insert(f.clone());
                    }
                    _ => {} // nested/compound requirements are overlooked
                }
            }
        }
        let inv = &scenario.inventory;
        let mut hardware: BTreeMap<HardwareKind, HardwareId> = BTreeMap::new();
        for (candidates, kind) in [
            (&inv.server_candidates, HardwareKind::Server),
            (&inv.nic_candidates, HardwareKind::Nic),
            (&inv.switch_candidates, HardwareKind::Switch),
        ] {
            if candidates.is_empty() {
                continue;
            }
            let needs = needed_features.get(&kind);
            let mut viable: Vec<&HardwareId> = candidates
                .iter()
                .filter(|id| {
                    let Some(h) = scenario.catalog.hardware(id) else { return false };
                    needs.is_none_or(|fs| fs.iter().all(|f| h.has_feature(f)))
                })
                .collect();
            viable.sort_by_key(|id| scenario.catalog.hardware(id).map_or(0, |h| h.cost_usd));
            let choice = viable.first().copied().unwrap_or(candidates.first()?);
            hardware.insert(kind, choice.clone());
        }

        let selected_set: BTreeSet<SystemId> = selected.into_iter().collect();
        Some(Design::from_model(
            scenario,
            |id| selected_set.contains(id),
            |id| hardware.values().any(|h| h == id),
        ))
    }

    fn compare(
        &mut self,
        scenario: &Scenario,
        a: &SystemId,
        b: &SystemId,
        dim: &Dimension,
    ) -> Comparison {
        // Humans with the catalog open: faithful, including "don't know".
        scenario.catalog.order().compare(a, b, dim, scenario)
    }
}

/// Exhaustive enumeration over role-wise combinations; ground truth for
/// small scenarios. Gives up beyond `max_combinations`.
pub struct ExhaustiveSearch {
    /// Combination budget before giving up.
    pub max_combinations: u64,
}

impl Default for ExhaustiveSearch {
    fn default() -> ExhaustiveSearch {
        ExhaustiveSearch { max_combinations: 2_000_000 }
    }
}

impl ExhaustiveSearch {
    /// Creates the baseline with the default budget.
    pub fn new() -> ExhaustiveSearch {
        ExhaustiveSearch::default()
    }
}

impl Reasoner for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive-search"
    }

    fn propose(&mut self, scenario: &Scenario) -> Option<Design> {
        // Choice lists: per category, the candidate systems (plus None when
        // not required); per populated hardware slot, the candidates.
        let mut categories: Vec<Category> =
            scenario.catalog.systems().map(|s| s.category.clone()).collect();
        categories.sort();
        categories.dedup();
        let mut axes: Vec<Vec<Option<SystemId>>> = Vec::new();
        for cat in &categories {
            let rule = scenario.role_rule(cat);
            if rule == RoleRule::Forbidden {
                continue;
            }
            let mut axis: Vec<Option<SystemId>> = Vec::new();
            if rule != RoleRule::Required {
                axis.push(None);
            }
            for s in scenario.catalog.systems_in(cat) {
                axis.push(Some(s.id.clone()));
            }
            axes.push(axis);
        }
        let inv = &scenario.inventory;
        let mut hw_axes: Vec<Vec<HardwareId>> = Vec::new();
        for candidates in [&inv.server_candidates, &inv.nic_candidates, &inv.switch_candidates] {
            if !candidates.is_empty() {
                hw_axes.push(candidates.clone());
            }
        }
        let total: u64 = axes
            .iter()
            .map(|a| a.len() as u64)
            .chain(hw_axes.iter().map(|a| a.len() as u64))
            .product();
        if total > self.max_combinations {
            return None;
        }

        let mut indices = vec![0usize; axes.len() + hw_axes.len()];
        loop {
            let systems: BTreeSet<SystemId> = axes
                .iter()
                .zip(&indices)
                .filter_map(|(axis, &i)| axis[i].clone())
                .collect();
            let hardware: BTreeSet<HardwareId> = hw_axes
                .iter()
                .zip(&indices[axes.len()..])
                .map(|(axis, &i)| axis[i].clone())
                .collect();
            let design = Design::from_model(
                scenario,
                |id| systems.contains(id),
                |id| hardware.contains(id),
            );
            if validate_design(scenario, &design).is_empty() {
                return Some(design);
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == indices.len() {
                    return None;
                }
                let axis_len = if k < axes.len() {
                    axes[k].len()
                } else {
                    hw_axes[k - axes.len()].len()
                };
                indices[k] += 1;
                if indices[k] < axis_len {
                    break;
                }
                indices[k] = 0;
                k += 1;
            }
        }
    }

    fn compare(
        &mut self,
        scenario: &Scenario,
        a: &SystemId,
        b: &SystemId,
        dim: &Dimension,
    ) -> Comparison {
        scenario.catalog.order().compare(a, b, dim, scenario)
    }
}

/// Deterministic stand-in for an LLM asked to reason over the encodings
/// (paper §5.2). Good at aggregates; overconfident and condition-blind on
/// nuanced comparisons.
pub struct SimulatedLlm {
    seed: u64,
}

impl SimulatedLlm {
    /// Creates the baseline with a seed controlling its hallucinated
    /// tie-breaks.
    pub fn new(seed: u64) -> SimulatedLlm {
        SimulatedLlm { seed }
    }

    /// Aggregate numeric query it *does* answer correctly (§5.2: "it
    /// accurately determined straightforward requirements such as the
    /// minimum number of cores"): total cores needed by all workloads plus
    /// all selected systems of a design.
    pub fn min_cores_needed(&self, scenario: &Scenario, design: &Design) -> u64 {
        let workload: u64 = scenario.workloads.iter().map(|w| w.peak_cores).sum();
        let systems: u64 = design
            .systems()
            .iter()
            .filter_map(|id| scenario.catalog.system(id))
            .flat_map(|s| &s.resources)
            .filter(|d| d.resource == Resource::Cores)
            .filter_map(|d| d.amount.eval(&|n| scenario.param_value(n)).ok())
            .sum();
        workload + systems
    }

    fn hash(&self, text: &str) -> u64 {
        // FNV-1a with the seed folded in: deterministic "hallucination".
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl Reasoner for SimulatedLlm {
    fn name(&self) -> &'static str {
        "simulated-llm"
    }

    fn propose(&mut self, scenario: &Scenario) -> Option<Design> {
        // Selection by unconditional popularity: global dominance count
        // across *all* dimensions ignoring every edge condition — exactly
        // the nuance-blindness §5.2 reports. Conflicts and hardware
        // requirements are not consulted.
        let mut selected: BTreeSet<SystemId> = BTreeSet::new();
        for pin in &scenario.pins {
            if let Pin::Require(id) = pin {
                selected.insert(id.clone());
            }
        }
        let needed: BTreeSet<_> = scenario
            .workloads
            .iter()
            .flat_map(|w| w.needs.iter().cloned())
            .collect();
        let popularity = |id: &SystemId| -> usize {
            scenario
                .catalog
                .order()
                .edges()
                .iter()
                .filter(|e| &e.better == id) // conditions ignored!
                .count()
        };
        for cap in needed {
            let mut providers = scenario.catalog.systems_solving(&cap);
            providers.sort_by(|a, b| {
                popularity(&b.id)
                    .cmp(&popularity(&a.id))
                    .then_with(|| self.hash(a.id.as_str()).cmp(&self.hash(b.id.as_str())))
            });
            if let Some(first) = providers.first() {
                selected.insert(first.id.clone());
            }
        }
        for (cat, rule) in &scenario.roles {
            if *rule != RoleRule::Required {
                continue;
            }
            if selected.iter().any(|id| {
                scenario.catalog.system(id).map(|s| &s.category) == Some(cat)
            }) {
                continue;
            }
            let mut members = scenario.catalog.systems_in(cat);
            members.sort_by_key(|s| std::cmp::Reverse(popularity(&s.id)));
            if let Some(first) = members.first() {
                selected.insert(first.id.clone());
            }
        }
        // Hardware: picks the "best-sounding" (most features) model,
        // ignoring what the chosen systems actually require.
        let inv = &scenario.inventory;
        let mut hardware: BTreeSet<HardwareId> = BTreeSet::new();
        for candidates in [&inv.server_candidates, &inv.nic_candidates, &inv.switch_candidates] {
            let best = candidates.iter().max_by_key(|id| {
                scenario.catalog.hardware(id).map_or(0, |h| h.features.len())
            });
            if let Some(id) = best {
                hardware.insert(id.clone());
            }
        }
        Some(Design::from_model(
            scenario,
            |id| selected.contains(id),
            |id| hardware.contains(id),
        ))
    }

    fn compare(
        &mut self,
        scenario: &Scenario,
        a: &SystemId,
        b: &SystemId,
        dim: &Dimension,
    ) -> Comparison {
        // Ignores edge conditions; never admits incomparability.
        let unconditional_a = scenario
            .catalog
            .order()
            .edges_on(dim)
            .any(|e| &e.better == a && &e.worse == b);
        let unconditional_b = scenario
            .catalog
            .order()
            .edges_on(dim)
            .any(|e| &e.better == b && &e.worse == a);
        match (unconditional_a, unconditional_b) {
            (true, false) => Comparison::Better,
            (false, true) => Comparison::Worse,
            _ => {
                // Hallucinated confident answer.
                if self.hash(a.as_str()) > self.hash(b.as_str()) {
                    Comparison::Better
                } else {
                    Comparison::Worse
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::component::{HardwareSpec, SystemSpec};
    use crate::condition::AmountExpr;
    use crate::ordering::OrderingEdge;
    use crate::scenario::Inventory;
    use crate::workload::Workload;

    /// Scenario with a hidden cross-system interaction: system B requires
    /// a switch feature only present on the model that also carries A's.
    fn tricky_scenario() -> Scenario {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("A", Category::CongestionControl)
                    .solves("bandwidth_allocation")
                    .requires("a-needs-ecn", Condition::switches_have("ECN"))
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("B", Category::Monitoring)
                    .solves("monitoring")
                    .requires("b-needs-int", Condition::switches_have("INT"))
                    .build(),
            )
            .unwrap();
        // SW1: ECN only (cheap). SW2: ECN + INT (expensive).
        catalog
            .add_hardware(
                HardwareSpec::builder("SW1", HardwareKind::Switch)
                    .feature("ECN")
                    .cost(100)
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SW2", HardwareKind::Switch)
                    .feature("ECN")
                    .feature("INT")
                    .cost(900)
                    .build(),
            )
            .unwrap();
        Scenario::new(catalog)
            .with_workload(
                Workload::builder("app")
                    .needs("bandwidth_allocation")
                    .needs("monitoring")
                    .build(),
            )
            .with_inventory(Inventory {
                switch_candidates: vec![HardwareId::new("SW1"), HardwareId::new("SW2")],
                num_switches: 2,
                ..Inventory::default()
            })
    }

    #[test]
    fn validator_accepts_correct_design() {
        let s = tricky_scenario();
        let d = Design::from_model(
            &s,
            |id| matches!(id.as_str(), "A" | "B"),
            |id| id.as_str() == "SW2",
        );
        assert_eq!(validate_design(&s, &d), vec![]);
    }

    #[test]
    fn validator_catches_each_violation_kind() {
        let s = tricky_scenario();
        // Wrong switch: B's INT requirement violated.
        let d = Design::from_model(
            &s,
            |id| matches!(id.as_str(), "A" | "B"),
            |id| id.as_str() == "SW1",
        );
        let violations = validate_design(&s, &d);
        assert!(violations.iter().any(|v| v.label == "req:B:b-needs-int"));

        // Missing capability.
        let d = Design::from_model(&s, |id| id.as_str() == "A", |id| id.as_str() == "SW2");
        let violations = validate_design(&s, &d);
        assert!(violations
            .iter()
            .any(|v| v.label == "workload:app:needs:monitoring"));

        // No switch chosen despite populated slot.
        let d = Design::from_model(&s, |id| matches!(id.as_str(), "A" | "B"), |_| false);
        let violations = validate_design(&s, &d);
        assert!(violations.iter().any(|v| v.label == "hw:switch"));
    }

    #[test]
    fn greedy_solves_the_easy_case() {
        let mut greedy = GreedyArchitect::new();
        let s = tricky_scenario();
        let d = greedy.propose(&s).expect("greedy proposes");
        // Both features are directly-visible single-feature requirements,
        // so even greedy lands on SW2 here.
        assert_eq!(validate_design(&s, &d), vec![]);
    }

    #[test]
    fn greedy_misses_resource_contention() {
        // Two systems that individually fit a server's cores but jointly
        // exceed them; greedy picks both happily.
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("HOG1", Category::Monitoring)
                    .solves("monitoring")
                    .consumes(Resource::Cores, AmountExpr::constant(48))
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("HOG2", Category::VirtualSwitch)
                    .solves("virtualization")
                    .consumes(Resource::Cores, AmountExpr::constant(40))
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV", HardwareKind::Server)
                    .numeric("cores", 64.0)
                    .build(),
            )
            .unwrap();
        let s = Scenario::new(catalog)
            .with_workload(
                Workload::builder("app").needs("monitoring").needs("virtualization").build(),
            )
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV")],
                num_servers: 1,
                ..Inventory::default()
            });
        let mut greedy = GreedyArchitect::new();
        let d = greedy.propose(&s).expect("greedy proposes");
        let violations = validate_design(&s, &d);
        assert!(
            violations.iter().any(|v| v.label.starts_with("resource:")),
            "greedy should overcommit cores, got {violations:?}"
        );
        // The SAT engine, by contrast, correctly reports infeasibility.
        let mut engine = crate::query::Engine::new(s).unwrap();
        let outcome = engine.check().unwrap();
        assert!(outcome.diagnosis().is_some());
    }

    #[test]
    fn exhaustive_matches_engine_verdict() {
        let s = tricky_scenario();
        let mut exhaustive = ExhaustiveSearch::new();
        let d = exhaustive.propose(&s).expect("finds the valid combo");
        assert_eq!(validate_design(&s, &d), vec![]);
    }

    #[test]
    fn exhaustive_gives_up_over_budget() {
        let s = tricky_scenario();
        let mut exhaustive = ExhaustiveSearch { max_combinations: 1 };
        assert!(exhaustive.propose(&s).is_none());
    }

    #[test]
    fn llm_answers_aggregates_but_never_admits_ignorance() {
        let s = tricky_scenario();
        let mut llm = SimulatedLlm::new(7);
        let d = llm.propose(&s).expect("llm always answers");
        // Aggregate queries are exact:
        let cores = llm.min_cores_needed(&s, &d);
        assert_eq!(cores, 0); // no core demands in this scenario
        // Comparison: no edges exist, yet it never says Incomparable.
        let verdict = llm.compare(
            &s,
            &SystemId::new("A"),
            &SystemId::new("B"),
            &Dimension::Throughput,
        );
        assert!(matches!(verdict, Comparison::Better | Comparison::Worse));
    }

    #[test]
    fn llm_ignores_edge_conditions() {
        use crate::condition::CmpOp;
        let mut catalog = Catalog::new();
        for id in ["X", "Y"] {
            catalog
                .add_system(SystemSpec::builder(id, Category::NetworkStack).build())
                .unwrap();
        }
        // X beats Y only at ≥ 40 Gbps; scenario runs at 10 Gbps.
        catalog
            .add_ordering(
                OrderingEdge::strict("X", "Y", Dimension::Throughput)
                    .when(Condition::param("link_speed_gbps", CmpOp::Ge, 40.0)),
            )
            .unwrap();
        let s = Scenario::new(catalog).with_param("link_speed_gbps", 10.0);
        // Ground truth: incomparable at 10 Gbps (edge inactive).
        assert_eq!(
            s.catalog.order().compare(
                &SystemId::new("X"),
                &SystemId::new("Y"),
                &Dimension::Throughput,
                &s
            ),
            Comparison::Incomparable
        );
        // The simulated LLM still confidently answers.
        let mut llm = SimulatedLlm::new(1);
        assert!(matches!(
            llm.compare(&s, &SystemId::new("X"), &SystemId::new("Y"), &Dimension::Throughput),
            Comparison::Better | Comparison::Worse
        ));
    }

    #[test]
    fn reasoner_names() {
        assert_eq!(GreedyArchitect::new().name(), "greedy-architect");
        assert_eq!(ExhaustiveSearch::new().name(), "exhaustive-search");
        assert_eq!(SimulatedLlm::new(0).name(), "simulated-llm");
    }
}
