//! Content-addressed scenario fingerprints.
//!
//! A serving layer that caches compiled scenarios needs a cache key that
//! is (a) a pure function of scenario *content* — no pointers, no
//! iteration-order accidents, no per-process salt — and (b) insensitive
//! to representation noise that cannot change any answer: the order in
//! which systems were registered, workloads appended, pins stacked, or
//! inventory candidates listed. Everywhere the model treats a collection
//! as a set or multiset, the fingerprint combines the member digests
//! commutatively; everywhere order carries meaning (the lexicographic
//! objective stack), the combination is sequential.
//!
//! The digest is built bottom-up from **fragment digests**: each system
//! spec, hardware spec, ordering edge, workload, and pin is hashed on its
//! own (over its canonical JSON serialization, which is deterministic —
//! struct fields serialize in declaration order and maps in key order)
//! and the per-section digests are then folded into catalog / context /
//! full digests. The shared-corpus structure this hash-consing exposes is
//! what a multi-tenant service routes on: two users posing different
//! questions over the *same catalog* produce different full fingerprints
//! but the same [`ScenarioFingerprint::catalog`] component, so their
//! sessions can be co-located where learned clauses and branching
//! activity transfer best.
//!
//! The hash is 128-bit FNV-1a with a SplitMix-style finalizer on the
//! commutative paths. It is not cryptographic: a cache keyed by it trusts
//! its tenants not to engineer collisions. At 128 bits, accidental
//! collision over any realistic scenario population is negligible
//! (birthday bound ≈ 2⁶⁴ distinct scenarios).

use crate::catalog::Catalog;
use crate::scenario::Scenario;
use netarch_rt::json::ToJson;
use std::fmt;

/// A 128-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

/// The layered digest of one scenario.
///
/// `full` keys exact-match caching (same digest ⇒ a warm compiled session
/// can answer); `catalog` keys session-affinity routing (same corpus ⇒
/// co-locate, even when workload/pins/objectives differ); `context` is
/// everything but the catalog, so `full` is a pure function of the other
/// two.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScenarioFingerprint {
    /// Digest of the whole scenario.
    pub full: Fingerprint,
    /// Digest of the catalog alone (systems + hardware + ordering edges).
    pub catalog: Fingerprint,
    /// Digest of the architect's inputs (workloads, inventory, params,
    /// roles, objectives, pins, budget).
    pub context: Fingerprint,
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

fn fnv_bytes(mut state: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// SplitMix64 finalizer, used to spread fragment digests before the
/// commutative sum so that structured near-collisions cannot cancel.
fn finalize64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix128(h: u128) -> u128 {
    let lo = finalize64((h as u64).wrapping_add(0x9E37_79B9_7F4A_7C15));
    let hi = finalize64(((h >> 64) as u64).wrapping_add(lo));
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Digest of one fragment: a domain tag plus the fragment's canonical
/// JSON. The tag keeps fragments from different sections (e.g. a pin and
/// a workload that happen to serialize identically) in disjoint domains.
fn fragment<T: ToJson + ?Sized>(tag: &str, value: &T) -> u128 {
    let state = fnv_bytes(FNV_OFFSET, tag.as_bytes());
    let state = fnv_bytes(state, &[0]);
    fnv_bytes(state, netarch_rt::json::to_string(value).as_bytes())
}

/// Order-insensitive combination: the multiset of fragment digests fully
/// determines the result. Each digest is finalized before summing so a
/// coordinated pair of edits cannot cancel by simple arithmetic.
fn unordered(tag: &str, digests: impl Iterator<Item = u128>) -> u128 {
    let mut sum: u128 = 0;
    let mut xor: u128 = 0;
    let mut count: u64 = 0;
    for d in digests {
        let m = mix128(d);
        sum = sum.wrapping_add(m);
        xor ^= m.rotate_left(43);
        count += 1;
    }
    let state = fnv_bytes(FNV_OFFSET, tag.as_bytes());
    let state = fnv_bytes(state, &sum.to_le_bytes());
    let state = fnv_bytes(state, &xor.to_le_bytes());
    fnv_bytes(state, &count.to_le_bytes())
}

/// Order-sensitive combination (the objective stack is lexicographic:
/// swapping two levels is a different scenario).
fn ordered(tag: &str, digests: impl Iterator<Item = u128>) -> u128 {
    let mut state = fnv_bytes(FNV_OFFSET, tag.as_bytes());
    for d in digests {
        state = fnv_bytes(state, &d.to_le_bytes());
    }
    state
}

/// Digest of a catalog: systems, hardware, and ordering edges, each as an
/// unordered multiset of fragment digests. Catalog maps are already
/// id-sorted, but the combination does not rely on it — a catalog
/// assembled in any insertion order digests identically.
pub fn fingerprint_catalog(catalog: &Catalog) -> Fingerprint {
    let systems = unordered("systems", catalog.systems().map(|s| fragment("system", s)));
    let hardware = unordered(
        "hardware",
        catalog.hardware_specs().map(|h| fragment("hardware", h)),
    );
    let edges = unordered(
        "orderings",
        catalog.order().edges().iter().map(|e| fragment("edge", e)),
    );
    Fingerprint(ordered("catalog", [systems, hardware, edges].into_iter()))
}

fn fingerprint_context(scenario: &Scenario) -> Fingerprint {
    let workloads = unordered(
        "workloads",
        scenario.workloads.iter().map(|w| fragment("workload", w)),
    );
    let inv = &scenario.inventory;
    let inventory = ordered(
        "inventory",
        [
            unordered("servers", inv.server_candidates.iter().map(|h| fragment("hw-id", h))),
            unordered("nics", inv.nic_candidates.iter().map(|h| fragment("hw-id", h))),
            unordered("switches", inv.switch_candidates.iter().map(|h| fragment("hw-id", h))),
            fragment("num-servers", &inv.num_servers),
            fragment("num-switches", &inv.num_switches),
        ]
        .into_iter(),
    );
    // Params and roles are BTreeMaps: their canonical JSON is already
    // key-ordered, so a single fragment digest is insertion-order-proof.
    let params = fragment("params", &scenario.params);
    let roles = fragment("roles", &scenario.roles);
    let objectives = ordered(
        "objectives",
        scenario.objectives.iter().map(|o| fragment("objective", o)),
    );
    let pins = unordered("pins", scenario.pins.iter().map(|p| fragment("pin", p)));
    let budget = fragment("budget", &scenario.budget_usd);
    Fingerprint(ordered(
        "context",
        [workloads, inventory, params, roles, objectives, pins, budget].into_iter(),
    ))
}

/// Computes the layered fingerprint of a scenario.
pub fn fingerprint_scenario(scenario: &Scenario) -> ScenarioFingerprint {
    let catalog = fingerprint_catalog(&scenario.catalog);
    let context = fingerprint_context(scenario);
    let full = Fingerprint(ordered("scenario", [catalog.0, context.0].into_iter()));
    ScenarioFingerprint { full, catalog, context }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::SystemSpec;
    use crate::types::Category;

    #[test]
    fn empty_scenario_fingerprint_is_stable() {
        let a = fingerprint_scenario(&Scenario::new(Catalog::new()));
        let b = fingerprint_scenario(&Scenario::new(Catalog::new()));
        assert_eq!(a, b);
        assert_ne!(a.full.0, 0);
    }

    #[test]
    fn catalog_content_changes_all_layers() {
        let empty = Scenario::new(Catalog::new());
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("X", Category::Monitoring).build())
            .unwrap();
        let nonempty = Scenario::new(catalog);
        let a = fingerprint_scenario(&empty);
        let b = fingerprint_scenario(&nonempty);
        assert_ne!(a.full, b.full);
        assert_ne!(a.catalog, b.catalog);
        assert_eq!(a.context, b.context, "catalog edits must not leak into context");
    }

    #[test]
    fn display_is_32_hex_digits() {
        let fp = fingerprint_catalog(&Catalog::new());
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
