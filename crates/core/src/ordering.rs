//! Conditional partial orders over systems — the paper's Figure 1.
//!
//! Performance knowledge is deliberately *not* numeric (§3.2): it is a set
//! of rules-of-thumb of the form "A is better than B along dimension D,
//! when condition C holds" (solid arrows in Figure 1), or "A and B are
//! equal along D" (dashed lines). The order is intentionally *incomplete*:
//! if no chain of edges connects two systems, they are incomparable, and
//! the engine reports that rather than inventing an answer (§3.1: the
//! missing Shenango↔Demikernel isolation comparison).

use crate::condition::{Condition, StaticContext};
use crate::types::{Dimension, SystemId};
use netarch_rt::{impl_json_enum, impl_json_struct};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Edge flavor: strict preference (solid arrow) or equivalence (dashed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// `better ≻ worse` (solid arrow, points to the lower system).
    Strict,
    /// `better ≈ worse` (dashed line, both equal).
    Equal,
}

impl_json_enum!(EdgeKind {
    unit Strict,
    unit Equal,
});

/// One rule-of-thumb preference edge.
#[derive(Clone, PartialEq, Debug)]
pub struct OrderingEdge {
    /// The preferred system (for `Equal`, an arbitrary side).
    pub better: SystemId,
    /// The less-preferred system (for `Equal`, the other side).
    pub worse: SystemId,
    /// The dimension the edge speaks about.
    pub dimension: Dimension,
    /// When the edge applies (Figure 1: "Network load ≥ 40 Gbps").
    pub condition: Condition,
    /// Strict preference or equivalence.
    pub kind: EdgeKind,
    /// Source of the rule.
    pub citation: Option<String>,
}

impl_json_struct!(OrderingEdge {
    better,
    worse,
    dimension,
    condition,
    kind,
    citation,
});

impl OrderingEdge {
    /// An unconditional strict edge `better ≻ worse` on `dimension`.
    pub fn strict(
        better: impl Into<SystemId>,
        worse: impl Into<SystemId>,
        dimension: Dimension,
    ) -> OrderingEdge {
        OrderingEdge {
            better: better.into(),
            worse: worse.into(),
            dimension,
            condition: Condition::True,
            kind: EdgeKind::Strict,
            citation: None,
        }
    }

    /// An unconditional equivalence edge on `dimension`.
    pub fn equal(
        a: impl Into<SystemId>,
        b: impl Into<SystemId>,
        dimension: Dimension,
    ) -> OrderingEdge {
        OrderingEdge {
            better: a.into(),
            worse: b.into(),
            dimension,
            condition: Condition::True,
            kind: EdgeKind::Equal,
            citation: None,
        }
    }

    /// Restricts the edge to a condition.
    pub fn when(mut self, condition: Condition) -> OrderingEdge {
        self.condition = condition;
        self
    }

    /// Attaches a citation.
    pub fn cited(mut self, citation: impl Into<String>) -> OrderingEdge {
        self.citation = Some(citation.into());
        self
    }
}

/// Outcome of comparing two systems in a context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Comparison {
    /// The first system strictly dominates the second.
    Better,
    /// The second system strictly dominates the first.
    Worse,
    /// Connected only through equivalence edges.
    Equal,
    /// No chain of applicable edges relates the two — the knowledge base
    /// simply does not know (first-class incompleteness, §3.1).
    Incomparable,
}

/// A set of conditional preference edges with dominance queries.
#[derive(Clone, Default, Debug)]
pub struct PreferenceOrder {
    edges: Vec<OrderingEdge>,
}

impl_json_struct!(PreferenceOrder { edges });

impl PreferenceOrder {
    /// Creates an empty order.
    pub fn new() -> PreferenceOrder {
        PreferenceOrder::default()
    }

    /// Adds an edge.
    pub fn add(&mut self, edge: OrderingEdge) {
        self.edges.push(edge);
    }

    /// All edges.
    pub fn edges(&self) -> &[OrderingEdge] {
        &self.edges
    }

    /// Edges on a dimension.
    pub fn edges_on<'a>(
        &'a self,
        dimension: &'a Dimension,
    ) -> impl Iterator<Item = &'a OrderingEdge> + 'a {
        self.edges.iter().filter(move |e| &e.dimension == dimension)
    }

    /// Edges on a dimension whose conditions hold statically in `ctx`
    /// (dynamic conditions — ones that depend on solver choices — are
    /// excluded; see [`PreferenceOrder::dynamic_edges_on`]).
    pub fn active_edges_on<'a>(
        &'a self,
        dimension: &'a Dimension,
        ctx: &dyn StaticContext,
    ) -> Vec<&'a OrderingEdge> {
        self.edges_on(dimension)
            .filter(|e| e.condition.partial_eval(ctx) == Condition::True)
            .collect()
    }

    /// Edges on a dimension that remain conditional after static
    /// resolution, paired with their residual condition.
    pub fn dynamic_edges_on<'a>(
        &'a self,
        dimension: &'a Dimension,
        ctx: &dyn StaticContext,
    ) -> Vec<(&'a OrderingEdge, Condition)> {
        self.edges_on(dimension)
            .filter_map(|e| match e.condition.partial_eval(ctx) {
                Condition::True | Condition::False => None,
                residual => Some((e, residual)),
            })
            .collect()
    }

    /// Systems strictly dominated by `system` in `ctx` (transitively,
    /// traversing equivalence edges in both directions but requiring at
    /// least one strict edge on the path).
    pub fn dominated_by(
        &self,
        system: &SystemId,
        dimension: &Dimension,
        ctx: &dyn StaticContext,
    ) -> BTreeSet<SystemId> {
        let active = self.active_edges_on(dimension, ctx);
        // State: (node, used_strict). BFS from `system`.
        let mut out = BTreeSet::new();
        let mut visited: BTreeSet<(SystemId, bool)> = BTreeSet::new();
        let mut queue: VecDeque<(SystemId, bool)> = VecDeque::new();
        queue.push_back((system.clone(), false));
        visited.insert((system.clone(), false));
        while let Some((node, strict)) = queue.pop_front() {
            for e in &active {
                let next: Vec<(SystemId, bool)> = match e.kind {
                    EdgeKind::Strict if e.better == node => {
                        vec![(e.worse.clone(), true)]
                    }
                    EdgeKind::Equal if e.better == node => {
                        vec![(e.worse.clone(), strict)]
                    }
                    EdgeKind::Equal if e.worse == node => {
                        vec![(e.better.clone(), strict)]
                    }
                    _ => continue,
                };
                for (n, s) in next {
                    if s && n != *system {
                        out.insert(n.clone());
                    }
                    if visited.insert((n.clone(), s)) {
                        queue.push_back((n, s));
                    }
                }
            }
        }
        out
    }

    /// Systems reachable through equivalence edges only.
    pub fn equal_to(
        &self,
        system: &SystemId,
        dimension: &Dimension,
        ctx: &dyn StaticContext,
    ) -> BTreeSet<SystemId> {
        let active = self.active_edges_on(dimension, ctx);
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<SystemId> = VecDeque::new();
        queue.push_back(system.clone());
        out.insert(system.clone());
        while let Some(node) = queue.pop_front() {
            for e in &active {
                if e.kind != EdgeKind::Equal {
                    continue;
                }
                let next = if e.better == node {
                    Some(e.worse.clone())
                } else if e.worse == node {
                    Some(e.better.clone())
                } else {
                    None
                };
                if let Some(n) = next {
                    if out.insert(n.clone()) {
                        queue.push_back(n);
                    }
                }
            }
        }
        out.remove(system);
        out
    }

    /// Compares two systems along a dimension in a static context.
    pub fn compare(
        &self,
        a: &SystemId,
        b: &SystemId,
        dimension: &Dimension,
        ctx: &dyn StaticContext,
    ) -> Comparison {
        let a_dominates = self.dominated_by(a, dimension, ctx).contains(b);
        let b_dominates = self.dominated_by(b, dimension, ctx).contains(a);
        match (a_dominates, b_dominates) {
            (true, false) => Comparison::Better,
            (false, true) => Comparison::Worse,
            (true, true) => Comparison::Incomparable, // contradictory edges
            (false, false) => {
                if self.equal_to(a, dimension, ctx).contains(b) {
                    Comparison::Equal
                } else {
                    Comparison::Incomparable
                }
            }
        }
    }

    /// Dominance rank of each system in `universe`: the number of universe
    /// members it strictly dominates. Used by the optimizer to scalarize
    /// the partial order into soft-constraint weights.
    pub fn ranks(
        &self,
        universe: &[SystemId],
        dimension: &Dimension,
        ctx: &dyn StaticContext,
    ) -> BTreeMap<SystemId, usize> {
        universe
            .iter()
            .map(|s| {
                let dominated = self.dominated_by(s, dimension, ctx);
                let count = universe.iter().filter(|u| dominated.contains(u)).count();
                (s.clone(), count)
            })
            .collect()
    }

    /// Detects a strict-preference cycle among edges active in `ctx` on
    /// `dimension`; returns one witness cycle of system ids when present.
    pub fn find_cycle(
        &self,
        dimension: &Dimension,
        ctx: &dyn StaticContext,
    ) -> Option<Vec<SystemId>> {
        let mut nodes: BTreeSet<SystemId> = BTreeSet::new();
        for e in self.active_edges_on(dimension, ctx) {
            nodes.insert(e.better.clone());
            nodes.insert(e.worse.clone());
        }
        for start in &nodes {
            let dominated = self.dominated_by(start, dimension, ctx);
            if dominated.contains(start) {
                return Some(vec![start.clone()]);
            }
            // A strict cycle exists iff some node strictly dominates itself
            // through the closure; dominated_by excludes the start, so test
            // mutual domination instead.
            for other in &dominated {
                if self.dominated_by(other, dimension, ctx).contains(start) {
                    return Some(vec![start.clone(), other.clone()]);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::CmpOp;
    use crate::types::{ParamName, Property};

    struct Ctx {
        link_speed: f64,
    }

    impl StaticContext for Ctx {
        fn param(&self, name: &ParamName) -> Option<f64> {
            (name.as_str() == "link_speed_gbps").then_some(self.link_speed)
        }
        fn workload_has(&self, _p: &Property) -> bool {
            false
        }
    }

    fn sid(s: &str) -> SystemId {
        SystemId::new(s)
    }

    /// A miniature of Figure 1's throughput (yellow) ordering.
    fn figure1_like() -> PreferenceOrder {
        let mut o = PreferenceOrder::new();
        let t = Dimension::Throughput;
        o.add(
            OrderingEdge::strict("NETCHANNEL", "LINUX", t.clone())
                .when(Condition::param("link_speed_gbps", CmpOp::Ge, 40.0)),
        );
        o.add(
            OrderingEdge::equal("NETCHANNEL", "LINUX", t.clone())
                .when(Condition::param("link_speed_gbps", CmpOp::Lt, 40.0)),
        );
        o.add(OrderingEdge::strict("SNAP", "NETCHANNEL", t.clone()));
        o.add(OrderingEdge::strict("SHENANGO", "LINUX", t));
        o
    }

    #[test]
    fn conditional_edge_activates_with_parameter() {
        let o = figure1_like();
        let t = Dimension::Throughput;
        let fast = Ctx { link_speed: 100.0 };
        let slow = Ctx { link_speed: 10.0 };
        assert_eq!(o.compare(&sid("NETCHANNEL"), &sid("LINUX"), &t, &fast), Comparison::Better);
        assert_eq!(o.compare(&sid("NETCHANNEL"), &sid("LINUX"), &t, &slow), Comparison::Equal);
        assert_eq!(o.compare(&sid("LINUX"), &sid("NETCHANNEL"), &t, &fast), Comparison::Worse);
    }

    #[test]
    fn transitive_dominance() {
        let o = figure1_like();
        let t = Dimension::Throughput;
        let fast = Ctx { link_speed: 100.0 };
        // SNAP ≻ NETCHANNEL ≻ LINUX (at 100 Gbps)
        assert_eq!(o.compare(&sid("SNAP"), &sid("LINUX"), &t, &fast), Comparison::Better);
        let dominated = o.dominated_by(&sid("SNAP"), &t, &fast);
        assert!(dominated.contains(&sid("NETCHANNEL")));
        assert!(dominated.contains(&sid("LINUX")));
    }

    #[test]
    fn strictness_travels_through_equal_edges() {
        // A ≻ B, B ≈ C ⇒ A ≻ C.
        let mut o = PreferenceOrder::new();
        let d = Dimension::Isolation;
        o.add(OrderingEdge::strict("A", "B", d.clone()));
        o.add(OrderingEdge::equal("B", "C", d.clone()));
        let ctx = Ctx { link_speed: 0.0 };
        assert_eq!(o.compare(&sid("A"), &sid("C"), &d, &ctx), Comparison::Better);
        // But B vs C alone: Equal, no strict edge on the path.
        assert_eq!(o.compare(&sid("B"), &sid("C"), &d, &ctx), Comparison::Equal);
    }

    #[test]
    fn incomparability_is_reported_not_invented() {
        // Figure 1: no isolation edge between SHENANGO and DEMIKERNEL.
        let o = figure1_like();
        let ctx = Ctx { link_speed: 100.0 };
        assert_eq!(
            o.compare(&sid("SHENANGO"), &sid("DEMIKERNEL"), &Dimension::Isolation, &ctx),
            Comparison::Incomparable
        );
        // And SNAP vs SHENANGO on throughput: both beat others but no chain
        // connects them.
        assert_eq!(
            o.compare(&sid("SNAP"), &sid("SHENANGO"), &Dimension::Throughput, &ctx),
            Comparison::Incomparable
        );
    }

    #[test]
    fn ranks_scalarize_dominance() {
        let o = figure1_like();
        let t = Dimension::Throughput;
        let fast = Ctx { link_speed: 100.0 };
        let universe = vec![sid("SNAP"), sid("NETCHANNEL"), sid("LINUX"), sid("SHENANGO")];
        let ranks = o.ranks(&universe, &t, &fast);
        assert_eq!(ranks[&sid("SNAP")], 2); // dominates NETCHANNEL, LINUX
        assert_eq!(ranks[&sid("NETCHANNEL")], 1);
        assert_eq!(ranks[&sid("LINUX")], 0);
        assert_eq!(ranks[&sid("SHENANGO")], 1);
    }

    #[test]
    fn dynamic_edges_survive_partial_eval() {
        let mut o = PreferenceOrder::new();
        let t = Dimension::Throughput;
        // Figure 1: "If (Pony enabled) > If (TCP enabled)" — dynamic on a
        // system selection.
        o.add(
            OrderingEdge::strict("SNAP", "LINUX", t.clone())
                .when(Condition::system("PONY")),
        );
        let ctx = Ctx { link_speed: 100.0 };
        assert_eq!(o.active_edges_on(&t, &ctx).len(), 0);
        let dynamic = o.dynamic_edges_on(&t, &ctx);
        assert_eq!(dynamic.len(), 1);
        assert_eq!(dynamic[0].1, Condition::system("PONY"));
    }

    #[test]
    fn cycle_detection() {
        let mut o = PreferenceOrder::new();
        let d = Dimension::Latency;
        o.add(OrderingEdge::strict("A", "B", d.clone()));
        o.add(OrderingEdge::strict("B", "C", d.clone()));
        let ctx = Ctx { link_speed: 0.0 };
        assert_eq!(o.find_cycle(&d, &ctx), None);
        o.add(OrderingEdge::strict("C", "A", d.clone()));
        assert!(o.find_cycle(&d, &ctx).is_some());
    }

    #[test]
    fn json_roundtrip() {
        let o = figure1_like();
        let text = netarch_rt::json::to_string(&o);
        let back: PreferenceOrder = netarch_rt::json::from_str(&text).unwrap();
        assert_eq!(back.edges().len(), o.edges().len());
    }
}
