//! Designs: the engine's answers.
//!
//! A [`Design`] is one concrete architecture — the selected system per
//! role, the chosen hardware models, and derived cost/resource summaries.
//! Two solver models projecting to the same decision atoms are the same
//! design; equivalence classing happens at this level (paper §6).

use crate::scenario::Scenario;
use crate::types::{Category, HardwareId, HardwareKind, Resource, SystemId};
use netarch_rt::impl_json_struct;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A concrete architecture design.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Design {
    /// Selected systems grouped by category.
    pub selections: BTreeMap<Category, Vec<SystemId>>,
    /// Chosen hardware model per inventory slot.
    pub hardware: BTreeMap<HardwareKind, HardwareId>,
    /// Total cost (systems + hardware × counts), USD.
    pub total_cost_usd: u64,
    /// Resource usage: resource → (demand from systems + workloads,
    /// capacity under the chosen hardware, if constrained).
    pub resources: BTreeMap<Resource, ResourceUsage>,
}

impl_json_struct!(Design {
    selections,
    hardware,
    total_cost_usd,
    resources,
});

/// Demand vs. capacity for one resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResourceUsage {
    /// Total consumed by selected systems plus workload peaks.
    pub used: u64,
    /// Capacity under the chosen hardware, when the scenario constrains it.
    pub capacity: Option<u64>,
}

impl_json_struct!(ResourceUsage { used, capacity });

impl Design {
    /// All selected systems, flattened.
    pub fn systems(&self) -> BTreeSet<&SystemId> {
        self.selections.values().flatten().collect()
    }

    /// Whether a system is part of the design.
    pub fn includes(&self, id: &SystemId) -> bool {
        self.selections.values().any(|v| v.contains(id))
    }

    /// The single selection for a category, if exactly one.
    pub fn selection(&self, category: &Category) -> Option<&SystemId> {
        match self.selections.get(category).map(Vec::as_slice) {
            Some([one]) => Some(one),
            _ => None,
        }
    }

    /// The chosen hardware for a slot.
    pub fn hardware_for(&self, kind: HardwareKind) -> Option<&HardwareId> {
        self.hardware.get(&kind)
    }

    /// Extracts the design from a satisfied scenario model.
    ///
    /// `selected_system` / `selected_hardware` report each candidate's
    /// value in the model.
    pub fn from_model(
        scenario: &Scenario,
        selected_system: impl Fn(&SystemId) -> bool,
        selected_hardware: impl Fn(&HardwareId) -> bool,
    ) -> Design {
        let mut design = Design::default();
        for spec in scenario.catalog.systems() {
            if selected_system(&spec.id) {
                design
                    .selections
                    .entry(spec.category.clone())
                    .or_default()
                    .push(spec.id.clone());
                design.total_cost_usd += spec.cost_usd;
            }
        }
        let inv = &scenario.inventory;
        for (candidates, kind, count) in [
            (&inv.server_candidates, HardwareKind::Server, inv.num_servers),
            (&inv.nic_candidates, HardwareKind::Nic, inv.num_servers),
            (&inv.switch_candidates, HardwareKind::Switch, inv.num_switches),
        ] {
            for id in candidates {
                if selected_hardware(id) {
                    design.hardware.insert(kind, id.clone());
                    if let Some(h) = scenario.catalog.hardware(id) {
                        design.total_cost_usd +=
                            h.cost_usd.saturating_mul(count.max(1));
                    }
                }
            }
        }
        design.compute_resources(scenario);
        design
    }

    fn compute_resources(&mut self, scenario: &Scenario) {
        let mut usage: BTreeMap<Resource, u64> = BTreeMap::new();
        for spec in scenario.catalog.systems() {
            if !self.includes(&spec.id) {
                continue;
            }
            for d in &spec.resources {
                if let Ok(amount) = d.amount.eval(&|n| scenario.param_value(n)) {
                    *usage.entry(d.resource.clone()).or_default() += amount;
                }
            }
        }
        let workload_cores: u64 = scenario.workloads.iter().map(|w| w.peak_cores).sum();
        if workload_cores > 0 {
            *usage.entry(Resource::Cores).or_default() += workload_cores;
        }
        for (resource, used) in usage {
            let capacity = self.capacity_for(scenario, &resource);
            self.resources.insert(resource, ResourceUsage { used, capacity });
        }
    }

    fn capacity_for(&self, scenario: &Scenario, resource: &Resource) -> Option<u64> {
        let kind = match resource {
            Resource::Cores | Resource::ServerMemoryGb | Resource::Custom(_) => {
                HardwareKind::Server
            }
            Resource::SwitchMemoryMb | Resource::P4Stages | Resource::QosClasses => {
                HardwareKind::Switch
            }
            Resource::SmartNicCapacity => HardwareKind::Nic,
        };
        let model = self.hardware.get(&kind)?;
        let spec = scenario.catalog.hardware(model)?;
        let per_unit = spec.capacity(resource);
        let scale = match resource {
            Resource::Cores | Resource::ServerMemoryGb | Resource::Custom(_) => {
                scenario.inventory.num_servers.max(1)
            }
            Resource::SwitchMemoryMb => scenario.inventory.num_switches.max(1),
            _ => 1,
        };
        Some(per_unit * scale)
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Design (total cost ${}):", self.total_cost_usd)?;
        for (cat, systems) in &self.selections {
            write!(f, "  {cat}: ")?;
            for (i, s) in systems.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            writeln!(f)?;
        }
        for (kind, model) in &self.hardware {
            writeln!(f, "  {kind}: {model}")?;
        }
        for (resource, usage) in &self.resources {
            match usage.capacity {
                Some(cap) => writeln!(f, "  {resource}: {} / {cap}", usage.used)?,
                None => writeln!(f, "  {resource}: {} (unconstrained)", usage.used)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::component::{HardwareSpec, SystemSpec};
    use crate::condition::AmountExpr;
    use crate::scenario::Inventory;
    use crate::workload::Workload;

    fn scenario() -> Scenario {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("SIMON", Category::Monitoring)
                    .consumes(Resource::Cores, AmountExpr::scaled("num_flows", 0.001))
                    .cost(500)
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(SystemSpec::builder("ECMP", Category::LoadBalancer).build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV64", HardwareKind::Server)
                    .numeric("cores", 64.0)
                    .cost(8_000)
                    .build(),
            )
            .unwrap();
        Scenario::new(catalog)
            .with_workload(Workload::builder("app").num_flows(10_000).peak_cores(100).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV64")],
                num_servers: 10,
                ..Inventory::default()
            })
    }

    #[test]
    fn from_model_extracts_selections_costs_and_resources() {
        let s = scenario();
        let d = Design::from_model(
            &s,
            |id| id.as_str() == "SIMON",
            |id| id.as_str() == "SRV64",
        );
        assert!(d.includes(&SystemId::new("SIMON")));
        assert!(!d.includes(&SystemId::new("ECMP")));
        assert_eq!(d.selection(&Category::Monitoring).unwrap().as_str(), "SIMON");
        assert_eq!(d.hardware_for(HardwareKind::Server).unwrap().as_str(), "SRV64");
        // cost: 500 (SIMON) + 10 × 8000 (servers)
        assert_eq!(d.total_cost_usd, 80_500);
        let cores = &d.resources[&Resource::Cores];
        // used: ceil(10000 × 0.001) = 10 from SIMON + 100 workload cores
        assert_eq!(cores.used, 110);
        assert_eq!(cores.capacity, Some(640));
    }

    #[test]
    fn display_renders_all_sections() {
        let s = scenario();
        let d = Design::from_model(&s, |_| true, |_| true);
        let text = d.to_string();
        assert!(text.contains("monitoring: SIMON"));
        assert!(text.contains("server: SRV64"));
        assert!(text.contains("cores: 110 / 640"));
    }

    #[test]
    fn selection_none_when_empty_or_multiple() {
        let s = scenario();
        let d = Design::from_model(&s, |_| false, |_| false);
        assert_eq!(d.selection(&Category::Monitoring), None);
        assert_eq!(d.total_cost_usd, 0);
    }
}
