//! The query engine.
//!
//! [`Engine`] wraps a compiled scenario and answers the paper's query
//! repertoire (§5.1):
//!
//! * **check** — "does there exist a choice of systems such that the
//!   following properties and constraints are met?" (§3.4);
//! * **optimize** — lexicographic `Optimize(latency > Hardware cost >
//!   monitoring)` (Listing 3);
//! * **diagnose** — when infeasible, *which requirements are in conflict*
//!   (§6 Explainability), as a minimal set of named rules;
//! * **enumerate** — equivalence classes of compliant designs (§6);
//! * **compare** — rule-of-thumb comparison of two systems in context,
//!   reporting incomparability honestly (§3.1).

use crate::compile::{compile, Compiled, CompileStats};
use crate::error::CompileError;
use crate::ordering::Comparison;
use crate::scenario::Scenario;
use crate::solution::Design;
use crate::types::{Dimension, SystemId};
use netarch_logic::maxsat::{minimize, MaxSatAlgorithm, MaxSatOutcome};
use netarch_logic::{Formula, Soft};
use netarch_sat::SolveResult;

/// A rule implicated in an infeasibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictRule {
    /// Stable rule label (e.g. `req:SIMON:simon-needs-nic-timestamps`).
    pub label: String,
    /// Human-readable statement of the rule.
    pub description: String,
    /// Literature citation, when recorded.
    pub citation: Option<String>,
}

/// Why a scenario is infeasible: a minimal set of mutually conflicting
/// rules. Dropping any single one restores feasibility.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diagnosis {
    /// The conflicting rules.
    pub conflicts: Vec<ConflictRule>,
}

/// Result of a satisfiability query.
#[derive(Debug)]
pub enum Outcome {
    /// A compliant design exists.
    Feasible(Design),
    /// No compliant design; here is a minimal conflict.
    Infeasible(Diagnosis),
}

impl Outcome {
    /// The design, when feasible.
    pub fn design(&self) -> Option<&Design> {
        match self {
            Outcome::Feasible(d) => Some(d),
            Outcome::Infeasible(_) => None,
        }
    }

    /// The diagnosis, when infeasible.
    pub fn diagnosis(&self) -> Option<&Diagnosis> {
        match self {
            Outcome::Feasible(_) => None,
            Outcome::Infeasible(d) => Some(d),
        }
    }
}

/// Report for one optimization level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelReport {
    /// Human-readable objective description.
    pub objective: String,
    /// Total weight of preference rules this level had to violate.
    pub penalty: u64,
}

/// An optimized design with its per-level objective report.
#[derive(Clone, Debug)]
pub struct OptimizedDesign {
    /// The chosen design.
    pub design: Design,
    /// Objective achievement, most important level first.
    pub levels: Vec<LevelReport>,
}

/// The reasoning engine over one scenario.
pub struct Engine {
    scenario: Scenario,
    compiled: Compiled,
    /// True once the solver state has been specialized (hardened groups or
    /// enumeration blocking clauses); queries needing pristine state
    /// recompile first.
    poisoned: bool,
}

impl Engine {
    /// Compiles a scenario into an engine.
    pub fn new(scenario: Scenario) -> Result<Engine, CompileError> {
        let compiled = compile(&scenario)?;
        Ok(Engine { scenario, compiled, poisoned: false })
    }

    /// The scenario under analysis.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Compilation size metrics.
    pub fn stats(&self) -> CompileStats {
        self.compiled.stats
    }

    fn refresh(&mut self) -> Result<(), CompileError> {
        if self.poisoned {
            self.compiled = compile(&self.scenario)?;
            self.poisoned = false;
        }
        Ok(())
    }

    fn extract_design(&self) -> Design {
        Design::from_model(
            &self.scenario,
            |id| {
                self.compiled
                    .system_atoms
                    .get(id)
                    .and_then(|&a| self.compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
            |id| {
                self.compiled
                    .hardware_atoms
                    .get(id)
                    .and_then(|&a| self.compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
        )
    }

    fn diagnosis_from_mus(&self, mus: &[netarch_logic::GroupId]) -> Diagnosis {
        diagnosis_from(&self.compiled, mus)
    }

    /// Satisfiability: find any compliant design, or a minimal conflict.
    pub fn check(&mut self) -> Result<Outcome, CompileError> {
        self.refresh()?;
        let selectors = self.compiled.all_selectors();
        match self.compiled.encoder.solve_with(&selectors) {
            SolveResult::Sat => Ok(Outcome::Feasible(self.extract_design())),
            SolveResult::Unsat | SolveResult::Unknown => {
                let ids = self.compiled.groups.ids();
                let mus = self
                    .compiled
                    .groups
                    .find_mus(&mut self.compiled.encoder, &ids)
                    .unwrap_or_default();
                Ok(Outcome::Infeasible(self.diagnosis_from_mus(&mus)))
            }
        }
    }

    /// Lexicographic optimization over the scenario's objective stack,
    /// with an implicit final parsimony level (prefer fewer systems) so
    /// unconstrained selections don't ride along.
    pub fn optimize(&mut self) -> Result<Result<OptimizedDesign, Diagnosis>, CompileError> {
        self.refresh()?;
        // First check feasibility (with usable diagnosis) before hardening.
        let selectors = self.compiled.all_selectors();
        if self.compiled.encoder.solve_with(&selectors) != SolveResult::Sat {
            let ids = self.compiled.groups.ids();
            let mus = self
                .compiled
                .groups
                .find_mus(&mut self.compiled.encoder, &ids)
                .unwrap_or_default();
            let diagnosis = self.diagnosis_from_mus(&mus);
            return Ok(Err(diagnosis));
        }
        // Harden all rule groups, then optimize level by level.
        self.poisoned = true;
        for sel in selectors {
            netarch_logic::ClauseSink::add_clause(&mut self.compiled.encoder, &[sel]);
        }
        let mut levels = Vec::new();
        let level_softs: Vec<(String, Vec<Soft>)> = self
            .compiled
            .objective_levels
            .iter()
            .map(|l| (format!("{:?}", l.objective), l.softs.clone()))
            .collect();
        for (name, softs) in level_softs {
            match minimize(&mut self.compiled.encoder, &softs, MaxSatAlgorithm::LinearGte) {
                MaxSatOutcome::Optimal { cost, .. } => {
                    levels.push(LevelReport { objective: name, penalty: cost });
                }
                MaxSatOutcome::HardUnsat => {
                    // Cannot happen: feasibility was established above and
                    // hardening preserves it; treat defensively.
                    return Ok(Err(Diagnosis::default()));
                }
            }
        }
        // Parsimony: prefer designs without gratuitous selections.
        let parsimony: Vec<Soft> = self
            .compiled
            .system_atoms
            .values()
            .map(|&a| Soft::new(1, Formula::not(Formula::Atom(a))))
            .collect();
        match minimize(&mut self.compiled.encoder, &parsimony, MaxSatAlgorithm::LinearGte) {
            MaxSatOutcome::Optimal { .. } => {}
            MaxSatOutcome::HardUnsat => return Ok(Err(Diagnosis::default())),
        }
        let design = self.extract_design();
        Ok(Ok(OptimizedDesign { design, levels }))
    }

    /// Enumerates up to `limit` compliant designs, projected onto system
    /// selections (and hardware choices when `include_hardware`). Each
    /// returned design is a distinct equivalence class under the chosen
    /// projection (§6), extracted from a *representative full model* — so
    /// even system-projected classes come back with a concrete,
    /// constraint-satisfying hardware assignment.
    pub fn enumerate_designs(
        &self,
        limit: usize,
        include_hardware: bool,
    ) -> Result<Vec<Design>, CompileError> {
        // Fresh compile: enumeration permanently blocks models.
        let mut compiled = compile(&self.scenario)?;
        for sel in compiled.all_selectors() {
            netarch_logic::ClauseSink::add_clause(&mut compiled.encoder, &[sel]);
        }
        let atoms = compiled.decision_atoms(include_hardware);
        let mut designs = Vec::new();
        while designs.len() < limit {
            if compiled.encoder.solve() != netarch_sat::SolveResult::Sat {
                break;
            }
            // Extract the design from the full model.
            designs.push(Design::from_model(
                &self.scenario,
                |id| {
                    compiled
                        .system_atoms
                        .get(id)
                        .and_then(|&a| compiled.encoder.atom_value(a))
                        .unwrap_or(false)
                },
                |id| {
                    compiled
                        .hardware_atoms
                        .get(id)
                        .and_then(|&a| compiled.encoder.atom_value(a))
                        .unwrap_or(false)
                },
            ));
            // Block this *projected* assignment so the next model is a new
            // equivalence class.
            let blocking: Vec<netarch_sat::Lit> = atoms
                .iter()
                .map(|&a| {
                    let value = compiled.encoder.atom_value(a).unwrap_or(false);
                    let lit = compiled.encoder.atom_lit(a);
                    if value {
                        !lit
                    } else {
                        lit
                    }
                })
                .collect();
            netarch_logic::ClauseSink::add_clause(&mut compiled.encoder, &blocking);
        }
        Ok(designs)
    }

    /// Solves with only the named rule groups active (all other compiled
    /// rules are suspended). Primarily for verifying diagnoses: a minimal
    /// conflict is UNSAT as a subset, and SAT once any member is dropped.
    pub fn check_rule_subset(&mut self, labels: &[&str]) -> Result<bool, CompileError> {
        self.refresh()?;
        let ids = self.compiled.groups.ids();
        let selectors: Vec<netarch_sat::Lit> = ids
            .into_iter()
            .filter(|&g| labels.contains(&self.compiled.rule(g).label.as_str()))
            .map(|g| self.compiled.groups.selector(g))
            .collect();
        Ok(self.compiled.encoder.solve_with(&selectors) == SolveResult::Sat)
    }

    /// Plans a minimal sequence of role-level questions that would make
    /// the compliant design unique (§6's "minimal-effort ordering for the
    /// architect to provide"). Examines up to `limit` equivalence classes.
    pub fn disambiguate(
        &self,
        limit: usize,
    ) -> Result<crate::disambiguate::Disambiguation, CompileError> {
        let designs = self.enumerate_designs(limit, false)?;
        let truncated = designs.len() == limit;
        Ok(crate::disambiguate::plan_questions(&designs, truncated))
    }

    /// Rule-of-thumb comparison of two systems along a dimension, in this
    /// scenario's static context.
    pub fn compare(&self, a: &SystemId, b: &SystemId, dimension: &Dimension) -> Comparison {
        self.scenario
            .catalog
            .order()
            .compare(a, b, dimension, &self.scenario)
    }

    /// Should the architect run a measurement comparing `a` and `b` on
    /// `dimension`? The paper's §3.1 answer: "it is only needed if the
    /// answer changes the final design."
    ///
    /// The engine hypothesizes each outcome (an `a ≻ b` edge, then a
    /// `b ≻ a` edge, added via a modular [`crate::catalog::CatalogDelta`])
    /// and optimizes under both. Measuring is worthwhile exactly when the
    /// two hypothetical optima differ. This also captures §3.1's deadline
    /// example: if one of the systems is undeployable anyway (e.g. a
    /// research prototype under a production-only constraint), the optima
    /// coincide and the measurement is declared pointless.
    pub fn advise_measurement(
        &self,
        a: &SystemId,
        b: &SystemId,
        dimension: &Dimension,
    ) -> Result<MeasurementAdvice, CompileError> {
        let known = self.compare(a, b, dimension);
        if known != Comparison::Incomparable {
            return Ok(MeasurementAdvice {
                worthwhile: false,
                reason: format!(
                    "the knowledge base already orders {a} vs {b} on {dimension}: {known:?}"
                ),
                design_if_first_better: None,
                design_if_second_better: None,
            });
        }
        let hypothesize = |better: &SystemId, worse: &SystemId| -> Result<
            Option<Design>,
            CompileError,
        > {
            let mut scenario = self.scenario.clone();
            scenario
                .catalog
                .apply(crate::catalog::CatalogDelta {
                    add_orderings: vec![crate::ordering::OrderingEdge::strict(
                        better.clone(),
                        worse.clone(),
                        dimension.clone(),
                    )],
                    ..crate::catalog::CatalogDelta::default()
                })
                .map_err(|_| CompileError::UnknownSystem(better.clone()))?;
            let mut engine = Engine::new(scenario)?;
            Ok(engine.optimize()?.ok().map(|r| r.design))
        };
        let with_a = hypothesize(a, b)?;
        let with_b = hypothesize(b, a)?;
        let worthwhile = match (&with_a, &with_b) {
            (Some(da), Some(db)) => da.selections != db.selections || da.hardware != db.hardware,
            (None, None) => false,
            _ => true, // one direction breaks feasibility: very informative
        };
        let reason = if worthwhile {
            format!("the optimal design changes with the {a} vs {b} verdict — measure it")
        } else if with_a.is_none() {
            "the scenario is infeasible regardless of the verdict".to_string()
        } else {
            format!(
                "the optimal design is the same under either verdict — \
                 measuring {a} vs {b} cannot change the outcome"
            )
        };
        Ok(MeasurementAdvice {
            worthwhile,
            reason,
            design_if_first_better: with_a,
            design_if_second_better: with_b,
        })
    }

    /// Capacity planning: the smallest server fleet (up to `max_servers`)
    /// that carries the workloads and a compliant system selection.
    ///
    /// The server count becomes an order-encoded solver variable; the
    /// returned design is extracted at the optimal fleet size (costs and
    /// resource accounting use that size). Budget constraints, when set,
    /// are priced at the scenario's fixed `num_servers` — the query
    /// answers *size*, with cost reported afterwards.
    pub fn plan_capacity(
        &self,
        max_servers: u64,
    ) -> Result<Result<CapacityPlan, Diagnosis>, CompileError> {
        let cc = crate::compile::compile_capacity(&self.scenario, max_servers)?;
        let mut compiled = cc.compiled;
        let n = cc.server_count;
        let selectors = compiled.all_selectors();
        if compiled.encoder.solve_with(&selectors) != SolveResult::Sat {
            let ids = compiled.groups.ids();
            let mus = compiled
                .groups
                .find_mus(&mut compiled.encoder, &ids)
                .unwrap_or_default();
            return Ok(Err(diagnosis_from(&compiled, &mus)));
        }
        let read_n = |compiled: &Compiled, n: &netarch_logic::OrderInt| {
            n.value(&|l| compiled.encoder.solver().model_lit_value(l))
        };
        let mut best = read_n(&compiled, &n);
        let mut lo = n.lo();
        while lo < best {
            let mid = lo + (best - lo) / 2;
            let mut assumptions = selectors.clone();
            match n.ge_const(mid + 1) {
                netarch_logic::Bound::Lit(q) => assumptions.push(!q),
                netarch_logic::Bound::AlwaysFalse => {}
                netarch_logic::Bound::AlwaysTrue => break,
            }
            match compiled.encoder.solve_with(&assumptions) {
                SolveResult::Sat => best = read_n(&compiled, &n).min(mid),
                SolveResult::Unsat | SolveResult::Unknown => lo = mid + 1,
            }
        }
        // Restore a model at the optimum.
        let mut assumptions = selectors.clone();
        if let netarch_logic::Bound::Lit(q) = n.ge_const(best + 1) {
            assumptions.push(!q);
        }
        let restored = compiled.encoder.solve_with(&assumptions);
        debug_assert_eq!(restored, SolveResult::Sat);
        // Extract the design against a scenario sized at the optimum.
        let mut sized = self.scenario.clone();
        sized.inventory.num_servers = best;
        let design = Design::from_model(
            &sized,
            |id| {
                compiled
                    .system_atoms
                    .get(id)
                    .and_then(|&a| compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
            |id| {
                compiled
                    .hardware_atoms
                    .get(id)
                    .and_then(|&a| compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
        );
        Ok(Ok(CapacityPlan { servers_needed: best, design }))
    }
}

/// Result of [`Engine::advise_measurement`] — §3.1's "should I measure?"
#[derive(Clone, Debug)]
pub struct MeasurementAdvice {
    /// True when the measurement's outcome would change the design.
    pub worthwhile: bool,
    /// Human-readable justification.
    pub reason: String,
    /// The optimal design if the first system measures better (None when
    /// infeasible either way).
    pub design_if_first_better: Option<Design>,
    /// The optimal design if the second system measures better.
    pub design_if_second_better: Option<Design>,
}

/// Result of [`Engine::plan_capacity`].
#[derive(Clone, Debug)]
pub struct CapacityPlan {
    /// The minimal fleet size.
    pub servers_needed: u64,
    /// A compliant design at that fleet size.
    pub design: Design,
}

fn diagnosis_from(compiled: &Compiled, mus: &[netarch_logic::GroupId]) -> Diagnosis {
    Diagnosis {
        conflicts: mus
            .iter()
            .map(|&g| {
                let meta = compiled.rule(g);
                ConflictRule {
                    label: meta.label.clone(),
                    description: meta.description.clone(),
                    citation: meta.citation.clone(),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::component::{HardwareSpec, SystemSpec};
    use crate::condition::Condition;
    use crate::ordering::OrderingEdge;
    use crate::scenario::{Inventory, Objective, Pin, RoleRule};
    use crate::types::{Category, HardwareId, HardwareKind};
    use crate::workload::Workload;

    /// A small but complete scenario: two monitoring systems (one needs a
    /// NIC feature), two NIC models, one load balancer.
    fn test_scenario() -> Scenario {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("SIMON", Category::Monitoring)
                    .solves("detect_queue_length")
                    .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
                    .cost(400)
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("PINGMESH", Category::Monitoring)
                    .solves("detect_queue_length")
                    .cost(100)
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("ECMP", Category::LoadBalancer)
                    .solves("load_balancing")
                    .build(),
            )
            .unwrap();
        catalog
            .add_ordering(OrderingEdge::strict(
                "SIMON",
                "PINGMESH",
                Dimension::MonitoringQuality,
            ))
            .unwrap();
        catalog
            .add_ordering(OrderingEdge::strict(
                "PINGMESH",
                "SIMON",
                Dimension::DeploymentEase,
            ))
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("NIC_TS", HardwareKind::Nic)
                    .feature("NIC_TIMESTAMPS")
                    .cost(900)
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("NIC_PLAIN", HardwareKind::Nic).cost(300).build(),
            )
            .unwrap();
        Scenario::new(catalog)
            .with_workload(
                Workload::builder("app").needs("detect_queue_length").build(),
            )
            .with_role(Category::Monitoring, RoleRule::Required)
            .with_inventory(Inventory {
                nic_candidates: vec![HardwareId::new("NIC_TS"), HardwareId::new("NIC_PLAIN")],
                num_servers: 4,
                ..Inventory::default()
            })
    }

    #[test]
    fn check_finds_a_compliant_design() {
        let mut engine = Engine::new(test_scenario()).unwrap();
        let outcome = engine.check().unwrap();
        let design = outcome.design().expect("feasible");
        // Some monitoring system selected, and if it is SIMON the NIC must
        // be the timestamping model.
        let monitoring = design.selection(&Category::Monitoring).expect("one monitor");
        if monitoring.as_str() == "SIMON" {
            assert_eq!(
                design.hardware_for(HardwareKind::Nic).unwrap().as_str(),
                "NIC_TS"
            );
        }
    }

    #[test]
    fn pin_forces_nic_upgrade() {
        let scenario = test_scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let design = outcome.design().expect("feasible");
        assert!(design.includes(&SystemId::new("SIMON")));
        assert_eq!(design.hardware_for(HardwareKind::Nic).unwrap().as_str(), "NIC_TS");
    }

    #[test]
    fn contradictory_pins_yield_named_diagnosis() {
        let scenario = test_scenario()
            .with_pin(Pin::Require(SystemId::new("SIMON")))
            .with_pin(Pin::Forbid(SystemId::new("SIMON")));
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let diagnosis = outcome.diagnosis().expect("infeasible");
        let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"pin:require:SIMON"));
        assert!(labels.contains(&"pin:forbid:SIMON"));
        // Minimal: exactly the two pins, not the innocent rules.
        assert_eq!(diagnosis.conflicts.len(), 2);
    }

    #[test]
    fn requirement_conflict_names_the_requirement() {
        // Forbid the only NIC with timestamps, require SIMON.
        let mut scenario = test_scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
        scenario.inventory.nic_candidates = vec![HardwareId::new("NIC_PLAIN")];
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let diagnosis = outcome.diagnosis().expect("infeasible");
        let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
        assert!(
            labels.contains(&"req:SIMON:needs-nic-timestamps"),
            "diagnosis should name the NIC-timestamp rule, got {labels:?}"
        );
    }

    #[test]
    fn optimize_monitoring_quality_picks_simon() {
        let scenario = test_scenario()
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
        let mut engine = Engine::new(scenario).unwrap();
        let result = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            result.design.selection(&Category::Monitoring).unwrap().as_str(),
            "SIMON"
        );
        assert_eq!(result.levels[0].penalty, 0);
    }

    #[test]
    fn optimize_cost_picks_pingmesh_and_cheap_nic() {
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).unwrap();
        let result = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            result.design.selection(&Category::Monitoring).unwrap().as_str(),
            "PINGMESH"
        );
        assert_eq!(
            result.design.hardware_for(HardwareKind::Nic).unwrap().as_str(),
            "NIC_PLAIN"
        );
    }

    #[test]
    fn lexicographic_order_matters() {
        // Quality first: SIMON + expensive NIC. Cost first: PINGMESH.
        let quality_first = test_scenario()
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality))
            .with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(quality_first).unwrap();
        let r1 = engine.optimize().unwrap().expect("feasible");
        assert_eq!(r1.design.selection(&Category::Monitoring).unwrap().as_str(), "SIMON");

        let cost_first = test_scenario()
            .with_objective(Objective::MinimizeCost)
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
        let mut engine = Engine::new(cost_first).unwrap();
        let r2 = engine.optimize().unwrap().expect("feasible");
        assert_eq!(r2.design.selection(&Category::Monitoring).unwrap().as_str(), "PINGMESH");
    }

    #[test]
    fn engine_recovers_after_optimize() {
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).unwrap();
        let _ = engine.optimize().unwrap();
        // Poisoned state must be refreshed transparently.
        let outcome = engine.check().unwrap();
        assert!(outcome.design().is_some());
        let again = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            again.design.selection(&Category::Monitoring).unwrap().as_str(),
            "PINGMESH"
        );
    }

    #[test]
    fn enumerate_designs_lists_equivalence_classes() {
        let mut scenario = test_scenario();
        scenario.roles.insert(Category::LoadBalancer, RoleRule::Forbidden);
        let engine = Engine::new(scenario).unwrap();
        // Projected on systems only: SIMON or PINGMESH (ECMP forbidden).
        let designs = engine.enumerate_designs(16, false).unwrap();
        assert_eq!(designs.len(), 2, "{designs:?}");
        // Projected on systems + hardware: PINGMESH pairs with both NICs,
        // SIMON only with NIC_TS → 3 classes.
        let designs = engine.enumerate_designs(16, true).unwrap();
        assert_eq!(designs.len(), 3, "{designs:?}");
    }

    #[test]
    fn compare_exposes_order_and_incomparability() {
        let engine = Engine::new(test_scenario()).unwrap();
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality
            ),
            Comparison::Better
        );
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::DeploymentEase
            ),
            Comparison::Worse
        );
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("ECMP"),
                &Dimension::Throughput
            ),
            Comparison::Incomparable
        );
    }

    #[test]
    fn measurement_advice_depends_on_decision_relevance() {
        // Two monitoring systems, incomparable on quality; the objective
        // maximizes quality → the verdict decides the design → measure.
        let scenario = {
            let mut s = test_scenario();
            // Remove the existing SIMON ≻ PINGMESH quality edge by
            // rebuilding the catalog without orderings.
            let mut catalog = Catalog::new();
            for spec in s.catalog.systems() {
                catalog.add_system(spec.clone()).unwrap();
            }
            for h in s.catalog.hardware_specs() {
                catalog.add_hardware(h.clone()).unwrap();
            }
            s.catalog = catalog;
            s.with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality))
        };
        let engine = Engine::new(scenario.clone()).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality,
            )
            .unwrap();
        assert!(advice.worthwhile, "{}", advice.reason);
        let da = advice.design_if_first_better.unwrap();
        let db = advice.design_if_second_better.unwrap();
        assert!(da.includes(&SystemId::new("SIMON")));
        assert!(db.includes(&SystemId::new("PINGMESH")));
    }

    #[test]
    fn measurement_not_worthwhile_when_already_ordered() {
        let engine = Engine::new(test_scenario()).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality,
            )
            .unwrap();
        assert!(!advice.worthwhile);
        assert!(advice.reason.contains("already orders"));
    }

    #[test]
    fn measurement_not_worthwhile_on_irrelevant_dimension() {
        // Objectives ignore DeploymentEase and no edge exists on it for
        // ECMP vs PINGMESH (different categories anyway): the design
        // cannot change.
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let engine = Engine::new(scenario).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("ECMP"),
                &SystemId::new("PINGMESH"),
                &Dimension::Throughput,
            )
            .unwrap();
        assert!(!advice.worthwhile, "{}", advice.reason);
        assert!(advice.reason.contains("same under either verdict"));
    }

    #[test]
    fn plan_capacity_sizes_the_fleet() {
        use crate::condition::AmountExpr;
        use crate::types::Resource;
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("MONITOR", Category::Monitoring)
                    .solves("monitoring")
                    .consumes(Resource::Cores, AmountExpr::constant(40))
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV32", HardwareKind::Server)
                    .numeric("cores", 32.0)
                    .cost(5_000)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(
                Workload::builder("app").needs("monitoring").peak_cores(200).build(),
            )
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV32")],
                num_servers: 1, // irrelevant: capacity mode varies it
                ..Inventory::default()
            });
        let engine = Engine::new(scenario).unwrap();
        let plan = engine.plan_capacity(64).unwrap().expect("feasible");
        // 200 workload + 40 system = 240 cores; 32/server → 8 servers.
        assert_eq!(plan.servers_needed, 8);
        assert!(plan.design.includes(&SystemId::new("MONITOR")));
        let cores = &plan.design.resources[&Resource::Cores];
        assert_eq!(cores.used, 240);
        assert_eq!(cores.capacity, Some(256));
    }

    #[test]
    fn plan_capacity_reports_impossible_fleets() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("X", Category::Monitoring).solves("m").build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("TINY", HardwareKind::Server)
                    .numeric("cores", 2.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("m").peak_cores(1000).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("TINY")],
                num_servers: 1,
                ..Inventory::default()
            });
        let engine = Engine::new(scenario).unwrap();
        // 1000 cores need 500 tiny servers; cap the fleet at 100 → infeasible.
        let result = engine.plan_capacity(100).unwrap();
        let diagnosis = result.unwrap_err();
        assert!(diagnosis
            .conflicts
            .iter()
            .any(|c| c.label.starts_with("capacity:cores:")));
        // With a big enough cap it works.
        let plan = engine.plan_capacity(600).unwrap().expect("feasible");
        assert_eq!(plan.servers_needed, 500);
    }

    #[test]
    fn workload_cores_checked_even_without_system_demands() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("X", Category::Monitoring).solves("m").build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV8", HardwareKind::Server)
                    .numeric("cores", 8.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("m").peak_cores(100).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV8")],
                num_servers: 2, // 16 cores < 100 required
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        assert!(
            outcome.diagnosis().is_some(),
            "engine must reject a fleet too small for the workload alone"
        );
    }

    #[test]
    fn stats_reflect_compilation() {
        let engine = Engine::new(test_scenario()).unwrap();
        let stats = engine.stats();
        assert!(stats.rules >= 4); // roles, requirement, workload need, hw choice
        assert_eq!(stats.decision_atoms, 5); // 3 systems + 2 NICs
        assert!(stats.clauses > 0);
        assert!(stats.solver_vars >= stats.decision_atoms);
    }
}
