//! The query engine.
//!
//! [`Engine`] wraps a compiled scenario and answers the paper's query
//! repertoire (§5.1):
//!
//! * **check** — "does there exist a choice of systems such that the
//!   following properties and constraints are met?" (§3.4);
//! * **optimize** — lexicographic `Optimize(latency > Hardware cost >
//!   monitoring)` (Listing 3);
//! * **diagnose** — when infeasible, *which requirements are in conflict*
//!   (§6 Explainability), as a minimal set of named rules;
//! * **enumerate** — equivalence classes of compliant designs (§6);
//! * **compare** — rule-of-thumb comparison of two systems in context,
//!   reporting incomparability honestly (§3.1).
//!
//! The engine is an **incremental session**: the scenario is compiled to
//! SAT exactly once, and every query runs on that one solver under
//! assumptions. Anything a query would have asserted destructively —
//! MaxSAT optimum hardening, enumeration blocking clauses — is gated
//! behind a per-query activation literal that is retired (permanently
//! falsified) when the query returns, so the gated clauses dissolve while
//! learned clauses, branching scores, and saved phases carry over to the
//! next query. No query triggers a recompile.

use crate::compile::{
    compile_capacity_with_backend, compile_with_backend, Compiled, CompiledCapacity, CompileStats,
};
use crate::error::CompileError;
use crate::ordering::Comparison;
use crate::scenario::Scenario;
use crate::solution::Design;
use crate::types::{Dimension, SystemId};
use netarch_logic::maxsat::{compile_softs, minimize_under, MaxSatOutcome};
use netarch_logic::{CompiledSofts, Formula, Soft, Speculation};
use netarch_sat::{Lit, SolveResult};

/// Retired activation literals tolerated before the session compacts its
/// clause database (dropping root-satisfied gated clauses).
const GC_EVERY: u32 = 8;

/// Capacity side-sessions kept warm at once. Each entry is a full compiled
/// engine for one fleet bound, so the cap bounds memory; four covers the
/// alternating-bound access patterns seen in practice (e.g. comparing a
/// couple of candidate fleet sizes back and forth).
const CAPACITY_CACHE_CAP: usize = 4;

/// A rule implicated in an infeasibility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictRule {
    /// Stable rule label (e.g. `req:SIMON:simon-needs-nic-timestamps`).
    pub label: String,
    /// Human-readable statement of the rule.
    pub description: String,
    /// Literature citation, when recorded.
    pub citation: Option<String>,
}

/// Why a scenario is infeasible: a minimal set of mutually conflicting
/// rules. Dropping any single one restores feasibility.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diagnosis {
    /// The conflicting rules.
    pub conflicts: Vec<ConflictRule>,
}

/// Result of a satisfiability query.
#[derive(Debug)]
pub enum Outcome {
    /// A compliant design exists.
    Feasible(Design),
    /// No compliant design; here is a minimal conflict.
    Infeasible(Diagnosis),
}

impl Outcome {
    /// The design, when feasible.
    pub fn design(&self) -> Option<&Design> {
        match self {
            Outcome::Feasible(d) => Some(d),
            Outcome::Infeasible(_) => None,
        }
    }

    /// The diagnosis, when infeasible.
    pub fn diagnosis(&self) -> Option<&Diagnosis> {
        match self {
            Outcome::Feasible(_) => None,
            Outcome::Infeasible(d) => Some(d),
        }
    }
}

/// Report for one optimization level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelReport {
    /// Human-readable objective description.
    pub objective: String,
    /// Total weight of preference rules this level had to violate.
    pub penalty: u64,
}

/// An optimized design with its per-level objective report.
#[derive(Clone, Debug)]
pub struct OptimizedDesign {
    /// The chosen design.
    pub design: Design,
    /// Objective achievement, most important level first.
    pub levels: Vec<LevelReport>,
}

/// The reasoning engine over one scenario: a persistent incremental
/// solving session shared by every query.
pub struct Engine {
    scenario: Scenario,
    compiled: Compiled,
    /// Objective totalizers with display labels, compiled into the session
    /// on the first `optimize` and reused by every later one.
    objective_cache: Option<Vec<(String, CompiledSofts)>>,
    /// The implicit parsimony level, compiled alongside the objectives.
    parsimony_cache: Option<CompiledSofts>,
    /// Memoized `optimize` verdict. The scenario is immutable for the
    /// engine's lifetime and queries are non-destructive, so the
    /// lexicographic optimum is a session constant: computed on the first
    /// call, replayed on every later one.
    optimize_cache: Option<Result<OptimizedDesign, Diagnosis>>,
    /// Memoized enumerations, keyed by `(limit, include_hardware)` — pure
    /// for the same reason `optimize` is.
    enumerate_cache: Vec<((usize, bool), Vec<Design>)>,
    /// Capacity-mode side compilations, keyed by fleet bound in LRU order
    /// (most recent first, capped at [`CAPACITY_CACHE_CAP`]). Alternating
    /// bounds each keep their warm session; only a bound absent from the
    /// cache compiles (and counts as a recompile).
    capacity_cache: Vec<(u64, CompiledCapacity)>,
    /// Post-construction recompilations (see [`CompileStats::recompiles`]).
    recompiles: u64,
    /// Activation literals retired since the last garbage collection.
    retired_since_gc: u32,
    /// Backend for decisive one-shot probes (optimize feasibility probe,
    /// capacity binary search). Core/MUS-bearing solves always stay on the
    /// sequential session solver regardless of this setting.
    backend: netarch_logic::SolveBackend,
}

impl Engine {
    /// Compiles a scenario into an engine. The solve backend for decisive
    /// one-shot probes follows `NETARCH_THREADS` (see
    /// [`netarch_logic::backend_from_env`]); use [`Engine::with_backend`]
    /// to pin it explicitly.
    pub fn new(scenario: Scenario) -> Result<Engine, CompileError> {
        Engine::with_backend(scenario, netarch_logic::backend_from_env())
    }

    /// Compiles a scenario into an engine with an explicit solve backend.
    pub fn with_backend(
        scenario: Scenario,
        backend: netarch_logic::SolveBackend,
    ) -> Result<Engine, CompileError> {
        let compiled = compile_with_backend(&scenario, backend.clone())?;
        Ok(Engine {
            scenario,
            compiled,
            objective_cache: None,
            parsimony_cache: None,
            optimize_cache: None,
            enumerate_cache: Vec::new(),
            capacity_cache: Vec::new(),
            recompiles: 0,
            retired_since_gc: 0,
            backend,
        })
    }

    /// The scenario under analysis.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Compilation size metrics plus session-reuse counters. Solver-side
    /// counters aggregate over the main session solver, every cached
    /// capacity engine's solver (capacity probes are session solves too),
    /// and the worker solvers of the parallel query loops — effort done on
    /// throwaway probe/cube workers is absorbed rather than lost.
    pub fn stats(&self) -> CompileStats {
        let mut total = *self.compiled.encoder.solver().stats();
        total.absorb(&self.compiled.encoder.parallel_worker_stats());
        let mut portfolio_solves = self.compiled.encoder.portfolio_solve_count();
        for (_, cc) in &self.capacity_cache {
            total.absorb(cc.compiled.encoder.solver().stats());
            total.absorb(&cc.compiled.encoder.parallel_worker_stats());
            portfolio_solves += cc.compiled.encoder.portfolio_solve_count();
        }
        CompileStats {
            recompiles: self.recompiles,
            session_solves: total.solves,
            retired_activations: total.retired_activations,
            portfolio_solves,
            conflicts: total.conflicts,
            learnt_clauses: total.learnt_clauses,
            subsumed: total.subsumed,
            strengthened: total.strengthened,
            eliminated_vars: total.eliminated_vars,
            vivified: total.vivified,
            chrono_backtracks: total.chrono_backtracks,
            ..self.compiled.stats
        }
    }

    /// Forces one inprocessing round (subsumption, vivification, bounded
    /// variable elimination) on the persistent session solver — the
    /// compaction a serving layer can run on warm cached sessions between
    /// queries. The encoder freezes every variable future queries can
    /// mention, so subsequent queries answer on the same compilation with
    /// zero recompiles. Returns `false` when the session's constraints are
    /// unsatisfiable outright.
    pub fn inprocess_session(&mut self) -> bool {
        self.compiled.encoder.inprocess()
    }

    /// Retires a query's activation literal, dissolving its gated clauses,
    /// and periodically compacts the clause database (retired clauses are
    /// root-satisfied garbage).
    fn end_query(&mut self, gate: Lit) {
        self.compiled.encoder.retire(gate);
        self.retired_since_gc += 1;
        if self.retired_since_gc >= GC_EVERY {
            self.compiled.encoder.collect_garbage();
            self.retired_since_gc = 0;
        }
    }

    /// Compiles the objective stack (and the implicit parsimony level)
    /// into the session, once.
    fn ensure_objective_cache(&mut self) -> Result<(), CompileError> {
        if self.objective_cache.is_some() {
            return Ok(());
        }
        let levels: Vec<(String, Vec<Soft>)> = self
            .compiled
            .objective_levels
            .iter()
            .map(|l| (format!("{:?}", l.objective), l.softs.clone()))
            .collect();
        let mut cache = Vec::with_capacity(levels.len());
        for (name, softs) in levels {
            let cs = compile_softs(&mut self.compiled.encoder, softs)
                .map_err(|_| CompileError::ObjectiveOverflow)?;
            cache.push((name, cs));
        }
        let parsimony: Vec<Soft> = self
            .compiled
            .system_atoms
            .values()
            .map(|&a| Soft::new(1, Formula::not(Formula::Atom(a))))
            .collect();
        let parsimony = compile_softs(&mut self.compiled.encoder, parsimony)
            .map_err(|_| CompileError::ObjectiveOverflow)?;
        self.objective_cache = Some(cache);
        self.parsimony_cache = Some(parsimony);
        Ok(())
    }

    fn extract_design(&self) -> Design {
        Design::from_model(
            &self.scenario,
            |id| {
                self.compiled
                    .system_atoms
                    .get(id)
                    .and_then(|&a| self.compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
            |id| {
                self.compiled
                    .hardware_atoms
                    .get(id)
                    .and_then(|&a| self.compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
        )
    }

    fn diagnosis_from_mus(&self, mus: &[netarch_logic::GroupId]) -> Diagnosis {
        diagnosis_from(&self.compiled, mus)
    }

    /// Satisfiability: find any compliant design, or a minimal conflict.
    pub fn check(&mut self) -> Result<Outcome, CompileError> {
        let selectors = self.compiled.all_selectors();
        match self.compiled.encoder.solve_with(&selectors) {
            SolveResult::Sat => Ok(Outcome::Feasible(self.extract_design())),
            SolveResult::Unsat | SolveResult::Unknown => {
                let ids = self.compiled.groups.ids();
                let mus = self
                    .compiled
                    .groups
                    .find_mus(&mut self.compiled.encoder, &ids)
                    .unwrap_or_default();
                Ok(Outcome::Infeasible(self.diagnosis_from_mus(&mus)))
            }
        }
    }

    /// Lexicographic optimization over the scenario's objective stack,
    /// with an implicit final parsimony level (prefer fewer systems) so
    /// unconstrained selections don't ride along.
    ///
    /// Runs entirely inside the session: every solve assumes the rule
    /// selectors plus one fresh activation literal, each level's optimum
    /// is hardened behind that literal (so later levels respect it), and
    /// the literal is retired on return. Because no query mutates the
    /// scenario, the verdict is then memoized: repeated `optimize` calls
    /// replay the first report without touching the solver. A mid-descent
    /// `HardUnsat` is impossible once the feasibility probe passed, so it
    /// surfaces as [`CompileError::Internal`] instead of being swallowed
    /// as an empty diagnosis.
    pub fn optimize(&mut self) -> Result<Result<OptimizedDesign, Diagnosis>, CompileError> {
        // The optimum is a session constant (nothing a query does survives
        // its gate), so replay it once computed.
        if let Some(cached) = &self.optimize_cache {
            return Ok(cached.clone());
        }
        // First check feasibility (with usable diagnosis). This decisive
        // one-shot probe is the expensive verdict the portfolio backend is
        // for; the MUS extraction below needs unsat cores and stays on the
        // sequential session solver.
        let mut base = self.compiled.all_selectors();
        if self.compiled.encoder.solve_with_backend(&base) != SolveResult::Sat {
            let ids = self.compiled.groups.ids();
            let mus = self
                .compiled
                .groups
                .find_mus(&mut self.compiled.encoder, &ids)
                .unwrap_or_default();
            let diagnosis = self.diagnosis_from_mus(&mus);
            self.optimize_cache = Some(Err(diagnosis.clone()));
            return Ok(Err(diagnosis));
        }
        self.ensure_objective_cache()?;
        let gate = self.compiled.encoder.new_selector();
        let mut levels = Vec::new();
        // Each completed level's hardened bound references its (dormant by
        // default) totalizer, so its activation literal joins the base
        // assumptions for every later level.
        let cache = self.objective_cache.as_ref().expect("built above");
        for (name, softs) in cache {
            match minimize_under(&mut self.compiled.encoder, softs, &base, gate) {
                MaxSatOutcome::Optimal { cost, .. } => {
                    levels.push(LevelReport { objective: name.clone(), penalty: cost });
                    base.push(softs.activation());
                }
                other => {
                    self.compiled.encoder.retire(gate);
                    return Err(internal_level_error(name, &other));
                }
            }
        }
        // Parsimony: prefer designs without gratuitous selections.
        let parsimony = self.parsimony_cache.as_ref().expect("built above");
        match minimize_under(&mut self.compiled.encoder, parsimony, &base, gate) {
            MaxSatOutcome::Optimal { .. } => {}
            other => {
                self.compiled.encoder.retire(gate);
                return Err(internal_level_error("parsimony", &other));
            }
        }
        let design = self.extract_design();
        self.end_query(gate);
        let report = OptimizedDesign { design, levels };
        self.optimize_cache = Some(Ok(report.clone()));
        Ok(Ok(report))
    }

    /// Enumerates up to `limit` compliant designs, projected onto system
    /// selections (and hardware choices when `include_hardware`). Each
    /// returned design is a distinct equivalence class under the chosen
    /// projection (§6), extracted from a *representative full model* — so
    /// even system-projected classes come back with a concrete,
    /// constraint-satisfying hardware assignment. Enumeration runs on the
    /// session solver with gate-dissolved blocking clauses, so it never
    /// recompiles and later queries see the full model space again; like
    /// `optimize`, a repeated query with the same `limit` and projection
    /// replays the memoized classes.
    pub fn enumerate_designs(
        &mut self,
        limit: usize,
        include_hardware: bool,
    ) -> Result<Vec<Design>, CompileError> {
        if limit == 0 {
            return Ok(Vec::new());
        }
        if let Some((_, cached)) = self
            .enumerate_cache
            .iter()
            .find(|(key, _)| *key == (limit, include_hardware))
        {
            return Ok(cached.clone());
        }
        // Cube-and-conquer path: with parallel seats available, split the
        // projection space on a small cube of decision literals and
        // enumerate each cube on its own worker over the mirrored CNF. The
        // workers are throwaway (their blocking clauses die with them), so
        // no gate enters the session, and the merge is in cube-index order
        // — the same deterministic class *set* as the sequential walk.
        let atoms = self.compiled.decision_atoms(include_hardware);
        if self.compiled.encoder.parallel_seats() >= 2 && !atoms.is_empty() {
            let assumptions = self.compiled.all_selectors();
            let vars = self.compiled.encoder.projection_vars(&atoms);
            if let Some(out) =
                self.compiled
                    .encoder
                    .enumerate_cubes_backend(&vars, &assumptions, limit)
            {
                let designs: Vec<Design> = out
                    .models
                    .iter()
                    .map(|model| {
                        Design::from_model(
                            &self.scenario,
                            |id| {
                                self.compiled
                                    .system_atoms
                                    .get(id)
                                    .and_then(|&a| self.compiled.encoder.atom_value_in(a, model))
                                    .unwrap_or(false)
                            },
                            |id| {
                                self.compiled
                                    .hardware_atoms
                                    .get(id)
                                    .and_then(|&a| self.compiled.encoder.atom_value_in(a, model))
                                    .unwrap_or(false)
                            },
                        )
                    })
                    .collect();
                self.enumerate_cache.push(((limit, include_hardware), designs.clone()));
                return Ok(designs);
            }
        }
        // Session enumeration: every blocking clause is gated behind a
        // per-query activation literal, so retiring it afterwards hands
        // the unblocked model space back to the next query.
        let mut assumptions = self.compiled.all_selectors();
        let gate = self.compiled.encoder.new_selector();
        assumptions.push(gate);
        let atom_lits: Vec<Lit> = atoms
            .iter()
            .map(|&a| self.compiled.encoder.atom_lit(a))
            .collect();
        let mut designs = Vec::new();
        while designs.len() < limit {
            if self.compiled.encoder.solve_with(&assumptions) != SolveResult::Sat {
                break;
            }
            // Extract the design from the full model, then block this
            // *projected* assignment so the next model is a new
            // equivalence class.
            designs.push(self.extract_design());
            let mut blocking: Vec<Lit> = Vec::with_capacity(atom_lits.len() + 1);
            blocking.push(!gate);
            blocking.extend(atoms.iter().zip(&atom_lits).map(|(&a, &lit)| {
                if self.compiled.encoder.atom_value(a).unwrap_or(false) {
                    !lit
                } else {
                    lit
                }
            }));
            netarch_logic::ClauseSink::add_clause(&mut self.compiled.encoder, &blocking);
        }
        self.end_query(gate);
        self.enumerate_cache.push(((limit, include_hardware), designs.clone()));
        Ok(designs)
    }

    /// Solves with only the named rule groups active (all other compiled
    /// rules are suspended). Primarily for verifying diagnoses: a minimal
    /// conflict is UNSAT as a subset, and SAT once any member is dropped.
    pub fn check_rule_subset(&mut self, labels: &[&str]) -> Result<bool, CompileError> {
        let ids = self.compiled.groups.ids();
        let selectors: Vec<netarch_sat::Lit> = ids
            .into_iter()
            .filter(|&g| labels.contains(&self.compiled.rule(g).label.as_str()))
            .map(|g| self.compiled.groups.selector(g))
            .collect();
        Ok(self.compiled.encoder.solve_with(&selectors) == SolveResult::Sat)
    }

    /// Plans a minimal sequence of role-level questions that would make
    /// the compliant design unique (§6's "minimal-effort ordering for the
    /// architect to provide"). Examines up to `limit` equivalence classes.
    pub fn disambiguate(
        &mut self,
        limit: usize,
    ) -> Result<crate::disambiguate::Disambiguation, CompileError> {
        let designs = self.enumerate_designs(limit, false)?;
        let truncated = designs.len() == limit;
        Ok(crate::disambiguate::plan_questions(&designs, truncated))
    }

    /// Rule-of-thumb comparison of two systems along a dimension, in this
    /// scenario's static context.
    pub fn compare(&self, a: &SystemId, b: &SystemId, dimension: &Dimension) -> Comparison {
        self.scenario
            .catalog
            .order()
            .compare(a, b, dimension, &self.scenario)
    }

    /// Should the architect run a measurement comparing `a` and `b` on
    /// `dimension`? The paper's §3.1 answer: "it is only needed if the
    /// answer changes the final design."
    ///
    /// The engine hypothesizes each outcome (an `a ≻ b` edge, then a
    /// `b ≻ a` edge, added via a modular [`crate::catalog::CatalogDelta`])
    /// and optimizes under both. Measuring is worthwhile exactly when the
    /// two hypothetical optima differ. This also captures §3.1's deadline
    /// example: if one of the systems is undeployable anyway (e.g. a
    /// research prototype under a production-only constraint), the optima
    /// coincide and the measurement is declared pointless.
    pub fn advise_measurement(
        &self,
        a: &SystemId,
        b: &SystemId,
        dimension: &Dimension,
    ) -> Result<MeasurementAdvice, CompileError> {
        let known = self.compare(a, b, dimension);
        if known != Comparison::Incomparable {
            return Ok(MeasurementAdvice {
                worthwhile: false,
                reason: format!(
                    "the knowledge base already orders {a} vs {b} on {dimension}: {known:?}"
                ),
                design_if_first_better: None,
                design_if_second_better: None,
            });
        }
        let hypothesize = |better: &SystemId, worse: &SystemId| -> Result<
            Option<Design>,
            CompileError,
        > {
            let mut scenario = self.scenario.clone();
            scenario
                .catalog
                .apply(crate::catalog::CatalogDelta {
                    add_orderings: vec![crate::ordering::OrderingEdge::strict(
                        better.clone(),
                        worse.clone(),
                        dimension.clone(),
                    )],
                    ..crate::catalog::CatalogDelta::default()
                })
                .map_err(|_| CompileError::UnknownSystem(better.clone()))?;
            let mut engine = Engine::new(scenario)?;
            Ok(engine.optimize()?.ok().map(|r| r.design))
        };
        let with_a = hypothesize(a, b)?;
        let with_b = hypothesize(b, a)?;
        let worthwhile = match (&with_a, &with_b) {
            (Some(da), Some(db)) => da.selections != db.selections || da.hardware != db.hardware,
            (None, None) => false,
            _ => true, // one direction breaks feasibility: very informative
        };
        let reason = if worthwhile {
            format!("the optimal design changes with the {a} vs {b} verdict — measure it")
        } else if with_a.is_none() {
            "the scenario is infeasible regardless of the verdict".to_string()
        } else {
            format!(
                "the optimal design is the same under either verdict — \
                 measuring {a} vs {b} cannot change the outcome"
            )
        };
        Ok(MeasurementAdvice {
            worthwhile,
            reason,
            design_if_first_better: with_a,
            design_if_second_better: with_b,
        })
    }

    /// Capacity planning: the smallest server fleet (up to `max_servers`)
    /// that carries the workloads and a compliant system selection.
    ///
    /// The server count becomes an order-encoded solver variable; the
    /// returned design is extracted at the optimal fleet size (costs and
    /// resource accounting use that size). Budget constraints, when set,
    /// are priced at the scenario's fixed `num_servers` — the query
    /// answers *size*, with cost reported afterwards.
    pub fn plan_capacity(
        &mut self,
        max_servers: u64,
    ) -> Result<Result<CapacityPlan, Diagnosis>, CompileError> {
        // The capacity query itself is purely assumption-based, so its
        // side compilation is a reusable session too — kept in a small LRU
        // keyed by fleet bound, so alternating bounds (64 → 32 → 64 → …)
        // each hit their warm session instead of recompiling every call.
        if let Some(pos) = self
            .capacity_cache
            .iter()
            .position(|(m, _)| *m == max_servers)
        {
            let entry = self.capacity_cache.remove(pos);
            self.capacity_cache.insert(0, entry);
        } else {
            if !self.capacity_cache.is_empty() {
                self.recompiles += 1;
            }
            let cc =
                compile_capacity_with_backend(&self.scenario, max_servers, self.backend.clone())?;
            self.capacity_cache.insert(0, (max_servers, cc));
            self.capacity_cache.truncate(CAPACITY_CACHE_CAP);
        }
        let (_, cc) = self.capacity_cache.first_mut().expect("ensured above");
        let compiled = &mut cc.compiled;
        let n = &cc.server_count;
        let selectors = compiled.all_selectors();
        // One-shot portfolio probes spawn fresh diversified workers per
        // solve. A bisection probe has no algorithmic angle for those
        // workers to exploit — they race the *same* query — so the spawn
        // cost pays off only when physical cores actually run the race
        // concurrently. Without them, every solve in this query stays on
        // the warm incremental session solver.
        let probe_backend = match compiled.encoder.speculation() {
            Speculation::Always => true,
            Speculation::Never => false,
            Speculation::Auto => portfolio_probes_pay_off(),
        };
        let solve = |compiled: &mut Compiled, assumptions: &[Lit]| {
            if probe_backend {
                compiled.encoder.solve_with_backend(assumptions)
            } else {
                compiled.encoder.solve_with(assumptions)
            }
        };
        if solve(compiled, &selectors) != SolveResult::Sat {
            let ids = compiled.groups.ids();
            let mus = compiled
                .groups
                .find_mus(&mut compiled.encoder, &ids)
                .unwrap_or_default();
            return Ok(Err(diagnosis_from(compiled, &mus)));
        }
        let read_n = |compiled: &Compiled, n: &netarch_logic::OrderInt| {
            // Route through the encoder so a portfolio winner's adopted
            // model is visible, not just the session solver's own.
            n.value(&|l| compiled.encoder.model_lit_value(l))
        };
        let mut best = read_n(compiled, n);
        let mut lo = n.lo();
        // Speculative pass: probe several fleet bounds per round on worker
        // seats, shrinking [lo, best) faster than one midpoint at a time.
        // The sequential loop below still finishes the search, so the
        // speculative pass only needs to make progress — but its pool
        // clones the session CNF into every seat, so it engages only when
        // the policy (and, under Auto, the cost heuristic) says that setup
        // cost can pay for itself.
        let seats = compiled.encoder.parallel_seats();
        let engage = seats >= 2
            && match compiled.encoder.speculation() {
                Speculation::Always => true,
                Speculation::Never => false,
                Speculation::Auto => speculation_pays_off(seats, lo, best),
            };
        if engage {
            speculative_capacity_search(compiled, n, &selectors, &mut lo, &mut best);
        }
        while lo < best {
            let mid = lo + (best - lo) / 2;
            let mut assumptions = selectors.clone();
            match n.ge_const(mid + 1) {
                netarch_logic::Bound::Lit(q) => assumptions.push(!q),
                netarch_logic::Bound::AlwaysFalse => {}
                netarch_logic::Bound::AlwaysTrue => break,
            }
            match solve(compiled, &assumptions) {
                SolveResult::Sat => best = read_n(compiled, n).min(mid),
                SolveResult::Unsat | SolveResult::Unknown => lo = mid + 1,
            }
        }
        // Restore a model at the optimum.
        let mut assumptions = selectors.clone();
        if let netarch_logic::Bound::Lit(q) = n.ge_const(best + 1) {
            assumptions.push(!q);
        }
        let restored = solve(compiled, &assumptions);
        debug_assert_eq!(restored, SolveResult::Sat);
        // Extract the design against a scenario sized at the optimum.
        let mut sized = self.scenario.clone();
        sized.inventory.num_servers = best;
        let design = Design::from_model(
            &sized,
            |id| {
                compiled
                    .system_atoms
                    .get(id)
                    .and_then(|&a| compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
            |id| {
                compiled
                    .hardware_atoms
                    .get(id)
                    .and_then(|&a| compiled.encoder.atom_value(a))
                    .unwrap_or(false)
            },
        );
        Ok(Ok(CapacityPlan { servers_needed: best, design }))
    }
}

/// Result of [`Engine::advise_measurement`] — §3.1's "should I measure?"
#[derive(Clone, Debug)]
pub struct MeasurementAdvice {
    /// True when the measurement's outcome would change the design.
    pub worthwhile: bool,
    /// Human-readable justification.
    pub reason: String,
    /// The optimal design if the first system measures better (None when
    /// infeasible either way).
    pub design_if_first_better: Option<Design>,
    /// The optimal design if the second system measures better.
    pub design_if_second_better: Option<Design>,
}

/// Result of [`Engine::plan_capacity`].
#[derive(Clone, Debug)]
pub struct CapacityPlan {
    /// The minimal fleet size.
    pub servers_needed: u64,
    /// A compliant design at that fleet size.
    pub design: Design,
}

/// Below this open-interval width the sequential finisher needs at most
/// `log2(SPECULATION_MIN_WIDTH)` incremental probes on the already-warm
/// session solver — cheaper than cloning the CNF into a worker pool, so
/// speculation cannot pay for itself.
const SPECULATION_MIN_WIDTH: u64 = 64;

/// The `Speculation::Auto` cost heuristic. The probe pool wins only when
/// (a) the open interval `[lo, best)` is wide enough that the saved
/// bisection rounds amortize the per-seat CNF clones, and (b) the machine
/// has enough physical cores to actually run the seats concurrently —
/// oversubscribed seats serialize, turning each round into `seats`
/// sequential probes, which always loses to one midpoint at a time.
fn speculation_pays_off(seats: usize, lo: u64, best: u64) -> bool {
    best.saturating_sub(lo) >= SPECULATION_MIN_WIDTH && physical_cores() >= seats
}

/// Whether one-shot portfolio probes can win a race at all: with a single
/// physical core the freshly-spawned workers serialize, so racing `k`
/// identical probes costs up to `k×` one warm incremental solve.
fn portfolio_probes_pay_off() -> bool {
    physical_cores() >= 2
}

/// Physical cores available to back parallel work (1 when undetectable).
fn physical_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One speculative pass of the capacity binary search. Each round spreads
/// up to `seats` probe bounds evenly across the open interval `[lo, best)`
/// and races them on persistent workers: SAT at bound `m` lowers `best` to
/// the probed model's fleet size (≤ m), UNSAT raises `lo` past `m`. Both
/// facts are monotone — the fleet sizes form a feasibility staircase — so
/// folding decisive answers in ascending-bound order is timing-independent,
/// and the sequential finisher loop preserves the exact-optimum invariant.
fn speculative_capacity_search(
    compiled: &mut Compiled,
    n: &netarch_logic::OrderInt,
    selectors: &[Lit],
    lo: &mut u64,
    best: &mut u64,
) {
    // Probes assume the selectors plus order-encoding thresholds; declare
    // them all so no seat's inprocessing eliminates one mid-search.
    let mut assumable = selectors.to_vec();
    assumable.extend(n.thresholds().iter().copied());
    let Some(mut pool) = compiled.encoder.probe_pool(&assumable) else {
        return;
    };
    let mut rounds = 0u64;
    loop {
        if *best <= *lo || *best - *lo < 2 {
            break; // 0 or 1 open values: the sequential loop finishes.
        }
        let width = (pool.seats() as u64).min(*best - *lo - 1);
        let mut mids: Vec<u64> = (1..=width)
            .map(|j| *lo + (*best - *lo) * j / (width + 1))
            .collect();
        mids.sort_unstable();
        mids.dedup();
        mids.retain(|&m| m >= *lo && m < *best);
        if mids.is_empty() {
            break;
        }
        let mut probes = Vec::with_capacity(mids.len());
        let mut probed = Vec::with_capacity(mids.len());
        for &mid in &mids {
            // Assume "fleet ≤ mid" via the order encoding; mids inside the
            // open interval always map to a literal, but stay defensive.
            let netarch_logic::Bound::Lit(q) = n.ge_const(mid + 1) else {
                continue;
            };
            let mut assumptions = selectors.to_vec();
            assumptions.push(!q);
            probes.push(assumptions);
            probed.push(mid);
        }
        if probes.is_empty() {
            break;
        }
        let outcomes = pool.solve_round(&probes);
        rounds += 1;
        let mut progressed = false;
        for (&mid, outcome) in probed.iter().zip(&outcomes) {
            match outcome.result {
                SolveResult::Sat => {
                    let model = outcome.model.as_deref().expect("SAT probes carry a model");
                    let achieved = n.value(&|l| netarch_sat::lit_value_in(model, l)).min(mid);
                    if achieved < *best {
                        *best = achieved;
                        progressed = true;
                    }
                }
                SolveResult::Unsat => {
                    if mid + 1 > *lo {
                        *lo = mid + 1;
                        progressed = true;
                    }
                }
                SolveResult::Unknown => {}
            }
        }
        if !progressed {
            break; // all probes cancelled/inconclusive: fall back.
        }
    }
    compiled.encoder.absorb_parallel(&pool.finish(), rounds);
}

/// Maps an impossible mid-optimization MaxSAT outcome to a typed error.
/// `optimize` establishes feasibility before descending and activation
/// gating never removes models from the base theory, so a hard-UNSAT
/// level can only mean an engine bug — report it as such instead of
/// swallowing it as an empty diagnosis.
fn internal_level_error(level: &str, outcome: &MaxSatOutcome) -> CompileError {
    match outcome {
        MaxSatOutcome::WeightOverflow => CompileError::ObjectiveOverflow,
        _ => CompileError::Internal(format!(
            "objective level {level} became infeasible after the feasibility probe"
        )),
    }
}

fn diagnosis_from(compiled: &Compiled, mus: &[netarch_logic::GroupId]) -> Diagnosis {
    Diagnosis {
        conflicts: mus
            .iter()
            .map(|&g| {
                let meta = compiled.rule(g);
                ConflictRule {
                    label: meta.label.clone(),
                    description: meta.description.clone(),
                    citation: meta.citation.clone(),
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::component::{HardwareSpec, SystemSpec};
    use crate::condition::Condition;
    use crate::ordering::OrderingEdge;
    use crate::scenario::{Inventory, Objective, Pin, RoleRule};
    use crate::types::{Category, HardwareId, HardwareKind};
    use crate::workload::Workload;

    /// A small but complete scenario: two monitoring systems (one needs a
    /// NIC feature), two NIC models, one load balancer.
    fn test_scenario() -> Scenario {
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("SIMON", Category::Monitoring)
                    .solves("detect_queue_length")
                    .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
                    .cost(400)
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("PINGMESH", Category::Monitoring)
                    .solves("detect_queue_length")
                    .cost(100)
                    .build(),
            )
            .unwrap();
        catalog
            .add_system(
                SystemSpec::builder("ECMP", Category::LoadBalancer)
                    .solves("load_balancing")
                    .build(),
            )
            .unwrap();
        catalog
            .add_ordering(OrderingEdge::strict(
                "SIMON",
                "PINGMESH",
                Dimension::MonitoringQuality,
            ))
            .unwrap();
        catalog
            .add_ordering(OrderingEdge::strict(
                "PINGMESH",
                "SIMON",
                Dimension::DeploymentEase,
            ))
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("NIC_TS", HardwareKind::Nic)
                    .feature("NIC_TIMESTAMPS")
                    .cost(900)
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("NIC_PLAIN", HardwareKind::Nic).cost(300).build(),
            )
            .unwrap();
        Scenario::new(catalog)
            .with_workload(
                Workload::builder("app").needs("detect_queue_length").build(),
            )
            .with_role(Category::Monitoring, RoleRule::Required)
            .with_inventory(Inventory {
                nic_candidates: vec![HardwareId::new("NIC_TS"), HardwareId::new("NIC_PLAIN")],
                num_servers: 4,
                ..Inventory::default()
            })
    }

    #[test]
    fn check_finds_a_compliant_design() {
        let mut engine = Engine::new(test_scenario()).unwrap();
        let outcome = engine.check().unwrap();
        let design = outcome.design().expect("feasible");
        // Some monitoring system selected, and if it is SIMON the NIC must
        // be the timestamping model.
        let monitoring = design.selection(&Category::Monitoring).expect("one monitor");
        if monitoring.as_str() == "SIMON" {
            assert_eq!(
                design.hardware_for(HardwareKind::Nic).unwrap().as_str(),
                "NIC_TS"
            );
        }
    }

    #[test]
    fn pin_forces_nic_upgrade() {
        let scenario = test_scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let design = outcome.design().expect("feasible");
        assert!(design.includes(&SystemId::new("SIMON")));
        assert_eq!(design.hardware_for(HardwareKind::Nic).unwrap().as_str(), "NIC_TS");
    }

    #[test]
    fn contradictory_pins_yield_named_diagnosis() {
        let scenario = test_scenario()
            .with_pin(Pin::Require(SystemId::new("SIMON")))
            .with_pin(Pin::Forbid(SystemId::new("SIMON")));
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let diagnosis = outcome.diagnosis().expect("infeasible");
        let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"pin:require:SIMON"));
        assert!(labels.contains(&"pin:forbid:SIMON"));
        // Minimal: exactly the two pins, not the innocent rules.
        assert_eq!(diagnosis.conflicts.len(), 2);
    }

    #[test]
    fn requirement_conflict_names_the_requirement() {
        // Forbid the only NIC with timestamps, require SIMON.
        let mut scenario = test_scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
        scenario.inventory.nic_candidates = vec![HardwareId::new("NIC_PLAIN")];
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        let diagnosis = outcome.diagnosis().expect("infeasible");
        let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
        assert!(
            labels.contains(&"req:SIMON:needs-nic-timestamps"),
            "diagnosis should name the NIC-timestamp rule, got {labels:?}"
        );
    }

    #[test]
    fn optimize_monitoring_quality_picks_simon() {
        let scenario = test_scenario()
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
        let mut engine = Engine::new(scenario).unwrap();
        let result = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            result.design.selection(&Category::Monitoring).unwrap().as_str(),
            "SIMON"
        );
        assert_eq!(result.levels[0].penalty, 0);
    }

    #[test]
    fn optimize_cost_picks_pingmesh_and_cheap_nic() {
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).unwrap();
        let result = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            result.design.selection(&Category::Monitoring).unwrap().as_str(),
            "PINGMESH"
        );
        assert_eq!(
            result.design.hardware_for(HardwareKind::Nic).unwrap().as_str(),
            "NIC_PLAIN"
        );
    }

    #[test]
    fn lexicographic_order_matters() {
        // Quality first: SIMON + expensive NIC. Cost first: PINGMESH.
        let quality_first = test_scenario()
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality))
            .with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(quality_first).unwrap();
        let r1 = engine.optimize().unwrap().expect("feasible");
        assert_eq!(r1.design.selection(&Category::Monitoring).unwrap().as_str(), "SIMON");

        let cost_first = test_scenario()
            .with_objective(Objective::MinimizeCost)
            .with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality));
        let mut engine = Engine::new(cost_first).unwrap();
        let r2 = engine.optimize().unwrap().expect("feasible");
        assert_eq!(r2.design.selection(&Category::Monitoring).unwrap().as_str(), "PINGMESH");
    }

    #[test]
    fn engine_recovers_after_optimize() {
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).unwrap();
        let _ = engine.optimize().unwrap();
        // The optimize gate is retired on return, so the session answers
        // later queries over the full model space.
        let outcome = engine.check().unwrap();
        assert!(outcome.design().is_some());
        let again = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            again.design.selection(&Category::Monitoring).unwrap().as_str(),
            "PINGMESH"
        );
    }

    #[test]
    fn enumerate_designs_lists_equivalence_classes() {
        let mut scenario = test_scenario();
        scenario.roles.insert(Category::LoadBalancer, RoleRule::Forbidden);
        let mut engine = Engine::new(scenario).unwrap();
        // Projected on systems only: SIMON or PINGMESH (ECMP forbidden).
        let designs = engine.enumerate_designs(16, false).unwrap();
        assert_eq!(designs.len(), 2, "{designs:?}");
        // Projected on systems + hardware: PINGMESH pairs with both NICs,
        // SIMON only with NIC_TS → 3 classes.
        let designs = engine.enumerate_designs(16, true).unwrap();
        assert_eq!(designs.len(), 3, "{designs:?}");
    }

    #[test]
    fn compare_exposes_order_and_incomparability() {
        let engine = Engine::new(test_scenario()).unwrap();
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality
            ),
            Comparison::Better
        );
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::DeploymentEase
            ),
            Comparison::Worse
        );
        assert_eq!(
            engine.compare(
                &SystemId::new("SIMON"),
                &SystemId::new("ECMP"),
                &Dimension::Throughput
            ),
            Comparison::Incomparable
        );
    }

    #[test]
    fn measurement_advice_depends_on_decision_relevance() {
        // Two monitoring systems, incomparable on quality; the objective
        // maximizes quality → the verdict decides the design → measure.
        let scenario = {
            let mut s = test_scenario();
            // Remove the existing SIMON ≻ PINGMESH quality edge by
            // rebuilding the catalog without orderings.
            let mut catalog = Catalog::new();
            for spec in s.catalog.systems() {
                catalog.add_system(spec.clone()).unwrap();
            }
            for h in s.catalog.hardware_specs() {
                catalog.add_hardware(h.clone()).unwrap();
            }
            s.catalog = catalog;
            s.with_objective(Objective::MaximizeDimension(Dimension::MonitoringQuality))
        };
        let engine = Engine::new(scenario.clone()).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality,
            )
            .unwrap();
        assert!(advice.worthwhile, "{}", advice.reason);
        let da = advice.design_if_first_better.unwrap();
        let db = advice.design_if_second_better.unwrap();
        assert!(da.includes(&SystemId::new("SIMON")));
        assert!(db.includes(&SystemId::new("PINGMESH")));
    }

    #[test]
    fn measurement_not_worthwhile_when_already_ordered() {
        let engine = Engine::new(test_scenario()).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("SIMON"),
                &SystemId::new("PINGMESH"),
                &Dimension::MonitoringQuality,
            )
            .unwrap();
        assert!(!advice.worthwhile);
        assert!(advice.reason.contains("already orders"));
    }

    #[test]
    fn measurement_not_worthwhile_on_irrelevant_dimension() {
        // Objectives ignore DeploymentEase and no edge exists on it for
        // ECMP vs PINGMESH (different categories anyway): the design
        // cannot change.
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let engine = Engine::new(scenario).unwrap();
        let advice = engine
            .advise_measurement(
                &SystemId::new("ECMP"),
                &SystemId::new("PINGMESH"),
                &Dimension::Throughput,
            )
            .unwrap();
        assert!(!advice.worthwhile, "{}", advice.reason);
        assert!(advice.reason.contains("same under either verdict"));
    }

    #[test]
    fn plan_capacity_sizes_the_fleet() {
        use crate::condition::AmountExpr;
        use crate::types::Resource;
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("MONITOR", Category::Monitoring)
                    .solves("monitoring")
                    .consumes(Resource::Cores, AmountExpr::constant(40))
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV32", HardwareKind::Server)
                    .numeric("cores", 32.0)
                    .cost(5_000)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(
                Workload::builder("app").needs("monitoring").peak_cores(200).build(),
            )
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV32")],
                num_servers: 1, // irrelevant: capacity mode varies it
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        let plan = engine.plan_capacity(64).unwrap().expect("feasible");
        // 200 workload + 40 system = 240 cores; 32/server → 8 servers.
        assert_eq!(plan.servers_needed, 8);
        assert!(plan.design.includes(&SystemId::new("MONITOR")));
        let cores = &plan.design.resources[&Resource::Cores];
        assert_eq!(cores.used, 240);
        assert_eq!(cores.capacity, Some(256));
    }

    #[test]
    fn plan_capacity_reports_impossible_fleets() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("X", Category::Monitoring).solves("m").build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("TINY", HardwareKind::Server)
                    .numeric("cores", 2.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("m").peak_cores(1000).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("TINY")],
                num_servers: 1,
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        // 1000 cores need 500 tiny servers; cap the fleet at 100 → infeasible.
        let result = engine.plan_capacity(100).unwrap();
        let diagnosis = result.unwrap_err();
        assert!(diagnosis
            .conflicts
            .iter()
            .any(|c| c.label.starts_with("capacity:cores:")));
        // With a big enough cap it works.
        let plan = engine.plan_capacity(600).unwrap().expect("feasible");
        assert_eq!(plan.servers_needed, 500);
    }

    #[test]
    fn workload_cores_checked_even_without_system_demands() {
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("X", Category::Monitoring).solves("m").build())
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV8", HardwareKind::Server)
                    .numeric("cores", 8.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("m").peak_cores(100).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV8")],
                num_servers: 2, // 16 cores < 100 required
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        let outcome = engine.check().unwrap();
        assert!(
            outcome.diagnosis().is_some(),
            "engine must reject a fleet too small for the workload alone"
        );
    }

    #[test]
    fn stats_reflect_compilation() {
        let engine = Engine::new(test_scenario()).unwrap();
        let stats = engine.stats();
        assert!(stats.rules >= 4); // roles, requirement, workload need, hw choice
        assert_eq!(stats.decision_atoms, 5); // 3 systems + 2 NICs
        assert!(stats.clauses > 0);
        assert!(stats.solver_vars >= stats.decision_atoms);
        assert_eq!(stats.recompiles, 0);
        assert_eq!(stats.session_solves, 0); // no query ran yet
    }

    #[test]
    fn session_answers_interleaved_queries_without_recompiling() {
        let scenario = test_scenario().with_objective(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).unwrap();
        assert!(engine.check().unwrap().design().is_some());
        let opt1 = engine.optimize().unwrap().expect("feasible");
        let classes = engine.enumerate_designs(16, false).unwrap();
        assert!(classes.len() >= 2, "{classes:?}");
        assert!(engine.check().unwrap().design().is_some());
        // The optimum is stable across the interleaving: the enumeration
        // gate was retired, so no blocking clause constrains this solve.
        let opt2 = engine.optimize().unwrap().expect("feasible");
        assert_eq!(
            opt1.design.selections, opt2.design.selections,
            "interleaved queries perturbed the optimize answer"
        );
        let stats = engine.stats();
        assert_eq!(stats.recompiles, 0, "session must never recompile");
        assert!(stats.session_solves > 0);
        // 1 optimize + 1 enumerate; the second optimize is memoized.
        assert!(stats.retired_activations >= 2);
    }

    #[test]
    fn unsat_subset_query_leaves_no_stale_model() {
        // Regression: the solver used to keep the last SAT model visible
        // after an UNSAT solve, so a hypothetical extraction resurrected a
        // stale design. SAT probe first (model populated), contradictory
        // subset next (UNSAT), then extraction must see no assignment.
        let scenario = test_scenario()
            .with_pin(Pin::Require(SystemId::new("SIMON")))
            .with_pin(Pin::Forbid(SystemId::new("SIMON")));
        let mut engine = Engine::new(scenario).unwrap();
        assert!(engine.check_rule_subset(&["pin:require:SIMON"]).unwrap());
        assert!(!engine
            .check_rule_subset(&["pin:require:SIMON", "pin:forbid:SIMON"])
            .unwrap());
        let design = engine.extract_design();
        assert!(
            design.systems().is_empty() && design.hardware.is_empty(),
            "stale model leaked through an UNSAT solve: {design:?}"
        );
    }

    #[test]
    fn enumerate_zero_limit_short_circuits() {
        let mut engine = Engine::new(test_scenario()).unwrap();
        let designs = engine.enumerate_designs(0, true).unwrap();
        assert!(designs.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.recompiles, 0);
        assert_eq!(stats.session_solves, 0, "limit 0 must not touch the solver");
    }

    #[test]
    fn repeated_optimize_and_enumerate_replay_memoized_answers() {
        // Queries are pure within a session (the scenario never changes and
        // every gate is retired), so identical repeats must not re-solve.
        let mut engine = Engine::new(test_scenario()).unwrap();
        let o1 = engine.optimize().unwrap().expect("feasible");
        let d1 = engine.enumerate_designs(3, false).unwrap();
        let solves = engine.stats().session_solves;
        let o2 = engine.optimize().unwrap().expect("feasible");
        let d2 = engine.enumerate_designs(3, false).unwrap();
        assert_eq!(o1.design.selections, o2.design.selections);
        assert_eq!(d1.len(), d2.len());
        assert_eq!(
            engine.stats().session_solves,
            solves,
            "identical repeat queries must replay memoized session answers"
        );
        // A different projection is a different query and solves afresh.
        engine.enumerate_designs(3, true).unwrap();
        assert!(engine.stats().session_solves > solves);
    }

    #[test]
    fn impossible_maxsat_outcomes_map_to_typed_errors() {
        // Regression: `optimize` used to swallow a mid-descent HardUnsat
        // as `Ok(Err(Diagnosis::default()))` — indistinguishable from a
        // real (but unexplained) infeasibility. The mapping is now typed.
        match internal_level_error("MinimizeCost", &MaxSatOutcome::HardUnsat) {
            CompileError::Internal(context) => assert!(context.contains("MinimizeCost")),
            other => panic!("expected Internal, got {other:?}"),
        }
        assert_eq!(
            internal_level_error("x", &MaxSatOutcome::WeightOverflow),
            CompileError::ObjectiveOverflow
        );
    }

    #[test]
    fn capacity_sessions_are_cached_per_fleet_bound() {
        use crate::condition::AmountExpr;
        use crate::types::Resource;
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("MONITOR", Category::Monitoring)
                    .solves("monitoring")
                    .consumes(Resource::Cores, AmountExpr::constant(40))
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV32", HardwareKind::Server)
                    .numeric("cores", 32.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("monitoring").peak_cores(200).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV32")],
                num_servers: 1,
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        let p1 = engine.plan_capacity(64).unwrap().expect("feasible");
        let p2 = engine.plan_capacity(64).unwrap().expect("feasible");
        assert_eq!(p1.servers_needed, p2.servers_needed);
        assert_eq!(engine.stats().recompiles, 0, "same bound reuses the session");
        let p3 = engine.plan_capacity(32).unwrap().expect("feasible");
        assert_eq!(p3.servers_needed, 8);
        assert_eq!(engine.stats().recompiles, 1, "changed bound re-derives once");
    }

    #[test]
    fn alternating_capacity_bounds_reuse_cached_sessions() {
        // Regression: the capacity cache used to hold a single bound, so an
        // alternating 64 → 32 → 64 → 32 pattern recompiled every call. The
        // LRU keeps both warm: exactly one recompile (the first 32), zero
        // after that.
        use crate::condition::AmountExpr;
        use crate::types::Resource;
        let mut catalog = Catalog::new();
        catalog
            .add_system(
                SystemSpec::builder("MONITOR", Category::Monitoring)
                    .solves("monitoring")
                    .consumes(Resource::Cores, AmountExpr::constant(40))
                    .build(),
            )
            .unwrap();
        catalog
            .add_hardware(
                HardwareSpec::builder("SRV32", HardwareKind::Server)
                    .numeric("cores", 32.0)
                    .build(),
            )
            .unwrap();
        let scenario = Scenario::new(catalog)
            .with_workload(Workload::builder("app").needs("monitoring").peak_cores(200).build())
            .with_inventory(Inventory {
                server_candidates: vec![HardwareId::new("SRV32")],
                num_servers: 1,
                ..Inventory::default()
            });
        let mut engine = Engine::new(scenario).unwrap();
        for round in 0..3 {
            let p64 = engine.plan_capacity(64).unwrap().expect("feasible");
            let p32 = engine.plan_capacity(32).unwrap().expect("feasible");
            assert_eq!(p64.servers_needed, 8, "round {round}");
            assert_eq!(p32.servers_needed, 8, "round {round}");
        }
        assert_eq!(
            engine.stats().recompiles,
            1,
            "alternating bounds must hit the LRU after the initial compiles"
        );
    }
}
