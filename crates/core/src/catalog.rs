//! The knowledge catalog: the machine-readable compendium of systems,
//! hardware, and preference rules that the paper envisions the community
//! curating (§1, §3.3).

use crate::component::{HardwareSpec, SystemSpec};
use crate::error::CatalogError;
use crate::ordering::{OrderingEdge, PreferenceOrder};
use crate::types::{Capability, Category, HardwareId, HardwareKind, SystemId};
use netarch_rt::impl_json_struct;
use std::collections::BTreeMap;

/// The knowledge catalog.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    systems: BTreeMap<SystemId, SystemSpec>,
    hardware: BTreeMap<HardwareId, HardwareSpec>,
    order: PreferenceOrder,
}

impl_json_struct!(Catalog { systems, hardware, order });

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a system encoding; rejects duplicate ids.
    pub fn add_system(&mut self, spec: SystemSpec) -> Result<(), CatalogError> {
        if self.systems.contains_key(&spec.id) {
            return Err(CatalogError::DuplicateSystem(spec.id));
        }
        self.systems.insert(spec.id.clone(), spec);
        Ok(())
    }

    /// Registers a hardware encoding; rejects duplicate ids.
    pub fn add_hardware(&mut self, spec: HardwareSpec) -> Result<(), CatalogError> {
        if self.hardware.contains_key(&spec.id) {
            return Err(CatalogError::DuplicateHardware(spec.id));
        }
        self.hardware.insert(spec.id.clone(), spec);
        Ok(())
    }

    /// Adds a preference edge. Both endpoints must already be registered —
    /// rules-of-thumb about unknown systems are probably typos.
    pub fn add_ordering(&mut self, edge: OrderingEdge) -> Result<(), CatalogError> {
        for endpoint in [&edge.better, &edge.worse] {
            if !self.systems.contains_key(endpoint) {
                return Err(CatalogError::UnknownSystem(endpoint.clone()));
            }
        }
        self.order.add(edge);
        Ok(())
    }

    /// Looks up a system.
    pub fn system(&self, id: &SystemId) -> Option<&SystemSpec> {
        self.systems.get(id)
    }

    /// Looks up a hardware model.
    pub fn hardware(&self, id: &HardwareId) -> Option<&HardwareSpec> {
        self.hardware.get(id)
    }

    /// All systems, ordered by id.
    pub fn systems(&self) -> impl Iterator<Item = &SystemSpec> {
        self.systems.values()
    }

    /// All hardware, ordered by id.
    pub fn hardware_specs(&self) -> impl Iterator<Item = &HardwareSpec> {
        self.hardware.values()
    }

    /// Systems of a category.
    pub fn systems_in(&self, category: &Category) -> Vec<&SystemSpec> {
        self.systems.values().filter(|s| &s.category == category).collect()
    }

    /// Systems claiming a capability.
    pub fn systems_solving(&self, capability: &Capability) -> Vec<&SystemSpec> {
        self.systems.values().filter(|s| s.solves(capability)).collect()
    }

    /// Hardware models of a kind.
    pub fn hardware_of_kind(&self, kind: HardwareKind) -> Vec<&HardwareSpec> {
        self.hardware.values().filter(|h| h.kind == kind).collect()
    }

    /// The preference order.
    pub fn order(&self) -> &PreferenceOrder {
        &self.order
    }

    /// Number of systems.
    pub fn num_systems(&self) -> usize {
        self.systems.len()
    }

    /// Number of hardware models.
    pub fn num_hardware(&self) -> usize {
        self.hardware.len()
    }

    /// Validates referential integrity: every system id mentioned in
    /// conflicts, conditions, and ordering edges must be registered.
    /// Returns all dangling references.
    pub fn validate(&self) -> Vec<CatalogError> {
        let mut errors = Vec::new();
        for spec in self.systems.values() {
            for other in &spec.conflicts {
                if !self.systems.contains_key(other) {
                    errors.push(CatalogError::DanglingReference {
                        from: spec.id.clone(),
                        to: other.clone(),
                    });
                }
            }
            for req in &spec.requires {
                for referenced in req.condition.referenced_systems() {
                    if !self.systems.contains_key(referenced) {
                        errors.push(CatalogError::DanglingReference {
                            from: spec.id.clone(),
                            to: referenced.clone(),
                        });
                    }
                }
            }
        }
        errors
    }

    /// Total size of the specification in "rule units": systems count each
    /// requirement/conflict/resource/capability, hardware each feature and
    /// numeric attribute, orderings one each. The paper's §3.1 success
    /// metric is that this grows linearly with the component count.
    pub fn spec_size(&self) -> usize {
        let system_units: usize = self
            .systems
            .values()
            .map(|s| {
                1 + s.solves.len() + s.requires.len() + s.conflicts.len() + s.resources.len()
                    + s.provides.len()
            })
            .sum();
        let hardware_units: usize = self
            .hardware
            .values()
            .map(|h| 1 + h.features.len() + h.numeric.len())
            .sum();
        system_units + hardware_units + self.order.edges().len()
    }
}

/// A modular catalog update — the paper's §6 "Proof modularity": "it is
/// possible for a new system (or a new version of an old system) to
/// update the properties it provides" without re-deriving anything else.
///
/// Upserts replace whole encodings by id (encodings are self-contained —
/// no semantics are attached to individual properties, so replacing one
/// is local). Removals drop the encoding and every ordering edge touching
/// it; if any *remaining* system still references the removed one (in a
/// conflict or condition), the delta is rejected so the knowledge base
/// can never silently dangle.
#[derive(Clone, Default, Debug)]
pub struct CatalogDelta {
    /// Systems to add or replace (matched by id).
    pub upsert_systems: Vec<SystemSpec>,
    /// Systems to remove.
    pub remove_systems: Vec<SystemId>,
    /// Hardware to add or replace (matched by id).
    pub upsert_hardware: Vec<HardwareSpec>,
    /// Hardware to remove.
    pub remove_hardware: Vec<HardwareId>,
    /// Ordering edges to append.
    pub add_orderings: Vec<OrderingEdge>,
}

impl_json_struct!(CatalogDelta {
    upsert_systems,
    remove_systems,
    upsert_hardware,
    remove_hardware,
    add_orderings,
});

impl CatalogDelta {
    /// A delta that replaces one system encoding (the common "new version
    /// of an old system" case).
    pub fn update_system(spec: SystemSpec) -> CatalogDelta {
        CatalogDelta { upsert_systems: vec![spec], ..CatalogDelta::default() }
    }
}

impl Catalog {
    /// Applies a delta atomically: on error the catalog is unchanged.
    pub fn apply(&mut self, delta: CatalogDelta) -> Result<(), CatalogError> {
        let mut next = self.clone();
        for id in &delta.remove_systems {
            if next.systems.remove(id).is_none() {
                return Err(CatalogError::UnknownSystem(id.clone()));
            }
        }
        for spec in delta.upsert_systems {
            next.systems.insert(spec.id.clone(), spec);
        }
        for id in &delta.remove_hardware {
            if next.hardware.remove(id).is_none() {
                return Err(CatalogError::DuplicateHardware(id.clone()));
            }
        }
        for spec in delta.upsert_hardware {
            next.hardware.insert(spec.id.clone(), spec);
        }
        // Drop edges touching removed systems; then append new edges.
        let removed: std::collections::BTreeSet<&SystemId> =
            delta.remove_systems.iter().collect();
        let kept: Vec<OrderingEdge> = next
            .order
            .edges()
            .iter()
            .filter(|e| !removed.contains(&e.better) && !removed.contains(&e.worse))
            .cloned()
            .collect();
        next.order = PreferenceOrder::new();
        for e in kept {
            next.order.add(e);
        }
        for e in delta.add_orderings {
            for endpoint in [&e.better, &e.worse] {
                if !next.systems.contains_key(endpoint) {
                    return Err(CatalogError::UnknownSystem(endpoint.clone()));
                }
            }
            next.order.add(e);
        }
        // Referential integrity of the result.
        let errors = next.validate();
        if let Some(first) = errors.into_iter().next() {
            return Err(first);
        }
        *self = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::ordering::OrderingEdge;
    use crate::types::Dimension;

    fn catalog_with(names: &[&str]) -> Catalog {
        let mut c = Catalog::new();
        for n in names {
            c.add_system(SystemSpec::builder(*n, Category::NetworkStack).build())
                .unwrap();
        }
        c
    }

    #[test]
    fn duplicate_system_rejected() {
        let mut c = catalog_with(&["LINUX"]);
        let err = c
            .add_system(SystemSpec::builder("LINUX", Category::NetworkStack).build())
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateSystem(_)));
    }

    #[test]
    fn ordering_requires_known_endpoints() {
        let mut c = catalog_with(&["LINUX"]);
        let err = c
            .add_ordering(OrderingEdge::strict("LINUX", "GHOST", Dimension::Throughput))
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownSystem(id) if id.as_str() == "GHOST"));
    }

    #[test]
    fn category_and_capability_lookup() {
        let mut c = Catalog::new();
        c.add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .solves("detect_queue_length")
                .build(),
        )
        .unwrap();
        c.add_system(
            SystemSpec::builder("ECMP", Category::LoadBalancer)
                .solves("load_balancing")
                .build(),
        )
        .unwrap();
        assert_eq!(c.systems_in(&Category::Monitoring).len(), 1);
        assert_eq!(c.systems_in(&Category::Firewall).len(), 0);
        assert_eq!(
            c.systems_solving(&Capability::new("load_balancing"))[0].id.as_str(),
            "ECMP"
        );
    }

    #[test]
    fn validate_finds_dangling_conflicts_and_conditions() {
        let mut c = Catalog::new();
        c.add_system(
            SystemSpec::builder("A", Category::Transport)
                .conflicts_with("MISSING")
                .requires("needs-ghost", Condition::system("GHOST"))
                .build(),
        )
        .unwrap();
        let errors = c.validate();
        assert_eq!(errors.len(), 2);
    }

    #[test]
    fn delta_upsert_replaces_one_encoding_locally() {
        // §6 proof modularity: a new version of SIMON changes only SIMON.
        let mut c = Catalog::new();
        c.add_system(
            SystemSpec::builder("SIMON", Category::Monitoring)
                .requires("v1-rule", Condition::nics_have("NIC_TIMESTAMPS"))
                .build(),
        )
        .unwrap();
        c.add_system(SystemSpec::builder("PINGMESH", Category::Monitoring).build())
            .unwrap();
        c.add_ordering(OrderingEdge::strict("SIMON", "PINGMESH", Dimension::MonitoringQuality))
            .unwrap();
        let v2 = SystemSpec::builder("SIMON", Category::Monitoring)
            .requires("v2-rule", Condition::nics_have("SMARTNIC_CPU"))
            .build();
        c.apply(CatalogDelta::update_system(v2)).unwrap();
        let simon = c.system(&SystemId::new("SIMON")).unwrap();
        assert_eq!(simon.requires[0].label, "v2-rule");
        // The ordering and the other system are untouched.
        assert_eq!(c.order().edges().len(), 1);
        assert!(c.system(&SystemId::new("PINGMESH")).is_some());
    }

    #[test]
    fn delta_removal_drops_touching_edges() {
        let mut c = catalog_with(&["A", "B", "C"]);
        c.add_ordering(OrderingEdge::strict("A", "B", Dimension::Throughput)).unwrap();
        c.add_ordering(OrderingEdge::strict("B", "C", Dimension::Throughput)).unwrap();
        c.apply(CatalogDelta {
            remove_systems: vec![SystemId::new("B")],
            ..CatalogDelta::default()
        })
        .unwrap();
        assert!(c.system(&SystemId::new("B")).is_none());
        assert_eq!(c.order().edges().len(), 0, "both edges touched B");
    }

    #[test]
    fn delta_rejecting_dangling_reference_leaves_catalog_unchanged() {
        let mut c = catalog_with(&["A"]);
        c.add_system(
            SystemSpec::builder("D", Category::Transport).conflicts_with("A").build(),
        )
        .unwrap();
        // Removing A would leave D's conflict dangling.
        let err = c
            .apply(CatalogDelta {
                remove_systems: vec![SystemId::new("A")],
                ..CatalogDelta::default()
            })
            .unwrap_err();
        assert!(matches!(err, CatalogError::DanglingReference { .. }));
        assert!(c.system(&SystemId::new("A")).is_some(), "atomicity: rollback");
    }

    #[test]
    fn delta_new_system_with_edges_in_one_step() {
        let mut c = catalog_with(&["LINUX"]);
        c.apply(CatalogDelta {
            upsert_systems: vec![SystemSpec::builder("NEWSTACK", Category::NetworkStack).build()],
            add_orderings: vec![OrderingEdge::strict("NEWSTACK", "LINUX", Dimension::Throughput)],
            ..CatalogDelta::default()
        })
        .unwrap();
        assert_eq!(c.num_systems(), 2);
        assert_eq!(c.order().edges().len(), 1);
    }

    #[test]
    fn delta_edge_to_unknown_system_rejected() {
        let mut c = catalog_with(&["LINUX"]);
        let err = c
            .apply(CatalogDelta {
                add_orderings: vec![OrderingEdge::strict("GHOST", "LINUX", Dimension::Throughput)],
                ..CatalogDelta::default()
            })
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownSystem(_)));
    }

    #[test]
    fn spec_size_grows_linearly_per_added_system() {
        let mut c = Catalog::new();
        let mut sizes = Vec::new();
        for i in 0..10 {
            c.add_system(
                SystemSpec::builder(format!("S{i}"), Category::Transport)
                    .solves("cap")
                    .requires("r", Condition::True)
                    .build(),
            )
            .unwrap();
            sizes.push(c.spec_size());
        }
        let deltas: Vec<usize> = sizes.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == deltas[0]), "growth not linear: {deltas:?}");
    }
}
