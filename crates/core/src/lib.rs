//! # netarch-core
//!
//! The reasoning engine from *Lightweight Automated Reasoning for Network
//! Architectures* (HotNets '24): a "broad but shallow" knowledge
//! representation for network systems, hardware, and workloads, compiled
//! onto a SAT/MaxSAT substrate.
//!
//! The pieces map to the paper like so:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Listing 1 (hardware encodings) | [`component::HardwareSpec`] |
//! | Listing 2 (system encodings) | [`component::SystemSpec`] |
//! | Listing 3 (workloads, `Optimize(...)`) | [`workload`], [`scenario::Objective`] |
//! | Figure 1 (conditional partial orders) | [`ordering`] |
//! | §3.4 (SAT-based reasoning) | [`compile`], [`query::Engine`] |
//! | §5.1 (queries) | [`query`] |
//! | §6 (explainability, equivalence classes) | [`explain`], [`query::Engine::enumerate_designs`] |
//!
//! ```
//! use netarch_core::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! catalog.add_system(
//!     SystemSpec::builder("SIMON", Category::Monitoring)
//!         .solves("detect_queue_length")
//!         .requires("needs-nic-timestamps", Condition::nics_have("NIC_TIMESTAMPS"))
//!         .build(),
//! ).unwrap();
//! catalog.add_hardware(
//!     HardwareSpec::builder("CX6", HardwareKind::Nic)
//!         .feature("NIC_TIMESTAMPS")
//!         .build(),
//! ).unwrap();
//! let scenario = Scenario::new(catalog)
//!     .with_workload(Workload::builder("app").needs("detect_queue_length").build())
//!     .with_inventory(Inventory {
//!         nic_candidates: vec![HardwareId::new("CX6")],
//!         num_servers: 8,
//!         ..Inventory::default()
//!     });
//! let mut engine = Engine::new(scenario).unwrap();
//! let outcome = engine.check().unwrap();
//! assert!(outcome.design().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod catalog;
pub mod compile;
pub mod component;
pub mod condition;
pub mod disambiguate;
pub mod error;
pub mod explain;
pub mod fingerprint;
pub mod ordering;
pub mod query;
pub mod scenario;
pub mod solution;
pub mod types;
pub mod workload;

/// Convenient glob import for typical engine use.
pub mod prelude {
    pub use crate::catalog::{Catalog, CatalogDelta};
    pub use crate::component::{HardwareSpec, Requirement, ResourceDemand, SystemSpec};
    pub use crate::condition::{AmountExpr, CmpOp, Condition, StaticContext};
    pub use crate::disambiguate::{plan_questions, render_plan, Disambiguation, Question};
    pub use crate::error::{CatalogError, CompileError};
    pub use crate::explain::{render_diagnosis, suggest_relaxations};
    pub use crate::fingerprint::{
        fingerprint_catalog, fingerprint_scenario, Fingerprint, ScenarioFingerprint,
    };
    pub use crate::ordering::{Comparison, EdgeKind, OrderingEdge, PreferenceOrder};
    pub use crate::query::{CapacityPlan, Diagnosis, Engine, MeasurementAdvice, Outcome};
    pub use crate::scenario::{Inventory, Objective, Pin, RoleRule, Scenario, ScenarioEdit};
    pub use crate::solution::Design;
    pub use crate::types::{
        Capability, Category, Dimension, Feature, HardwareId, HardwareKind, ParamName,
        Property, Resource, SystemId, WorkloadId,
    };
    pub use crate::workload::{PerformanceBound, Workload};
}
