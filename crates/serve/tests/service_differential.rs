//! Differential oracle for the multi-tenant service.
//!
//! Whatever the service does internally — shard routing, warm-session
//! cache hits, LRU eviction, session-affinity co-location — must be
//! answer-invisible: every response must match a throwaway engine
//! freshly compiled for that one request. The tape generator produces
//! the adversarial part (repeat/variant/cold interleavings over a pool
//! of related scenarios), and the check sweeps the configuration lattice
//! the ISSUE names: 1, 2, and 4 shards, cache on and off.
//!
//! Agreement is semantic ([`Answer`] digests decided content only), so
//! comparison is plain equality — no tolerance, no witness wiggle room.

use netarch_core::prelude::*;
use netarch_logic::SolveBackend;
use netarch_rt::prop::{self, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, prop_assert_eq, Rng};
use netarch_serve::request::run_query;
use netarch_serve::{generate_tape, ReplaySpec, Request, Service, ServiceConfig};

const CATEGORIES: [Category; 3] =
    [Category::Monitoring, Category::LoadBalancer, Category::Firewall];

const FEATURES: [&str; 2] = ["F0", "F1"];

/// Generation parameters: a pool of related base scenarios plus the
/// replay spec that drives the tape.
#[derive(Debug, Clone)]
struct Seed {
    systems_per_category: Vec<u8>,
    feature_mask: u8,
    conflict_mask: u8,
    nic_features: [bool; 2],
    needs_mask: u8,
    required_roles: u8,
    pool_size: u8,
    tape_seed: u64,
    requests: u8,
}

impl_shrink_struct!(Seed {
    systems_per_category,
    feature_mask,
    conflict_mask,
    nic_features,
    needs_mask,
    required_roles,
    pool_size,
    tape_seed,
    requests,
});

fn gen_seed(rng: &mut Rng) -> Seed {
    Seed {
        systems_per_category: prop::gen_vec(rng, 3..=3, |r| r.gen_range(1..4u8)),
        feature_mask: rng.gen_range(0..=u8::MAX),
        conflict_mask: rng.gen_range(0..=u8::MAX),
        nic_features: [rng.gen_bool(0.5), rng.gen_bool(0.5)],
        needs_mask: rng.gen_range(0..=u8::MAX),
        required_roles: rng.gen_range(0..=u8::MAX),
        pool_size: rng.gen_range(1..4u8),
        tape_seed: rng.next_u64(),
        requests: rng.gen_range(5..11u8),
    }
}

/// One base scenario, shaped by the seed masks (mirrors the
/// `interleaved_queries` generator: small catalogs with conditional
/// requirements, conflicts, roles — enough structure for infeasible
/// corners and non-trivial optimization).
fn build_base(seed: &Seed) -> Scenario {
    let mut catalog = Catalog::new();
    let mut all_ids: Vec<SystemId> = Vec::new();
    let mut index = 0usize;
    for (c, i) in CATEGORIES.iter().zip(0..) {
        let count = seed.systems_per_category.get(i).copied().unwrap_or(1).max(1);
        for k in 0..count {
            let id = format!("{}_{k}", c.to_string().to_uppercase().replace('-', "_"));
            let mut b = SystemSpec::builder(id.clone(), c.clone())
                .solves(format!("cap_{c}"))
                .cost(100 * (u64::from(k) + 1));
            if (seed.feature_mask >> (index % 8)) & 1 == 1 {
                let f = FEATURES[index % FEATURES.len()];
                b = b.requires(format!("needs-{f}"), Condition::nics_have(f));
            }
            let spec = b.build();
            all_ids.push(spec.id.clone());
            catalog.add_system(spec).unwrap();
            index += 1;
        }
    }
    for i in 1..all_ids.len() {
        if (seed.conflict_mask >> (i % 8)) & 1 == 1 {
            let mut spec = catalog.system(&all_ids[i]).unwrap().clone();
            spec.conflicts.push(all_ids[i - 1].clone());
            catalog
                .apply(netarch_core::catalog::CatalogDelta::update_system(spec))
                .unwrap();
        }
    }
    let mut nic = HardwareSpec::builder("NIC", HardwareKind::Nic);
    for (f, &on) in FEATURES.iter().zip(&seed.nic_features) {
        if on {
            nic = nic.feature(*f);
        }
    }
    catalog.add_hardware(nic.cost(500).build()).unwrap();

    let mut workload = Workload::builder("app");
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.needs_mask >> i) & 1 == 1 {
            workload = workload.needs(format!("cap_{c}"));
        }
    }
    let mut scenario = Scenario::new(catalog)
        .with_workload(workload.build())
        .with_objective(Objective::MinimizeCost)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC")],
            num_servers: 2,
            ..Inventory::default()
        });
    for (i, c) in CATEGORIES.iter().enumerate() {
        if (seed.required_roles >> i) & 1 == 1 {
            scenario = scenario.with_role(c.clone(), RoleRule::Required);
        }
    }
    scenario
}

/// The pool: the base plus context-perturbed siblings (shared catalog,
/// different full content), so cold traffic has somewhere to go.
fn build_pool(seed: &Seed) -> Vec<Scenario> {
    let base = build_base(seed);
    (0..seed.pool_size.max(1))
        .map(|i| base.clone().with_param(format!("tenant_{i}"), f64::from(i)))
        .collect()
}

fn build_tape(seed: &Seed) -> Vec<Request> {
    let spec = ReplaySpec {
        seed: seed.tape_seed,
        requests: usize::from(seed.requests.clamp(5, 10)),
        ..ReplaySpec::default()
    };
    generate_tape(&spec, &build_pool(seed))
}

/// Fresh-engine oracle: one throwaway sequential engine per request.
fn oracle_answers(tape: &[Request]) -> Vec<Result<netarch_serve::Answer, String>> {
    tape.iter()
        .map(|request| {
            match Engine::with_backend(request.scenario.clone(), SolveBackend::Sequential) {
                Ok(mut engine) => run_query(&mut engine, &request.query),
                Err(e) => Err(e.to_string()),
            }
        })
        .collect()
}

fn service_matches_oracle(seed: &Seed) -> Result<(), String> {
    let tape = build_tape(seed);
    let oracle = oracle_answers(&tape);
    for shards in [1usize, 2, 4] {
        for cache in [true, false] {
            let config = ServiceConfig {
                shards,
                sessions_per_shard: 2,
                cache,
                backend: SolveBackend::Sequential,
            };
            let (responses, stats) = Service::run(config, tape.clone());
            prop_assert_eq!(
                responses.len(),
                tape.len(),
                "response count diverged ({shards} shards, cache={cache})"
            );
            for (response, (request, expected)) in
                responses.iter().zip(tape.iter().zip(&oracle))
            {
                prop_assert_eq!(
                    response.id,
                    request.id,
                    "responses not in id order ({shards} shards, cache={cache})"
                );
                prop_assert!(
                    response.shard < shards,
                    "response from nonexistent shard {}",
                    response.shard
                );
                prop_assert_eq!(
                    &response.answer,
                    expected,
                    "answer diverged from fresh engine at request {} ({:?}, {shards} \
                     shards, cache={cache}, hit={})",
                    request.id,
                    request.query,
                    response.cache_hit
                );
            }
            prop_assert_eq!(
                stats.requests(),
                tape.len() as u64,
                "shard stats lost requests"
            );
            prop_assert_eq!(
                stats.cache_hits() + stats.cache_misses(),
                tape.len() as u64,
                "every request is a hit or a miss"
            );
            if !cache {
                prop_assert_eq!(stats.cache_hits(), 0, "cache off must never hit");
                prop_assert_eq!(
                    responses.iter().filter(|r| r.cache_hit).count(),
                    0,
                    "cache off responded with a hit"
                );
            }
        }
    }
    Ok(())
}

#[test]
fn service_agrees_with_fresh_engines() {
    prop::check(&Config::with_cases(16), gen_seed, service_matches_oracle);
}

/// Deterministic acceptance spot-check: a repeat-heavy tape on two
/// shards must produce warm hits and still match the oracle on every
/// answer — including capacity planning, the query with the most
/// session-side compilation to get wrong.
#[test]
fn repeat_heavy_tape_hits_warm_sessions_and_agrees() {
    let seed = Seed {
        systems_per_category: vec![2, 2, 1],
        feature_mask: 0b0101,
        conflict_mask: 0,
        nic_features: [true, false],
        needs_mask: 0b011,
        required_roles: 0b001,
        pool_size: 2,
        tape_seed: 0xD1FF,
        requests: 10,
    };
    let mut tape = build_tape(&seed);
    // Force capacity coverage: retag the last request.
    if let Some(last) = tape.last_mut() {
        last.query = netarch_serve::QueryKind::Capacity(4);
    }
    let oracle = oracle_answers(&tape);
    let config = ServiceConfig {
        shards: 2,
        sessions_per_shard: 4,
        cache: true,
        backend: SolveBackend::Sequential,
    };
    let (responses, stats) = Service::run(config, tape.clone());
    for (response, expected) in responses.iter().zip(&oracle) {
        assert_eq!(&response.answer, expected, "request {} diverged", response.id);
    }
    assert!(
        stats.cache_hits() > 0,
        "a repeat-heavy tape produced no warm hits: {stats:?}"
    );
}
