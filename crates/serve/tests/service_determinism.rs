//! Run-to-run reproducibility of the service (mirrors
//! `portfolio_determinism` one layer up).
//!
//! With a sequential backend, the whole pipeline — tape generation,
//! routing, cache hits, eviction, answers, shard counters, the summary
//! JSON — is a pure function of `(spec, pool, config)`. Two runs must
//! agree on every bit except wall-clock timing: response `micros` and
//! the summary's timing-derived fields (which [`strip_timing`] removes).
//! Any wall-clock, address, or map-iteration-order leak into routing or
//! eviction shows up here as a diff.

use netarch_core::prelude::*;
use netarch_logic::SolveBackend;
use netarch_rt::json::to_string_pretty;
use netarch_serve::report::{strip_timing, summary};
use netarch_serve::{generate_tape, ReplaySpec, Service, ServiceConfig};

fn pool() -> Vec<Scenario> {
    let mut catalog = Catalog::new();
    for (i, c) in [Category::Monitoring, Category::LoadBalancer, Category::Firewall]
        .into_iter()
        .enumerate()
    {
        for k in 0..2u64 {
            catalog
                .add_system(
                    SystemSpec::builder(format!("S{i}_{k}"), c.clone())
                        .solves(format!("cap_{c}"))
                        .cost(100 + 17 * k)
                        .build(),
                )
                .unwrap();
        }
    }
    catalog
        .add_hardware(HardwareSpec::builder("NIC", HardwareKind::Nic).cost(300).build())
        .unwrap();
    let base = Scenario::new(catalog)
        .with_workload(
            Workload::builder("app").needs("cap_monitoring").needs("cap_firewall").build(),
        )
        .with_objective(Objective::MinimizeCost)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("NIC")],
            num_servers: 3,
            ..Inventory::default()
        });
    (0..3).map(|t| base.clone().with_param(format!("tenant_{t}"), f64::from(t))).collect()
}

fn run_once(seed: u64) -> (Vec<(u64, usize, bool, String)>, String) {
    let spec = ReplaySpec { seed, requests: 24, ..ReplaySpec::default() };
    let tape = generate_tape(&spec, &pool());
    let config = ServiceConfig {
        shards: 2,
        sessions_per_shard: 2, // small enough to force evictions
        cache: true,
        backend: SolveBackend::Sequential,
    };
    let started = std::time::Instant::now();
    let (responses, stats) = Service::run(config, tape);
    let elapsed = started.elapsed().as_micros() as u64;
    let digest = responses
        .iter()
        .map(|r| (r.id, r.shard, r.cache_hit, format!("{:?}", r.answer)))
        .collect();
    let report = to_string_pretty(&strip_timing(&summary(&responses, &stats, elapsed)));
    (digest, report)
}

#[test]
fn seeded_runs_are_bit_identical_modulo_timing() {
    for seed in [0u64, 0xD17E, 0xFEED_5EED] {
        let (digest_a, report_a) = run_once(seed);
        let (digest_b, report_b) = run_once(seed);
        assert_eq!(
            digest_a, digest_b,
            "seed {seed:#x}: responses drifted between runs — routing, caching, \
             or answering depends on wall clock or ambient state"
        );
        assert_eq!(
            report_a, report_b,
            "seed {seed:#x}: timing-stripped summary drifted between runs"
        );
    }
}

#[test]
fn different_seeds_produce_different_tapes() {
    // Sanity guard: if the generator ignored its seed, the determinism
    // test above would pass vacuously.
    let (digest_a, _) = run_once(1);
    let (digest_b, _) = run_once(2);
    assert_ne!(digest_a, digest_b, "tape generator is seed-blind");
}

#[test]
fn shard_stats_are_reproducible() {
    let spec = ReplaySpec { seed: 0xABCD, requests: 20, ..ReplaySpec::default() };
    let config = ServiceConfig {
        shards: 4,
        sessions_per_shard: 1,
        cache: true,
        backend: SolveBackend::Sequential,
    };
    let (_, stats_a) = Service::run(config.clone(), generate_tape(&spec, &pool()));
    let (_, stats_b) = Service::run(config, generate_tape(&spec, &pool()));
    assert_eq!(
        stats_a, stats_b,
        "per-shard counters drifted — eviction or routing is nondeterministic"
    );
    assert_eq!(stats_a.requests(), 20);
}
