//! The sharded engine pool.
//!
//! A [`Service`] owns `shards` worker threads. Each worker holds a small
//! LRU cache of warm [`Engine`] sessions keyed by the *full* scenario
//! fingerprint: a request whose scenario content matches a cached
//! session skips compilation entirely and inherits everything the
//! session has learned — learned clauses, branching activity, memoized
//! optimize/enumerate answers.
//!
//! **Routing is stateless and deterministic.** With caching on, a
//! request goes to shard `catalog_fingerprint mod shards`: exact repeats
//! land where their warm session lives, and near-variants (same catalog,
//! tweaked context) land beside their relatives, so one shard's LRU
//! concentrates a tenant's iteration loop instead of scattering it.
//! With caching off, requests round-robin by id. Neither mode consults
//! runtime state, so the shard assignment — and with the sequential
//! backend, every answer and counter — is a pure function of the
//! request tape. The differential and determinism suites hold the
//! service to exactly that.
//!
//! **Eviction is logical-clock LRU.** Each worker stamps cache entries
//! with its per-shard request tick (never wall time); when the cache is
//! full the stalest entry is dropped. Deterministic by construction.

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use netarch_core::fingerprint::{fingerprint_scenario, ScenarioFingerprint};
use netarch_core::prelude::*;
use netarch_logic::SolveBackend;

use crate::request::{run_query, Request, Response};

/// Service shape and policy.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads, each owning an independent session cache.
    pub shards: usize,
    /// Warm sessions retained per shard before LRU eviction.
    pub sessions_per_shard: usize,
    /// Whether to cache compiled scenarios at all. Off ⇒ every request
    /// compiles a throwaway engine (the baseline the cache is measured
    /// against) and routing degrades to round-robin.
    pub cache: bool,
    /// Solve backend for every engine the service compiles.
    pub backend: SolveBackend,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            sessions_per_shard: 4,
            cache: true,
            backend: netarch_logic::backend_from_env(),
        }
    }
}

impl ServiceConfig {
    /// Clamps degenerate shapes (zero shards/sessions) up to 1.
    fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.sessions_per_shard = self.sessions_per_shard.max(1);
        self
    }
}

/// Per-shard counters, returned when the shard's thread joins.
///
/// Contains no timing: everything here must be bit-identical across
/// reruns of the same tape (under a deterministic backend), and wall
/// time never is. Latency lives on individual [`Response`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests this shard served.
    pub requests: u64,
    /// Requests answered by a warm cached session.
    pub cache_hits: u64,
    /// Requests that had to compile (cache miss or caching off).
    pub cache_misses: u64,
    /// Warm sessions dropped to make room.
    pub evictions: u64,
    /// Engines compiled (= misses that compiled successfully or not;
    /// compile failures count — the work was attempted).
    pub compiles: u64,
    /// Warm sessions still cached at shutdown.
    pub sessions_retained: u64,
    /// Learned clauses credited to retained sessions at shutdown.
    pub learnt_clauses: u64,
    /// Conflicts resolved by retained sessions at shutdown.
    pub conflicts: u64,
    /// Clauses deleted by inprocessing subsumption in retained sessions.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsumption in retained sessions.
    pub strengthened: u64,
    /// Variables removed by bounded variable elimination in retained
    /// sessions (Tseitin auxiliaries only; frozen atoms/selectors never).
    pub eliminated_vars: u64,
    /// Clauses shortened by vivification in retained sessions.
    pub vivified: u64,
    /// Conflicts resolved chronologically in retained sessions.
    pub chrono_backtracks: u64,
}

/// Shutdown summary: one [`ShardStats`] per shard, in shard order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total warm-session hits.
    pub fn cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Total compiling misses.
    pub fn cache_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_misses).sum()
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.evictions).sum()
    }

    /// Total engines compiled.
    pub fn compiles(&self) -> u64 {
        self.shards.iter().map(|s| s.compiles).sum()
    }

    /// Learned clauses across all retained sessions.
    pub fn learnt_clauses(&self) -> u64 {
        self.shards.iter().map(|s| s.learnt_clauses).sum()
    }
}

/// A request annotated with its precomputed fingerprint — hashed once at
/// submission, used for both routing and cache lookup.
struct Job {
    request: Request,
    fingerprint: ScenarioFingerprint,
}

/// One cached warm session.
struct CacheEntry {
    full_fp: u128,
    engine: Engine,
    last_used: u64,
}

/// The running service. Submit requests, then [`Service::finish`] to
/// drain responses (sorted by id) and join the shards.
pub struct Service {
    config: ServiceConfig,
    job_txs: Vec<mpsc::Sender<Job>>,
    response_rx: mpsc::Receiver<Response>,
    handles: Vec<thread::JoinHandle<ShardStats>>,
    submitted: u64,
}

impl Service {
    /// Spawns the shard workers.
    pub fn start(config: ServiceConfig) -> Service {
        let config = config.normalized();
        let (response_tx, response_rx) = mpsc::channel::<Response>();
        let mut job_txs = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            let response_tx = response_tx.clone();
            let worker_config = config.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("netarch-serve-{shard}"))
                    .spawn(move || shard_worker(shard, worker_config, job_rx, response_tx))
                    .expect("spawn shard worker"),
            );
            job_txs.push(job_tx);
        }
        // Workers hold the only remaining response senders; the drain
        // loop in `finish` ends when the last worker exits.
        drop(response_tx);
        Service { config, job_txs, response_rx, handles, submitted: 0 }
    }

    /// Routes one request to its shard.
    ///
    /// Cache on: by catalog fingerprint, so repeats and near-variants of
    /// one corpus share a shard (session affinity). Cache off: round-robin
    /// by id — no affinity to exploit, so spread the load evenly.
    pub fn submit(&mut self, request: Request) {
        let fingerprint = fingerprint_scenario(&request.scenario);
        let shards = self.job_txs.len() as u64;
        let shard = if self.config.cache {
            (fingerprint.catalog.0 % u128::from(shards)) as usize
        } else {
            (request.id % shards) as usize
        };
        self.submitted += 1;
        self.job_txs[shard]
            .send(Job { request, fingerprint })
            .expect("shard worker alive");
    }

    /// Closes intake, drains every response, joins the shards.
    /// Responses come back sorted by request id.
    pub fn finish(self) -> (Vec<Response>, ServiceStats) {
        let Service { job_txs, response_rx, handles, submitted, .. } = self;
        drop(job_txs);
        let mut responses: Vec<Response> = response_rx.iter().collect();
        responses.sort_by_key(|r| r.id);
        debug_assert_eq!(responses.len() as u64, submitted);
        let shards = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        (responses, ServiceStats { shards })
    }

    /// Convenience: start, submit a whole tape, finish.
    pub fn run(config: ServiceConfig, requests: Vec<Request>) -> (Vec<Response>, ServiceStats) {
        let mut service = Service::start(config);
        for request in requests {
            service.submit(request);
        }
        service.finish()
    }
}

fn shard_worker(
    shard: usize,
    config: ServiceConfig,
    jobs: mpsc::Receiver<Job>,
    responses: mpsc::Sender<Response>,
) -> ShardStats {
    let mut stats = ShardStats::default();
    let mut cache: Vec<CacheEntry> = Vec::new();
    let mut tick: u64 = 0;
    for Job { request, fingerprint } in jobs {
        tick += 1;
        stats.requests += 1;
        let started = Instant::now();
        let full_fp = fingerprint.full.0;
        let cached = config
            .cache
            .then(|| cache.iter_mut().find(|e| e.full_fp == full_fp))
            .flatten();
        let (cache_hit, answer) = match cached {
            Some(entry) => {
                entry.last_used = tick;
                stats.cache_hits += 1;
                (true, run_query(&mut entry.engine, &request.query))
            }
            None => {
                stats.cache_misses += 1;
                stats.compiles += 1;
                match Engine::with_backend(request.scenario.clone(), config.backend.clone()) {
                    Ok(mut engine) => {
                        let answer = run_query(&mut engine, &request.query);
                        if config.cache {
                            if cache.len() >= config.sessions_per_shard {
                                // Evict the stalest session. `min_by_key`
                                // breaks ties by position, which is itself
                                // deterministic — but ticks are unique, so
                                // ties cannot arise.
                                let stalest = cache
                                    .iter()
                                    .enumerate()
                                    .min_by_key(|(_, e)| e.last_used)
                                    .map(|(i, _)| i)
                                    .expect("cache non-empty");
                                cache.swap_remove(stalest);
                                stats.evictions += 1;
                            }
                            cache.push(CacheEntry { full_fp, engine, last_used: tick });
                        }
                        (false, answer)
                    }
                    // Compile failures are answers too (the scenario is
                    // broken); nothing to cache.
                    Err(e) => (false, Err(e.to_string())),
                }
            }
        };
        let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let response = Response {
            id: request.id,
            shard,
            cache_hit,
            class: request.class,
            answer,
            micros,
        };
        if responses.send(response).is_err() {
            break; // receiver gone; shutting down
        }
    }
    for entry in &cache {
        let engine_stats = entry.engine.stats();
        stats.learnt_clauses += engine_stats.learnt_clauses;
        stats.conflicts += engine_stats.conflicts;
        stats.subsumed += engine_stats.subsumed;
        stats.strengthened += engine_stats.strengthened;
        stats.eliminated_vars += engine_stats.eliminated_vars;
        stats.vivified += engine_stats.vivified;
        stats.chrono_backtracks += engine_stats.chrono_backtracks;
    }
    stats.sessions_retained = cache.len() as u64;
    stats
}
