//! Latency/throughput reporting over response streams.
//!
//! The summary JSON separates *content* fields (counts, hit rates,
//! disagreements — deterministic under a sequential backend) from
//! *timing* fields (qps, percentiles — never reproducible). The
//! determinism suite compares summaries after [`strip_timing`], which
//! removes exactly the timing-derived keys; everything that survives
//! must be bit-identical across reruns.

use netarch_rt::json::Json;
use netarch_rt::jobj;

use crate::request::{RequestClass, Response};
use crate::service::ServiceStats;

/// Nearest-rank percentile over service times. Returns 0 for an empty
/// sample (a mix with no requests of that class).
pub fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_micros.len() as f64).ceil() as usize;
    sorted_micros[rank.clamp(1, sorted_micros.len()) - 1]
}

fn latency_json(mut micros: Vec<u64>) -> Json {
    micros.sort_unstable();
    let mean = if micros.is_empty() {
        0.0
    } else {
        micros.iter().sum::<u64>() as f64 / micros.len() as f64
    };
    jobj! {
        "count": micros.len() as u64,
        "mean_us": mean,
        "p50_us": percentile(&micros, 50.0),
        "p95_us": percentile(&micros, 95.0),
        "p99_us": percentile(&micros, 99.0),
        "max_us": micros.last().copied().unwrap_or(0),
    }
}

/// Mean service time of the responses matching `keep`, in microseconds.
pub fn mean_micros(responses: &[Response], keep: impl Fn(&Response) -> bool) -> f64 {
    let sample: Vec<u64> = responses.iter().filter(|r| keep(r)).map(|r| r.micros).collect();
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<u64>() as f64 / sample.len() as f64
    }
}

/// Builds the service summary: request/class/cache counters, per-class
/// latency, throughput, and the warm-over-cold speedup that the cache
/// is measured by.
pub fn summary(responses: &[Response], stats: &ServiceStats, elapsed_micros: u64) -> Json {
    let count_class = |class: RequestClass| {
        responses.iter().filter(|r| r.class == class).count() as u64
    };
    let errors = responses.iter().filter(|r| r.answer.is_err()).count() as u64;
    let all: Vec<u64> = responses.iter().map(|r| r.micros).collect();
    let warm: Vec<u64> =
        responses.iter().filter(|r| r.cache_hit).map(|r| r.micros).collect();
    let cold: Vec<u64> =
        responses.iter().filter(|r| !r.cache_hit).map(|r| r.micros).collect();
    // Median-based: warm and cold paths carry different query mixes, and
    // a single first-time heavy query answered on a warm session would
    // dominate a mean. The median compares the typical request on each
    // path, which is the claim the cache makes.
    let mut warm_sorted = warm.clone();
    warm_sorted.sort_unstable();
    let mut cold_sorted = cold.clone();
    cold_sorted.sort_unstable();
    let warm_p50 = percentile(&warm_sorted, 50.0);
    let cold_p50 = percentile(&cold_sorted, 50.0);
    let warm_over_cold =
        if warm_p50 > 0 { cold_p50 as f64 / warm_p50 as f64 } else { 0.0 };
    let qps = if elapsed_micros > 0 {
        responses.len() as f64 / (elapsed_micros as f64 / 1e6)
    } else {
        0.0
    };
    jobj! {
        "requests": responses.len() as u64,
        "cold": count_class(RequestClass::Cold),
        "repeat": count_class(RequestClass::Repeat),
        "variant": count_class(RequestClass::Variant),
        "errors": errors,
        "cache_hits": stats.cache_hits(),
        "cache_misses": stats.cache_misses(),
        "evictions": stats.evictions(),
        "compiles": stats.compiles(),
        "sessions_retained": stats.shards.iter().map(|s| s.sessions_retained).sum::<u64>(),
        "learnt_clauses": stats.learnt_clauses(),
        "subsumed": stats.shards.iter().map(|s| s.subsumed).sum::<u64>(),
        "strengthened": stats.shards.iter().map(|s| s.strengthened).sum::<u64>(),
        "eliminated_vars": stats.shards.iter().map(|s| s.eliminated_vars).sum::<u64>(),
        "vivified": stats.shards.iter().map(|s| s.vivified).sum::<u64>(),
        "chrono_backtracks": stats.shards.iter().map(|s| s.chrono_backtracks).sum::<u64>(),
        "shards": stats.shards.len() as u64,
        "qps": qps,
        "elapsed_ms": elapsed_micros as f64 / 1000.0,
        "latency": latency_json(all),
        "warm_latency": latency_json(warm),
        "cold_latency": latency_json(cold),
        "warm_over_cold": warm_over_cold,
    }
}

/// Keys whose values derive from wall-clock measurement and therefore
/// legitimately differ between reruns of an otherwise deterministic
/// tape. Everything else in a summary must reproduce bit-for-bit.
const TIMING_KEYS: [&str; 3] = ["qps", "elapsed_ms", "warm_over_cold"];

fn is_timing_key(key: &str) -> bool {
    key.ends_with("_us") || TIMING_KEYS.contains(&key)
}

/// Recursively removes timing-derived fields, leaving the deterministic
/// content skeleton two reruns can be compared on.
pub fn strip_timing(json: &Json) -> Json {
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !is_timing_key(k))
                .map(|(k, v)| (k.clone(), strip_timing(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sample = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sample, 50.0), 50);
        assert_eq!(percentile(&sample, 95.0), 100);
        assert_eq!(percentile(&sample, 99.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn strip_timing_removes_only_timing() {
        let json = jobj! {
            "requests": 4u64,
            "p99_us": 123u64,
            "qps": 4.5,
            "latency": jobj! { "mean_us": 1.0, "count": 4u64 },
        };
        let stripped = strip_timing(&json);
        assert!(stripped.get("requests").is_some());
        assert!(stripped.get("p99_us").is_none());
        assert!(stripped.get("qps").is_none());
        let latency = stripped.get("latency").unwrap();
        assert!(latency.get("mean_us").is_none());
        assert!(latency.get("count").is_some());
    }
}
