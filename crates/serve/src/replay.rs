//! Deterministic request-replay load generation.
//!
//! Real multi-tenant traffic is mostly iteration: a tenant poses a
//! scenario, then re-poses it (new query, same content) or nudges it
//! (same catalog, tweaked fleet size / params / budget). The generator
//! reproduces that shape as a pure function of a [`ReplaySpec`] and a
//! pool of base scenarios — every byte of the tape derives from the
//! spec's seed through the `rt` PRNG, so a tape can be regenerated
//! exactly for differential replay, bisection, or bug reports.
//!
//! Three traffic classes:
//! - **cold**: the next unseen scenario. When the base pool is
//!   exhausted, pool scenarios are re-issued with a fresh salt param so
//!   the content (and fingerprint) is genuinely new — cold always means
//!   a real compile, never an accidental cache hit.
//! - **repeat**: an exact clone of an earlier request's scenario. With
//!   caching on this is the warm path: same full fingerprint, same
//!   shard, warm session.
//! - **variant**: an earlier scenario with a mutated context (fleet
//!   size, a param, the budget). Same catalog fingerprint — routed to
//!   the same shard as its relatives — but a different full
//!   fingerprint, so it compiles, then becomes warm for its own repeats.

use netarch_core::prelude::*;
use netarch_rt::json::Json;
use netarch_rt::Rng;

use crate::request::{QueryKind, Request, RequestClass};

/// Parameters of one generated tape. All weights are relative; a weight
/// of zero disables that class or query kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplaySpec {
    /// PRNG seed; the tape is a pure function of this spec.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Weight of exact-repeat traffic.
    pub repeat_weight: u32,
    /// Weight of near-variant traffic.
    pub variant_weight: u32,
    /// Weight of cold traffic.
    pub cold_weight: u32,
    /// Weight of `check` queries.
    pub check_weight: u32,
    /// Weight of `optimize` queries.
    pub optimize_weight: u32,
    /// Weight of `enumerate` queries.
    pub enumerate_weight: u32,
    /// Weight of `capacity` queries.
    pub capacity_weight: u32,
    /// Repeat/variant requests draw their base from the last this-many
    /// issued scenarios (0 = the whole history). Tenants iterate on
    /// *recent* state; a window models that and is what makes an LRU
    /// session cache effective at all.
    pub recency_window: usize,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        ReplaySpec {
            seed: 0,
            requests: 64,
            repeat_weight: 6,
            variant_weight: 3,
            cold_weight: 1,
            check_weight: 4,
            optimize_weight: 3,
            enumerate_weight: 2,
            capacity_weight: 1,
            recency_window: 12,
        }
    }
}

impl ReplaySpec {
    /// Reads a spec from a JSON object, filling absent fields from the
    /// defaults — a workload file only states what it overrides.
    pub fn from_json(json: &Json) -> Result<ReplaySpec, String> {
        let mut spec = ReplaySpec::default();
        let obj = json
            .as_object()
            .ok_or_else(|| "replay spec must be a JSON object".to_string())?;
        for (key, value) in obj {
            let n = value
                .as_u64()
                .ok_or_else(|| format!("replay spec field '{key}' must be a non-negative integer"))?;
            let as_u32 = || {
                u32::try_from(n).map_err(|_| format!("replay spec field '{key}' too large"))
            };
            match key.as_str() {
                "seed" => spec.seed = n,
                "requests" => spec.requests = n as usize,
                "repeat_weight" => spec.repeat_weight = as_u32()?,
                "variant_weight" => spec.variant_weight = as_u32()?,
                "cold_weight" => spec.cold_weight = as_u32()?,
                "check_weight" => spec.check_weight = as_u32()?,
                "optimize_weight" => spec.optimize_weight = as_u32()?,
                "enumerate_weight" => spec.enumerate_weight = as_u32()?,
                "capacity_weight" => spec.capacity_weight = as_u32()?,
                "recency_window" => spec.recency_window = n as usize,
                other => return Err(format!("unknown replay spec field '{other}'")),
            }
        }
        Ok(spec)
    }
}

/// Weighted pick over `choices`; returns the chosen index. Falls back to
/// index 0 when all weights are zero.
fn pick(rng: &mut Rng, weights: &[u32]) -> usize {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    if total == 0 {
        return 0;
    }
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if roll < w {
            return i;
        }
        roll -= w;
    }
    weights.len() - 1
}

/// The next cold scenario: pool entries in order, then salted re-issues
/// once the pool runs dry. The salt is a context param, so the re-issue
/// shares the pool entry's catalog but has fresh full content — an
/// honest compile.
fn next_cold(pool: &[Scenario], cursor: &mut usize) -> Scenario {
    let i = *cursor;
    *cursor += 1;
    let base = pool[i % pool.len()].clone();
    if i < pool.len() {
        base
    } else {
        base.with_param(format!("cold_salt_{i}"), i as f64)
    }
}

/// Mutates a base scenario's context without touching its catalog: the
/// variant routes to the same shard (same catalog fingerprint) but is
/// new content (new full fingerprint). The per-request nonce guarantees
/// newness even when the drawn mutation happens to reproduce an earlier
/// one — a variant always means a genuine compile; warm traffic comes
/// from the repeat class.
fn mutate(rng: &mut Rng, base: &Scenario, id: u64) -> Scenario {
    let scenario = base.clone().with_param("variant_nonce", id as f64);
    match rng.gen_range(0..3u32) {
        0 => {
            let mut inventory = scenario.inventory.clone();
            inventory.num_servers = (inventory.num_servers.max(1) + rng.gen_range(1..=3u64))
                .min(inventory.num_servers.max(1) * 2 + 3);
            scenario.with_inventory(inventory)
        }
        1 => scenario.with_param("replay_tweak", rng.gen_range(1..=64u64) as f64),
        _ => {
            // Loosen or introduce a budget; never tighten below the
            // current one so variants stay plausibly feasible (an
            // infeasible variant is still a valid request, just noisier).
            let base_budget = scenario.budget_usd.unwrap_or(10_000);
            scenario.with_budget(base_budget + rng.gen_range(0..=5u64) * 1_000)
        }
    }
}

fn gen_query(rng: &mut Rng, spec: &ReplaySpec, scenario: &Scenario) -> QueryKind {
    let weights = [
        spec.check_weight,
        spec.optimize_weight,
        spec.enumerate_weight,
        spec.capacity_weight,
    ];
    match pick(rng, &weights) {
        0 => QueryKind::Check,
        1 => QueryKind::Optimize,
        2 => QueryKind::Enumerate(rng.gen_range(2..=4usize)),
        _ => {
            let fleet = scenario.inventory.num_servers.max(1);
            QueryKind::Capacity(fleet + rng.gen_range(0..=2u64))
        }
    }
}

/// Generates the request tape. Pure: same `(spec, pool)` ⇒ same tape,
/// byte for byte. Panics if the pool is empty.
pub fn generate_tape(spec: &ReplaySpec, pool: &[Scenario]) -> Vec<Request> {
    assert!(!pool.is_empty(), "replay pool must contain at least one scenario");
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut issued: Vec<Scenario> = Vec::new();
    let mut cold_cursor = 0usize;
    let mut tape = Vec::with_capacity(spec.requests);
    let class_weights = [spec.cold_weight, spec.repeat_weight, spec.variant_weight];
    for id in 0..spec.requests as u64 {
        // Nothing to repeat or vary until something has been issued.
        let class = if issued.is_empty() {
            RequestClass::Cold
        } else {
            match pick(&mut rng, &class_weights) {
                0 => RequestClass::Cold,
                1 => RequestClass::Repeat,
                _ => RequestClass::Variant,
            }
        };
        let window: &[Scenario] = if spec.recency_window == 0 {
            &issued
        } else {
            &issued[issued.len().saturating_sub(spec.recency_window)..]
        };
        let scenario = match class {
            RequestClass::Cold => next_cold(pool, &mut cold_cursor),
            RequestClass::Repeat => {
                rng.choose(window).expect("issued non-empty").clone()
            }
            RequestClass::Variant => {
                let base = rng.choose(window).expect("issued non-empty").clone();
                mutate(&mut rng, &base, id)
            }
        };
        let query = gen_query(&mut rng, spec, &scenario);
        issued.push(scenario.clone());
        tape.push(Request { id, scenario, query, class });
    }
    tape
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_core::fingerprint::fingerprint_scenario;

    fn tiny_pool() -> Vec<Scenario> {
        let mut catalog = Catalog::new();
        catalog
            .add_system(SystemSpec::builder("M", Category::Monitoring).solves("see").build())
            .unwrap();
        vec![Scenario::new(catalog)
            .with_workload(Workload::builder("w").needs("see").build())
            .with_inventory(Inventory { num_servers: 2, ..Inventory::default() })]
    }

    #[test]
    fn tape_is_reproducible() {
        let spec = ReplaySpec { requests: 24, ..ReplaySpec::default() };
        let pool = tiny_pool();
        let a = generate_tape(&spec, &pool);
        let b = generate_tape(&spec, &pool);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.query, y.query);
            assert_eq!(
                fingerprint_scenario(&x.scenario),
                fingerprint_scenario(&y.scenario)
            );
        }
    }

    #[test]
    fn classes_keep_their_promises() {
        let spec = ReplaySpec { requests: 40, seed: 7, ..ReplaySpec::default() };
        let pool = tiny_pool();
        let tape = generate_tape(&spec, &pool);
        let mut seen_full = Vec::new();
        for request in &tape {
            let fp = fingerprint_scenario(&request.scenario);
            match request.class {
                RequestClass::Cold => {
                    assert!(
                        !seen_full.contains(&fp.full),
                        "cold request {} re-issued known content",
                        request.id
                    );
                }
                RequestClass::Repeat => {
                    assert!(seen_full.contains(&fp.full), "repeat of unseen content");
                }
                RequestClass::Variant => {
                    assert!(
                        !seen_full.contains(&fp.full),
                        "variant {} collided with issued content",
                        request.id
                    );
                }
            }
            seen_full.push(fp.full);
        }
    }

    #[test]
    fn spec_json_roundtrip_with_defaults() {
        let json = netarch_rt::json::from_str(r#"{"seed": 9, "requests": 5}"#).unwrap();
        let spec = ReplaySpec::from_json(&json).unwrap();
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.requests, 5);
        assert_eq!(spec.repeat_weight, ReplaySpec::default().repeat_weight);
        assert!(ReplaySpec::from_json(
            &netarch_rt::json::from_str(r#"{"bogus": 1}"#).unwrap()
        )
        .is_err());
    }
}
