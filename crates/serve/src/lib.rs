//! # netarch-serve
//!
//! A multi-tenant query service over the incremental [`netarch_core::query::Engine`].
//!
//! The paper's pitch is interactive-speed reasoning; this crate is the
//! layer that keeps it interactive when many users share one deployment.
//! Three observations drive the design:
//!
//! 1. **Compilation dominates cold queries.** Building an engine means
//!    encoding the whole scenario to CNF; answering a follow-up query on
//!    an existing session is assumption-only. A cache of *compiled
//!    scenarios* therefore converts repeat traffic from
//!    compile-and-solve to solve-only.
//! 2. **Scenarios repeat, nearly.** Tenants iterate: same catalog, a
//!    tweaked workload or budget. Content-addressed fingerprints
//!    ([`netarch_core::fingerprint`]) make exact repeats cache hits, and
//!    catalog-component affinity routes near-repeats to the shard whose
//!    sessions learned clauses on the same corpus.
//! 3. **Sessions are single-threaded but independent.** One engine
//!    serves one request at a time; N engines across N worker threads
//!    scale throughput without touching the solver.
//!
//! The service ([`service::Service`]) owns a fixed pool of worker
//! threads ("shards"), each holding a small LRU of warm engine sessions
//! keyed by full scenario fingerprint. Routing is stateless and
//! deterministic: with caching on, a request goes to shard
//! `catalog_fingerprint % shards`; with caching off, requests round-robin
//! by id. Determinism end to end — same request tape, same answers, same
//! hit/miss/eviction counts, regardless of thread interleaving — is a
//! test invariant, not an aspiration (see `tests/service_determinism.rs`).
//!
//! [`replay`] generates deterministic request tapes (cold / repeat /
//! near-variant mixes from a seeded PRNG) for load tests and the
//! `netarch serve-replay` CLI; [`report`] turns response streams into
//! latency/throughput summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod report;
pub mod request;
pub mod service;

pub use replay::{generate_tape, ReplaySpec};
pub use request::{Answer, QueryKind, Request, RequestClass, Response};
pub use service::{Service, ServiceConfig, ServiceStats, ShardStats};
