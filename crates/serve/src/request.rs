//! Requests, semantic answers, and the query runner.
//!
//! A request pairs a full [`Scenario`] with one query. The service's
//! correctness contract is *semantic*: a cached warm session and a fresh
//! throwaway engine may surface different witnesses (designs, MUS
//! membership) for the same question, but the decided content — the
//! feasibility verdict, the optimal penalty vector, the untruncated
//! equivalence-class set, the minimal fleet size — is unique. [`Answer`]
//! digests exactly that decided content, so differential comparison is
//! equality, with no tolerance knobs.

use netarch_core::prelude::*;

/// The queries the service answers. A subset of the engine surface,
/// chosen so every answer digest is unique-valued (witness-free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Feasibility: does any compliant design exist?
    Check,
    /// Lexicographic optimization over the scenario's objective stack.
    Optimize,
    /// Enumerate design equivalence classes up to a limit.
    Enumerate(usize),
    /// Minimal fleet size within a server budget.
    Capacity(u64),
}

impl QueryKind {
    /// Short name used in reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Check => "check",
            QueryKind::Optimize => "optimize",
            QueryKind::Enumerate(_) => "enumerate",
            QueryKind::Capacity(_) => "capacity",
        }
    }
}

/// How the load generator classified a request (cold compile, exact
/// repeat of an earlier scenario, or near-variant sharing its catalog).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// First sighting of this scenario content.
    Cold,
    /// Byte-identical repeat of an earlier request's scenario.
    Repeat,
    /// Mutated context over an earlier request's catalog.
    Variant,
}

impl RequestClass {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RequestClass::Cold => "cold",
            RequestClass::Repeat => "repeat",
            RequestClass::Variant => "variant",
        }
    }
}

/// One unit of service work.
#[derive(Clone, Debug)]
pub struct Request {
    /// Monotone id assigned by the submitter; responses are returned in
    /// id order regardless of completion order.
    pub id: u64,
    /// The tenant's scenario.
    pub scenario: Scenario,
    /// The question to answer over it.
    pub query: QueryKind,
    /// Traffic class (informational; carried through to the response).
    pub class: RequestClass,
}

/// The semantic digest of a query answer.
///
/// Every variant carries only content with a unique correct value, so
/// two correct engines always produce equal digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// `check`: whether a compliant design exists.
    Feasibility(bool),
    /// `optimize`: per-level optimal penalties (`None` ⇒ infeasible).
    Penalties(Option<Vec<u64>>),
    /// `enumerate`: class count, plus the sorted class sets when the
    /// enumeration was exhaustive (count < limit). Truncated
    /// enumerations only pin the count — which prefix of classes
    /// surfaces is witness choice.
    Classes {
        /// Number of equivalence classes found (≤ limit).
        count: usize,
        /// Sorted system-id sets per class, present iff exhaustive.
        exhaustive: Option<Vec<Vec<String>>>,
    },
    /// `capacity`: minimal servers needed (`None` ⇒ infeasible at max).
    Capacity(Option<u64>),
}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Shard that served it.
    pub shard: usize,
    /// Whether a warm cached session answered (no compilation).
    pub cache_hit: bool,
    /// Echo of the request's traffic class.
    pub class: RequestClass,
    /// The semantic answer, or a compile error rendered to text.
    pub answer: Result<Answer, String>,
    /// Service time in microseconds (queue wait excluded).
    pub micros: u64,
}

/// Runs one query on an engine and digests the answer.
///
/// Shared by the service workers and the fresh-engine oracle so both
/// sides of a differential comparison digest identically.
pub fn run_query(engine: &mut Engine, query: &QueryKind) -> Result<Answer, String> {
    match query {
        QueryKind::Check => {
            let outcome = engine.check().map_err(|e| e.to_string())?;
            Ok(Answer::Feasibility(outcome.design().is_some()))
        }
        QueryKind::Optimize => {
            let result = engine.optimize().map_err(|e| e.to_string())?;
            Ok(Answer::Penalties(
                result.ok().map(|r| r.levels.iter().map(|l| l.penalty).collect()),
            ))
        }
        QueryKind::Enumerate(limit) => {
            let designs =
                engine.enumerate_designs(*limit, false).map_err(|e| e.to_string())?;
            let count = designs.len();
            let exhaustive = (count < *limit).then(|| {
                let mut classes: Vec<Vec<String>> = designs
                    .iter()
                    .map(|d| d.systems().iter().map(|s| s.to_string()).collect())
                    .collect();
                classes.sort();
                classes
            });
            Ok(Answer::Classes { count, exhaustive })
        }
        QueryKind::Capacity(max) => {
            let result = engine.plan_capacity(*max).map_err(|e| e.to_string())?;
            Ok(Answer::Capacity(result.ok().map(|p| p.servers_needed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole point of the serving layer: engines move to worker
    // threads and responses come back over channels. Compile-time
    // proof that the session object stays `Send`.
    fn assert_send<T: Send>() {}

    #[test]
    fn engine_and_wire_types_are_send() {
        assert_send::<Engine>();
        assert_send::<Request>();
        assert_send::<Response>();
    }
}
