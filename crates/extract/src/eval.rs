//! Evaluation harnesses for the §4 experiments (E6, E7).

use crate::checker::{Checker, DefectClass, DetectionReport};
use crate::docs::{render_paper_prose, render_spec_sheet, Fact};
use crate::extractor::{Extraction, Extractor, Prompt};
use netarch_core::component::{HardwareSpec, SystemSpec};
use netarch_rt::Rng;

/// Per-class extraction accuracy over a corpus (experiment E6).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExtractionReport {
    /// Field-level recall on structured hardware sheets.
    pub hardware_recall: f64,
    /// Recall of `solves` capabilities from prose.
    pub solves_recall: f64,
    /// Recall of plain requirements from prose.
    pub plain_requirement_recall: f64,
    /// Recall of conditional requirements from prose.
    pub conditional_recall: f64,
    /// Recall of resource quantities from prose.
    pub quantity_recall: f64,
    /// Fraction of extracted facts that were faithful.
    pub precision: f64,
    /// Documents processed.
    pub documents: usize,
}

fn class_totals(
    extractions: &[Extraction],
    class: impl Fn(&Fact) -> bool + Copy,
) -> (usize, usize) {
    let hits: usize = extractions
        .iter()
        .map(|e| e.extracted.iter().filter(|x| class(&x.fact)).count())
        .sum();
    let misses: usize = extractions
        .iter()
        .map(|e| e.missed.iter().filter(|f| class(f)).count())
        .sum();
    (hits, hits + misses)
}

fn safe_rate((hits, total): (usize, usize)) -> f64 {
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Runs the extraction study over hardware sheets and system prose.
pub fn run_extraction_study(
    hardware: &[HardwareSpec],
    systems: &[SystemSpec],
    prompt: Prompt,
    seed: u64,
) -> ExtractionReport {
    let mut extractor = Extractor::new(seed);
    let hw_extractions: Vec<Extraction> = hardware
        .iter()
        .map(|h| extractor.extract(&render_spec_sheet(h), prompt))
        .collect();
    let sys_extractions: Vec<Extraction> = systems
        .iter()
        .map(|s| extractor.extract(&render_paper_prose(s), prompt))
        .collect();

    let all: Vec<Extraction> = hw_extractions
        .iter()
        .chain(sys_extractions.iter())
        .cloned()
        .collect();
    let extracted_total: usize = all.iter().map(|e| e.extracted.len()).sum();
    let faithful: usize = all
        .iter()
        .map(|e| e.extracted.iter().filter(|x| x.faithful).count())
        .sum();

    ExtractionReport {
        hardware_recall: safe_rate(class_totals(&hw_extractions, |_| true)),
        solves_recall: safe_rate(class_totals(&sys_extractions, |f| {
            matches!(f, Fact::Solves(_))
        })),
        plain_requirement_recall: safe_rate(class_totals(&sys_extractions, |f| {
            matches!(f, Fact::PlainRequirement { .. })
        })),
        conditional_recall: safe_rate(class_totals(&sys_extractions, |f| {
            matches!(f, Fact::ConditionalRequirement { .. })
        })),
        quantity_recall: safe_rate(class_totals(&sys_extractions, |f| {
            matches!(f, Fact::ResourceQuantity { .. })
        })),
        precision: if extracted_total == 0 {
            1.0
        } else {
            faithful as f64 / extracted_total as f64
        },
        documents: hardware.len() + systems.len(),
    }
}

/// Runs the checking study (E7): inject defects of each class into
/// candidate encodings derived from `systems`, measure detection rates.
pub fn run_checking_study(systems: &[SystemSpec], seed: u64) -> DetectionReport {
    let mut checker = Checker::new(seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut report = DetectionReport::default();
    let classes = [
        DefectClass::MissingCondition,
        DefectClass::WrongNumericValue,
        DefectClass::WrongReference,
        DefectClass::OverclaimedCapability,
    ];
    for spec in systems {
        // Each requirement entry gets checked; with probability 1/2 we
        // corrupt it with a random defect class first.
        for _req in &spec.requires {
            if rng.gen_bool(0.5) {
                let class = classes[rng.gen_range(0..classes.len())];
                let verdict = checker.check_defect(class);
                report.record(class, verdict);
            } else {
                let verdict = checker.check_correct();
                report.record_correct(verdict);
            }
        }
        // Capability claims can be overclaimed too.
        for _cap in &spec.solves {
            if rng.gen_bool(0.2) {
                let verdict = checker.check_defect(DefectClass::OverclaimedCapability);
                report.record(DefectClass::OverclaimedCapability, verdict);
            } else {
                let verdict = checker.check_correct();
                report.record_correct(verdict);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_core::prelude::*;

    fn sample_systems(n: usize) -> Vec<SystemSpec> {
        (0..n)
            .map(|i| {
                SystemSpec::builder(format!("S{i}"), Category::CongestionControl)
                    .solves("bandwidth_allocation")
                    .requires("plain", Condition::switches_have("ECN"))
                    .requires("conditional", Condition::workload("wan_traffic"))
                    .consumes(Resource::Cores, AmountExpr::constant(4))
                    .build()
            })
            .collect()
    }

    fn sample_hardware(n: usize) -> Vec<HardwareSpec> {
        (0..n)
            .map(|i| {
                HardwareSpec::builder(format!("H{i}"), HardwareKind::Switch)
                    .numeric("ports", 48.0)
                    .numeric("memory_mb", 32.0)
                    .feature("ECN")
                    .build()
            })
            .collect()
    }

    #[test]
    fn extraction_study_reproduces_section_4_1_shape() {
        let report = run_extraction_study(
            &sample_hardware(50),
            &sample_systems(50),
            Prompt::Naive,
            1234,
        );
        assert_eq!(report.hardware_recall, 1.0, "hardware must be perfect (§4.1)");
        assert!(report.plain_requirement_recall > report.conditional_recall + 0.15);
        assert!(report.solves_recall > 0.9);
        assert!(report.precision < 1.0, "some quantities must be corrupted");
        assert_eq!(report.documents, 100);
    }

    #[test]
    fn adversarial_prompt_narrows_the_conditional_gap() {
        let naive = run_extraction_study(&[], &sample_systems(80), Prompt::Naive, 9);
        let adv = run_extraction_study(&[], &sample_systems(80), Prompt::Adversarial, 9);
        assert!(
            adv.conditional_recall > naive.conditional_recall + 0.1,
            "naive {:.2} vs adversarial {:.2}",
            naive.conditional_recall,
            adv.conditional_recall
        );
    }

    #[test]
    fn checking_study_reproduces_section_4_2_shape() {
        let report = run_checking_study(&sample_systems(300), 77);
        let missing = report.rate(DefectClass::MissingCondition).unwrap();
        let wrong = report.rate(DefectClass::WrongNumericValue).unwrap();
        assert!(missing > 0.7, "missing-condition detection {missing:.2}");
        assert!(wrong < 0.55, "wrong-number detection {wrong:.2}");
        assert!(missing > wrong);
        assert!(report.correct_checked > 0);
    }
}
