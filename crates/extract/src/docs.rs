//! The synthetic document corpus.
//!
//! §4 of the paper feeds two kinds of source material to an LLM: vendor
//! spec sheets ("highly structured and specific … a crucial factor" in the
//! 100% extraction accuracy) and research papers ("much more heterogeneous
//! document formats" that are "written to be largely positive about the
//! systems they propose"). This module renders both from ground-truth
//! encodings:
//!
//! * [`render_spec_sheet`] — a key/value datasheet, one field per line,
//!   with absent fields printed as `N/A` (Listing 1's shape);
//! * [`render_paper_prose`] — templated paper-style sentences where each
//!   fact appears with positive spin, hedged conditionals, and spelled-out
//!   numbers; every sentence carries its ground-truth [`Fact`] so the
//!   extraction *error model* (not a parser) decides what an LLM would
//!   recover.

use netarch_core::component::{HardwareSpec, SystemSpec};
use netarch_core::condition::{AmountExpr, Condition};

/// A ground-truth fact embedded in a document sentence.
#[derive(Clone, Debug, PartialEq)]
pub enum Fact {
    /// The system solves a capability.
    Solves(String),
    /// A plain (unconditional-shape) requirement, e.g. a hardware feature.
    PlainRequirement {
        /// The requirement's label in the ground-truth encoding.
        label: String,
    },
    /// A requirement whose applicability is *conditional* — the kind LLMs
    /// missed in §4.1 (e.g. "Annulus is required only when there is
    /// competing WAN and DC traffic").
    ConditionalRequirement {
        /// The requirement's label in the ground-truth encoding.
        label: String,
    },
    /// A resource quantity ("how much of a resource is needed" — also
    /// reported as commonly missed in §4.1).
    ResourceQuantity {
        /// Resource display name.
        resource: String,
        /// The amount expression, stringified.
        amount: String,
    },
    /// A numeric hardware attribute.
    HardwareNumeric {
        /// Canonical field key.
        key: String,
        /// The value.
        value: f64,
    },
    /// A boolean hardware feature flag.
    HardwareFeature {
        /// Feature token.
        feature: String,
    },
}

/// One sentence of a document with its underlying fact.
#[derive(Clone, Debug)]
pub struct Sentence {
    /// The rendered text (what a human or LLM would read).
    pub text: String,
    /// The ground truth behind it.
    pub fact: Fact,
}

/// A document in the corpus.
#[derive(Clone, Debug)]
pub struct Document {
    /// Which component the document describes.
    pub subject: String,
    /// Structured spec sheet or free-form prose.
    pub kind: DocKind,
    /// The sentences/lines.
    pub sentences: Vec<Sentence>,
}

/// Document genre.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DocKind {
    /// Vendor datasheet: structured key/value lines.
    SpecSheet,
    /// Research-paper prose: heterogeneous, positively spun.
    PaperProse,
}

/// Classifies a condition: conditional requirements are those gated on
/// workload properties, parameters, or other systems — the nuances §4.1
/// says LLMs miss. Pure hardware-feature conditions read as plain
/// checklist items.
fn is_conditional(condition: &Condition) -> bool {
    match condition {
        Condition::True
        | Condition::False
        | Condition::NicFeature(_)
        | Condition::SwitchFeature(_)
        | Condition::ServerFeature(_)
        | Condition::ProvidedFeature(_) => false,
        Condition::WorkloadProperty(_)
        | Condition::Param(..)
        | Condition::SystemSelected(_)
        | Condition::CategoryFilled(_) => true,
        Condition::Not(inner) => is_conditional(inner),
        Condition::All(parts) | Condition::Any(parts) => parts.iter().any(is_conditional),
    }
}

fn amount_text(amount: &AmountExpr) -> String {
    match amount {
        AmountExpr::Const(v) => format!("{v}"),
        AmountExpr::ParamScaled { param, factor } => format!("{factor} x {param}"),
        AmountExpr::Sum(parts) => parts
            .iter()
            .map(amount_text)
            .collect::<Vec<_>>()
            .join(" + "),
    }
}

/// Renders a vendor spec sheet for a hardware model.
pub fn render_spec_sheet(spec: &HardwareSpec) -> Document {
    let mut sentences = Vec::new();
    for (key, value) in &spec.numeric {
        sentences.push(Sentence {
            text: format!("{key}: {value}"),
            fact: Fact::HardwareNumeric { key: key.clone(), value: *value },
        });
    }
    for feature in &spec.features {
        sentences.push(Sentence {
            text: format!("{feature}: Yes"),
            fact: Fact::HardwareFeature { feature: feature.as_str().to_string() },
        });
    }
    Document {
        subject: spec.id.as_str().to_string(),
        kind: DocKind::SpecSheet,
        sentences,
    }
}

/// Renders paper-style prose for a system. Templates rotate
/// deterministically so the corpus is heterogeneous but reproducible.
pub fn render_paper_prose(spec: &SystemSpec) -> Document {
    let mut sentences = Vec::new();
    let name = &spec.name;
    for (i, cap) in spec.solves.iter().enumerate() {
        let text = match i % 3 {
            0 => format!("{name} delivers state-of-the-art {cap} for modern datacenters."),
            1 => format!("Our evaluation shows {name} excels at {cap}."),
            _ => format!("{name} was designed from the ground up for {cap}."),
        };
        sentences.push(Sentence { text, fact: Fact::Solves(cap.as_str().to_string()) });
    }
    for (i, req) in spec.requires.iter().enumerate() {
        if is_conditional(&req.condition) {
            // Hedged, buried qualifier — positive spin hides the caveat.
            let text = match i % 2 {
                0 => format!(
                    "{name} shines in the appropriate deployment regime ({}).",
                    req.condition
                ),
                _ => format!(
                    "Note that, as with prior systems, {name} assumes {} in practice.",
                    req.condition
                ),
            };
            sentences.push(Sentence {
                text,
                fact: Fact::ConditionalRequirement { label: req.label.clone() },
            });
        } else {
            let text = format!("{name} builds on commodity support for {}.", req.condition);
            sentences.push(Sentence {
                text,
                fact: Fact::PlainRequirement { label: req.label.clone() },
            });
        }
    }
    for demand in &spec.resources {
        sentences.push(Sentence {
            text: format!(
                "{name}'s footprint is modest: roughly {} of {}.",
                amount_text(&demand.amount),
                demand.resource
            ),
            fact: Fact::ResourceQuantity {
                resource: demand.resource.to_string(),
                amount: amount_text(&demand.amount),
            },
        });
    }
    Document {
        subject: spec.id.as_str().to_string(),
        kind: DocKind::PaperProse,
        sentences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_core::prelude::*;

    fn sample_system() -> SystemSpec {
        SystemSpec::builder("ANNULUS", Category::CongestionControl)
            .name("Annulus")
            .solves("bandwidth_allocation")
            .requires("annulus-needs-qcn-switches", Condition::switches_have("QCN"))
            .requires(
                "annulus-only-with-competing-wan-traffic",
                Condition::workload("wan_traffic"),
            )
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .build()
    }

    #[test]
    fn spec_sheet_covers_every_field() {
        let hw = HardwareSpec::builder("SW", HardwareKind::Switch)
            .numeric("ports", 48.0)
            .numeric("memory_mb", 32.0)
            .feature("ECN")
            .build();
        let doc = render_spec_sheet(&hw);
        assert_eq!(doc.kind, DocKind::SpecSheet);
        assert_eq!(doc.sentences.len(), 3);
        assert!(doc.sentences.iter().any(|s| s.text == "ports: 48"));
        assert!(doc.sentences.iter().any(|s| s.text == "ECN: Yes"));
    }

    #[test]
    fn prose_separates_plain_and_conditional_requirements() {
        let doc = render_paper_prose(&sample_system());
        let conditional: Vec<_> = doc
            .sentences
            .iter()
            .filter(|s| matches!(s.fact, Fact::ConditionalRequirement { .. }))
            .collect();
        let plain: Vec<_> = doc
            .sentences
            .iter()
            .filter(|s| matches!(s.fact, Fact::PlainRequirement { .. }))
            .collect();
        assert_eq!(conditional.len(), 1, "WAN-traffic gate is conditional");
        assert_eq!(plain.len(), 1, "QCN feature is a plain checklist item");
    }

    #[test]
    fn prose_carries_resource_quantities() {
        let doc = render_paper_prose(&sample_system());
        assert!(doc
            .sentences
            .iter()
            .any(|s| matches!(&s.fact, Fact::ResourceQuantity { resource, .. } if resource == "cores")));
    }

    #[test]
    fn conditional_classifier() {
        assert!(!is_conditional(&Condition::switches_have("ECN")));
        assert!(is_conditional(&Condition::workload("wan_traffic")));
        assert!(is_conditional(&Condition::param("link_speed_gbps", CmpOp::Ge, 40.0)));
        assert!(is_conditional(&Condition::all([
            Condition::switches_have("ECN"),
            Condition::workload("wan_traffic"),
        ])));
        assert!(!is_conditional(&Condition::all([
            Condition::switches_have("ECN"),
            Condition::nics_have("RDMA"),
        ])));
    }
}
