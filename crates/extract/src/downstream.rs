//! Downstream impact of extraction errors (experiment E13).
//!
//! §4 measures extraction accuracy *per field*; this module measures what
//! those errors cost *downstream*: rebuild each system encoding from what
//! the simulated LLM actually recovered (missed requirements dropped,
//! corrupted quantities mis-scaled), hand the lossy catalog to the
//! reasoning engine, and check its designs against the ground-truth
//! semantics. The result quantifies the paper's warning that "for the
//! time being, human supervision is necessary" (§4.1): encodings that
//! look mostly right still produce deployments that violate the missed
//! caveats.

use crate::docs::{render_paper_prose, Fact};
use crate::extractor::{Extractor, Prompt};
use netarch_core::component::SystemSpec;
use netarch_core::condition::AmountExpr;

/// Degrades one system encoding to what the extractor recovered.
///
/// * Missed requirements are dropped entirely.
/// * Missed resource quantities drop the demand (the extractor "knew a
///   resource was involved" only if it kept the sentence).
/// * Unfaithfully extracted quantities are mis-transcribed: scaled down
///   4× (the optimistic direction — papers undersell costs).
pub fn degrade_system(spec: &SystemSpec, extractor: &mut Extractor, prompt: Prompt) -> SystemSpec {
    let doc = render_paper_prose(spec);
    let extraction = extractor.extract(&doc, prompt);
    let mut degraded = spec.clone();

    let kept_requirement = |label: &str| {
        extraction.extracted.iter().any(|e| match &e.fact {
            Fact::PlainRequirement { label: l } | Fact::ConditionalRequirement { label: l } => {
                l == label
            }
            _ => false,
        })
    };
    degraded.requires.retain(|r| kept_requirement(&r.label));

    let quantity_state = |resource: &str| -> Option<bool> {
        // Some(faithful) when extracted, None when missed.
        extraction.extracted.iter().find_map(|e| match &e.fact {
            Fact::ResourceQuantity { resource: r, .. } if r == resource => Some(e.faithful),
            _ => None,
        })
    };
    let mut kept_resources = Vec::new();
    for demand in &degraded.resources {
        match quantity_state(&demand.resource.to_string()) {
            None => {} // missed: demand vanishes from the encoding
            Some(true) => kept_resources.push(demand.clone()),
            Some(false) => {
                let mut d = demand.clone();
                d.amount = scale_down(&d.amount);
                kept_resources.push(d);
            }
        }
    }
    degraded.resources = kept_resources;

    // Rarely, a capability claim is missed too (solves recall < 1).
    let kept_solves = |cap: &str| {
        extraction
            .extracted
            .iter()
            .any(|e| matches!(&e.fact, Fact::Solves(c) if c == cap))
    };
    degraded.solves.retain(|c| kept_solves(c.as_str()));
    degraded
}

fn scale_down(amount: &AmountExpr) -> AmountExpr {
    match amount {
        AmountExpr::Const(v) => AmountExpr::Const((*v / 4).max(1)),
        AmountExpr::ParamScaled { param, factor } => AmountExpr::ParamScaled {
            param: param.clone(),
            factor: factor / 4.0,
        },
        AmountExpr::Sum(parts) => AmountExpr::Sum(parts.iter().map(scale_down).collect()),
    }
}

/// Degrades a whole system list with one extractor pass.
pub fn degrade_systems(
    systems: &[SystemSpec],
    prompt: Prompt,
    seed: u64,
) -> Vec<SystemSpec> {
    let mut extractor = Extractor::new(seed);
    systems
        .iter()
        .map(|s| degrade_system(s, &mut extractor, prompt))
        .collect()
}

/// Aggregate numbers for the downstream study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DownstreamReport {
    /// Extraction seeds evaluated.
    pub rounds: usize,
    /// Rounds where the engine (over the lossy catalog) produced a design
    /// violating ground-truth semantics.
    pub unsafe_designs: usize,
    /// Rounds where the lossy catalog made the scenario unsolvable.
    pub infeasible: usize,
    /// Rounds where the lossy design happened to satisfy ground truth.
    pub safe_designs: usize,
    /// Total ground-truth violations across unsafe designs.
    pub total_violations: usize,
}

impl DownstreamReport {
    /// Fraction of rounds that yielded an unsafe deployment.
    pub fn unsafe_rate(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        self.unsafe_designs as f64 / self.rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_core::prelude::*;

    fn rich_system() -> SystemSpec {
        SystemSpec::builder("X", Category::CongestionControl)
            .solves("bandwidth_allocation")
            .requires("plain-req", Condition::switches_have("ECN"))
            .requires("conditional-req", Condition::workload("wan_traffic"))
            .consumes(Resource::Cores, AmountExpr::constant(16))
            .build()
    }

    #[test]
    fn degradation_drops_missed_requirements() {
        // Over many seeds, conditional requirements vanish far more often
        // than plain ones.
        let spec = rich_system();
        let mut lost_plain = 0;
        let mut lost_conditional = 0;
        const RUNS: u64 = 300;
        for seed in 0..RUNS {
            let mut ex = Extractor::new(seed);
            let d = degrade_system(&spec, &mut ex, Prompt::Naive);
            if !d.requires.iter().any(|r| r.label == "plain-req") {
                lost_plain += 1;
            }
            if !d.requires.iter().any(|r| r.label == "conditional-req") {
                lost_conditional += 1;
            }
        }
        assert!(
            lost_conditional > lost_plain + (RUNS as i64 / 10) as i32 as u64,
            "conditional {lost_conditional} vs plain {lost_plain}"
        );
    }

    #[test]
    fn degradation_shrinks_or_drops_quantities() {
        let spec = rich_system();
        let mut dropped = 0;
        let mut shrunk = 0;
        for seed in 0..300 {
            let mut ex = Extractor::new(seed);
            let d = degrade_system(&spec, &mut ex, Prompt::Naive);
            match d.resources.first().map(|r| &r.amount) {
                None => dropped += 1,
                Some(AmountExpr::Const(4)) => shrunk += 1,
                Some(AmountExpr::Const(16)) => {}
                other => panic!("unexpected amount {other:?}"),
            }
        }
        assert!(dropped > 0, "quantities must sometimes vanish");
        assert!(shrunk > 0, "quantities must sometimes be mis-transcribed");
    }

    #[test]
    fn degradation_never_invents_facts() {
        let spec = rich_system();
        for seed in 0..50 {
            let mut ex = Extractor::new(seed);
            let d = degrade_system(&spec, &mut ex, Prompt::Adversarial);
            // Degraded requirement labels ⊆ original labels.
            for r in &d.requires {
                assert!(spec.requires.iter().any(|o| o.label == r.label));
            }
            assert!(d.resources.len() <= spec.resources.len());
            assert!(d.solves.iter().all(|c| spec.solves.contains(c)));
        }
    }
}
