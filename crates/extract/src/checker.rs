//! The simulated LLM encoding checker (§4.2).
//!
//! §4.2's findings, reproduced as a calibrated detector:
//!
//! * "it does a better job in finding faults in the sample encodings that
//!   we wrote by hand" — **missing conditions** are detected reliably
//!   (e.g. the missed interrupt-polling requirement for Shenango);
//! * "LLMs could not always check for the correctness of a condition
//!   (especially if it's loaded with numbers), but they did a better job
//!   of checking for the existence of a condition" — **wrong numeric
//!   values** are detected poorly, while a **missing** numeric condition
//!   (e.g. no P4-stage requirement at all for Sonata) is flagged.

use netarch_rt::Rng;

/// A seeded defect injected into a candidate encoding (for evaluation) or
/// found by comparing a candidate against ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DefectClass {
    /// A requirement present in ground truth is absent from the candidate.
    MissingCondition,
    /// A requirement exists but its numeric payload is wrong (e.g. wrong
    /// number of P4 stages).
    WrongNumericValue,
    /// A requirement exists but references the wrong feature/system.
    WrongReference,
    /// A capability claim the system does not actually have.
    OverclaimedCapability,
}

/// Per-class detection probabilities.
#[derive(Clone, Copy, Debug)]
pub struct CheckerModel {
    /// P(flag a missing condition).
    pub missing_condition: f64,
    /// P(flag a wrong numeric value).
    pub wrong_numeric_value: f64,
    /// P(flag a wrong reference).
    pub wrong_reference: f64,
    /// P(flag an overclaimed capability).
    pub overclaimed_capability: f64,
    /// P(raise a spurious flag on a correct encoding) — per check.
    pub false_positive: f64,
}

impl Default for CheckerModel {
    fn default() -> CheckerModel {
        CheckerModel {
            missing_condition: 0.85,
            wrong_numeric_value: 0.35,
            wrong_reference: 0.70,
            overclaimed_capability: 0.75,
            false_positive: 0.05,
        }
    }
}

/// Verdict for one checked encoding entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The checker flagged the entry.
    Flagged,
    /// The checker passed the entry.
    Passed,
}

/// The simulated checking pass.
pub struct Checker {
    model: CheckerModel,
    rng: Rng,
}

impl Checker {
    /// Creates a checker with the default calibration.
    pub fn new(seed: u64) -> Checker {
        Checker::with_model(CheckerModel::default(), seed)
    }

    /// Creates a checker with an explicit model.
    pub fn with_model(model: CheckerModel, seed: u64) -> Checker {
        Checker { model, rng: Rng::seed_from_u64(seed) }
    }

    /// Checks one defective entry: does the checker catch it?
    pub fn check_defect(&mut self, defect: DefectClass) -> Verdict {
        let p = match defect {
            DefectClass::MissingCondition => self.model.missing_condition,
            DefectClass::WrongNumericValue => self.model.wrong_numeric_value,
            DefectClass::WrongReference => self.model.wrong_reference,
            DefectClass::OverclaimedCapability => self.model.overclaimed_capability,
        };
        if self.rng.gen_bool(p) {
            Verdict::Flagged
        } else {
            Verdict::Passed
        }
    }

    /// Checks one *correct* entry: does the checker spuriously flag it?
    pub fn check_correct(&mut self) -> Verdict {
        if self.rng.gen_bool(self.model.false_positive) {
            Verdict::Flagged
        } else {
            Verdict::Passed
        }
    }
}

/// Aggregate detection-rate report per defect class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectionReport {
    /// `(defects_checked, defects_flagged)` per class.
    pub per_class: std::collections::BTreeMap<String, (usize, usize)>,
    /// Correct entries checked / spuriously flagged.
    pub correct_checked: usize,
    /// Spurious flags raised.
    pub false_positives: usize,
}

impl DetectionReport {
    /// Detection rate for a class, if any were checked.
    pub fn rate(&self, class: DefectClass) -> Option<f64> {
        let (total, hit) = self.per_class.get(&format!("{class:?}"))?;
        (*total > 0).then(|| *hit as f64 / *total as f64)
    }

    /// Records one checked defect.
    pub fn record(&mut self, class: DefectClass, verdict: Verdict) {
        let entry = self.per_class.entry(format!("{class:?}")).or_insert((0, 0));
        entry.0 += 1;
        if verdict == Verdict::Flagged {
            entry.1 += 1;
        }
    }

    /// Records one checked correct entry.
    pub fn record_correct(&mut self, verdict: Verdict) {
        self.correct_checked += 1;
        if verdict == Verdict::Flagged {
            self.false_positives += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_conditions_detected_better_than_wrong_numbers() {
        let mut checker = Checker::new(3);
        let mut report = DetectionReport::default();
        for _ in 0..2000 {
            report.record(
                DefectClass::MissingCondition,
                checker.check_defect(DefectClass::MissingCondition),
            );
            report.record(
                DefectClass::WrongNumericValue,
                checker.check_defect(DefectClass::WrongNumericValue),
            );
        }
        let missing = report.rate(DefectClass::MissingCondition).unwrap();
        let wrong = report.rate(DefectClass::WrongNumericValue).unwrap();
        assert!(
            missing > wrong + 0.3,
            "§4.2 gap not reproduced: missing={missing:.2} wrong={wrong:.2}"
        );
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut checker = Checker::new(5);
        let mut report = DetectionReport::default();
        for _ in 0..2000 {
            report.record_correct(checker.check_correct());
        }
        let fp = report.false_positives as f64 / report.correct_checked as f64;
        assert!(fp < 0.10, "false positive rate {fp:.3}");
    }

    #[test]
    fn determinism_by_seed() {
        let mut a = Checker::new(9);
        let mut b = Checker::new(9);
        for _ in 0..100 {
            assert_eq!(
                a.check_defect(DefectClass::WrongReference),
                b.check_defect(DefectClass::WrongReference)
            );
        }
    }

    #[test]
    fn rate_none_when_class_unchecked() {
        let report = DetectionReport::default();
        assert_eq!(report.rate(DefectClass::MissingCondition), None);
    }
}
