//! # netarch-extract
//!
//! Reproduction of the paper's §4 ("Can We Auto-Generate Encodings?"):
//! a document corpus (vendor spec sheets + paper-style prose), a simulated
//! LLM extractor with a seeded error model calibrated to §4.1's findings,
//! and a simulated checking pass calibrated to §4.2's.
//!
//! **Substitution notice** (DESIGN.md #1): no network access means no
//! GPT-4o. The pipeline shape — documents in, candidate encodings out,
//! checker over human encodings — is faithful; the language model is
//! replaced by deterministic extraction plus calibrated noise. The
//! experiments therefore reproduce the paper's *comparative* findings
//! (structured ≫ prose; missing-condition detection ≫ wrong-number
//! detection; adversarial prompting helps), not GPT-4o's absolute scores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod docs;
pub mod downstream;
pub mod eval;
pub mod extractor;

pub use downstream::{degrade_system, degrade_systems, DownstreamReport};
pub use checker::{Checker, CheckerModel, DefectClass, DetectionReport, Verdict};
pub use docs::{render_paper_prose, render_spec_sheet, DocKind, Document, Fact, Sentence};
pub use eval::{run_checking_study, run_extraction_study, ExtractionReport};
pub use extractor::{ErrorModel, Extracted, Extraction, Extractor, Prompt};
